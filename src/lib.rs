//! # rflash
//!
//! A from-scratch Rust reproduction of the system behind *"On Using Linux
//! Kernel Huge Pages with FLASH, an Astrophysical Simulation Code"*
//! (Calder et al., IEEE CLUSTER 2022): a FLASH-like block-structured AMR
//! multiphysics code (PARAMESH-style mesh, split PPM hydrodynamics,
//! Helmholtz-type degenerate EOS, ADR model flame, monopole gravity)
//! together with the Linux huge-page machinery the paper studies and a
//! PAPI-like instrumentation layer with a DTLB model.
//!
//! This facade crate re-exports every subsystem; see the individual crates
//! for the real APIs:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`hugepages`] | `rflash-hugepages` | THP/hugetlbfs regions, policies, `/proc` verification |
//! | [`tlbsim`] | `rflash-tlbsim` | set-associative multi-page-size TLB model |
//! | [`perfmon`] | `rflash-perfmon` | PAPI-like sessions, FLASH timers, hardware counters |
//! | [`simd`] | `rflash-simd` | portable lane abstraction + runtime SIMD dispatch |
//! | [`eos`] | `rflash-eos` | gamma-law + Helmholtz-style tabulated EOS |
//! | [`mesh`] | `rflash-mesh` | PARAMESH-like AMR, `unk` container, flux registers |
//! | [`hydro`] | `rflash-hydro` | split PPM + HLLC, Sedov analytic solution |
//! | [`flame`] | `rflash-flame` | ADR model flame, laminar speed tables |
//! | [`gravity`] | `rflash-gravity` | monopole/point/constant gravity |
//! | [`core`] | `rflash-core` | driver, runtime parameters, the two paper setups |
//!
//! ## Quickstart
//!
//! ```no_run
//! use rflash::core::setups::sedov::SedovSetup;
//! use rflash::core::RuntimeParams;
//! use rflash::hugepages::Policy;
//!
//! let setup = SedovSetup { ndim: 2, max_refine: 2, ..SedovSetup::default() };
//! let params = RuntimeParams {
//!     policy: Policy::Thp, // back unk with transparent huge pages
//!     ..RuntimeParams::with_mesh(setup.mesh_config())
//! };
//! let mut sim = setup.build(params);
//! sim.evolve(50);
//! println!("{}", sim.domain.unk.backing_report()); // what the kernel granted
//! println!("{:?}", sim.hydro_measures());          // paper-style measures
//! ```

pub use rflash_core as core;
pub use rflash_eos as eos;
pub use rflash_flame as flame;
pub use rflash_gravity as gravity;
pub use rflash_hugepages as hugepages;
pub use rflash_hydro as hydro;
pub use rflash_mesh as mesh;
pub use rflash_perfmon as perfmon;
pub use rflash_simd as simd;
pub use rflash_tlbsim as tlbsim;
