//! The `rflash` scenario launcher.
//!
//! A thin, dependency-free front door over the declarative scenario
//! registry (`rflash::core::registry`, DESIGN.md §15):
//!
//! ```text
//! rflash list-setups
//! rflash describe <name> [--ron]
//! rflash run-setup <name> [--full] [--steps N] [--nranks N]
//!                         [--engine scalar|pencil]
//!                         [--scheduler barrier|task_graph]
//!                         [--checkpoint-dir DIR] [--checkpoint-every N]
//! ```
//!
//! `run-setup` defaults to smoke scale — the exact configuration the golden
//! corpus fingerprints — and prints the state digest so a run can be checked
//! against `golden/<name>.ron` by eye. `--full` launches the paper-scale
//! problem instead.

use std::path::PathBuf;
use std::process::ExitCode;

use rflash::core::registry::{self, spec::parse_engine, SetupSpec, StateDigest};
use rflash::core::{
    run_fleet, worker_main, CheckpointSeries, FleetConfig, StepScheduler, WorkerArgs,
};
use rflash::hydro::SweepEngine;

const USAGE: &str = "usage:
  rflash list-setups
  rflash describe <name> [--ron]
  rflash run-setup <name> [--full] [--steps N] [--nranks N]
                          [--engine scalar|pencil]
                          [--scheduler barrier|task_graph]
                          [--checkpoint-dir DIR] [--checkpoint-every N]
  rflash run-fleet <name> [--workers N] [--steps N] [--series-dir DIR]
                          [--checkpoint-every N] [--keep-last N]
                          [--fault RANK:SPEC]... [--supervisor-fault SPEC]
                          [--heartbeat-ms N] [--heartbeat-timeout-ms N]
                          [--max-respawns N] [--coalesce-ms N] [--events]

run-fleet drives N supervised worker processes over Morton shards of the
smoke-scale scenario; RFLASH_WORKERS / RFLASH_HEARTBEAT_MS /
RFLASH_HEARTBEAT_TIMEOUT_MS / RFLASH_PROBE_RETRIES set the defaults.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list-setups") => list_setups(&args[1..]),
        Some("describe") => describe(&args[1..]),
        Some("run-setup") => run_setup(&args[1..]),
        Some("run-fleet") => run_fleet_cmd(&args[1..]),
        // Hidden: the entry point run-fleet execs for each worker process.
        Some("fleet-worker") => fleet_worker(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("rflash: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn list_setups(rest: &[String]) -> Result<(), String> {
    if !rest.is_empty() {
        return Err(format!("list-setups takes no arguments\n{USAGE}"));
    }
    let specs = registry::builtin();
    let width = specs.iter().map(|s| s.name.len()).max().unwrap_or(0);
    println!("{} registered scenarios:", specs.len());
    for spec in &specs {
        println!(
            "  {:width$}  {}-d  {:9}  {}",
            spec.name,
            spec.mesh.ndim,
            eos_label(spec),
            spec.title,
        );
    }
    Ok(())
}

fn eos_label(spec: &SetupSpec) -> &'static str {
    match spec.eos {
        registry::EosSpec::Gamma { .. } => "gamma-law",
        registry::EosSpec::Helmholtz { .. } => "helmholtz",
    }
}

fn describe(rest: &[String]) -> Result<(), String> {
    let mut name = None;
    let mut ron = false;
    for arg in rest {
        match arg.as_str() {
            "--ron" => ron = true,
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let name = name.ok_or_else(|| format!("describe needs a scenario name\n{USAGE}"))?;
    let spec = registry::load(&name).map_err(|e| e.to_string())?;
    if ron {
        // The canonical round-trippable form, suitable as a starting point
        // for a derived spec file.
        print!("{}", spec.to_value().to_ron(0));
        println!();
        return Ok(());
    }
    println!("{}: {}", spec.name, spec.title);
    println!(
        "  mesh     {}-d, {}^{} zones/block, max_refine {}, max_blocks {}",
        spec.mesh.ndim, spec.mesh.nxb, spec.mesh.ndim, spec.mesh.max_refine, spec.mesh.max_blocks
    );
    println!(
        "  domain   {:?} .. {:?}",
        spec.mesh.domain_lo, spec.mesh.domain_hi
    );
    println!("  eos      {}", eos_label(&spec));
    println!("  initial  {} primitives", spec.initial.len());
    println!(
        "  smoke    {} steps at max_refine {}",
        spec.smoke.steps,
        spec.smoke.max_refine.unwrap_or(spec.mesh.max_refine)
    );
    println!();
    println!("(full spec: rflash describe {} --ron)", spec.name);
    Ok(())
}

fn run_setup(rest: &[String]) -> Result<(), String> {
    let mut name: Option<String> = None;
    let mut full = false;
    let mut steps: Option<u64> = None;
    let mut nranks = 1usize;
    let mut engine = SweepEngine::Pencil;
    let mut scheduler = StepScheduler::TaskGraph;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_every = 0u64;

    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--full" => full = true,
            "--steps" => {
                steps = Some(
                    value("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                )
            }
            "--nranks" => {
                nranks = value("--nranks")?
                    .parse()
                    .map_err(|e| format!("--nranks: {e}"))?
            }
            "--engine" => {
                let s = value("--engine")?;
                engine = parse_engine(&s)
                    .ok_or_else(|| format!("--engine: expected scalar|pencil, got `{s}`"))?;
            }
            "--scheduler" => {
                scheduler = match value("--scheduler")?.as_str() {
                    "barrier" => StepScheduler::Barrier,
                    "task_graph" => StepScheduler::TaskGraph,
                    s => {
                        return Err(format!(
                            "--scheduler: expected barrier|task_graph, got `{s}`"
                        ))
                    }
                }
            }
            "--checkpoint-dir" => checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")?)),
            "--checkpoint-every" => {
                checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let name = name.ok_or_else(|| format!("run-setup needs a scenario name\n{USAGE}"))?;

    let paper = registry::load(&name).map_err(|e| e.to_string())?;
    let spec = if full { paper } else { paper.at_smoke_scale() };
    let steps = steps.unwrap_or(spec.smoke.steps);

    let mut params = registry::smoke_params(&spec, nranks, engine, scheduler);
    params.checkpoint_every = checkpoint_every;

    println!(
        "{}: {} ({} scale, {steps} steps, nranks={nranks}, {engine:?}/{scheduler:?})",
        spec.name,
        spec.title,
        if full { "paper" } else { "smoke" },
    );
    let mut sim = spec.build(params).map_err(|e| e.to_string())?;
    println!(
        "  built: {} leaf blocks at t=0",
        sim.domain.tree.leaves().len()
    );

    match checkpoint_dir {
        Some(dir) if checkpoint_every > 0 => {
            let series = CheckpointSeries::new(&dir, &name);
            let written = sim
                .evolve_checkpointed(steps, &series)
                .map_err(|e| format!("step failed: {e:?}"))?;
            println!("  wrote {} checkpoints under {}", written.len(), dir.display());
        }
        Some(_) => {
            return Err("--checkpoint-dir needs --checkpoint-every N (N >= 1)".into());
        }
        None => sim.evolve(steps),
    }

    let digest = StateDigest::of(&sim);
    println!("  t = {:e} after {} steps", sim.time, sim.step);
    println!("  digest {digest}");
    if !full {
        println!("  compare: golden/{name}.ron");
    }
    Ok(())
}

fn run_fleet_cmd(rest: &[String]) -> Result<(), String> {
    let mut name: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut steps: Option<u64> = None;
    let mut series_dir: Option<PathBuf> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut keep_last: Option<usize> = None;
    let mut worker_faults: Vec<(usize, String)> = Vec::new();
    let mut supervisor_fault: Option<String> = None;
    let mut heartbeat_ms: Option<u64> = None;
    let mut heartbeat_timeout_ms: Option<u64> = None;
    let mut max_respawns: Option<u32> = None;
    let mut coalesce_ms: Option<u64> = None;
    let mut show_events = false;

    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--steps" => {
                steps = Some(
                    value("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                )
            }
            "--series-dir" => series_dir = Some(PathBuf::from(value("--series-dir")?)),
            "--checkpoint-every" => {
                checkpoint_every = Some(
                    value("--checkpoint-every")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-every: {e}"))?,
                )
            }
            "--keep-last" => {
                keep_last = Some(
                    value("--keep-last")?
                        .parse()
                        .map_err(|e| format!("--keep-last: {e}"))?,
                )
            }
            "--fault" => {
                let v = value("--fault")?;
                let (rank, spec) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--fault: expected RANK:SPEC, got `{v}`"))?;
                let rank: usize = rank
                    .parse()
                    .map_err(|e| format!("--fault rank `{rank}`: {e}"))?;
                worker_faults.push((rank, spec.to_string()));
            }
            "--supervisor-fault" => supervisor_fault = Some(value("--supervisor-fault")?),
            "--heartbeat-ms" => {
                heartbeat_ms = Some(
                    value("--heartbeat-ms")?
                        .parse()
                        .map_err(|e| format!("--heartbeat-ms: {e}"))?,
                )
            }
            "--heartbeat-timeout-ms" => {
                heartbeat_timeout_ms = Some(
                    value("--heartbeat-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--heartbeat-timeout-ms: {e}"))?,
                )
            }
            "--max-respawns" => {
                max_respawns = Some(
                    value("--max-respawns")?
                        .parse()
                        .map_err(|e| format!("--max-respawns: {e}"))?,
                )
            }
            "--coalesce-ms" => {
                coalesce_ms = Some(
                    value("--coalesce-ms")?
                        .parse()
                        .map_err(|e| format!("--coalesce-ms: {e}"))?,
                )
            }
            "--events" => show_events = true,
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let name = name.ok_or_else(|| format!("run-fleet needs a scenario name\n{USAGE}"))?;
    let spec = registry::load(&name).map_err(|e| e.to_string())?;
    let steps = steps.unwrap_or(spec.smoke.steps);

    let worker_bin =
        std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let series_dir = match series_dir {
        Some(d) => d,
        None => std::env::temp_dir().join(format!("rflash-fleet-{}-{}", name, std::process::id())),
    };
    let mut cfg = FleetConfig::new(worker_bin, &name, steps, &series_dir);
    if let Some(w) = workers {
        cfg.workers = w;
    }
    if let Some(n) = checkpoint_every {
        cfg.checkpoint_every = n;
    }
    if let Some(n) = keep_last {
        cfg.keep_last = n;
    }
    if let Some(n) = heartbeat_ms {
        cfg.heartbeat_ms = n;
    }
    if let Some(n) = heartbeat_timeout_ms {
        cfg.heartbeat_timeout_ms = n;
    }
    if let Some(n) = max_respawns {
        cfg.max_respawns = n;
    }
    if let Some(n) = coalesce_ms {
        cfg.coalesce_ms = n;
    }
    cfg.worker_faults = worker_faults;
    cfg.supervisor_faults = supervisor_fault;

    println!(
        "{name}: fleet of {} workers, {steps} steps, series under {}",
        cfg.workers,
        series_dir.display()
    );
    let report = run_fleet(cfg).map_err(|e| e.to_string())?;
    println!(
        "  digest {:08x} at step {} ({} workers at finish, {} rollbacks, {} respawns, {} migrations)",
        report.digest.crc,
        report.digest.step,
        report.workers_final,
        report.rollbacks,
        report.counters.respawns,
        report.counters.migrations,
    );
    if show_events {
        for ev in &report.events {
            println!("  event {ev:?}");
        }
    }
    println!("  compare: golden/{name}.ron");
    Ok(())
}

fn fleet_worker(rest: &[String]) -> Result<(), String> {
    let mut rank: Option<usize> = None;
    let mut setup: Option<String> = None;
    let mut steps: Option<u64> = None;
    let mut checkpoint_every = 0u64;
    let mut keep_last = 0usize;
    let mut series_dir: Option<PathBuf> = None;
    let mut series_prefix = "fleet".to_string();
    let mut heartbeat_ms = 25u64;

    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--rank" => rank = Some(value("--rank")?.parse().map_err(|e| format!("--rank: {e}"))?),
            "--setup" => setup = Some(value("--setup")?),
            "--steps" => {
                steps = Some(
                    value("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                )
            }
            "--checkpoint-every" => {
                checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--keep-last" => {
                keep_last = value("--keep-last")?
                    .parse()
                    .map_err(|e| format!("--keep-last: {e}"))?
            }
            "--series-dir" => series_dir = Some(PathBuf::from(value("--series-dir")?)),
            "--series-prefix" => series_prefix = value("--series-prefix")?,
            "--heartbeat-ms" => {
                heartbeat_ms = value("--heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?
            }
            other => return Err(format!("fleet-worker: unexpected argument `{other}`")),
        }
    }
    let args = WorkerArgs {
        rank: rank.ok_or("fleet-worker needs --rank")?,
        setup: setup.ok_or("fleet-worker needs --setup")?,
        steps: steps.ok_or("fleet-worker needs --steps")?,
        checkpoint_every,
        keep_last,
        series_dir: series_dir.ok_or("fleet-worker needs --series-dir")?,
        series_prefix,
        heartbeat_ms,
    };
    worker_main(args).map_err(|e| format!("worker {}: {e}", rest.join(" ")))
}
