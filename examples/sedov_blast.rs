//! Sedov blast validation: evolve the explosion and compare the computed
//! radial profile against the analytic self-similar solution.
//!
//! ```text
//! cargo run --release --example sedov_blast [--3d] [steps]
//! ```

use rflash::core::output::RadialProfile;
use rflash::core::setups::sedov::SedovSetup;
use rflash::core::RuntimeParams;
use rflash::hugepages::Policy;
use rflash::hydro::SedovSolution;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let three_d = args.iter().any(|a| a == "--3d");
    let steps: u64 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if three_d { 60 } else { 150 });

    let setup = SedovSetup {
        ndim: if three_d { 3 } else { 2 },
        nxb: 8,
        max_refine: if three_d { 3 } else { 4 },
        max_blocks: 4096,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::Thp,
        pattern_every: 0, // pure physics run: no instrumentation overhead
        gather_every: 0,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    let mut sim = setup.build(params);
    println!(
        "Sedov {}-d: {} initial leaves, dx_min = {:.4}",
        setup.ndim,
        sim.domain.tree.leaves().len(),
        setup.dx_min()
    );
    sim.evolve(steps);
    println!(
        "t = {:.4e} after {steps} steps ({} leaves)",
        sim.time,
        sim.domain.tree.leaves().len()
    );

    let analytic = SedovSolution::new(setup.gamma, setup.ndim, setup.e0, setup.rho0, setup.p_ambient);
    let r_shock = analytic.shock_radius(sim.time);
    println!("analytic shock radius: {r_shock:.4} (xi0 = {:.4})", analytic.xi0());

    let profile = RadialProfile::extract(&sim.domain, setup.center(), 0.5, 48);
    if let Some(r_num) = profile.shock_radius() {
        println!(
            "numerical shock radius: {r_num:.4}  (rel. error {:+.2}%)",
            (r_num - r_shock) / r_shock * 100.0
        );
    }

    println!("\n{:>8} {:>12} {:>12} {:>12} {:>12}", "r", "dens", "dens_exact", "velr", "velr_exact");
    for b in (0..profile.r.len()).step_by(3) {
        if profile.count[b] == 0 {
            continue;
        }
        let r = profile.r[b];
        let (rho_a, u_a, _) = analytic.state(r, sim.time);
        println!(
            "{:>8.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            r, profile.dens[b], rho_a, profile.velr[b], u_a
        );
    }
}
