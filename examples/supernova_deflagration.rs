//! The paper's science application: a centrally ignited Type Iax-style
//! deflagration in a C/O white dwarf, with per-step diagnostics.
//!
//! ```text
//! cargo run --release --example supernova_deflagration [steps] [--rz]
//! ```
//!
//! `--rz` runs FLASH's native cylindrical r–z geometry (star on the axis);
//! the default is the Cartesian variant.

use rflash::core::output::RadialProfile;
use rflash::core::setups::supernova::SupernovaSetup;
use rflash::core::RuntimeParams;
use rflash::eos::consts::M_SUN;
use rflash::hugepages::Policy;
use rflash::mesh::vars;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let steps: u64 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(50);
    let rz = args.iter().any(|a| a == "--rz");

    let setup = SupernovaSetup {
        nxb: 16,
        max_refine: 3,
        max_blocks: 2048,
        geometry: if rz {
            rflash::mesh::Geometry::CylindricalRZ
        } else {
            rflash::mesh::Geometry::Cartesian
        },
        ..SupernovaSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::Thp,
        pattern_every: 0,
        gather_every: 0,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };

    println!("building the white dwarf and the Helmholtz table…");
    let mut sim = setup.build(params);
    if rz {
        println!(
            "progenitor on the grid: {:.3} Msun (true 3-d mass in r–z)",
            sim.total_mass() / M_SUN
        );
    } else {
        println!(
            "progenitor on the grid: {:.3e} g/cm column mass (2-d Cartesian)",
            sim.total_mass()
        );
    }
    println!(
        "mesh: {}",
        rflash::mesh::MeshStats::gather(&sim.domain.tree)
    );

    println!(
        "\n{:>5} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "step", "t [s]", "dt [s]", "E_nuc [erg/cm]", "burned phi", "leaves"
    );
    let mut last_t = 0.0;
    for s in 0..steps {
        let dt = sim.step();
        if s % 5 == 0 || s + 1 == steps {
            // Burned fraction: mean of phi over the star.
            let mut phi_sum = 0.0;
            let mut n = 0u64;
            for id in sim.domain.tree.leaves() {
                for j in sim.domain.unk.interior() {
                    for i in sim.domain.unk.interior() {
                        if sim.domain.unk.get(vars::DENS, i, j, 0, id.idx()) > 1e6 {
                            phi_sum += sim.domain.unk.get(vars::FLAM, i, j, 0, id.idx());
                            n += 1;
                        }
                    }
                }
            }
            println!(
                "{:>5} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.6} {:>8}",
                s + 1,
                sim.time,
                dt,
                sim.energy_released,
                phi_sum / n.max(1) as f64,
                sim.domain.tree.leaves().len()
            );
        }
        last_t = sim.time;
    }

    let profile = RadialProfile::extract(&sim.domain, [0.0; 3], setup.half_width, 32);
    println!("\nfinal radial structure (t = {last_t:.3e} s):");
    println!("{:>12} {:>12} {:>12} {:>10}", "r [cm]", "dens", "T-proxy pres", "velr");
    for b in (0..profile.r.len()).step_by(4) {
        println!(
            "{:>12.3e} {:>12.3e} {:>12.3e} {:>10.3e}",
            profile.r[b], profile.dens[b], profile.pres[b], profile.velr[b]
        );
    }
    println!(
        "\nenergy released: {:.3e} erg/cm of z-extent  (~{:.2e} Msun/cm burned C at q=4.8e17·X_C)",
        sim.energy_released,
        sim.energy_released / (4.8e17 * 0.5) / M_SUN
    );
    println!("\ntimers:\n{}", sim.timers);
}
