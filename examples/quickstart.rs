//! Quickstart: run a small Sedov explosion with a chosen huge-page policy
//! and print the paper-style instrumentation report.
//!
//! ```text
//! cargo run --release --example quickstart [none|thp|hugetlbfs]
//! ```

use rflash::core::setups::sedov::SedovSetup;
use rflash::core::RuntimeParams;
use rflash::hugepages::{Policy, POLICY_ENV_VAR};

fn main() {
    // Policy from argv, falling back to the paper-style env variable
    // (RFLASH_HPAGE_TYPE — the XOS_MMM_L_HPAGE_TYPE analog), then THP.
    let policy: Policy = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("none|thp|hugetlbfs[:SIZE]"))
        .unwrap_or_else(|| Policy::from_env().expect(POLICY_ENV_VAR));

    println!("huge-page policy: {policy}");

    let setup = SedovSetup {
        ndim: 2,
        nxb: 8,
        max_refine: 3,
        max_blocks: 1024,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    let mut sim = setup.build(params);
    println!(
        "unk container: {:.1} MiB, {} leaf blocks",
        sim.domain.unk.bytes() as f64 / (1 << 20) as f64,
        sim.domain.tree.leaves().len()
    );
    println!("kernel-verified backing: {}", sim.domain.unk.backing_report());

    sim.evolve(50);

    println!("\nafter 50 steps: t = {:.4e}, {} leaves", sim.time, sim.domain.tree.leaves().len());
    println!("\ntimers:\n{}", sim.timers);
    let m = sim.hydro_measures();
    println!("instrumented hydro region:");
    println!("  time                {:>12.4} s", m.time_s);
    println!("  cycles              {:>12.3e}", m.cycles);
    println!("  memory bandwidth    {:>12.3} GB/s", m.mem_gb_per_s);
    println!("  modeled DTLB misses {:>12} ({:.3e}/s)", m.dtlb_misses, m.dtlb_miss_per_s);
    println!(
        "  backend             {:>12}",
        if m.hw_backend { "hardware+model" } else { "model" }
    );
}
