//! Sod shock tube vs the exact Riemann solution — the classic verification
//! FLASH ships (Fryxell et al. 2000 §8.2), run through the full AMR stack.
//!
//! ```text
//! cargo run --release --example sod_tube [steps]
//! ```

use rflash::core::setups::sod::SodSetup;
use rflash::core::RuntimeParams;
use rflash::hugepages::Policy;

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);

    let setup = SodSetup::default();
    let params = RuntimeParams {
        policy: Policy::Thp,
        pattern_every: 0,
        gather_every: 0,
        cfl: 0.3,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    let mut sim = setup.build(params);
    sim.evolve(steps);
    let t = sim.time;
    println!("Sod tube at t = {t:.4} ({steps} steps, {} leaves)", sim.domain.tree.leaves().len());

    let exact = setup.exact();
    let star = exact.star();
    println!(
        "exact star state: p* = {:.5}, u* = {:.5} (Toro: 0.30313, 0.92745)\n",
        star.pres, star.vel
    );

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "x", "dens", "exact", "velx", "exact", "pres", "exact"
    );
    let profile = SodSetup::midline_profile(&sim);
    let mut l1 = 0.0;
    let mut norm = 0.0;
    for (n, &(x, dens, velx, pres)) in profile.iter().enumerate() {
        let ex = exact.sample((x - setup.x0) / t);
        l1 += (dens - ex.dens).abs();
        norm += ex.dens;
        if n % (profile.len() / 24).max(1) == 0 {
            println!(
                "{x:>8.4} {dens:>10.4} {:>10.4} {velx:>10.4} {:>10.4} {pres:>10.4} {:>10.4}",
                ex.dens, ex.vel, ex.pres
            );
        }
    }
    println!("\nL1 density error vs exact: {:.3}%", l1 / norm * 100.0);
}
