//! `hugeadm`-style host inspection — the tooling the paper installed on the
//! modified Ookami nodes (`libhugetlbfs-utils`), reimplemented read-only.
//!
//! ```text
//! cargo run --example hugepage_probe [--pool N]
//! ```
//!
//! `--pool N` additionally tries to resize the 2 MiB pool to N pages
//! (requires privilege), like `hugeadm --pool-pages-min 2M:N`.

use rflash::hugepages::{probe_system, PageBuffer, PageSize, Policy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--pool") {
        let pages: u64 = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--pool N");
        match rflash::hugepages::probe::set_pool_size(PageSize::Huge2M, pages) {
            Ok(granted) => println!("2M pool resized: {granted} pages granted"),
            Err(e) => println!("pool resize failed: {e}"),
        }
    }

    let report = probe_system();
    println!("{report}");

    println!("\nviable policies on this host:");
    for p in report.viable_policies() {
        println!("  {p}");
    }

    // Live demonstration: allocate 64 MiB under each policy and show the
    // kernel's verdict.
    println!("\nallocation check (64 MiB each):");
    for policy in [
        Policy::None,
        Policy::Thp,
        Policy::HugeTlbFs(PageSize::Huge2M),
    ] {
        match PageBuffer::<u8>::zeroed(64 << 20, policy) {
            Ok(buf) => println!("  {policy:<14} -> {}", buf.backing_report()),
            Err(e) => println!("  {policy:<14} -> allocation failed: {e}"),
        }
    }
}
