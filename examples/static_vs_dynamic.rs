//! The paper's §IV control experiment, reproduced: "we wrote two simple
//! Fortran test programs, one statically allocating memory for a 2-d array
//! and one dynamically allocating memory for a 2-d array, and then just
//! repeated calculating sums over the arrays. As expected, the program with
//! the dynamically allocated array was able to use huge pages … while the
//! statically allocated array version could not. This behavior is expected
//! because transparent huge pages only maps anonymous memory regions."
//!
//! Here both variants live in one binary: a `static mut`-style array in the
//! BSS segment versus a THP-advised anonymous mapping, with `/proc/self/
//! smaps` as the judge. On hosts whose kernel never grants THP, the
//! dynamic variant falls back to an explicit hugetlbfs mapping (pool
//! permitting) to show the contrast.
//!
//! ```text
//! cargo run --release --example static_vs_dynamic
//! ```

use std::time::Instant;

use rflash::hugepages::{PageBuffer, PageSize, Policy, SmapsRegion};

const N: usize = 32 * 1024 * 1024; // 256 MiB of f64

// The "statically allocated Fortran array": lives in BSS, file-backed
// program segment — not anonymous, so THP can never map it.
static mut STATIC_ARRAY: [f64; N] = [0.0; N];

fn sum_pass(data: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for x in data.iter_mut() {
        *x += 1.0;
        acc += *x;
    }
    acc
}

fn report(label: &str, addr: usize, secs: f64, acc: f64) {
    std::hint::black_box(acc);
    match SmapsRegion::for_addr(addr) {
        Ok(s) => println!(
            "{label:<22} {:>8.3} s   rss={:>7} kB  AnonHugePages={:>7} kB  hugetlb={:>7} kB  kpagesize={} kB",
            secs,
            s.rss / 1024,
            s.anon_huge_pages / 1024,
            s.hugetlb / 1024,
            s.kernel_page_size / 1024,
        ),
        Err(e) => println!("{label:<22} {secs:>8.3} s   (smaps unavailable: {e})"),
    }
}

fn main() {
    println!("array size: {} MiB; three summation passes each\n", N * 8 / (1 << 20));

    // 1. Static allocation (the paper's program that could NOT use THP).
    {
        // SAFETY: single-threaded exclusive access to the static.
        let data = unsafe { &mut *std::ptr::addr_of_mut!(STATIC_ARRAY) };
        let t0 = Instant::now();
        let mut acc = 0.0;
        for _ in 0..3 {
            acc += sum_pass(data);
        }
        report(
            "static (BSS)",
            data.as_ptr() as usize,
            t0.elapsed().as_secs_f64(),
            acc,
        );
    }

    // 2. Dynamic allocation with THP advice (the paper's program that could).
    {
        let mut buf = PageBuffer::<f64>::zeroed(N, Policy::Thp).expect("thp alloc");
        let t0 = Instant::now();
        let mut acc = 0.0;
        for _ in 0..3 {
            acc += sum_pass(buf.as_mut_slice());
        }
        report(
            "dynamic (THP advice)",
            buf.base_addr(),
            t0.elapsed().as_secs_f64(),
            acc,
        );
        if !buf.backing_report().verified_huge() {
            println!(
                "  note: this kernel did not grant THP — the same silent\n\
                 \x20 non-engagement the paper hit with GNU/Cray binaries."
            );
        }
    }

    // 3. Dynamic allocation with explicit hugetlbfs pages.
    {
        let mut buf = PageBuffer::<f64>::zeroed(N, Policy::HugeTlbFs(PageSize::Huge2M))
            .expect("hugetlb alloc (or fallback)");
        let t0 = Instant::now();
        let mut acc = 0.0;
        for _ in 0..3 {
            acc += sum_pass(buf.as_mut_slice());
        }
        report(
            "dynamic (hugetlbfs)",
            buf.base_addr(),
            t0.elapsed().as_secs_f64(),
            acc,
        );
        let rep = buf.backing_report();
        if let Some(why) = &rep.fell_back {
            println!("  note: hugetlb pool unavailable ({why}); configure with\n  echo 256 > /proc/sys/vm/nr_hugepages");
        }
    }

    println!(
        "\npaper's conclusion, reproduced: only *anonymous* (dynamically\n\
         allocated) memory can be huge-page backed; the static array never is."
    );
}
