//! Simulated-rank scaling: the paper's companion study (Feldman et al.,
//! HPCAsia 2022) examined FLASH's MPI scaling on Ookami; here the same
//! Morton-curve block decomposition runs on threads. On a single-core
//! container this mostly demonstrates the decomposition machinery; on a
//! real multicore host the speedup is real.
//!
//! ```text
//! cargo run --release --example rank_scaling [steps]
//! ```

use std::time::Instant;

use rflash::core::setups::sedov::SedovSetup;
use rflash::core::RuntimeParams;
use rflash::hugepages::Policy;

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    println!("host CPUs: {}", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    println!("{:>6} {:>10} {:>12} {:>10}", "ranks", "leaves", "time [s]", "speedup");

    let mut t1 = None;
    for nranks in [1usize, 2, 4, 8] {
        let setup = SedovSetup {
            ndim: 2,
            nxb: 8,
            max_refine: 3,
            max_blocks: 2048,
            ..SedovSetup::default()
        };
        let params = RuntimeParams {
            policy: Policy::Thp,
            nranks,
            pattern_every: 0,
            gather_every: 0,
            ..RuntimeParams::with_mesh(setup.mesh_config())
        };
        let mut sim = setup.build(params);
        let t0 = Instant::now();
        sim.evolve(steps);
        let dt = t0.elapsed().as_secs_f64();
        let speedup = t1.get_or_insert(dt).max(1e-12) / dt.max(1e-12);
        println!(
            "{:>6} {:>10} {:>12.3} {:>10.2}",
            nranks,
            sim.domain.tree.leaves().len(),
            dt,
            if nranks == 1 { 1.0 } else { speedup }
        );
    }
}
