//! Fleet fault drills (ISSUE 10, DESIGN.md §17).
//!
//! The contract under drill: a supervised multi-process fleet that loses —
//! and recovers — workers at step boundaries reproduces the committed
//! golden digest of an uninterrupted single-process run, bit for bit, and
//! every transition shows up as a typed `FleetEvent`. The drills inject
//! the `worker-kill` / `heartbeat-drop` / `msg-truncate` sites into chosen
//! ranks and the `spawn-fail` site into the supervisor, covering the whole
//! ladder: detect → respawn → replay → migrate.
//!
//! Workers are real child processes of the `rflash` binary (Cargo points
//! us at it via `CARGO_BIN_EXE_rflash`); the supervisor runs in-process so
//! the event trail and counters can be asserted directly.

use std::path::PathBuf;

use rflash::core::registry::load_golden;
use rflash::core::{run_fleet, FleetConfig, FleetEvent, FleetReport, LossCause};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn golden_crc(scenario: &str) -> u32 {
    load_golden(&golden_dir(), scenario)
        .expect("golden record must exist")
        .digest
        .crc
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rflash-fleet-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A smoke-scale fleet config with drill-friendly failure detection:
/// tight heartbeats, a wide coalescing window, checkpoints every step.
fn drill_config(scenario: &str, workers: usize, tag: &str) -> FleetConfig {
    let mut cfg = FleetConfig::new(
        env!("CARGO_BIN_EXE_rflash"),
        scenario,
        3,
        scratch(tag),
    );
    cfg.workers = workers;
    cfg.checkpoint_every = 1;
    cfg.heartbeat_ms = 20;
    cfg.heartbeat_timeout_ms = 400;
    cfg.coalesce_ms = 400;
    cfg.max_wall_ms = 300_000;
    cfg
}

fn run(cfg: FleetConfig) -> FleetReport {
    run_fleet(cfg).expect("fleet run must complete")
}

fn lost_ranks(report: &FleetReport) -> Vec<(usize, LossCause)> {
    report
        .events
        .iter()
        .filter_map(|e| match e {
            FleetEvent::WorkerLost { rank, cause, .. } => Some((*rank, *cause)),
            _ => None,
        })
        .collect()
}

fn count<F: Fn(&FleetEvent) -> bool>(report: &FleetReport, f: F) -> usize {
    report.events.iter().filter(|e| f(e)).count()
}

// ---- clean runs -------------------------------------------------------

#[test]
fn clean_fleet_reproduces_the_golden_digest() {
    for (scenario, workers) in [("sedov", 2), ("sedov", 3), ("supernova", 2)] {
        let report = run(drill_config(scenario, workers, &format!("clean-{scenario}-{workers}")));
        assert_eq!(
            report.digest.crc,
            golden_crc(scenario),
            "{scenario} with {workers} workers diverged from golden"
        );
        assert_eq!(report.workers_final, workers);
        assert_eq!(report.rollbacks, 0);
        assert!(lost_ranks(&report).is_empty());
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, FleetEvent::DigestAgreed { .. })));
    }
}

// ---- single-fault drills: every site, both paper scenarios ------------

#[test]
fn worker_kill_recovers_bit_identically() {
    for scenario in ["sedov", "supernova"] {
        let mut cfg = drill_config(scenario, 2, &format!("kill-{scenario}"));
        cfg.worker_faults = vec![(1, "worker-kill=nth:2".into())];
        let report = run(cfg);
        assert_eq!(report.digest.crc, golden_crc(scenario), "{scenario} diverged");
        assert_eq!(lost_ranks(&report), vec![(1, LossCause::Eof)]);
        assert_eq!(report.counters.respawns, 1);
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.counters.migrations, 0);
    }
}

#[test]
fn heartbeat_drop_is_detected_by_the_probe_ladder_and_recovers() {
    for scenario in ["sedov", "supernova"] {
        let mut cfg = drill_config(scenario, 2, &format!("hb-{scenario}"));
        cfg.worker_faults = vec![(1, "heartbeat-drop=nth:2".into())];
        let report = run(cfg);
        assert_eq!(report.digest.crc, golden_crc(scenario), "{scenario} diverged");
        assert_eq!(lost_ranks(&report), vec![(1, LossCause::HeartbeatTimeout)]);
        assert!(
            count(&report, |e| matches!(e, FleetEvent::HeartbeatMissed { rank: 1 })) >= 1,
            "silence must enter the probe ladder via HeartbeatMissed"
        );
        assert!(report.counters.probes >= 1);
        assert_eq!(report.rollbacks, 1);
    }
}

#[test]
fn msg_truncate_leaves_a_torn_frame_and_recovers() {
    for scenario in ["sedov", "supernova"] {
        let mut cfg = drill_config(scenario, 2, &format!("trunc-{scenario}"));
        cfg.worker_faults = vec![(0, "msg-truncate=nth:2".into())];
        let report = run(cfg);
        assert_eq!(report.digest.crc, golden_crc(scenario), "{scenario} diverged");
        let lost = lost_ranks(&report);
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].0, 0);
        // The cut frame lands either as a mid-frame tear or (when cut at
        // the prelude boundary with exit close behind) a short write the
        // reader sees as a torn stream; both are loss causes the typed
        // event must carry.
        assert!(
            matches!(lost[0].1, LossCause::TornFrame | LossCause::Eof),
            "unexpected cause {:?}",
            lost[0].1
        );
        assert_eq!(report.rollbacks, 1);
    }
}

// ---- recovery replays from the newest *valid* checkpoint --------------

#[test]
fn late_kill_replays_from_a_recorded_checkpoint() {
    // Kill at the third step boundary: checkpoints for steps 1 and 2 are
    // already on disk (rank 1 passes the boundary only after shard 0's
    // CheckpointDone has round-tripped through the supervisor... it has
    // not — workers do not barrier on the checkpoint, so the newest
    // *valid* entry at recovery time may be step 1 or 2. Either way the
    // digest must land on golden; the rollback target must name a real
    // checkpoint when one exists).
    let mut cfg = drill_config("sedov", 2, "latekill");
    cfg.worker_faults = vec![(1, "worker-kill=nth:3".into())];
    let report = run(cfg);
    assert_eq!(report.digest.crc, golden_crc("sedov"));
    assert_eq!(report.rollbacks, 1);
    let rolled: Vec<_> = report
        .events
        .iter()
        .filter_map(|e| match e {
            FleetEvent::RolledBack { to_step, checkpoint, .. } => {
                Some((*to_step, checkpoint.clone()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(rolled.len(), 1);
    let (to_step, ckpt) = &rolled[0];
    assert!(*to_step >= 1, "two committed steps must leave a recovery point");
    assert!(ckpt.is_some(), "rollback target must be named");
}

// ---- satellite: concurrent deaths resolve in rank order ---------------

#[test]
fn concurrent_kills_resolve_in_ascending_rank_order_in_one_round() {
    let mut cfg = drill_config("sedov", 3, "dualkill");
    cfg.worker_faults = vec![
        (1, "worker-kill=nth:2".into()),
        (2, "worker-kill=nth:2".into()),
    ];
    let report = run(cfg);
    assert_eq!(report.digest.crc, golden_crc("sedov"));
    // Both deaths land in the same step window; the coalescing sweep must
    // resolve them as ONE deterministic round: losses reported in
    // ascending Morton-rank order, one fleet-wide rollback.
    assert_eq!(
        lost_ranks(&report),
        vec![(1, LossCause::Eof), (2, LossCause::Eof)],
        "concurrent losses must be reported in ascending rank order"
    );
    assert_eq!(report.rollbacks, 1, "one coalesced round, one rollback");
    assert_eq!(report.counters.respawns, 2);
    assert_eq!(report.workers_final, 3);
}

// ---- migration: respawn denied, shard absorbed by survivors -----------

#[test]
fn spawn_fail_migrates_the_shard_to_survivors() {
    let mut cfg = drill_config("sedov", 2, "migrate");
    cfg.worker_faults = vec![(1, "worker-kill=nth:2".into())];
    // Spawn attempts: rank 0 (1st), rank 1 (2nd), rank 1's respawn (3rd).
    cfg.supervisor_faults = Some("spawn-fail=nth:3".into());
    let report = run(cfg);
    assert_eq!(report.digest.crc, golden_crc("sedov"), "N->N-1 must stay golden");
    assert_eq!(report.workers_final, 1, "fleet must degrade to the survivor");
    assert_eq!(report.counters.migrations, 1);
    assert_eq!(report.counters.spawn_failures, 1);
    let migrated: Vec<_> = report
        .events
        .iter()
        .filter_map(|e| match e {
            FleetEvent::ShardMigrated {
                rank,
                shards_before,
                shards_after,
            } => Some((*rank, *shards_before, *shards_after)),
            _ => None,
        })
        .collect();
    assert_eq!(migrated, vec![(1, 2, 1)], "no silent shrink: migration is typed");
    assert!(
        count(&report, |e| matches!(e, FleetEvent::SpawnFailed { rank: 1, .. })) == 1
    );
}

// ---- the fleet shards empty-shard edge cases cleanly ------------------

#[test]
fn more_workers_than_leaves_still_reproduces_golden() {
    // Supernova smoke has 4 leaves; 6 workers leave two shards empty.
    let report = run(drill_config("supernova", 6, "overshard"));
    assert_eq!(report.digest.crc, golden_crc("supernova"));
    assert_eq!(report.workers_final, 6);
}

// ---- exhausting the ladder is a typed abort, not a hang ---------------

#[test]
fn losing_every_worker_is_a_typed_abort_naming_the_emergency_checkpoint() {
    let mut cfg = drill_config("sedov", 2, "alllost");
    cfg.worker_faults = vec![
        (0, "worker-kill=nth:2".into()),
        (1, "worker-kill=nth:2".into()),
    ];
    cfg.max_respawns = 0; // no budget: first loss retires each rank
    match run_fleet(cfg) {
        Err(rflash::core::FleetError::AllWorkersLost {
            emergency_checkpoint,
            events,
        }) => {
            // Step 1 committed before the boundary kill, so a valid
            // recovery point exists and must be named for the operator.
            assert!(
                emergency_checkpoint.is_some(),
                "emergency checkpoint must be named when one exists"
            );
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, FleetEvent::WorkerLost { .. })),
                "the abort must carry the loss trail"
            );
        }
        other => panic!("expected AllWorkersLost, got {other:?}"),
    }
}
