//! The `unk` memory layout must not change the physics: FLASH's
//! variable-interleaved order (`VarFirst`, the paper's §I.C stride) and the
//! SoA order (`VarLast`) are different *addresses* for the same arithmetic,
//! so a run under each must agree bit-for-bit. This pins down that every
//! kernel goes through the layout-aware indexing and none bakes in a
//! stride.

use rflash::core::setups::sedov::SedovSetup;
use rflash::core::RuntimeParams;
use rflash::hugepages::Policy;
use rflash::mesh::{vars, Layout};

fn run(layout: Layout) -> rflash::core::Simulation {
    let setup = SedovSetup {
        ndim: 2,
        nxb: 8,
        max_refine: 2,
        max_blocks: 256,
        layout,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    let mut sim = setup.build(params);
    sim.evolve(20);
    sim
}

#[test]
fn physics_is_bit_identical_across_unk_layouts() {
    let a = run(Layout::VarFirst);
    let b = run(Layout::VarLast);
    assert_eq!(a.step, b.step);
    assert_eq!(a.time, b.time, "time steps must agree exactly");
    let leaves_a = a.domain.tree.leaves();
    let leaves_b = b.domain.tree.leaves();
    assert_eq!(leaves_a.len(), leaves_b.len(), "same AMR evolution");
    for (ia, ib) in leaves_a.iter().zip(&leaves_b) {
        assert_eq!(
            a.domain.tree.block(*ia).key,
            b.domain.tree.block(*ib).key,
            "same topology"
        );
        for var in [vars::DENS, vars::VELX, vars::PRES, vars::ENER] {
            for j in a.domain.unk.interior() {
                for i in a.domain.unk.interior() {
                    let va = a.domain.unk.get(var, i, j, 0, ia.idx());
                    let vb = b.domain.unk.get(var, i, j, 0, ib.idx());
                    assert_eq!(
                        va, vb,
                        "layout changed physics: var {var} at ({i},{j}) of {:?}",
                        a.domain.tree.block(*ia).key
                    );
                }
            }
        }
    }
}
