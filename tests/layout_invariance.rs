//! The `unk` memory layout must not change the physics: FLASH's
//! variable-interleaved order (`VarFirst`, the paper's §I.C stride) and the
//! SoA order (`VarLast`) are different *addresses* for the same arithmetic,
//! so a run under each must agree bit-for-bit. This pins down that every
//! kernel goes through the layout-aware indexing and none bakes in a
//! stride. The same contract holds one level down: the pencil-batched SoA
//! sweep engine is a different *schedule* for the same arithmetic as the
//! scalar per-zone engine, so full runs under each must also agree
//! bit-for-bit.

use rflash::core::setups::sedov::SedovSetup;
use rflash::core::RuntimeParams;
use rflash::hugepages::Policy;
use rflash::hydro::SweepEngine;
use rflash::mesh::{vars, Layout};

/// Bitwise comparison of two evolved simulations: same AMR topology, same
/// interior state in every compared variable.
fn assert_runs_identical(a: &rflash::core::Simulation, b: &rflash::core::Simulation, what: &str) {
    assert_eq!(a.step, b.step);
    assert_eq!(a.time, b.time, "{what}: time steps must agree exactly");
    let leaves_a = a.domain.tree.leaves();
    let leaves_b = b.domain.tree.leaves();
    assert_eq!(leaves_a.len(), leaves_b.len(), "{what}: same AMR evolution");
    for (ia, ib) in leaves_a.iter().zip(&leaves_b) {
        assert_eq!(
            a.domain.tree.block(*ia).key,
            b.domain.tree.block(*ib).key,
            "{what}: same topology"
        );
        for var in [vars::DENS, vars::VELX, vars::PRES, vars::ENER] {
            for k in a.domain.unk.interior_k() {
                for j in a.domain.unk.interior() {
                    for i in a.domain.unk.interior() {
                        let va = a.domain.unk.get(var, i, j, k, ia.idx());
                        let vb = b.domain.unk.get(var, i, j, k, ib.idx());
                        assert_eq!(
                            va, vb,
                            "{what}: var {var} differs at ({i},{j},{k}) of {:?}",
                            a.domain.tree.block(*ia).key
                        );
                    }
                }
            }
        }
    }
}

fn run(layout: Layout) -> rflash::core::Simulation {
    let setup = SedovSetup {
        ndim: 2,
        nxb: 8,
        max_refine: 2,
        max_blocks: 256,
        layout,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    let mut sim = setup.build(params);
    sim.evolve(20);
    sim
}

#[test]
fn physics_is_bit_identical_across_unk_layouts() {
    let a = run(Layout::VarFirst);
    let b = run(Layout::VarLast);
    assert_runs_identical(&a, &b, "layout");
}

/// The pencil-batched SoA engine replicates the scalar engine's exact
/// floating-point operation order, so a full 3-d Sedov run — sweeps,
/// flux corrections, regrids, instrumented EOS passes — must agree
/// bit-for-bit between the two.
#[test]
fn pencil_engine_is_bit_identical_to_scalar_on_sedov_3d() {
    let run_engine = |engine: SweepEngine| {
        let setup = SedovSetup {
            ndim: 3,
            nxb: 8,
            max_refine: 2,
            max_blocks: 256,
            ..SedovSetup::default()
        };
        let params = RuntimeParams {
            policy: Policy::None,
            use_hw: false,
            pattern_every: 0,
            gather_every: 0,
            sweep_engine: engine,
            ..RuntimeParams::with_mesh(setup.mesh_config())
        };
        let mut sim = setup.build(params);
        sim.evolve(8);
        sim
    };
    let scalar = run_engine(SweepEngine::Scalar);
    let pencil = run_engine(SweepEngine::Pencil);
    assert_runs_identical(&scalar, &pencil, "sweep engine");
}
