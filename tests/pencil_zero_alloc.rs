//! Steady-state sweeps must be allocation-free: the pencil engine's SoA
//! scratch comes from a per-rank `HugeArena` sized on the first epoch and
//! recycled (rewound, never re-mapped) on every later one. A rebuild would
//! re-enter the huge-page degradation chain, whose every attempt/fallback
//! is counted process-wide by `AllocStats` — so the assertion is simply a
//! zero counter delta after the first epoch.
//!
//! This lives in its own integration-test binary on purpose: the counters
//! are process-wide, and unrelated tests allocating regions in parallel
//! threads would make the delta meaningless.

use rflash::core::setups::sedov::SedovSetup;
use rflash::core::RuntimeParams;
use rflash::hugepages::{PageSize, Policy};
use rflash::hydro::{compute_dt_parallel, sweep_direction, SweepConfig, SweepEngine, SweepEos, NFLUX};
use rflash::mesh::flux::FluxRegister;
use rflash::perfmon::AllocSummary;

#[test]
fn steady_state_sweeps_allocate_nothing_after_first_epoch() {
    let setup = SedovSetup {
        ndim: 3,
        nxb: 8,
        max_refine: 1,
        max_blocks: 256,
        ..SedovSetup::default()
    };
    // Request hugetlbfs scratch: every arena (re)build walks the
    // degradation chain and bumps at least `hugetlb_attempts`, so a
    // rebuild in the steady state cannot hide from the delta below —
    // whatever backing the host actually grants.
    let mut sim = setup.build(RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        sweep_engine: SweepEngine::Pencil,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    });
    let ndim = sim.domain.tree.config().ndim;
    let cfg = SweepConfig {
        engine: SweepEngine::Pencil,
        scratch_policy: Policy::HugeTlbFs(PageSize::Huge2M),
        pattern_every: 0,
        ..SweepConfig::default()
    };
    let mut reg = FluxRegister::new(
        ndim,
        sim.domain.tree.config().nxb,
        NFLUX,
        sim.domain.tree.config().max_blocks,
    );

    // First epoch: arenas are built (counters may move — that's the cost
    // we amortize, not the one we forbid).
    let dt = compute_dt_parallel(&mut sim.domain, 0.3, 1);
    let mut zones_first = 0u64;
    for dir in 0..ndim {
        for p in sweep_direction(&mut sim.domain, &SweepEos::Defer, dir, dt, &mut reg, &cfg) {
            zones_first += p.stats.zones;
        }
    }
    assert!(zones_first > 0, "pencil engine swept the grid");

    // Steady state: several more epochs must not touch the allocator.
    let baseline = AllocSummary::capture();
    for _ in 0..4 {
        let dt = compute_dt_parallel(&mut sim.domain, 0.3, 1);
        for dir in 0..ndim {
            for p in sweep_direction(&mut sim.domain, &SweepEos::Defer, dir, dt, &mut reg, &cfg) {
                let _ = p;
            }
        }
    }
    let delta = AllocSummary::since(&baseline).stats;
    assert_eq!(
        delta,
        Default::default(),
        "steady-state sweeps re-entered the allocation chain: {delta:?}"
    );
}
