//! Smoke versions of the paper's experiments E1–E3: the harness must
//! produce coherent tables whose DTLB column moves the right way.

use rflash_bench::{
    default_policies, figure1_text, run_eos_experiment, run_hydro_experiment, RunScale,
};
use rflash_core::setups::supernova::SupernovaSetup;
use rflash_core::RuntimeParams;
use rflash_hugepages::Policy;
use rflash_hydro::SweepEngine;
use rflash_mesh::vars;

#[test]
fn table1_and_table2_smoke_produce_coherent_reports() {
    let scale = RunScale::smoke();
    let eos = run_eos_experiment(&default_policies(), scale);
    let hydro = run_hydro_experiment(&default_policies(), scale);

    for exp in [&eos, &hydro] {
        assert_eq!(exp.runs.len(), 3, "{}: all three policies ran", exp.name);
        for run in &exp.runs {
            assert!(run.measures.time_s > 0.0, "{}: timed region", run.policy);
            assert!(run.leaf_blocks > 0);
            if run.policy == "none" {
                assert!(!run.unk_verified_huge, "base policy can't be huge");
            }
        }
        let report = exp.ratio_report().expect("report");
        // With-HP modeled misses never exceed without-HP (monotonicity of
        // huge frames; equality allowed when nothing verified huge).
        assert!(
            report.with_hp.dtlb_misses <= report.without_hp.dtlb_misses,
            "{}: {} vs {}",
            exp.name,
            report.with_hp.dtlb_misses,
            report.without_hp.dtlb_misses
        );
    }

    // Figure 1 text renders with both experiments.
    let fig = figure1_text(
        &eos.ratio_report().unwrap(),
        &hydro.ratio_report().unwrap(),
    );
    assert!(fig.contains("DTLB"));
    assert!(fig.contains("EOS"));
}

#[test]
fn dtlb_ratio_shrinks_when_huge_pages_verify() {
    // Only meaningful when the host can actually grant huge pages
    // (hugetlbfs pool or THP); skip silently otherwise — the honest-
    // fallback path is covered above. Needs a mesh a bit beyond smoke
    // scale so the working set actually pressures the base-page TLB.
    let scale = RunScale {
        steps: 2,
        max_refine: 2,
        max_blocks: 512,
        coarse_table: true,
    };
    let exp = run_eos_experiment(&default_policies(), scale);
    let any_huge = exp.runs.iter().any(|r| r.unk_verified_huge);
    if !any_huge {
        eprintln!("host grants no huge pages; skipping ratio assertion");
        return;
    }
    let report = exp.ratio_report().unwrap();
    assert!(
        report.dtlb_ratio() < 0.9,
        "verified huge pages must reduce modeled DTLB misses: ratio {}",
        report.dtlb_ratio()
    );
}

/// The paper's EOS-dominated case with the two sweep engines: a 2-d
/// supernova (Helmholtz, coarse table) evolved under the scalar and the
/// pencil-batched SoA engines must agree bit-for-bit — the batched
/// Helmholtz path included, since every driver EOS pass runs through
/// `eos_batch`.
#[test]
fn pencil_engine_is_bit_identical_to_scalar_on_supernova_2d() {
    let run_engine = |engine: SweepEngine| {
        let setup = SupernovaSetup {
            max_refine: 1,
            max_blocks: 256,
            coarse_table: true,
            ..SupernovaSetup::default()
        };
        let mut sim = setup.build(RuntimeParams {
            policy: Policy::None,
            use_hw: false,
            pattern_every: 0,
            gather_every: 0,
            sweep_engine: engine,
            ..RuntimeParams::with_mesh(setup.mesh_config())
        });
        sim.evolve(4);
        sim
    };
    let a = run_engine(SweepEngine::Scalar);
    let b = run_engine(SweepEngine::Pencil);
    assert_eq!(a.time, b.time, "time steps must agree exactly");
    let leaves_a = a.domain.tree.leaves();
    let leaves_b = b.domain.tree.leaves();
    assert_eq!(leaves_a.len(), leaves_b.len(), "same AMR evolution");
    for (ia, ib) in leaves_a.iter().zip(&leaves_b) {
        for var in [vars::DENS, vars::VELX, vars::PRES, vars::TEMP, vars::ENER] {
            for j in a.domain.unk.interior() {
                for i in a.domain.unk.interior() {
                    let va = a.domain.unk.get(var, i, j, 0, ia.idx());
                    let vb = b.domain.unk.get(var, i, j, 0, ib.idx());
                    assert_eq!(va, vb, "engine changed physics: var {var} at ({i},{j})");
                }
            }
        }
    }
}

#[test]
fn experiment_json_schema_is_stable() {
    let exp = run_eos_experiment(&default_policies()[..1], RunScale::smoke());
    let json = serde_json::to_value(&exp).unwrap();
    for key in ["name", "scale", "runs"] {
        assert!(json.get(key).is_some(), "missing {key}");
    }
    let run = &json["runs"][0];
    for key in [
        "policy",
        "measures",
        "unk_backing",
        "unk_verified_huge",
        "leaf_blocks",
        "unk_bytes",
    ] {
        assert!(run.get(key).is_some(), "missing runs[0].{key}");
    }
    for key in [
        "cycles",
        "time_s",
        "vec_ops_per_cycle",
        "mem_gb_per_s",
        "dtlb_miss_per_s",
        "total_time_s",
    ] {
        assert!(run["measures"].get(key).is_some(), "missing measure {key}");
    }
}
