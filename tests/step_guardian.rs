//! Step-guardian integration battery: clean-path parity, transient-fault
//! recovery (bit-exact and deterministic), typed aborts with emergency
//! checkpoints, retention interleaving, and resume-after-abort.
//!
//! Faults are injected through thread-local `FaultPlan`s, never the
//! environment, so every test owns its per-site call counters. The
//! state-corruption sites are consulted once per `advance_physics` call
//! (`step-nan`, `flux-corrupt`) and once per dt computation (`dt-zero`),
//! so `Nth { n }` addresses "the n-th step attempt" exactly.

use std::path::PathBuf;

use rflash::core::checkpoint::read_checkpoint;
use rflash::core::setups::sedov::SedovSetup;
use rflash::core::{
    CheckpointSeries, Composition, EosChoice, GuardianConfig, RuntimeParams, Simulation, StepError,
};
use rflash::eos::GammaLaw;
use rflash::hugepages::{FaultKind, FaultPlan, FaultSite, Policy};

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rflash-guardian-it-{}-{name}", std::process::id()))
}

fn sedov_sim(retries: u32, checkpoint_every: u64) -> (Simulation, f64) {
    let setup = SedovSetup {
        ndim: 2,
        nxb: 8,
        max_refine: 2,
        max_blocks: 256,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        checkpoint_every,
        guardian: GuardianConfig {
            max_retries: retries,
            ..GuardianConfig::default()
        },
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    (setup.build(params), setup.gamma)
}

/// Bit pattern of every interior zone of every variable, leaves in Morton
/// order — the "identical state" witness.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for id in sim.domain.tree.leaves() {
        for v in 0..sim.domain.unk.nvar() {
            for k in sim.domain.unk.interior_k() {
                for j in sim.domain.unk.interior() {
                    for i in sim.domain.unk.interior() {
                        bits.push(sim.domain.unk.get(v, i, j, k, id.idx()).to_bits());
                    }
                }
            }
        }
    }
    bits
}

#[test]
fn clean_path_is_bit_identical_with_guardian_on() {
    let _quiet = FaultPlan::new(0).activate();
    let (mut on, _) = sedov_sim(2, 0);
    on.evolve(6);
    assert_eq!(on.guardian_stats.validations, 6, "one scan per step");
    assert_eq!(on.guardian_stats.rollbacks, 0);
    assert!(on.guardian_stats.clean(), "no interventions on a clean run");

    let (mut off, _) = sedov_sim(2, 0);
    off.params.guardian.enabled = false;
    off.evolve(6);
    assert_eq!(off.guardian_stats.validations, 0);

    assert_eq!(
        state_bits(&on),
        state_bits(&off),
        "validation and shadow capture must not perturb the evolution"
    );
}

#[test]
fn bad_dt_is_a_typed_error_even_without_the_guardian() {
    let (mut sim, _) = sedov_sim(0, 0);
    sim.params.guardian.enabled = false;
    let _g = FaultPlan::new(0)
        .with(FaultSite::DtZero, FaultKind::Always { errno: 22 })
        .activate();
    match sim.try_step() {
        Err(StepError::BadDt { step, dt, .. }) => {
            assert_eq!(step, 0);
            assert_eq!(dt, 0.0);
        }
        Err(other) => panic!("expected BadDt, got {other}"),
        Ok(_) => panic!("a zero dt must not evolve anything"),
    }
    assert_eq!(sim.step, 0, "nothing was committed");
    assert_eq!(sim.time, 0.0);
}

#[test]
fn transient_flux_corruption_recovers_bit_exactly_and_deterministically() {
    let run = || {
        let _g = FaultPlan::new(0)
            .with(FaultSite::FluxCorrupt, FaultKind::FirstN { n: 1, errno: 22 })
            .activate();
        let (mut sim, _) = sedov_sim(2, 0);
        for n in 0..5 {
            sim.try_step()
                .unwrap_or_else(|e| panic!("step {n} must recover: {e}"));
        }
        sim
    };
    let a = run();
    assert!(a.guardian_stats.violations >= 1);
    assert!(a.guardian_stats.rollbacks >= 1);
    assert!(a.guardian_stats.retries >= 1);
    assert_eq!(
        a.guardian_stats.dt_halvings, 0,
        "a transient fault is retried at the same dt"
    );

    // Same seed, same plan: identical interventions and identical bits.
    let b = run();
    assert_eq!(a.guardian_stats, b.guardian_stats, "recovery is replayable");
    assert_eq!(state_bits(&a), state_bits(&b));

    // And identical to a run that never saw the fault.
    let _quiet = FaultPlan::new(0).activate();
    let (mut clean, _) = sedov_sim(2, 0);
    clean.evolve(5);
    assert_eq!(
        state_bits(&a),
        state_bits(&clean),
        "same-dt retry makes recovery exact, not merely plausible"
    );
}

#[test]
fn step_nan_recovery_matches_the_fault_free_run() {
    let (mut sim, _) = sedov_sim(2, 0);
    {
        let _g = FaultPlan::new(0)
            .with(FaultSite::StepNan, FaultKind::FirstN { n: 1, errno: 22 })
            .activate();
        for _ in 0..4 {
            sim.try_step().expect("must recover");
        }
    }
    assert!(sim.guardian_stats.rollbacks >= 1);

    let _quiet = FaultPlan::new(0).activate();
    let (mut clean, _) = sedov_sim(2, 0);
    clean.evolve(4);
    assert_eq!(state_bits(&sim), state_bits(&clean));
}

#[test]
fn transient_zero_dt_retries_without_a_rollback() {
    let (mut sim, _) = sedov_sim(2, 0);
    {
        let _g = FaultPlan::new(0)
            .with(FaultSite::DtZero, FaultKind::FirstN { n: 1, errno: 22 })
            .activate();
        for _ in 0..3 {
            sim.try_step().expect("must recover");
        }
    }
    assert_eq!(sim.guardian_stats.bad_dts, 1);
    assert!(sim.guardian_stats.retries >= 1);
    assert_eq!(
        sim.guardian_stats.rollbacks, 0,
        "a bad dt leaves the state untouched — no rollback needed"
    );

    let _quiet = FaultPlan::new(0).activate();
    let (mut clean, _) = sedov_sim(2, 0);
    clean.evolve(3);
    assert_eq!(state_bits(&sim), state_bits(&clean));
}

#[test]
fn budget_zero_abort_checkpoints_the_rolled_back_state() {
    let dir = scratch("abort");
    let _ = std::fs::remove_dir_all(&dir);
    let (mut sim, _) = sedov_sim(0, 0);
    sim.emergency_series = Some(CheckpointSeries::new(&dir, "emergency"));

    let _g = FaultPlan::new(0)
        .with(FaultSite::StepNan, FaultKind::Nth { n: 2, errno: 22 })
        .activate();
    sim.try_step().expect("step 1 is clean");
    let err = sim.try_step().expect_err("step 2 is corrupted, budget 0");
    let StepError::Unphysical {
        step,
        attempts,
        emergency_checkpoint,
        ..
    } = err
    else {
        panic!("expected Unphysical, got {err}");
    };
    assert_eq!(step, 1, "the failing step started from committed step 1");
    assert_eq!(attempts, 1);
    assert_eq!(sim.step, 1, "the failed step was never committed");
    assert_eq!(sim.guardian_stats.aborts, 1);
    assert_eq!(sim.guardian_stats.emergency_checkpoints, 1);

    // The checkpoint is readable and captures exactly the rolled-back
    // in-memory state.
    let path = emergency_checkpoint.expect("abort after rollback carries a checkpoint");
    let state = read_checkpoint(&path).expect("emergency checkpoint must verify");
    assert_eq!(state.step, 1);
    let mut ckpt_bits = Vec::new();
    for id in state.domain.tree.leaves() {
        for v in 0..state.domain.unk.nvar() {
            for k in state.domain.unk.interior_k() {
                for j in state.domain.unk.interior() {
                    for i in state.domain.unk.interior() {
                        ckpt_bits.push(state.domain.unk.get(v, i, j, k, id.idx()).to_bits());
                    }
                }
            }
        }
    }
    assert_eq!(ckpt_bits, state_bits(&sim));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn emergency_checkpoint_interleaves_with_scheduled_and_wins_recovery() {
    let dir = scratch("interleave");
    let _ = std::fs::remove_dir_all(&dir);
    let series = CheckpointSeries::new(&dir, "chk");
    let (mut sim, _) = sedov_sim(0, 2);

    // Steps 1–3 commit (scheduled checkpoint at step 2); the 4th
    // advance is corrupted and the budget is 0, so the guardian rolls
    // back and writes an emergency checkpoint of step 3 into the series.
    let _g = FaultPlan::new(0)
        .with(FaultSite::StepNan, FaultKind::Nth { n: 4, errno: 22 })
        .activate();
    let err = sim
        .evolve_checkpointed(6, &series)
        .expect_err("the corrupted step must abort");
    assert!(matches!(err, StepError::Unphysical { .. }));

    let steps: Vec<u64> = series.scan().unwrap().iter().map(|(s, _)| *s).collect();
    assert_eq!(
        steps,
        vec![2, 3],
        "scheduled (step 2) and emergency (step 3) checkpoints share the series"
    );
    let (state, skipped) = series.recover_latest().unwrap();
    assert!(skipped.is_empty());
    assert_eq!(
        state.step, 3,
        "newest-first recovery picks the emergency checkpoint"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_after_guardian_abort_matches_the_in_place_recovery() {
    // Reference: enough retry budget to absorb the fault in place.
    let bits_recovered = {
        let _g = FaultPlan::new(0)
            .with(FaultSite::StepNan, FaultKind::Nth { n: 4, errno: 22 })
            .activate();
        let (mut sim, _) = sedov_sim(2, 0);
        for _ in 0..6 {
            sim.try_step().expect("budget 2 must recover");
        }
        assert!(sim.guardian_stats.rollbacks >= 1);
        state_bits(&sim)
    };

    // Same fault, no budget: abort at step 4, emergency checkpoint of
    // step 3 lands in the series.
    let dir = scratch("resume");
    let _ = std::fs::remove_dir_all(&dir);
    let series = CheckpointSeries::new(&dir, "chk");
    let gamma = {
        let _g = FaultPlan::new(0)
            .with(FaultSite::StepNan, FaultKind::Nth { n: 4, errno: 22 })
            .activate();
        let (mut sim, gamma) = sedov_sim(0, 2);
        sim.evolve_checkpointed(6, &series)
            .expect_err("budget 0 must abort");
        gamma
    };

    // Recover from the series (the transient fault is gone after the
    // "operator restart") and finish the run.
    let _quiet = FaultPlan::new(0).activate();
    let (mut resumed, skipped) = Simulation::recover(
        &series,
        EosChoice::Gamma(GammaLaw::new(gamma)),
        Composition::ideal(),
    )
    .unwrap();
    assert!(skipped.is_empty());
    assert_eq!(resumed.step, 3, "recovery starts at the emergency checkpoint");
    for _ in 0..3 {
        resumed.try_step().expect("resume is fault-free");
    }
    assert_eq!(resumed.step, 6);
    assert_eq!(
        state_bits(&resumed),
        bits_recovered,
        "abort + restart reaches the same bits as in-place recovery"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
