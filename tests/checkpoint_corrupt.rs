//! Golden corpus of corrupt checkpoint files.
//!
//! Every damaged artifact a crash or bit-rot can produce must surface as a
//! *typed* [`CheckpointError`] — never a panic, never a silently wrong
//! restore. The corpus is generated from one good file so it always tracks
//! the current container format.

use std::path::PathBuf;

use rflash::core::checkpoint::{
    read_checkpoint, verify_checkpoint, CheckpointError, CHECKPOINT_FORMAT,
};
use rflash::core::RuntimeParams;
use rflash::hugepages::Policy;
use rflash::mesh::{Domain, MeshConfig};

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rflash-ckpt-corpus-{}-{name}", std::process::id()))
}

/// A small good checkpoint to corrupt, plus its raw bytes and header span.
fn golden() -> (Vec<u8>, usize) {
    let cfg = MeshConfig::test_2d();
    let mut domain = Domain::new(cfg, Policy::None);
    let root = domain.tree.leaves()[0];
    domain.tree.refine_block(root, &mut domain.unk);
    for id in domain.tree.leaves() {
        for (i, v) in domain.unk.block_slab_mut(id.idx()).iter_mut().enumerate() {
            *v = i as f64 * 0.5;
        }
    }
    let params = RuntimeParams {
        use_hw: false,
        ..RuntimeParams::with_mesh(cfg)
    };
    let path = scratch("golden");
    rflash::core::checkpoint::write_checkpoint(&path, &domain, &params, 1.0, 4, 0.0).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let header_len = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    (bytes, header_len)
}

fn read_bytes(name: &str, bytes: &[u8]) -> Result<(), CheckpointError> {
    let path = scratch(name);
    std::fs::write(&path, bytes).unwrap();
    let out = read_checkpoint(&path).map(|_| ());
    std::fs::remove_file(&path).unwrap();
    out
}

#[test]
fn golden_file_itself_restores() {
    let (bytes, _) = golden();
    read_bytes("good", &bytes).expect("the uncorrupted golden file must restore");
}

#[test]
fn empty_and_tiny_files_are_truncation_errors() {
    for (name, bytes) in [
        ("empty", &b""[..]),
        ("three-bytes", &b"\x01\x02\x03"[..]),
        ("just-length", &42u64.to_le_bytes()[..]),
    ] {
        match read_bytes(name, bytes) {
            Err(CheckpointError::Truncated { .. }) => {}
            Err(other) => panic!("{name}: expected Truncated, got {other}"),
            Ok(()) => panic!("{name}: expected Truncated, got Ok"),
        }
    }
}

#[test]
fn truncated_header_is_typed() {
    let (bytes, header_len) = golden();
    // Cut inside the header JSON.
    match read_bytes("trunc-header", &bytes[..8 + header_len / 2]) {
        Err(CheckpointError::Truncated { what }) => assert!(what.contains("header"), "{what}"),
        Err(other) => panic!("expected Truncated, got {other}"),
        Ok(()) => panic!("expected Truncated, got Ok"),
    }
}

#[test]
fn truncated_slab_is_typed() {
    let (bytes, _) = golden();
    // Cut inside the last slab: the declared-payload-vs-file-size bound
    // catches the tear before any slab read trusts the declared sizes.
    match read_bytes("trunc-slab", &bytes[..bytes.len() - 17]) {
        Err(CheckpointError::PayloadBeyondEof { declared, actual }) => {
            assert_eq!(declared as usize, bytes.len());
            assert_eq!(actual as usize, bytes.len() - 17);
        }
        Err(other) => panic!("expected PayloadBeyondEof, got {other}"),
        Ok(()) => panic!("expected PayloadBeyondEof, got Ok"),
    }
}

#[test]
fn corrupt_header_bytes_fail_the_header_crc() {
    let (mut bytes, header_len) = golden();
    // Flip one byte inside the JSON (keep it printable to be sneaky).
    bytes[8 + header_len / 2] ^= 0x01;
    match read_bytes("bad-header-crc", &bytes) {
        Err(CheckpointError::HeaderCrc { stored, computed }) => assert_ne!(stored, computed),
        Err(other) => panic!("expected HeaderCrc, got {other}"),
        Ok(()) => panic!("expected HeaderCrc, got Ok"),
    }
}

#[test]
fn corrupt_slab_bytes_fail_that_slab_crc() {
    let (mut bytes, _) = golden();
    let n = bytes.len();
    bytes[n - 9] ^= 0x80;
    match read_bytes("bad-slab-crc", &bytes) {
        Err(CheckpointError::SlabCrc { index, .. }) => {
            assert!(index > 0, "the flipped byte sits in a later slab")
        }
        Err(other) => panic!("expected SlabCrc, got {other}"),
        Ok(()) => panic!("expected SlabCrc, got Ok"),
    }
}

/// Pull `per_block` (doubles per slab) out of the golden header JSON.
fn golden_per_block(bytes: &[u8], header_len: usize) -> usize {
    let header: serde_json::Value = serde_json::from_slice(&bytes[8..8 + header_len]).unwrap();
    let serde_json::Value::Object(fields) = header else {
        panic!("header must be a JSON object");
    };
    let (_, per_block) = fields.iter().find(|(k, _)| k == "per_block").unwrap();
    let serde_json::Value::U64(per_block) = per_block else {
        panic!("per_block must be an integer");
    };
    *per_block as usize
}

#[test]
fn torn_write_at_a_slab_boundary_is_payload_beyond_eof() {
    // A crash can tear the write at *exactly* a slab boundary: every byte
    // on disk is internally consistent (the header parses, every present
    // slab passes its CRC) and only the declared-payload-vs-file-size
    // bound can tell the file is short. Both the full restore path and the
    // cheap `verify_checkpoint` scan the fleet supervisor uses to pick a
    // rollback target must reject it — typed, never a panic.
    let (bytes, header_len) = golden();
    let per_slab = golden_per_block(&bytes, header_len) * 8;
    let payload_start = 8 + header_len + 4;
    let nslabs = (bytes.len() - payload_start) / per_slab;
    assert!(nslabs >= 2, "the golden file must hold at least two slabs");
    for keep in 0..nslabs {
        let cut = payload_start + keep * per_slab;
        let name = format!("torn-at-slab-{keep}");
        match read_bytes(&name, &bytes[..cut]) {
            Err(CheckpointError::PayloadBeyondEof { declared, actual }) => {
                assert_eq!(declared as usize, bytes.len());
                assert_eq!(actual as usize, cut);
            }
            Err(other) => panic!("{name}: expected PayloadBeyondEof, got {other}"),
            Ok(()) => panic!("{name}: expected PayloadBeyondEof, got Ok"),
        }
        // verify_checkpoint must agree — it is the rollback-target gate.
        let path = scratch(&name);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match verify_checkpoint(&path) {
            Err(CheckpointError::PayloadBeyondEof { .. }) => {}
            other => panic!("{name}: verify must reject the torn file, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn header_declaring_phantom_slabs_is_payload_beyond_eof() {
    // The dual corruption: the file is whole, but the header claims more
    // payload than the file holds (a torn rewrite that preserved a longer
    // header, or bit-rot in the leaf list). Caught by the same bound,
    // before any slab allocation trusts the declared sizes.
    let bytes = with_doctored_header(|fields| {
        let slot = fields.iter_mut().find(|(k, _)| k == "leaves").unwrap();
        let serde_json::Value::Array(ref mut leaves) = slot.1 else {
            panic!("leaves must be an array");
        };
        let last = leaves.last().unwrap().clone();
        leaves.push(last);
        let slot = fields.iter_mut().find(|(k, _)| k == "slab_crcs").unwrap();
        let serde_json::Value::Array(ref mut crcs) = slot.1 else {
            panic!("slab_crcs must be an array");
        };
        let last = crcs.last().unwrap().clone();
        crcs.push(last);
    });
    match read_bytes("phantom-slab", &bytes) {
        Err(CheckpointError::PayloadBeyondEof { declared, actual }) => {
            assert!(declared > actual, "declared {declared} vs actual {actual}")
        }
        Err(other) => panic!("expected PayloadBeyondEof, got {other}"),
        Ok(()) => panic!("expected PayloadBeyondEof, got Ok"),
    }
}

/// Re-serialize the golden header with one JSON field doctored, fixing up
/// the length prefix and header CRC so only the *semantic* corruption
/// remains.
fn with_doctored_header(doctor: impl Fn(&mut Vec<(String, serde_json::Value)>)) -> Vec<u8> {
    let (bytes, header_len) = golden();
    let mut header: serde_json::Value =
        serde_json::from_slice(&bytes[8..8 + header_len]).unwrap();
    let serde_json::Value::Object(ref mut fields) = header else {
        panic!("header must be a JSON object");
    };
    doctor(fields);
    let new_json = serde_json::to_string(&header).unwrap();
    let mut out = Vec::new();
    out.extend_from_slice(&(new_json.len() as u64).to_le_bytes());
    out.extend_from_slice(new_json.as_bytes());
    out.extend_from_slice(&rflash::core::crc32::crc32(new_json.as_bytes()).to_le_bytes());
    out.extend_from_slice(&bytes[8 + header_len + 4..]);
    out
}

#[test]
fn wrong_per_block_is_a_size_mismatch() {
    // A *small* per_block keeps the declared payload inside the file (the
    // EOF bound stays quiet) so the mesh-geometry check must catch it.
    let bytes = with_doctored_header(|fields| {
        let slot = fields.iter_mut().find(|(k, _)| k == "per_block").unwrap();
        slot.1 = serde_json::Value::U64(16);
    });
    match read_bytes("wrong-per-block", &bytes) {
        Err(CheckpointError::SlabSizeMismatch { file, .. }) => assert_eq!(file, 16),
        Err(other) => panic!("expected SlabSizeMismatch, got {other}"),
        Ok(()) => panic!("expected SlabSizeMismatch, got Ok"),
    }

    // An *oversized* per_block pushes the declared payload past EOF and
    // must be caught by the size bound before any allocation trusts it.
    let bytes = with_doctored_header(|fields| {
        let slot = fields.iter_mut().find(|(k, _)| k == "per_block").unwrap();
        slot.1 = serde_json::Value::U64(12345);
    });
    match read_bytes("huge-per-block", &bytes) {
        Err(CheckpointError::PayloadBeyondEof { declared, actual }) => {
            assert!(declared > actual)
        }
        Err(other) => panic!("expected PayloadBeyondEof, got {other}"),
        Ok(()) => panic!("expected PayloadBeyondEof, got Ok"),
    }
}

#[test]
fn stale_format_magic_is_unsupported() {
    let bytes = with_doctored_header(|fields| {
        let slot = fields.iter_mut().find(|(k, _)| k == "format").unwrap();
        slot.1 = serde_json::Value::Str("rflash-checkpoint-v1".into());
    });
    match read_bytes("stale-format", &bytes) {
        Err(CheckpointError::UnsupportedFormat { found }) => {
            assert_eq!(found, "rflash-checkpoint-v1");
            assert_ne!(found, CHECKPOINT_FORMAT);
        }
        Err(other) => panic!("expected UnsupportedFormat, got {other}"),
        Ok(()) => panic!("expected UnsupportedFormat, got Ok"),
    }
}

#[test]
fn mismatched_slab_crc_count_is_a_format_error() {
    let bytes = with_doctored_header(|fields| {
        let slot = fields.iter_mut().find(|(k, _)| k == "slab_crcs").unwrap();
        let serde_json::Value::Array(ref mut crcs) = slot.1 else {
            panic!("slab_crcs must be an array");
        };
        crcs.pop();
    });
    match read_bytes("crc-count", &bytes) {
        Err(CheckpointError::Format(m)) => assert!(m.contains("slab CRCs"), "{m}"),
        Err(other) => panic!("expected Format, got {other}"),
        Ok(()) => panic!("expected Format, got Ok"),
    }
}

#[test]
fn absurd_header_length_is_rejected_without_allocation() {
    let mut bytes = vec![0u8; 64];
    bytes[..8].copy_from_slice(&(u64::MAX).to_le_bytes());
    match read_bytes("absurd-length", &bytes) {
        Err(CheckpointError::Format(m)) => assert!(m.contains("header length"), "{m}"),
        Err(other) => panic!("expected Format, got {other}"),
        Ok(()) => panic!("expected Format, got Ok"),
    }
}

#[test]
fn seeded_random_mutations_never_panic() {
    // Fuzz-lite: flip random bytes across the whole container; any result
    // is acceptable except a panic or a silent wrong restore of the header
    // fields we check.
    let (golden_bytes, _) = golden();
    let mut state = 0x5EEDu64;
    let mut rng = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for round in 0..32 {
        let mut bytes = golden_bytes.clone();
        for _ in 0..1 + rng() % 8 {
            let pos = (rng() % bytes.len() as u64) as usize;
            bytes[pos] ^= (rng() % 255 + 1) as u8;
        }
        // Typed error or a restore that passed every CRC — both fine.
        let _ = read_bytes(&format!("fuzz-{round}"), &bytes);
    }
}
