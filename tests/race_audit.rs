//! Race-audit battery: declared-vs-actual access auditing under adversarial
//! schedules, plus the declaration-mutation gate.
//!
//! Three claims, each a test:
//!
//! 1. **Clean plans pass.** A refined Sedov run — guardian fused, fault
//!    injection armed, rollbacks exercised — completes under both the
//!    canonical pool schedule and seeded adversarial schedules without the
//!    audit firing. Every access the tasks make is declared.
//! 2. **Adversarial schedules are bit-identical.** Any edge-consistent
//!    topological order must produce the same state bits as the canonical
//!    pool execution; determinism rests on the declared edges alone.
//! 3. **Every dropped declaration is caught.** For each of the
//!    `mutation::NSITES` declaration sites in `build_plan`, masking that one
//!    site and stepping must panic with a `race-audit:` diagnosis. This is
//!    the 100%-detection gate: if a new access pattern sneaks in without a
//!    declaration, the audit — not a downstream symptom — names it.
//!
//! The whole battery is compiled-in only under `debug_assertions` or the
//! `race-audit` feature; in a plain release build it reduces to no-ops.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rflash::core::setups::sedov::SedovSetup;
use rflash::core::stepgraph::mutation;
use rflash::core::{RuntimeParams, Simulation, StepScheduler};
use rflash::hugepages::{FaultKind, FaultPlan, FaultSite, Policy};
use rflash::mesh::audit;

/// Bit pattern of every interior zone of every variable, leaves in Morton
/// order, prefixed by the step counter and the time bits.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = vec![sim.step, sim.time.to_bits()];
    for id in sim.domain.tree.leaves() {
        for v in 0..sim.domain.unk.nvar() {
            for k in sim.domain.unk.interior_k() {
                for j in sim.domain.unk.interior() {
                    for i in sim.domain.unk.interior() {
                        bits.push(sim.domain.unk.get(v, i, j, k, id.idx()).to_bits());
                    }
                }
            }
        }
    }
    bits
}

/// A refined 2-d Sedov with a genuine level jump: `max_refine: 3` under a
/// tight block budget keeps the finest level local to the blast, so the
/// mesh has parents, coarser neighbors, and fine-coarse flux corrections —
/// every declaration site in `build_plan` is live. Guardian stays at its
/// (enabled) default — the plan is fused, so validation tasks exist too.
fn sedov(nranks: usize, adversary_seed: Option<u64>) -> Simulation {
    let setup = SedovSetup {
        ndim: 2,
        nxb: 8,
        max_refine: 3,
        max_blocks: 256,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        nranks,
        step_scheduler: StepScheduler::TaskGraph,
        adversary_seed,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    setup.build(params)
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[test]
fn clean_plans_pass_the_audit_with_faults_and_rollbacks() {
    if !audit::COMPILED {
        return;
    }
    // Canonical pool schedule, injection armed: the guardian rolls the step
    // back mid-battery and retries. No audit panic anywhere.
    {
        let _faults = FaultPlan::new(0)
            .with(FaultSite::StepNan, FaultKind::FirstN { n: 1, errno: 22 })
            .activate();
        let mut sim = sedov(3, None);
        for _ in 0..3 {
            sim.try_step().expect("guarded step recovers");
        }
        assert_eq!(sim.step, 3);
    }
    // Same run under an adversarial schedule.
    {
        let _faults = FaultPlan::new(0)
            .with(FaultSite::StepNan, FaultKind::FirstN { n: 1, errno: 22 })
            .activate();
        let mut sim = sedov(3, Some(0xC0FFEE));
        for _ in 0..3 {
            sim.try_step().expect("adversarial guarded step recovers");
        }
        assert_eq!(sim.step, 3);
    }
}

#[test]
fn adversarial_schedules_are_bit_identical_to_the_pool() {
    let _quiet = FaultPlan::new(0).activate();
    let mut canonical = sedov(3, None);
    canonical.evolve(3);
    let want = state_bits(&canonical);

    for seed in [1u64, 42, 0x5EED_5EED, u64::MAX] {
        let mut adv = sedov(3, Some(seed));
        adv.evolve(3);
        assert_eq!(
            want,
            state_bits(&adv),
            "adversarial schedule (seed {seed:#x}) diverged from the pool"
        );
    }
}

/// Run one full step with declaration site `site` masked out of the plan
/// and report the panic message, if any.
fn step_with_dropped_site(site: u32) -> Option<String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _gag = mutation::drop_site(site);
        // The injection task only records its write when a fault actually
        // fires, so arm one; it is harmless elsewhere (the guardian retries).
        let _faults = FaultPlan::new(0)
            .with(FaultSite::StepNan, FaultKind::FirstN { n: 1, errno: 22 })
            .activate();
        let mut sim = sedov(3, Some(0xBAD5EED ^ u64::from(site)));
        let _ = sim.try_step();
        let _ = sim.try_step();
    }));
    result.err().map(|p| panic_text(&*p))
}

#[test]
fn every_dropped_declaration_is_detected() {
    if !audit::COMPILED {
        return;
    }
    let mut missed = Vec::new();
    let mut wrong = Vec::new();
    for site in 0..mutation::NSITES {
        match step_with_dropped_site(site) {
            None => missed.push(format!("S{site} ({})", mutation::NAMES[site as usize])),
            Some(msg) if !msg.contains("race-audit") => {
                wrong.push(format!(
                    "S{site} ({}): died of a symptom, not the audit: {msg}",
                    mutation::NAMES[site as usize]
                ));
            }
            Some(_) => {}
        }
    }
    assert!(
        missed.is_empty() && wrong.is_empty(),
        "mutation gate failed.\nundetected sites: {missed:#?}\nwrong diagnosis: {wrong:#?}"
    );
}
