//! Scheduler parity battery: the per-block task-graph step path must be
//! bit-identical to the pool-wide-barrier path — same leaves, same time
//! series, same interior bits — on both paper problems, across rank
//! counts and both sweep engines, and straight through guardian-driven
//! mid-step rollbacks and dt-retry ladders.
//!
//! The graph schedules per-block work the moment its dependencies clear,
//! so blocks race each other freely; determinism rests on the canonical
//! edge order and the Morton-ordered reductions, and these tests are the
//! witness.

use std::path::PathBuf;

use rflash::core::checkpoint::read_checkpoint;
use rflash::core::setups::sedov::SedovSetup;
use rflash::core::setups::supernova::SupernovaSetup;
use rflash::core::{
    CheckpointSeries, GuardianConfig, RuntimeParams, Simulation, StepScheduler,
};
use rflash::hugepages::{FaultKind, FaultPlan, FaultSite, Policy};
use rflash::hydro::SweepEngine;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rflash-schedpar-it-{}-{name}", std::process::id()))
}

/// Bit pattern of every interior zone of every variable, leaves in Morton
/// order, prefixed by the step counter and the time bits — the
/// "identical run" witness.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = vec![sim.step, sim.time.to_bits()];
    for id in sim.domain.tree.leaves() {
        for v in 0..sim.domain.unk.nvar() {
            for k in sim.domain.unk.interior_k() {
                for j in sim.domain.unk.interior() {
                    for i in sim.domain.unk.interior() {
                        bits.push(sim.domain.unk.get(v, i, j, k, id.idx()).to_bits());
                    }
                }
            }
        }
    }
    bits
}

fn sedov3d(scheduler: StepScheduler, nranks: usize, engine: SweepEngine) -> Simulation {
    let setup = SedovSetup {
        ndim: 3,
        nxb: 8,
        max_refine: 2,
        max_blocks: 512,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        nranks,
        sweep_engine: engine,
        step_scheduler: scheduler,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    setup.build(params)
}

fn supernova2d(scheduler: StepScheduler, nranks: usize, engine: SweepEngine) -> Simulation {
    let setup = SupernovaSetup {
        max_refine: 1,
        max_blocks: 256,
        coarse_table: true,
        ..SupernovaSetup::default()
    };
    setup.build(RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        nranks,
        sweep_engine: engine,
        step_scheduler: scheduler,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    })
}

/// 3-d Sedov: task-graph vs barrier, every rank count and both sweep
/// engines. The nranks = 1 column also pins the documented fallback (a
/// single rank has nothing to overlap, so the graph path defers to the
/// barrier loop).
#[test]
fn sedov_3d_taskgraph_matches_barrier_all_ranks_and_engines() {
    let _quiet = FaultPlan::new(0).activate();
    for engine in [SweepEngine::Scalar, SweepEngine::Pencil] {
        for nranks in [1usize, 3, 4] {
            let mut barrier = sedov3d(StepScheduler::Barrier, nranks, engine);
            barrier.evolve(3);
            let mut graph = sedov3d(StepScheduler::TaskGraph, nranks, engine);
            graph.evolve(3);
            assert_eq!(
                state_bits(&barrier),
                state_bits(&graph),
                "divergence at nranks={nranks}, engine={engine:?}"
            );
            if nranks > 1 {
                assert!(
                    graph.graph_report.executions >= 3,
                    "the graph path must actually have run at nranks={nranks}"
                );
                let tasks: u64 = graph.graph_report.per_rank.iter().map(|r| r.tasks).sum();
                assert!(tasks > 0, "ranks executed tasks");
            } else {
                assert_eq!(
                    graph.graph_report.executions, 0,
                    "one rank falls back to the barrier loop"
                );
            }
        }
    }
}

/// 2-d Helmholtz supernova (flame + gravity live, so the graph runs its
/// unfused tail): task-graph vs barrier across rank counts and engines.
#[test]
fn supernova_2d_taskgraph_matches_barrier_all_ranks_and_engines() {
    let _quiet = FaultPlan::new(0).activate();
    for engine in [SweepEngine::Scalar, SweepEngine::Pencil] {
        for nranks in [1usize, 3, 4] {
            let mut barrier = supernova2d(StepScheduler::Barrier, nranks, engine);
            barrier.evolve(3);
            let mut graph = supernova2d(StepScheduler::TaskGraph, nranks, engine);
            graph.evolve(3);
            assert_eq!(
                state_bits(&barrier),
                state_bits(&graph),
                "divergence at nranks={nranks}, engine={engine:?}"
            );
        }
    }
}

/// Checkpoints written under the two schedulers hold identical physics:
/// same step, same time, same domain bits. (The raw container bytes are
/// allowed to differ — the serialized params header records which
/// scheduler wrote it.)
#[test]
fn checkpoints_agree_across_schedulers() {
    let _quiet = FaultPlan::new(0).activate();
    let run = |scheduler: StepScheduler, tag: &str| {
        let dir = scratch(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let series = CheckpointSeries::new(&dir, "chk");
        let mut sim = sedov3d(scheduler, 4, SweepEngine::Pencil);
        sim.params.checkpoint_every = 2;
        sim.evolve_checkpointed(4, &series).expect("clean run");
        let (step, path) = series.scan().unwrap().pop().expect("a checkpoint landed");
        let state = read_checkpoint(&path).expect("checkpoint verifies");
        assert_eq!(state.step, step);
        let mut bits = vec![state.step, state.time.to_bits()];
        for id in state.domain.tree.leaves() {
            for v in 0..state.domain.unk.nvar() {
                for k in state.domain.unk.interior_k() {
                    for j in state.domain.unk.interior() {
                        for i in state.domain.unk.interior() {
                            bits.push(state.domain.unk.get(v, i, j, k, id.idx()).to_bits());
                        }
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
        bits
    };
    assert_eq!(
        run(StepScheduler::Barrier, "barrier"),
        run(StepScheduler::TaskGraph, "graph"),
        "checkpointed physics must not depend on the scheduler"
    );
}

/// A state-corruption fault fired mid-run under the task-graph: the
/// guardian's validation (folded into the graph as per-leaf tasks) must
/// catch it, roll the whole step back across every in-flight block, and
/// retry to bits identical to a fault-free barrier run.
#[test]
fn guardian_rollback_mid_graph_recovers_bit_exactly() {
    let sim = {
        let _g = FaultPlan::new(0)
            .with(FaultSite::StepNan, FaultKind::FirstN { n: 1, errno: 22 })
            .activate();
        let mut sim = sedov3d(StepScheduler::TaskGraph, 4, SweepEngine::Pencil);
        sim.params.guardian = GuardianConfig {
            max_retries: 2,
            ..GuardianConfig::default()
        };
        for n in 0..4 {
            sim.try_step()
                .unwrap_or_else(|e| panic!("step {n} must recover: {e}"));
        }
        sim
    };
    assert!(sim.guardian_stats.violations >= 1, "the fault was seen");
    assert!(sim.guardian_stats.rollbacks >= 1, "and rolled back");
    assert!(
        sim.graph_report.executions > 4,
        "the retry re-dispatched the graph"
    );

    let _quiet = FaultPlan::new(0).activate();
    let mut clean = sedov3d(StepScheduler::Barrier, 4, SweepEngine::Pencil);
    clean.params.guardian = GuardianConfig {
        max_retries: 2,
        ..GuardianConfig::default()
    };
    clean.evolve(4);
    assert_eq!(
        state_bits(&sim),
        state_bits(&clean),
        "mid-graph rollback + retry must reproduce the fault-free barrier run"
    );
    // The witness ignores scheduler-private state, so also pin the ledger.
    assert_eq!(sim.step, clean.step);
    assert_eq!(sim.time, clean.time);
}

/// A transient zero dt under the task-graph poisons the step (no block
/// mutates state), retries down the dt ladder, and lands on the fault-free
/// barrier bits — BadDt handling is scheduler-invariant.
#[test]
fn poisoned_dt_under_taskgraph_matches_barrier_recovery() {
    let run = |scheduler: StepScheduler| {
        let _g = FaultPlan::new(0)
            .with(FaultSite::DtZero, FaultKind::FirstN { n: 1, errno: 22 })
            .activate();
        let mut sim = sedov3d(scheduler, 3, SweepEngine::Scalar);
        sim.params.guardian = GuardianConfig {
            max_retries: 2,
            ..GuardianConfig::default()
        };
        for _ in 0..3 {
            sim.try_step().expect("must recover");
        }
        assert_eq!(sim.guardian_stats.bad_dts, 1);
        assert_eq!(
            sim.guardian_stats.rollbacks, 0,
            "a poisoned step never touched state — no rollback"
        );
        sim
    };
    let graph = run(StepScheduler::TaskGraph);
    let barrier = run(StepScheduler::Barrier);
    assert_eq!(state_bits(&graph), state_bits(&barrier));
    assert_eq!(graph.guardian_stats, barrier.guardian_stats);
}
