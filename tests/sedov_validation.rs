//! End-to-end validation: the full stack (mesh + PPM + EOS + AMR + flux
//! correction) against the analytic Sedov–Taylor solution.

use rflash::core::output::RadialProfile;
use rflash::core::setups::sedov::SedovSetup;
use rflash::core::RuntimeParams;
use rflash::hugepages::Policy;
use rflash::hydro::SedovSolution;
use rflash::mesh::vars;

fn run_sedov(steps: u64) -> (rflash::core::Simulation, SedovSetup) {
    let setup = SedovSetup {
        ndim: 2,
        nxb: 8,
        max_refine: 3,
        max_blocks: 1024,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    let mut sim = setup.build(params);
    sim.evolve(steps);
    (sim, setup)
}

#[test]
fn shock_radius_tracks_the_analytic_solution() {
    let (sim, setup) = run_sedov(120);
    assert!(sim.time > 0.0);
    let analytic = SedovSolution::new(
        setup.gamma,
        setup.ndim,
        setup.e0,
        setup.rho0,
        setup.p_ambient,
    );
    let r_exact = analytic.shock_radius(sim.time);
    assert!(
        r_exact > 0.05 && r_exact < 0.5,
        "shock should be well inside the box: {r_exact}"
    );
    let profile = RadialProfile::extract(&sim.domain, setup.center(), 0.5, 64);
    let r_num = profile.shock_radius().expect("profile has data");
    let rel = (r_num - r_exact) / r_exact;
    assert!(
        rel.abs() < 0.12,
        "numerical shock at {r_num}, analytic at {r_exact} ({:+.1}%)",
        rel * 100.0
    );
}

#[test]
fn post_shock_compression_approaches_strong_shock_limit() {
    let (sim, setup) = run_sedov(120);
    // Maximum density on the grid approaches (γ+1)/(γ−1)·ρ0 = 6 from
    // below; at this deliberately small test resolution (8-zone blocks,
    // 3 levels) the thin shell is diffused to roughly half the analytic
    // jump — what matters is that it clearly exceeds any non-shock value
    // and stays below the limit.
    let mut rho_max = 0.0f64;
    for id in sim.domain.tree.leaves() {
        for j in sim.domain.unk.interior() {
            for i in sim.domain.unk.interior() {
                rho_max = rho_max.max(sim.domain.unk.get(vars::DENS, i, j, 0, id.idx()));
            }
        }
    }
    let limit = (setup.gamma + 1.0) / (setup.gamma - 1.0);
    assert!(
        rho_max > 0.42 * limit && rho_max < 1.15 * limit,
        "peak compression {rho_max} vs strong-shock limit {limit}"
    );
}

#[test]
fn amr_follows_the_shock_front() {
    let (sim, setup) = run_sedov(120);
    let analytic = SedovSolution::new(
        setup.gamma,
        setup.ndim,
        setup.e0,
        setup.rho0,
        setup.p_ambient,
    );
    let r_shock = analytic.shock_radius(sim.time);
    // The finest leaves should cluster at the front.
    let max_level = setup.max_refine;
    let mut fine_near = 0;
    let mut fine_far = 0;
    for id in sim.domain.tree.leaves() {
        if sim.domain.tree.block(id).key.level != max_level {
            continue;
        }
        let (lo, hi) = sim.domain.tree.bounds(id);
        let c = [
            0.5 * (lo[0] + hi[0]) - 0.5,
            0.5 * (lo[1] + hi[1]) - 0.5,
        ];
        let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
        if (r - r_shock).abs() < 0.15 {
            fine_near += 1;
        } else {
            fine_far += 1;
        }
    }
    assert!(
        fine_near > fine_far,
        "finest blocks should track the shock: near={fine_near} far={fine_far}"
    );
}

#[test]
fn total_energy_is_approximately_conserved() {
    let (sim, setup) = run_sedov(80);
    let mut e_total = 0.0;
    for id in sim.domain.tree.leaves() {
        let dx = sim.domain.tree.cell_size(id);
        for j in sim.domain.unk.interior() {
            for i in sim.domain.unk.interior() {
                let dens = sim.domain.unk.get(vars::DENS, i, j, 0, id.idx());
                let ener = sim.domain.unk.get(vars::ENER, i, j, 0, id.idx());
                e_total += dens * ener * dx[0] * dx[1];
            }
        }
    }
    // Outflow boundaries have not been reached; energy should hold to a few
    // per mill (AMR prolongation/restriction and floors cause tiny drift).
    assert!(
        (e_total - setup.e0).abs() / setup.e0 < 0.02,
        "energy drifted: {e_total} vs {}",
        setup.e0
    );
}

#[test]
fn cylindrical_rz_blast_matches_spherical_solution() {
    // The r–z Sedov blast on the axis is a genuine ν = 3 spherical blast
    // computed in two dimensions — the strongest validation of the
    // cylindrical geometry terms (area/volume factors + p/r source).
    use rflash::mesh::Geometry;
    let setup = SedovSetup {
        ndim: 2,
        nxb: 8,
        max_refine: 3,
        max_blocks: 1024,
        geometry: Geometry::CylindricalRZ,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    let mut sim = setup.build(params);
    sim.evolve(120);

    let analytic = SedovSolution::new(setup.gamma, 3, setup.e0, setup.rho0, setup.p_ambient);
    let r_exact = analytic.shock_radius(sim.time);
    assert!(r_exact > 0.05 && r_exact < 0.45, "r_shock = {r_exact}");

    let profile = RadialProfile::extract(&sim.domain, setup.center(), 0.5, 64);
    let r_num = profile.shock_radius().expect("profile has data");
    let rel = (r_num - r_exact) / r_exact;
    assert!(
        rel.abs() < 0.12,
        "r–z shock at {r_num}, spherical analytic at {r_exact} ({:+.1}%)",
        rel * 100.0
    );
}
