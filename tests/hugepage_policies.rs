//! Cross-crate integration of the huge-page machinery: allocation policies,
//! kernel verification, and the TLB model's response — the paper's central
//! causal chain.

use rflash::hugepages::{MemInfo, PageBuffer, PageSize, Policy};
use rflash::tlbsim::{FrameSizing, Tlb, TlbConfig};

#[test]
fn every_policy_yields_usable_memory_with_an_honest_report() {
    for policy in [
        Policy::None,
        Policy::Thp,
        Policy::HugeTlbFs(PageSize::Huge2M),
    ] {
        let mut buf = PageBuffer::<f64>::zeroed(1 << 21, policy).expect("allocation");
        buf[12345] = 1.5;
        assert_eq!(buf[12345], 1.5);
        let report = buf.backing_report();
        // The verified flag must be consistent with the raw numbers.
        assert_eq!(
            report.verified_huge(),
            report.huge_bytes > 0 || report.kernel_page_size > 4096,
            "{report}"
        );
        // Policy::None must never be huge-backed.
        if policy == Policy::None {
            assert!(!report.verified_huge(), "{report}");
        }
    }
}

#[test]
fn meminfo_tracks_hugetlb_reservations() {
    use rflash::hugepages::AllocStage;

    let before = MemInfo::read().expect("meminfo");
    let buf = PageBuffer::<u8>::zeroed(32 << 20, Policy::HugeTlbFs(PageSize::Huge2M)).unwrap();
    let report = buf.backing_report();
    if report.fell_back.is_some() {
        // No pool on this host (or injection denied it): the degradation
        // report must still tell the whole story — the hugetlbfs refusal is
        // recorded as the first degrading step, with a reason.
        let first = report
            .degradation
            .iter()
            .find(|s| !s.kept)
            .expect("fell_back set but no degrading step recorded");
        assert_eq!(first.stage, AllocStage::HugeTlbFs, "{report}");
        assert!(!first.detail.is_empty(), "{report}");
        assert!(
            report.fell_back.as_deref().unwrap().contains(&first.detail),
            "fell_back must render the recorded step: {report}"
        );
        return;
    }
    // The grant side of the story must be equally honest: no degrading
    // steps when the reservation succeeded.
    assert!(report.degradation.iter().all(|s| s.kept), "{report}");
    let after = MemInfo::read().expect("meminfo");
    // 16 pages of 2 MiB must be in use (faulted) or reserved.
    let used_delta = after.huge_pages_in_use() + after.huge_pages_rsvd
        - (before.huge_pages_in_use() + before.huge_pages_rsvd);
    assert!(
        used_delta >= 16,
        "expected ≥16 pages used/reserved, got {used_delta}"
    );
}

#[test]
fn verified_backing_drives_the_tlb_model_shape() {
    // The paper's causal chain in one test: allocate under both policies,
    // derive frame sizing from the *kernel's* verdict, replay the same
    // FLASH-style strided sweep, and compare modeled DTLB misses.
    let len = 32 << 20; // bytes
    let sweep = |tlb: &mut Tlb, base: usize| {
        // One variable of nvar=11 f64s, two full passes.
        for _ in 0..2 {
            let mut addr = base;
            while addr < base + len {
                tlb.touch(addr);
                addr += 11 * 8;
            }
        }
    };

    let mut walks = Vec::new();
    for policy in [Policy::None, Policy::HugeTlbFs(PageSize::Huge2M)] {
        let buf = PageBuffer::<f64>::zeroed(len / 8, policy).unwrap();
        let report = buf.backing_report();
        let sizing = if report.verified_huge() {
            FrameSizing::huge(2 << 20)
        } else {
            FrameSizing::Base
        };
        let mut tlb = Tlb::new(TlbConfig::a64fx_like());
        tlb.map_region(buf.base_addr(), len, sizing);
        sweep(&mut tlb, buf.base_addr());
        walks.push((policy, report.verified_huge(), tlb.stats().walks));
    }
    let (_, _, base_walks) = walks[0];
    let (_, huge_verified, huge_walks) = walks[1];
    if huge_verified {
        assert!(
            huge_walks * 20 < base_walks,
            "huge pages must slash modeled misses: {huge_walks} vs {base_walks}"
        );
    } else {
        // Fallback path: the model must honestly show no improvement.
        assert_eq!(huge_walks, base_walks);
    }
}

#[test]
fn policy_env_round_trip() {
    // The XOS_MMM_L_HPAGE_TYPE-style env variable drives Policy::from_env.
    // (Direct parse here; the env-var path is covered in the hugepages
    // crate without cross-test interference.)
    for (text, expect) in [
        ("none", Policy::None),
        ("thp", Policy::Thp),
        ("hugetlbfs", Policy::HugeTlbFs(PageSize::Huge2M)),
        ("hugetlbfs:512M", Policy::HugeTlbFs(PageSize::Huge512M)),
    ] {
        assert_eq!(text.parse::<Policy>().unwrap(), expect);
    }
}
