//! Checkpoint round-trip property tests and crash-recovery scenarios.
//!
//! A hand-rolled seeded generator (SplitMix64 — no external PRNG crates)
//! sweeps (ndim, layout, refinement pattern, nvar) and demands bit-exact
//! write → restore for every case; a second battery injects write/rename
//! faults through the deterministic fault plan and demands that a kill
//! mid-checkpoint never damages the previous good checkpoint.

use std::path::PathBuf;

use rflash::core::checkpoint::{
    read_checkpoint, write_checkpoint, CheckpointError, CheckpointSeries,
};
use rflash::core::setups::sedov::SedovSetup;
use rflash::core::{Composition, EosChoice, RuntimeParams, Simulation};
use rflash::eos::GammaLaw;
use rflash::hugepages::{FaultKind, FaultPlan, FaultSite, Policy};
use rflash::mesh::{vars, Domain, Layout, MeshConfig};

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rflash-ckpt-it-{}-{name}", std::process::id()))
}

/// SplitMix64: tiny, seedable, and plenty random for case generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A finite, distinctive double.
    fn value(&mut self) -> f64 {
        (self.next() as i64 as f64) * 1e-12
    }
}

/// Generate a random domain: dimensionality, unk layout, extra variables,
/// and an irregular refinement pattern all drawn from the seed.
fn random_domain(rng: &mut Rng) -> (Domain, MeshConfig) {
    let mut cfg = MeshConfig::test_2d();
    cfg.ndim = if rng.below(2) == 0 { 2 } else { 3 };
    cfg.layout = if rng.below(2) == 0 {
        Layout::VarFirst
    } else {
        Layout::VarLast
    };
    cfg.nvar = vars::NVAR + rng.below(3) as usize;
    cfg.max_blocks = 1024;
    let mut domain = Domain::new(cfg, Policy::None);
    // Random refinement: a few rounds of splitting random leaves.
    for _ in 0..rng.below(4) {
        let leaves = domain.tree.leaves();
        let pick = leaves[rng.below(leaves.len() as u64) as usize];
        if domain.tree.block(pick).key.level < cfg.max_refine {
            domain.tree.refine_block(pick, &mut domain.unk);
        }
    }
    // Distinctive data in every leaf slab (bit-for-bit comparable).
    for id in domain.tree.leaves() {
        for v in domain.unk.block_slab_mut(id.idx()) {
            *v = rng.value();
        }
    }
    (domain, cfg)
}

#[test]
fn round_trip_is_bit_exact_across_generated_cases() {
    let mut rng = Rng(0xF1A5_0001);
    for case in 0..16u32 {
        let (domain, cfg) = random_domain(&mut rng);
        let params = RuntimeParams {
            use_hw: false,
            ..RuntimeParams::with_mesh(cfg)
        };
        let time = rng.value().abs();
        let step = rng.below(1 << 20);
        let path = scratch(&format!("prop-{case}"));
        write_checkpoint(&path, &domain, &params, time, step, 0.0)
            .unwrap_or_else(|e| panic!("case {case}: write failed: {e}"));
        let restored = read_checkpoint(&path)
            .unwrap_or_else(|e| panic!("case {case}: restore failed: {e}"));
        assert_eq!(restored.time, time);
        assert_eq!(restored.step, step);
        let leaves = domain.tree.leaves();
        let restored_leaves = restored.domain.tree.leaves();
        assert_eq!(leaves.len(), restored_leaves.len(), "case {case}");
        for id in leaves {
            let key = domain.tree.block(id).key;
            let rid = restored
                .domain
                .tree
                .find(key)
                .unwrap_or_else(|| panic!("case {case}: leaf {key:?} lost"));
            let a = domain.unk.block_slab(id.idx());
            let b = restored.domain.unk.block_slab(rid.idx());
            assert_eq!(a.len(), b.len(), "case {case}");
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "case {case}: bit drift at {key:?}[{i}]"
                );
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

fn sedov_sim(checkpoint_every: u64) -> (Simulation, f64) {
    let setup = SedovSetup {
        ndim: 2,
        nxb: 8,
        max_refine: 2,
        max_blocks: 256,
        ..SedovSetup::default()
    };
    let params = RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        checkpoint_every,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    };
    (setup.build(params), setup.gamma)
}

#[test]
fn restart_from_series_matches_the_uninterrupted_run() {
    let dir = scratch("series-restart");
    let _ = std::fs::remove_dir_all(&dir);
    let series = CheckpointSeries::new(&dir, "chk");

    let (mut sim, gamma) = sedov_sim(2);
    let written = sim.evolve_checkpointed(6, &series).unwrap();
    assert_eq!(written.len(), 3, "checkpoints at steps 2, 4, 6");
    sim.evolve(4); // uninterrupted to step 10

    // "Crash" and recover from the newest checkpoint (step 6), then run
    // the same remaining steps.
    let (mut sim2, skipped) = Simulation::recover(
        &series,
        EosChoice::Gamma(GammaLaw::new(gamma)),
        Composition::ideal(),
    )
    .unwrap();
    assert!(skipped.is_empty());
    assert_eq!(sim2.step, 6);
    sim2.evolve(4);

    assert_eq!(sim.step, sim2.step);
    for id in sim.domain.tree.leaves() {
        let key = sim.domain.tree.block(id).key;
        let id2 = sim2.domain.tree.find(key).expect("same topology");
        for j in sim.domain.unk.interior() {
            for i in sim.domain.unk.interior() {
                let a = sim.domain.unk.get(vars::DENS, i, j, 0, id.idx());
                let b = sim2.domain.unk.get(vars::DENS, i, j, 0, id2.idx());
                assert_eq!(a.to_bits(), b.to_bits(), "restart drift at ({i},{j})");
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_mid_checkpoint_leaves_the_previous_checkpoint_restorable() {
    let path = scratch("kill-mid-write");
    let (mut sim, _) = sedov_sim(0);
    sim.evolve(2);
    sim.checkpoint(&path).unwrap();
    let good_bytes = std::fs::read(&path).unwrap();
    let good_step = sim.step;

    // Advance and "crash" 200 bytes into the next checkpoint write.
    sim.evolve(2);
    {
        let _g = FaultPlan::new(0)
            .with(FaultSite::CkptWrite, FaultKind::ShortWrite { bytes: 200 })
            .activate();
        match sim.checkpoint(&path) {
            Err(CheckpointError::Io(_)) => {}
            Err(other) => panic!("expected Io from the injected kill, got {other}"),
            Ok(()) => panic!("short write must fail the checkpoint"),
        }
    }

    // The previous checkpoint is untouched, byte for byte, and restores.
    assert_eq!(
        std::fs::read(&path).unwrap(),
        good_bytes,
        "atomic write must not touch the published file"
    );
    let restored = read_checkpoint(&path).unwrap();
    assert_eq!(restored.step, good_step);

    // The torn temp file is what a real crash leaves; recovery ignores it.
    let tmp: PathBuf = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        os.into()
    };
    assert!(tmp.exists(), "the injected kill leaves a torn temp file");
    assert_eq!(std::fs::read(&tmp).unwrap().len(), 200);
    std::fs::remove_file(&tmp).unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn failed_rename_keeps_the_old_checkpoint_current() {
    let path = scratch("rename-fail");
    let (mut sim, _) = sedov_sim(0);
    sim.evolve(1);
    sim.checkpoint(&path).unwrap();
    let good_bytes = std::fs::read(&path).unwrap();

    sim.evolve(1);
    {
        let _g = FaultPlan::new(0)
            .with(FaultSite::CkptRename, FaultKind::Always { errno: 5 })
            .activate();
        match sim.checkpoint(&path) {
            Err(CheckpointError::Io(e)) => assert_eq!(e.raw_os_error(), Some(5)),
            Err(other) => panic!("expected Io from the injected rename fault, got {other}"),
            Ok(()) => panic!("rename fault must fail the checkpoint"),
        }
    }
    assert_eq!(std::fs::read(&path).unwrap(), good_bytes);
    let tmp: PathBuf = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        os.into()
    };
    // The fully-written temp survives (real rename failures keep it too);
    // it is complete but unpublished.
    assert!(tmp.exists());
    std::fs::remove_file(&tmp).unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn series_recovery_survives_a_crashed_latest_checkpoint() {
    let dir = scratch("series-crash");
    let _ = std::fs::remove_dir_all(&dir);
    let series = CheckpointSeries::new(&dir, "chk");
    let (mut sim, gamma) = sedov_sim(0);
    sim.evolve(2);
    series.write(&sim).unwrap();
    let good_step = sim.step;

    // The next series write dies mid-file.
    sim.evolve(2);
    {
        let _g = FaultPlan::new(0)
            .with(FaultSite::CkptWrite, FaultKind::ShortWrite { bytes: 64 })
            .activate();
        assert!(series.write(&sim).is_err());
    }

    let (recovered, skipped) = Simulation::recover(
        &series,
        EosChoice::Gamma(GammaLaw::new(gamma)),
        Composition::ideal(),
    )
    .unwrap();
    assert_eq!(recovered.step, good_step);
    // The torn file never got published (it died as a .tmp), so nothing
    // was skipped: the series only ever contains whole files.
    assert!(skipped.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}
