//! The golden-result regression corpus (ISSUE 8, DESIGN.md §15).
//!
//! Every registered scenario runs at smoke scale across the full
//! determinism matrix — `nranks ∈ {1, 4}` × `SweepEngine::{Scalar,
//! Pencil}` × `StepScheduler::{Barrier, TaskGraph}` — and every cell must
//! produce the *same* CRC-backed state digest, equal to the record
//! committed under `golden/`. A digest change means the numerics drifted:
//! either a bug, or an intentional change that must be re-blessed with
//!
//! ```text
//! cargo run --release -p rflash-bench --bin scenario_matrix -- --bless
//! ```
//!
//! The suite also pins the tentpole's transliteration claim: the three
//! legacy hard-coded setups and their committed spec files build
//! bit-identical simulations; and the PR 3/PR 5 recovery story: a
//! spec-launched run that crashes and recovers from its checkpoint series
//! resumes to the same golden digest as an uninterrupted run.

use std::path::PathBuf;

use rflash::core::registry::{self, load_golden, GoldenRecord, SetupSpec, StateDigest};
use rflash::core::setups::sedov::SedovSetup;
use rflash::core::setups::sod::SodSetup;
use rflash::core::setups::supernova::SupernovaSetup;
use rflash::core::{CheckpointSeries, RuntimeParams, Simulation, StepScheduler};
use rflash::hugepages::Policy;
use rflash::hydro::SweepEngine;

/// The committed corpus lives at the repo root.
fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rflash-golden-it-{}-{name}", std::process::id()))
}

/// The full determinism matrix for one scenario: every cell must digest
/// identically, and match the committed golden record.
fn assert_matrix_matches_golden(name: &str) {
    let spec = registry::load(name).expect("registered scenario");
    let golden = load_golden(&golden_dir(), name).unwrap_or_else(|e| {
        panic!(
            "no committed golden for `{name}` ({e}); regenerate with \
             `cargo run --release -p rflash-bench --bin scenario_matrix -- --bless`"
        )
    });
    assert_eq!(golden.scenario, name);
    assert_eq!(golden.steps, spec.smoke.steps, "golden is stale: steps drifted");

    let mut reference: Option<StateDigest> = None;
    for engine in [SweepEngine::Scalar, SweepEngine::Pencil] {
        for scheduler in [StepScheduler::Barrier, StepScheduler::TaskGraph] {
            for nranks in [1usize, 4] {
                let sim = registry::run_smoke(&spec, nranks, engine, scheduler)
                    .expect("smoke run");
                let digest = StateDigest::of(&sim);
                let cell = format!("{name} @ nranks={nranks}, {engine:?}, {scheduler:?}");
                match reference {
                    None => reference = Some(digest),
                    Some(r) => assert_eq!(
                        digest, r,
                        "matrix cell diverged from its siblings: {cell}"
                    ),
                }
                assert_eq!(
                    digest, golden.digest,
                    "digest drifted from the committed golden: {cell}\n  \
                     got      {digest}\n  expected {}\n  \
                     if the numerics change is intentional, re-bless with \
                     `cargo run --release -p rflash-bench --bin scenario_matrix -- --bless`",
                    golden.digest
                );
            }
        }
    }
}

// One test per scenario so the matrix parallelizes across the test
// harness's threads and a failure names the scenario directly.

#[test]
fn golden_matrix_sedov() {
    assert_matrix_matches_golden("sedov");
}

#[test]
fn golden_matrix_sod() {
    assert_matrix_matches_golden("sod");
}

#[test]
fn golden_matrix_supernova() {
    assert_matrix_matches_golden("supernova");
}

#[test]
fn golden_matrix_cellular() {
    assert_matrix_matches_golden("cellular");
}

#[test]
fn golden_matrix_kelvin_helmholtz() {
    assert_matrix_matches_golden("kelvin_helmholtz");
}

#[test]
fn golden_matrix_rayleigh_taylor() {
    assert_matrix_matches_golden("rayleigh_taylor");
}

#[test]
fn golden_matrix_wd_relax() {
    assert_matrix_matches_golden("wd_relax");
}

/// The SIMD backend axis: pinning `simd_backend` to every explicit lane
/// width must reproduce the committed golden digest bit-for-bit. This is
/// the end-to-end form of the bit-identity contract (DESIGN.md §16) — the
/// kernel-level parity tests in `crates/hydro` and `crates/simd` prove the
/// lanes agree, this proves nothing upstream (dispatch, pencil carving,
/// batched EOS plumbing) lets the choice of backend leak into the physics.
fn assert_backend_axis_matches_golden(name: &str) {
    let spec = registry::load(name).expect("registered scenario");
    let golden = load_golden(&golden_dir(), name).expect("committed golden record");
    let smoke = spec.at_smoke_scale();
    for backend in [
        rflash::simd::Backend::Scalar,
        rflash::simd::Backend::V2,
        rflash::simd::Backend::V4,
        rflash::simd::Backend::Native,
    ] {
        let mut params =
            registry::smoke_params(&smoke, 1, SweepEngine::Pencil, StepScheduler::TaskGraph);
        params.simd_backend = backend;
        let mut sim = smoke.build(params).expect("spec builds");
        sim.evolve(smoke.smoke.steps);
        let digest = StateDigest::of(&sim);
        assert_eq!(
            digest,
            golden.digest,
            "{name} with simd_backend={} drifted from the committed golden \
             (resolved to {})",
            backend.name(),
            rflash::simd::resolve(backend).name()
        );
    }
}

#[test]
fn golden_backend_axis_sedov() {
    // Gamma-law scenario: exercises the pencil hydro lane kernels.
    assert_backend_axis_matches_golden("sedov");
}

#[test]
fn golden_backend_axis_supernova() {
    // Helmholtz scenario: additionally exercises the batched bicubic table
    // evaluation and the masked-re-iteration Newton inversion.
    assert_backend_axis_matches_golden("supernova");
}

// ---------------------------------------------------------------------------
// Spec-vs-legacy transliteration: bit identity
// ---------------------------------------------------------------------------

/// Deterministic params mirroring `registry::smoke_params` for a legacy
/// hard-coded setup.
fn legacy_params(mesh: rflash::mesh::MeshConfig) -> RuntimeParams {
    RuntimeParams {
        policy: Policy::None,
        use_hw: false,
        pattern_every: 0,
        gather_every: 0,
        ..RuntimeParams::with_mesh(mesh)
    }
}

/// Both sims must agree bit-for-bit: at init AND after the smoke steps.
fn assert_bit_identical(name: &str, spec_sim: &mut Simulation, legacy_sim: &mut Simulation, steps: u64) {
    assert_eq!(
        StateDigest::of(spec_sim),
        StateDigest::of(legacy_sim),
        "`{name}`: spec-built initial state differs from the hard-coded module"
    );
    spec_sim.evolve(steps);
    legacy_sim.evolve(steps);
    assert_eq!(
        StateDigest::of(spec_sim),
        StateDigest::of(legacy_sim),
        "`{name}`: spec-built run diverged from the hard-coded module after {steps} steps"
    );
}

#[test]
fn spec_sedov_is_bit_identical_to_the_hardcoded_module() {
    let spec = registry::load("sedov").unwrap().at_smoke_scale();
    let steps = spec.smoke.steps;
    let mut from_spec = spec
        .build(registry::smoke_params(
            &spec,
            1,
            SweepEngine::Pencil,
            StepScheduler::TaskGraph,
        ))
        .unwrap();

    let legacy = SedovSetup {
        max_refine: spec.mesh.max_refine,
        max_blocks: spec.mesh.max_blocks,
        ..SedovSetup::default()
    };
    let mut from_code = legacy.build(legacy_params(legacy.mesh_config()));
    assert_bit_identical("sedov", &mut from_spec, &mut from_code, steps);
}

#[test]
fn spec_sod_is_bit_identical_to_the_hardcoded_module() {
    let spec = registry::load("sod").unwrap().at_smoke_scale();
    let steps = spec.smoke.steps;
    let mut from_spec = spec
        .build(registry::smoke_params(
            &spec,
            1,
            SweepEngine::Pencil,
            StepScheduler::TaskGraph,
        ))
        .unwrap();

    let legacy = SodSetup {
        max_refine: spec.mesh.max_refine,
        max_blocks: spec.mesh.max_blocks,
        ..SodSetup::default()
    };
    let mut from_code = legacy.build(legacy_params(legacy.mesh_config()));
    assert_bit_identical("sod", &mut from_spec, &mut from_code, steps);
}

#[test]
fn spec_supernova_is_bit_identical_to_the_hardcoded_module() {
    let spec = registry::load("supernova").unwrap().at_smoke_scale();
    let steps = spec.smoke.steps;
    let mut from_spec = spec
        .build(registry::smoke_params(
            &spec,
            1,
            SweepEngine::Pencil,
            StepScheduler::TaskGraph,
        ))
        .unwrap();

    let legacy = SupernovaSetup {
        max_refine: spec.mesh.max_refine,
        max_blocks: spec.mesh.max_blocks,
        coarse_table: true,
        ..SupernovaSetup::default()
    };
    let mut from_code = legacy.build(legacy_params(legacy.mesh_config()));
    assert_bit_identical("supernova", &mut from_spec, &mut from_code, steps);
}

/// The default-scale (paper-scale) mesh of every spec'd legacy problem
/// must equal the hard-coded module's — the cheap structural half of the
/// transliteration claim (the full-evolution half runs at smoke scale
/// above).
#[test]
fn spec_default_meshes_match_the_hardcoded_modules() {
    let sedov = registry::load("sedov").unwrap();
    assert_eq!(
        sedov.mesh.to_mesh_config(),
        SedovSetup::default().mesh_config()
    );
    let sod = registry::load("sod").unwrap();
    assert_eq!(sod.mesh.to_mesh_config(), SodSetup::default().mesh_config());
    let sn = registry::load("supernova").unwrap();
    assert_eq!(
        sn.mesh.to_mesh_config(),
        SupernovaSetup::default().mesh_config()
    );
}

// ---------------------------------------------------------------------------
// Checkpoint-series recovery of a spec-launched run
// ---------------------------------------------------------------------------

/// A spec-launched run that "crashes" mid-way and recovers from its
/// checkpoint series must resume to exactly the committed golden digest —
/// the registry riding the PR 3/PR 5 recovery machinery without drift.
#[test]
fn spec_launched_recovery_resumes_to_the_golden_digest() {
    let name = "kelvin_helmholtz";
    let spec = registry::load(name).unwrap();
    let golden: GoldenRecord = load_golden(&golden_dir(), name).expect("committed golden");
    let smoke: SetupSpec = spec.at_smoke_scale();
    let steps = smoke.smoke.steps;
    assert!(steps >= 2, "need room for a mid-run checkpoint");
    let mid = steps / 2;

    let dir = scratch("spec-recovery");
    let _ = std::fs::remove_dir_all(&dir);
    let series = CheckpointSeries::new(&dir, "chk");

    // Run half way, checkpointing every step, then "crash".
    let mut params = registry::smoke_params(
        &smoke,
        1,
        SweepEngine::Pencil,
        StepScheduler::TaskGraph,
    );
    params.checkpoint_every = 1;
    let mut first = smoke.build(params).unwrap();
    let written = first.evolve_checkpointed(mid, &series).unwrap();
    assert_eq!(written.len(), mid as usize);
    drop(first);

    // Recover — the EOS comes back from the spec, the state from disk.
    let (mut resumed, skipped) = Simulation::recover(
        &series,
        smoke.make_eos(Policy::None),
        smoke.composition.to_composition(),
    )
    .unwrap();
    assert!(skipped.is_empty(), "no corrupt checkpoints expected");
    assert_eq!(resumed.step, mid);
    resumed.evolve(steps - mid);

    assert_eq!(
        StateDigest::of(&resumed),
        golden.digest,
        "recovered run diverged from the committed golden"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
