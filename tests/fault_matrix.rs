//! Injected allocation failures × every huge-page policy.
//!
//! The contract under test: whatever the fault plan does to the kernel
//! interfaces, `PageBuffer::zeroed` either returns *usable* memory with an
//! honest degradation trail in its backing report, or a typed error —
//! never a panic, never a silent downgrade. Each test activates a
//! deterministic thread-local [`FaultPlan`], so the suite is green both on
//! hosts with no hugetlb pool at all and under CI's process-wide
//! `RFLASH_FAULTS` injection (a thread-local plan shadows the env plan).

use rflash::hugepages::{
    alloc_stats, AllocStage, Error, FaultKind, FaultPlan, FaultSite, PageBuffer, PageSize, Policy,
    FAULTS_ENV_VAR,
};

const ALL_POLICIES: [Policy; 3] = [
    Policy::None,
    Policy::Thp,
    Policy::HugeTlbFs(PageSize::Huge2M),
];

const EPERM: i32 = 1;
const EAGAIN: i32 = 11;
const ENOMEM: i32 = 12;
const EINVAL: i32 = 22;

/// Allocate, exercise, and report under whatever plan is active.
fn alloc_and_exercise(policy: Policy) -> rflash::hugepages::BackingReport {
    let mut buf = PageBuffer::<f64>::zeroed(1 << 18, policy).expect("usable memory");
    buf[999] = 2.75;
    assert_eq!(buf[999], 2.75);
    assert_eq!(buf[0], 0.0, "memory must arrive zeroed");
    buf.backing_report()
}

#[test]
fn hugetlb_denial_leaves_every_policy_usable_with_a_trail() {
    let _g = FaultPlan::new(1)
        .with(FaultSite::HugeTlbMmap, FaultKind::Always { errno: EPERM })
        .activate();
    for policy in ALL_POLICIES {
        let report = alloc_and_exercise(policy);
        match policy {
            Policy::HugeTlbFs(_) => {
                // The reservation was denied, so the chain must record it:
                // first degrading step at the hugetlbfs rung, with a reason.
                let step = report
                    .degradation
                    .iter()
                    .find(|s| !s.kept)
                    .unwrap_or_else(|| panic!("no degrading step recorded: {report}"));
                assert_eq!(step.stage, AllocStage::HugeTlbFs, "{report}");
                assert!(step.detail.contains("errno 1"), "{}", step.detail);
                assert!(report.fell_back.is_some(), "{report}");
            }
            // Policies that never touch the faulted site stay clean.
            _ => assert!(
                report.degradation.iter().all(|s| s.kept),
                "unexpected degradation under {policy}: {report}"
            ),
        }
    }
}

#[test]
fn transient_exhaustion_is_retried_with_the_retries_on_record() {
    let _g = FaultPlan::new(2)
        .with(FaultSite::HugeTlbMmap, FaultKind::FirstN { n: 2, errno: EAGAIN })
        .activate();
    let report = alloc_and_exercise(Policy::HugeTlbFs(PageSize::Huge2M));
    // Two injected transient failures burn two retries; the third attempt
    // asks the real host pool. Either way the retries must be on record.
    let step = report
        .degradation
        .first()
        .unwrap_or_else(|| panic!("retries left no trail: {report}"));
    assert_eq!(step.stage, AllocStage::HugeTlbFs, "{report}");
    if step.kept {
        assert_eq!(step.retries, 2, "recovered after the injected failures");
    } else {
        assert!(step.retries >= 2, "pool-less host: budget spent, {report}");
    }
}

#[test]
fn denied_thp_advice_degrades_to_base_pages_not_to_failure() {
    // Fail only the first madvise (the MADV_HUGEPAGE request); the
    // follow-on base-stage advice stays live.
    let _g = FaultPlan::new(3)
        .with(FaultSite::Madvise, FaultKind::Nth { n: 1, errno: EINVAL })
        .activate();
    let report = alloc_and_exercise(Policy::Thp);
    let step = report
        .degradation
        .iter()
        .find(|s| !s.kept)
        .unwrap_or_else(|| panic!("denied advice left no trail: {report}"));
    assert_eq!(step.stage, AllocStage::Thp, "{report}");
    assert!(step.detail.contains("MADV_HUGEPAGE"), "{}", step.detail);
}

#[test]
fn full_mmap_outage_is_a_typed_error_never_a_panic() {
    let _g = FaultPlan::new(4)
        .with(FaultSite::HugeTlbMmap, FaultKind::Always { errno: ENOMEM })
        .with(FaultSite::AnonMmap, FaultKind::Always { errno: ENOMEM })
        .activate();
    for policy in ALL_POLICIES {
        match PageBuffer::<f64>::zeroed(1 << 18, policy) {
            Err(Error::Mmap { errno, .. }) => assert_eq!(errno, ENOMEM),
            Err(other) => panic!("expected Mmap error under {policy}, got {other}"),
            Ok(_) => panic!("chain exhaustion must not produce memory ({policy})"),
        }
    }
}

#[test]
fn probabilistic_faults_are_deterministic_per_seed() {
    // The same seed must fire the same call numbers — run the identical
    // sequence twice and compare the resulting degradation trails.
    let run = || {
        let _g = FaultPlan::new(42)
            .with(
                FaultSite::HugeTlbMmap,
                FaultKind::Prob {
                    permille: 500,
                    errno: EPERM,
                },
            )
            .activate();
        (0..6)
            .map(|_| {
                PageBuffer::<u8>::zeroed(1 << 16, Policy::HugeTlbFs(PageSize::Huge2M))
                    .expect("usable memory")
                    .backing_report()
                    .degradation
                    .iter()
                    .map(|s| (s.stage, s.kept, s.retries))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn injected_faults_show_up_in_the_process_counters() {
    let before = alloc_stats();
    let _g = FaultPlan::new(5)
        .with(FaultSite::HugeTlbMmap, FaultKind::Always { errno: EPERM })
        .activate();
    let _report = alloc_and_exercise(Policy::HugeTlbFs(PageSize::Huge2M));
    let after = alloc_stats();
    assert!(after.injected_faults > before.injected_faults);
    assert!(after.thp_fallbacks > before.thp_fallbacks);
    assert!(after.hugetlb_attempts > before.hugetlb_attempts);
}

#[test]
fn env_spec_grammar_parses_and_rejects() {
    let plan = FaultPlan::parse("seed=7;hugetlb-mmap=first:2:ENOMEM,madvise=nth:3:EINVAL")
        .expect("valid spec");
    assert_eq!(plan.seed(), 7);
    assert_eq!(plan.rules().len(), 2);
    for bad in [
        "bogus-site=always",
        "hugetlb-mmap=sometimes",
        "madvise=prob:1500:ENOMEM",
        "hugetlb-mmap=short:64",
        "ckpt-write=always:NOTANERRNO",
    ] {
        assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
    }
}

#[test]
fn env_injection_when_present_is_visible_and_survivable() {
    // Under CI's RFLASH_FAULTS the process-global plan applies to every
    // allocation without a thread-local guard; all policies must still
    // yield usable memory (the spec CI uses only denies hugetlb).
    if std::env::var(FAULTS_ENV_VAR).is_err() {
        return; // nothing injected in this run
    }
    for policy in ALL_POLICIES {
        let report = alloc_and_exercise(policy);
        if let Policy::HugeTlbFs(_) = policy {
            assert!(
                report.fell_back.is_some(),
                "env plan denies hugetlb, report must say so: {report}"
            );
        }
    }
}
