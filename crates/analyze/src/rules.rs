//! The project-specific rule set.
//!
//! | rule id            | enforces                                              |
//! |--------------------|-------------------------------------------------------|
//! | `safety_comment`   | every `unsafe` block/fn/impl/trait carries `SAFETY:`  |
//! | `alloc_confinement`| raw page syscalls / `libc` only in `crates/hugepages` |
//! | `panic`            | no unwrap/expect/panic!/todo!/unimplemented! in hot paths |
//! | `send_sync`        | `unsafe impl Send/Sync` names its invariant           |
//! | `pencil_confinement`| no per-cell unk accessors in pencil/batched-EOS modules |
//! | `graph_confinement`| no raw slab/slot accessors in step-graph task bodies  |
//! | `simd_confinement` | arch intrinsics / `#[target_feature]` only in `crates/simd` |
//! | `allow_syntax`     | malformed escape-hatch annotations                    |
//! | `unused_allow`     | escape hatches that suppress nothing                  |
//!
//! Escape hatch: an `analyze::allow` comment — rule id in parentheses, then
//! a colon and a reason (full syntax in README.md) — on the violating line,
//! or on the comment line directly above it, suppresses that rule at that
//! site. The reason is mandatory — an allow is a reviewed, documented
//! decision, not an off switch.

use crate::source::SourceFile;

/// Rules that may be named in an allow annotation.
pub const ALLOWABLE_RULES: &[&str] = &[
    "safety_comment",
    "alloc_confinement",
    "panic",
    "send_sync",
    "pencil_confinement",
    "graph_confinement",
    "simd_confinement",
];

/// Page-level syscall identifiers confined to `crates/hugepages` (rule 2).
/// These are matched as identifier tokens, so prose in comments/strings
/// never trips them.
const CONFINED_IDENTS: &[&str] = &[
    "mmap",
    "mmap64",
    "munmap",
    "madvise",
    "mlock",
    "mlock2",
    "munlock",
    "mlockall",
    "munlockall",
    "MAP_HUGETLB",
];

/// Files allowed to use `libc` outside the hugepages crate. `perfmon`'s
/// hardware backend needs `perf_event_open(2)`/`read(2)`/`close(2)` — which
/// are not allocation paths — and is the single reviewed exception.
const LIBC_ALLOWLIST: &[&str] = &["crates/perfmon/src/hw.rs"];

/// Hot paths (rule 3): panic-capable calls are forbidden in non-test code.
const HOT_PATH_PREFIXES: &[&str] = &[
    "crates/hydro/src/",
    "crates/eos/src/",
    "crates/hugepages/src/",
];
const HOT_PATH_FILES: &[&str] = &[
    "crates/mesh/src/executor.rs",
    "crates/mesh/src/guardcell.rs",
    // The guardian's whole point is to turn bad states into typed errors;
    // a panic on the validate/rollback path would be self-defeating.
    "crates/core/src/guardian.rs",
    "crates/mesh/src/shadow.rs",
    // The task-graph scheduler and the per-block step bodies run on pool
    // ranks: a panic there is caught and re-raised as an execution abort,
    // but the dispatch/reduction machinery itself must not be able to.
    "crates/mesh/src/taskgraph.rs",
    "crates/core/src/stepgraph.rs",
];

/// Macros that abort the simulation when expanded in non-test code.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Pencil-batched SoA inner-loop modules (rule 5): cell traffic must flow
/// through the gather/scatter helpers in `rflash_mesh::unk` — a stray
/// per-cell accessor silently reintroduces the strided index arithmetic and
/// bounds checks the engine exists to amortize.
const PENCIL_CONFINED: &[&str] = &["crates/hydro/src/pencil.rs", "crates/eos/src/batch.rs"];

/// Per-cell access identifiers forbidden inside pencil-confined modules.
/// Matched as whole identifier tokens (comments and strings never trip
/// them, nor do longer names like `base_addr` or `offset`).
const PENCIL_FORBIDDEN: &[&str] = &["get", "set", "addr", "slab_idx"];

/// Step-graph task-body modules (rule `graph_confinement`): every slab and
/// slot access must flow through the race-audit claiming accessors
/// (`read_slab`/`write_slab`/`update_cell`, `read_slot`/`write_slot`) so it
/// lands in the declared-vs-actual ledger — a raw accessor is an access the
/// audit cannot see (DESIGN.md §14).
const GRAPH_CONFINED: &[&str] = &["crates/core/src/stepgraph.rs"];

/// Raw accessor method names forbidden inside graph-confined modules.
/// Matched only in method-call position (`.name(`) so locals named `slab`
/// and prose in comments never trip them.
const GRAPH_FORBIDDEN: &[&str] = &["get", "set", "addr", "slab_idx", "slab", "slab_mut"];

/// The one crate allowed to contain architecture intrinsics and
/// `#[target_feature]` wrappers (rule `simd_confinement`). Everything else
/// must go through the portable `Lane` abstraction — a stray intrinsic in
/// kernel code silently forks the bit-identity contract per architecture
/// and reopens an unsafe surface the simd crate exists to confine.
const SIMD_CONFINED_PREFIX: &str = "crates/simd/";

/// One finding. `line` is 1-based.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub rel: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.rel, self.line, self.rule, self.msg)
    }
}

/// Kind of an `unsafe` site, for the audit and the inventory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    ImplSend,
    ImplSync,
    Trait,
    Extern,
}

impl UnsafeKind {
    pub fn as_str(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::ImplSend => "impl_send",
            UnsafeKind::ImplSync => "impl_sync",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Extern => "extern",
        }
    }
}

/// One `unsafe` occurrence with its resolved justification comment.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    pub line: usize,
    pub kind: UnsafeKind,
    /// Excerpt of the attached `SAFETY:` text (or `# Safety` doc section).
    pub safety: Option<String>,
    pub in_test: bool,
}

/// A parsed `analyze::allow` annotation.
struct Allow {
    line: usize,
    /// First code line at or below the annotation — the line it suppresses.
    target: usize,
    rule: String,
    reason: String,
    used: std::cell::Cell<bool>,
}

/// Analyze one file. `rel` must be the workspace-relative path with `/`
/// separators — the confinement and hot-path rules key off it.
pub fn check_source(rel: &str, src: &str) -> Vec<Violation> {
    let sf = SourceFile::parse(rel, src);
    let allows = collect_allows(&sf);
    let mut violations = Vec::new();

    // Malformed annotations are themselves violations (rule allow_syntax);
    // they also never suppress anything.
    for a in &allows {
        if !ALLOWABLE_RULES.contains(&a.rule.as_str()) {
            violations.push(Violation {
                rel: rel.to_string(),
                line: a.line,
                rule: "allow_syntax",
                msg: format!(
                    "unknown rule '{}' in allow annotation (known: {})",
                    a.rule,
                    ALLOWABLE_RULES.join(", ")
                ),
            });
            a.used.set(true); // don't double-report as unused
        } else if a.reason.is_empty() {
            violations.push(Violation {
                rel: rel.to_string(),
                line: a.line,
                rule: "allow_syntax",
                msg: format!("allow({}) has no reason; write 'analyze::allow({}): <why>'", a.rule, a.rule),
            });
            a.used.set(true);
        }
    }

    let mut candidate = Vec::new();
    rule_unsafe_audit(&sf, &mut candidate);
    rule_alloc_confinement(&sf, &mut candidate);
    rule_panic_freedom(&sf, &mut candidate);
    rule_pencil_confinement(&sf, &mut candidate);
    rule_graph_confinement(&sf, &mut candidate);
    rule_simd_confinement(&sf, &mut candidate);

    for v in candidate {
        if let Some(a) = allows.iter().find(|a| {
            a.rule == v.rule && !a.reason.is_empty() && (a.target == v.line || a.line == v.line)
        }) {
            a.used.set(true);
            continue;
        }
        violations.push(v);
    }

    for a in &allows {
        if !a.used.get() {
            violations.push(Violation {
                rel: rel.to_string(),
                line: a.line,
                rule: "unused_allow",
                msg: format!(
                    "allow({}) suppresses nothing on line {}; remove it",
                    a.rule, a.target
                ),
            });
        }
    }

    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations
}

/// Enumerate the `unsafe` sites of a file (shared by the audit rule and the
/// inventory emitter).
pub fn unsafe_sites(sf: &SourceFile) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    for (i, tok) in sf.tokens.iter().enumerate() {
        if !tok.is_ident("unsafe") || sf.is_attr[i] {
            continue;
        }
        let kind = classify_unsafe(sf, i);
        let accept_doc = matches!(kind, UnsafeKind::Fn | UnsafeKind::Trait);
        let safety = safety_comment_for(sf, tok.line, accept_doc);
        sites.push(UnsafeSite {
            line: tok.line,
            kind,
            safety,
            in_test: sf.in_test[i],
        });
    }
    sites
}

fn classify_unsafe(sf: &SourceFile, i: usize) -> UnsafeKind {
    // Next non-comment token decides the site kind.
    let mut j = i + 1;
    while j < sf.tokens.len() && sf.tokens[j].is_comment() {
        j += 1;
    }
    let Some(next) = sf.tokens.get(j) else {
        return UnsafeKind::Block;
    };
    if next.is_punct('{') {
        return UnsafeKind::Block;
    }
    match next.ident() {
        Some("fn") => UnsafeKind::Fn,
        Some("trait") => UnsafeKind::Trait,
        Some("extern") => UnsafeKind::Extern,
        Some("impl") => {
            // Walk the impl header up to `for`/`{`; idents at angle-depth 0
            // name the implemented trait path.
            let mut depth = 0isize;
            let mut k = j + 1;
            let mut send = false;
            let mut sync = false;
            while k < sf.tokens.len() {
                let t = &sf.tokens[k];
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                } else if depth == 0 {
                    if t.is_ident("for") || t.is_punct('{') {
                        break;
                    }
                    send |= t.is_ident("Send");
                    sync |= t.is_ident("Sync");
                }
                k += 1;
            }
            if send {
                UnsafeKind::ImplSend
            } else if sync {
                UnsafeKind::ImplSync
            } else {
                UnsafeKind::Impl
            }
        }
        _ => UnsafeKind::Block,
    }
}

/// Find the justification comment attached to the `unsafe` on `line`:
/// a `SAFETY:` comment on the same line, or in the contiguous block of
/// comment/attribute/`unsafe impl` lines directly above. For fns and traits
/// a rustdoc `# Safety` section also qualifies.
fn safety_comment_for(sf: &SourceFile, line: usize, accept_doc: bool) -> Option<String> {
    let mut block: Vec<String> = sf.comments_on(line);
    let mut l = line;
    while l > 1 {
        l -= 1;
        let li = sf.line(l);
        if !li.code && (li.comment || !li.comments.is_empty()) {
            for c in li.comments.iter().rev() {
                block.insert(0, c.clone());
            }
            continue;
        }
        if li.code && (li.attr_only || li.unsafe_impl_start) {
            // Attributes sit between docs and items; a one-line
            // `unsafe impl` extends its group's shared comment upward.
            for c in li.comments.iter().rev() {
                block.insert(0, c.clone());
            }
            continue;
        }
        // A real code line or a blank line terminates the comment block.
        break;
    }
    extract_safety(&block, accept_doc)
}

fn extract_safety(block: &[String], accept_doc: bool) -> Option<String> {
    for (i, text) in block.iter().enumerate() {
        if let Some(pos) = text.find("SAFETY:") {
            // Join the tail of this comment with the rest of the block so
            // multi-line justifications come through whole.
            let mut s = text[pos + "SAFETY:".len()..].trim().to_string();
            for extra in &block[i + 1..] {
                let extra = extra.trim_start_matches(['/', '!']).trim();
                if !extra.is_empty() {
                    s.push(' ');
                    s.push_str(extra);
                }
            }
            s.truncate(200);
            return Some(s.trim().to_string());
        }
        if accept_doc && text.to_ascii_lowercase().contains("# safety") {
            return Some("# Safety doc section".to_string());
        }
    }
    None
}

fn rule_unsafe_audit(sf: &SourceFile, out: &mut Vec<Violation>) {
    for site in unsafe_sites(sf) {
        let (rule, what): (&'static str, String) = match site.kind {
            UnsafeKind::ImplSend | UnsafeKind::ImplSync => {
                ("send_sync", format!("`unsafe {}`", if site.kind == UnsafeKind::ImplSend { "impl Send" } else { "impl Sync" }))
            }
            k => ("safety_comment", format!("unsafe {}", k.as_str())),
        };
        match &site.safety {
            None => out.push(Violation {
                rel: sf.rel.clone(),
                line: site.line,
                rule,
                msg: format!(
                    "{what} has no `// SAFETY:` comment{}",
                    if matches!(site.kind, UnsafeKind::Fn | UnsafeKind::Trait) {
                        " (or `# Safety` doc section)"
                    } else {
                        ""
                    }
                ),
            }),
            Some(text)
                if matches!(site.kind, UnsafeKind::ImplSend | UnsafeKind::ImplSync)
                    && text.len() < 12 =>
            {
                // A manual Send/Sync claim must actually name the invariant
                // it relies on; "SAFETY: fine" does not survive review.
                out.push(Violation {
                    rel: sf.rel.clone(),
                    line: site.line,
                    rule: "send_sync",
                    msg: format!("{what} SAFETY comment too thin to name an invariant: \"{text}\""),
                });
            }
            Some(_) => {}
        }
    }
}

fn rule_alloc_confinement(sf: &SourceFile, out: &mut Vec<Violation>) {
    if sf.rel.starts_with("crates/hugepages/") {
        return;
    }
    let allowlisted = LIBC_ALLOWLIST.contains(&sf.rel.as_str());
    for tok in &sf.tokens {
        let Some(word) = tok.ident() else { continue };
        if CONFINED_IDENTS.contains(&word) {
            out.push(Violation {
                rel: sf.rel.clone(),
                line: tok.line,
                rule: "alloc_confinement",
                msg: format!(
                    "raw page-level syscall `{word}` outside crates/hugepages — large \
                     allocations must flow through the hugepage-aware allocator"
                ),
            });
        } else if word == "libc" && !allowlisted {
            out.push(Violation {
                rel: sf.rel.clone(),
                line: tok.line,
                rule: "alloc_confinement",
                msg: "direct `libc` use outside crates/hugepages (perfmon/src/hw.rs is the \
                      only allowlisted exception)"
                    .to_string(),
            });
        }
    }
}

/// Whole file counts as test code for the panic rule when it lives in a
/// `tests/`, `benches/`, or `examples/` directory.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|seg| matches!(seg, "tests" | "benches" | "examples"))
}

pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATH_FILES.contains(&rel)
        || HOT_PATH_PREFIXES.iter().any(|p| rel.starts_with(p))
}

fn rule_panic_freedom(sf: &SourceFile, out: &mut Vec<Violation>) {
    if !is_hot_path(&sf.rel) || is_test_path(&sf.rel) {
        return;
    }
    let toks = &sf.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if sf.in_test[i] || sf.is_attr[i] {
            continue;
        }
        let Some(word) = tok.ident() else { continue };
        let next_is = |c: char| toks.get(i + 1).map(|t| t.is_punct(c)).unwrap_or(false);
        let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
        if (word == "unwrap" || word == "expect") && prev_is_dot && next_is('(') {
            out.push(Violation {
                rel: sf.rel.clone(),
                line: tok.line,
                rule: "panic",
                msg: format!(
                    "`.{word}()` in hot-path code — propagate a Result or document an allow"
                ),
            });
        } else if PANIC_MACROS.contains(&word) && next_is('!') {
            out.push(Violation {
                rel: sf.rel.clone(),
                line: tok.line,
                rule: "panic",
                msg: format!("`{word}!` in hot-path code — return an error instead of aborting"),
            });
        }
    }
}

fn rule_pencil_confinement(sf: &SourceFile, out: &mut Vec<Violation>) {
    if !PENCIL_CONFINED.contains(&sf.rel.as_str()) {
        return;
    }
    for (i, tok) in sf.tokens.iter().enumerate() {
        if sf.in_test[i] || sf.is_attr[i] {
            continue;
        }
        let Some(word) = tok.ident() else { continue };
        if PENCIL_FORBIDDEN.contains(&word) {
            out.push(Violation {
                rel: sf.rel.clone(),
                line: tok.line,
                rule: "pencil_confinement",
                msg: format!(
                    "per-cell accessor `{word}` in a pencil-confined module — cell \
                     traffic must flow through gather_pencil/scatter_pencil"
                ),
            });
        }
    }
}

fn rule_graph_confinement(sf: &SourceFile, out: &mut Vec<Violation>) {
    if !GRAPH_CONFINED.contains(&sf.rel.as_str()) {
        return;
    }
    let toks = &sf.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if sf.in_test[i] || sf.is_attr[i] {
            continue;
        }
        let Some(word) = tok.ident() else { continue };
        if !GRAPH_FORBIDDEN.contains(&word) {
            continue;
        }
        let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_is_paren = toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false);
        if prev_is_dot && next_is_paren {
            out.push(Violation {
                rel: sf.rel.clone(),
                line: tok.line,
                rule: "graph_confinement",
                msg: format!(
                    "raw accessor `.{word}()` in a step-graph module — task bodies must \
                     use the claiming accessors (read_slab/write_slab/update_cell, \
                     read_slot/write_slot) so the race-audit ledger sees the access"
                ),
            });
        }
    }
}

fn rule_simd_confinement(sf: &SourceFile, out: &mut Vec<Violation>) {
    if sf.rel.starts_with(SIMD_CONFINED_PREFIX) {
        return;
    }
    let toks = &sf.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(word) = tok.ident() else { continue };
        // x86 intrinsic calls and vector types: `_mm*` / `__m*` covers the
        // whole `core::arch::x86_64` surface (`_mm_add_pd`, `__m256d`, ...).
        if word.starts_with("_mm") || word.starts_with("__m") {
            out.push(Violation {
                rel: sf.rel.clone(),
                line: tok.line,
                rule: "simd_confinement",
                msg: format!(
                    "architecture intrinsic `{word}` outside crates/simd — vector code \
                     must go through the portable `Lane` abstraction"
                ),
            });
            continue;
        }
        // The `#[target_feature(...)]` attribute (prev token `[`
        // distinguishes it from a `#[cfg(target_feature = ...)]` probe,
        // where the word sits behind a `(`).
        if word == "target_feature"
            && sf.is_attr[i]
            && i > 0
            && toks[i - 1].is_punct('[')
        {
            out.push(Violation {
                rel: sf.rel.clone(),
                line: tok.line,
                rule: "simd_confinement",
                msg: "`#[target_feature]` outside crates/simd — feature-gated codegen \
                      belongs behind the simd crate's dispatch wrappers"
                    .to_string(),
            });
            continue;
        }
        // `core::arch` / `std::arch` module paths (covers
        // `is_x86_feature_detected!` re-exports and direct module imports).
        if word == "arch"
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3]
                .ident()
                .is_some_and(|w| w == "core" || w == "std")
        {
            out.push(Violation {
                rel: sf.rel.clone(),
                line: tok.line,
                rule: "simd_confinement",
                msg: "`core::arch`/`std::arch` path outside crates/simd — architecture \
                      access is confined to the simd crate"
                    .to_string(),
            });
        }
    }
}

fn collect_allows(sf: &SourceFile) -> Vec<Allow> {
    const NEEDLE: &str = "analyze::allow(";
    let mut allows = Vec::new();
    for tok in &sf.tokens {
        let crate::lexer::TokenKind::Comment(text) = &tok.kind else {
            continue;
        };
        let Some(start) = text.find(NEEDLE) else { continue };
        let rest = &text[start + NEEDLE.len()..];
        let (rule, reason) = match rest.find(')') {
            Some(close) => {
                let rule = rest[..close].trim().to_string();
                let after = rest[close + 1..].trim_start();
                let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
                (rule, reason)
            }
            None => (rest.trim().to_string(), String::new()),
        };
        // The annotation suppresses the first code line at or below it.
        let mut target = tok.line;
        if !sf.line(tok.line).code {
            let mut l = tok.line + 1;
            let limit = sf.line_count();
            while l <= limit && !sf.line(l).code {
                l += 1;
            }
            target = l.min(limit);
        }
        allows.push(Allow {
            line: tok.line,
            target,
            rule,
            reason,
            used: std::cell::Cell::new(false),
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        check_source(rel, src)
    }

    #[test]
    fn unsafe_block_without_safety_flags() {
        let v = check("crates/mesh/src/x.rs", "fn f() { unsafe { g(); } }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety_comment");
    }

    #[test]
    fn unsafe_block_with_safety_passes() {
        let v = check(
            "crates/mesh/src/x.rs",
            "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g(); }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn trailing_safety_on_same_line_passes() {
        let v = check(
            "crates/mesh/src/x.rs",
            "fn f() {\n    let p = unsafe { q() }; // SAFETY: q is pure.\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unsafe_fn_doc_safety_section_passes() {
        let v = check(
            "crates/mesh/src/x.rs",
            "/// Does things.\n///\n/// # Safety\n/// Caller must own `p`.\npub unsafe fn f(p: *mut u8) {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn grouped_unsafe_impls_share_one_safety_comment() {
        let v = check(
            "crates/mesh/src/x.rs",
            "// SAFETY: every listed primitive is valid for all bit patterns.\nunsafe impl Pod for u8 {}\nunsafe impl Pod for u16 {}\nunsafe impl Pod for u32 {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn send_sync_requires_substantive_comment() {
        let thin = check(
            "crates/mesh/src/x.rs",
            "// SAFETY: fine.\nunsafe impl Send for X {}\n",
        );
        assert_eq!(thin.len(), 1);
        assert_eq!(thin[0].rule, "send_sync");
        let missing = check("crates/mesh/src/x.rs", "unsafe impl Sync for X {}\n");
        assert_eq!(missing[0].rule, "send_sync");
        let good = check(
            "crates/mesh/src/x.rs",
            "// SAFETY: access is partitioned by rank index, one thread per slot.\nunsafe impl<T: Send> Sync for X<T> {}\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn confinement_flags_mmap_outside_hugepages() {
        let v = check(
            "crates/mesh/src/x.rs",
            "fn f() { let p = libc::mmap(core::ptr::null_mut(), n, 0, 0, -1, 0); }\n",
        );
        assert!(v.iter().any(|v| v.rule == "alloc_confinement"));
        let ok = check(
            "crates/hugepages/src/x.rs",
            "fn f() { let p = libc::mmap(core::ptr::null_mut(), n, 0, 0, -1, 0); }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn confinement_allowlists_perfmon_hw_for_libc_but_not_mmap() {
        let ok = check("crates/perfmon/src/hw.rs", "fn f() { libc::close(fd); }\n");
        assert!(ok.is_empty(), "{ok:?}");
        let bad = check("crates/perfmon/src/hw.rs", "fn f() { libc::mmap(p, n, 0, 0, -1, 0); }\n");
        assert!(bad.iter().any(|v| v.rule == "alloc_confinement"));
    }

    #[test]
    fn mmap_in_comment_or_string_is_ignored() {
        let v = check(
            "crates/mesh/src/x.rs",
            "// we used to call mmap here\nfn f() { let s = \"madvise\"; }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hot_path_unwrap_flags_but_test_mod_is_exempt() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let hot = check("crates/eos/src/x.rs", src);
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert_eq!(hot[0].rule, "panic");
        assert_eq!(hot[0].line, 1);
        let cold = check("crates/tlbsim/src/x.rs", src);
        assert!(cold.is_empty(), "{cold:?}");
    }

    #[test]
    fn panic_macro_flags_but_catch_unwind_path_does_not() {
        let v = check(
            "crates/hydro/src/x.rs",
            "use std::panic::catch_unwind;\nfn f() { panic!(\"boom\"); }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn allow_suppresses_from_line_above_and_same_line() {
        let above = check(
            "crates/eos/src/x.rs",
            "fn f(x: Option<u8>) {\n    // analyze::allow(panic): x is Some by construction two lines up.\n    x.unwrap();\n}\n",
        );
        assert!(above.is_empty(), "{above:?}");
        let inline = check(
            "crates/eos/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap(); // analyze::allow(panic): guarded above.\n}\n",
        );
        assert!(inline.is_empty(), "{inline:?}");
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let v = check(
            "crates/eos/src/x.rs",
            "fn f(x: Option<u8>) {\n    // analyze::allow(panic)\n    x.unwrap();\n}\n",
        );
        assert!(v.iter().any(|v| v.rule == "allow_syntax"), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "panic"), "{v:?}");
    }

    #[test]
    fn unknown_allow_rule_is_rejected() {
        let v = check(
            "crates/mesh/src/x.rs",
            "// analyze::allow(everything): please\nfn f() {}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "allow_syntax");
    }

    #[test]
    fn unused_allow_is_flagged() {
        let v = check(
            "crates/mesh/src/x.rs",
            "// analyze::allow(panic): no longer needed.\nfn f() {}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unused_allow");
    }

    #[test]
    fn tests_dir_file_is_exempt_from_panic_rule_only() {
        let v = check(
            "crates/eos/tests/integration.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\nfn g() { unsafe { h(); } }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "safety_comment");
    }

    #[test]
    fn pencil_confinement_flags_cell_accessors_in_confined_modules() {
        let src = "fn f(u: &Unk) { let v = u.get(0, i, j, k, b); u.set(0, i, j, k, b, v); }\n";
        let v = check("crates/hydro/src/pencil.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "pencil_confinement"));
        // The same code is fine anywhere else.
        let elsewhere = check("crates/mesh/src/unk.rs", src);
        assert!(elsewhere.is_empty(), "{elsewhere:?}");
    }

    #[test]
    fn pencil_confinement_ignores_comments_tests_and_longer_names() {
        let src = "// the scalar path calls get/set/slab_idx per cell\n\
                   fn f(t: &Table) -> usize { t.base_addr() }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { u.get(0, 1, 1, 0, 0); }\n}\n";
        let v = check("crates/eos/src/batch.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pencil_confinement_honors_allow() {
        let v = check(
            "crates/hydro/src/pencil.rs",
            "fn f(u: &Unk) {\n    // analyze::allow(pencil_confinement): one-off probe read, not a loop.\n    u.get(0, 1, 1, 0, 0);\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn graph_confinement_flags_raw_accessor_calls_in_stepgraph() {
        let src = "fn f(c: &UnkCells, s: &Slots) {\n    let a = unsafe { c.slab(0) };\n    let b = unsafe { c.slab_mut(1) };\n    let v = unsafe { s.get(2) };\n}\n";
        let v = check("crates/core/src/stepgraph.rs", src);
        let graph: Vec<_> = v.iter().filter(|v| v.rule == "graph_confinement").collect();
        assert_eq!(graph.len(), 3, "{v:?}");
        // The same code is fine anywhere else (modulo the panic/safety rules).
        let elsewhere = check("crates/mesh/src/domain.rs", src);
        assert!(elsewhere.iter().all(|v| v.rule != "graph_confinement"), "{elsewhere:?}");
    }

    #[test]
    fn graph_confinement_ignores_locals_comments_tests_and_claiming_accessors() {
        let src = "// the old body called c.slab(0) and s.get(i) directly\n\
                   fn f(c: &UnkCells) {\n    let slab = unsafe { c.read_slab(0, Region::Interior) };\n    let w = unsafe { c.write_slab(1, Region::Guards, None) };\n}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t(s: &Slots) { unsafe { s.get(0) }; }\n}\n";
        let v = check("crates/core/src/stepgraph.rs", src);
        assert!(v.iter().all(|v| v.rule != "graph_confinement"), "{v:?}");
    }

    #[test]
    fn graph_confinement_honors_allow() {
        let v = check(
            "crates/core/src/stepgraph.rs",
            "fn f(s: &Slots) {\n    // analyze::allow(graph_confinement): diagnostic probe outside any task body.\n    // SAFETY: quiescent graph.\n    let x = unsafe { s.get(0) };\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "graph_confinement"), "{v:?}");
    }

    #[test]
    fn simd_confinement_flags_intrinsics_and_target_feature_outside_simd() {
        let src = "#[target_feature(enable = \"avx2\")]\n\
                   unsafe fn f(a: __m256d) -> __m256d { _mm256_add_pd(a, a) }\n\
                   use core::arch::x86_64::_mm_add_pd;\n";
        let v = check("crates/hydro/src/x.rs", src);
        let simd: Vec<_> = v.iter().filter(|v| v.rule == "simd_confinement").collect();
        // target_feature + __m256d x2 + _mm256_add_pd + core::arch + _mm_add_pd
        assert_eq!(simd.len(), 6, "{v:?}");
        // The same code is fine inside the simd crate (modulo safety_comment).
        let inside = check("crates/simd/src/x.rs", src);
        assert!(inside.iter().all(|v| v.rule != "simd_confinement"), "{inside:?}");
    }

    #[test]
    fn simd_confinement_ignores_cfg_probes_prose_and_lane_code() {
        let src = "// the avx2 backend calls _mm256_fmadd_pd via core::arch\n\
                   #[cfg(target_feature = \"avx2\")]\n\
                   fn probe() {}\n\
                   fn f<L: Lane>(a: L, b: L) -> L { a.add(b) }\n";
        let v = check("crates/hydro/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != "simd_confinement"), "{v:?}");
    }

    #[test]
    fn unwrap_or_and_expect_err_are_not_flagged() {
        let v = check(
            "crates/eos/src/x.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
