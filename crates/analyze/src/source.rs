//! Structured view of one source file: tokens plus the line- and
//! region-level classification the rules key off (test regions, attribute
//! spans, comment blocks).

use crate::lexer::{tokenize, Token, TokenKind};

/// Per-line classification, 1-based via [`SourceFile::line`].
#[derive(Clone, Debug, Default)]
pub struct LineInfo {
    /// Line carries at least one non-comment token.
    pub code: bool,
    /// Line carries code tokens and all of them belong to attributes.
    pub attr_only: bool,
    /// First code tokens on the line are `unsafe impl` (lets one SAFETY
    /// comment cover a contiguous group of one-line unsafe impls).
    pub unsafe_impl_start: bool,
    /// Line is covered by a comment (incl. interior lines of `/* */`).
    pub comment: bool,
    /// Comment texts that *start* on this line.
    pub comments: Vec<String>,
}

/// A parsed file ready for rule evaluation.
pub struct SourceFile {
    pub rel: String,
    pub tokens: Vec<Token>,
    /// Per-token: inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: Vec<bool>,
    /// Per-token: part of an attribute (`#[…]` / `#![…]`).
    pub is_attr: Vec<bool>,
    lines: Vec<LineInfo>,
}

impl SourceFile {
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let tokens = tokenize(src);
        let is_attr = mark_attributes(&tokens);
        let in_test = mark_test_regions(&tokens, &is_attr);
        let lines = classify_lines(&tokens, &is_attr, src);
        SourceFile {
            rel: rel.to_string(),
            tokens,
            in_test,
            is_attr,
            lines,
        }
    }

    /// 1-based line info; lines past EOF read as default (blank).
    pub fn line(&self, n: usize) -> LineInfo {
        if n == 0 || n > self.lines.len() {
            LineInfo::default()
        } else {
            self.lines[n - 1].clone()
        }
    }

    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// All comment texts starting on line `n`.
    pub fn comments_on(&self, n: usize) -> Vec<String> {
        self.line(n).comments
    }
}

/// Mark every token belonging to an outer (`#[…]`) or inner (`#![…]`)
/// attribute, bracket-depth aware.
fn mark_attributes(tokens: &[Token]) -> Vec<bool> {
    let mut out = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct('!') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('[') {
                let mut depth = 0usize;
                let start = i;
                while j < tokens.len() {
                    if tokens[j].is_punct('[') {
                        depth += 1;
                    } else if tokens[j].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                for flag in out.iter_mut().take(j.min(tokens.len() - 1) + 1).skip(start) {
                    *flag = true;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Identifiers strictly inside the brackets of the attribute starting at
/// token `start` (which must be `#`). Returns (idents, index past `]`).
fn attr_idents(tokens: &[Token], start: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut j = start + 1;
    if j < tokens.len() && tokens[j].is_punct('!') {
        j += 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (idents, j + 1);
            }
        } else if let Some(w) = tokens[j].ident() {
            idents.push(w.to_string());
        }
        j += 1;
    }
    (idents, j)
}

/// Mark tokens inside items annotated `#[cfg(test)]` or `#[test]`. The span
/// runs from the attribute through the item's closing brace (or terminating
/// semicolon for brace-less items). Deliberately conservative: composite
/// cfgs like `cfg(not(test))` or `cfg(any(test, …))` are NOT test regions.
fn mark_test_regions(tokens: &[Token], is_attr: &[bool]) -> Vec<bool> {
    let mut out = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && is_attr[i] {
            let (idents, past) = attr_idents(tokens, i);
            let is_test_attr = idents == ["test"]
                || idents == ["cfg", "test"]
                || idents == ["should_panic"]
                || idents.first().map(String::as_str) == Some("should_panic");
            if is_test_attr {
                // Skip any stacked attributes and comments after this one.
                let mut j = past;
                loop {
                    while j < tokens.len() && tokens[j].is_comment() {
                        j += 1;
                    }
                    if j < tokens.len() && tokens[j].is_punct('#') && is_attr[j] {
                        let (_, p) = attr_idents(tokens, j);
                        j = p;
                        continue;
                    }
                    break;
                }
                // Find end of item: matching `}` of its first brace block,
                // or a top-level `;` if one comes first.
                let mut end = j;
                let mut k = j;
                let mut depth = 0usize;
                let mut entered = false;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        depth += 1;
                        entered = true;
                    } else if tokens[k].is_punct('}') {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            end = k;
                            break;
                        }
                    } else if tokens[k].is_punct(';') && !entered {
                        end = k;
                        break;
                    }
                    end = k;
                    k += 1;
                }
                for flag in out.iter_mut().take(end.min(tokens.len() - 1) + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn classify_lines(tokens: &[Token], is_attr: &[bool], src: &str) -> Vec<LineInfo> {
    let nlines = src.lines().count().max(1);
    let mut lines = vec![LineInfo::default(); nlines];
    for (idx, tok) in tokens.iter().enumerate() {
        let l = tok.line - 1;
        if l >= lines.len() {
            continue;
        }
        match &tok.kind {
            TokenKind::Comment(text) => {
                lines[l].comments.push(text.clone());
                // A block comment covers every line it spans.
                for span in 0..=text.matches('\n').count() {
                    if l + span < lines.len() {
                        lines[l + span].comment = true;
                    }
                }
            }
            _ => {
                let was_code = lines[l].code;
                lines[l].code = true;
                if !was_code {
                    lines[l].attr_only = is_attr[idx];
                } else {
                    lines[l].attr_only = lines[l].attr_only && is_attr[idx];
                }
                // Detect `unsafe impl` as the first code tokens of the line.
                if !was_code && tok.is_ident("unsafe") {
                    if let Some(next) = tokens.get(idx + 1) {
                        if next.is_ident("impl") {
                            lines[l].unsafe_impl_start = true;
                        }
                    }
                }
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_covers_mod_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { x.unwrap(); }\n}\nfn after() {}\n";
        let sf = SourceFile::parse("a.rs", src);
        let unwrap_idx = sf
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(sf.in_test[unwrap_idx]);
        let after_idx = sf
            .tokens
            .iter()
            .position(|t| t.is_ident("after"))
            .expect("after token");
        assert!(!sf.in_test[after_idx]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let sf = SourceFile::parse("a.rs", src);
        let unwrap_idx = sf.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!sf.in_test[unwrap_idx]);
    }

    #[test]
    fn attribute_only_lines_are_flagged() {
        let src = "#[derive(Debug)]\n#[repr(C)]\nstruct S;\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(sf.line(1).attr_only);
        assert!(sf.line(2).attr_only);
        assert!(!sf.line(3).attr_only);
    }

    #[test]
    fn unsafe_impl_start_detected() {
        let src = "// SAFETY: all bit patterns valid.\nunsafe impl Pod for u8 {}\nunsafe impl Pod for u16 {}\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(sf.line(2).unsafe_impl_start);
        assert!(sf.line(3).unsafe_impl_start);
        assert!(sf.line(1).comment);
    }

    #[test]
    fn block_comment_interior_lines_count_as_comment() {
        let src = "/* one\ntwo\nthree */\ncode();\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(sf.line(1).comment && sf.line(2).comment && sf.line(3).comment);
        assert!(sf.line(4).code);
    }
}
