//! `rflash-analyze` — workspace-local static analysis for the rflash tree.
//!
//! The paper this repo reproduces hinges on an invisible property: huge
//! pages engage only when large arrays flow through the right allocation
//! path, and regressions (a stray `mmap`, an allocator bypass) produce no
//! error — just silently slower runs. This crate makes those invariants
//! mechanical:
//!
//! 1. **unsafe-audit** (`safety_comment`) — every `unsafe` block/fn/impl
//!    carries a `SAFETY:` justification; the full surface is exported as
//!    `unsafe_inventory.json` so growth is diffed PR-over-PR.
//! 2. **allocation-path confinement** (`alloc_confinement`) — raw
//!    page-level syscalls and `libc` stay inside `crates/hugepages`, the
//!    one place the hugepage-aware allocator lives.
//! 3. **panic-freedom** (`panic`) — hot-path crates propagate errors
//!    instead of aborting a long simulation.
//! 4. **concurrency-surface audit** (`send_sync`) — manual
//!    `unsafe impl Send/Sync` must name the invariant they rely on.
//! 5. **pencil confinement** (`pencil_confinement`) — the pencil-batched
//!    SoA inner-loop modules (`hydro/src/pencil.rs`, `eos/src/batch.rs`)
//!    never touch unk cells one at a time: no `get`/`set`/`addr`/
//!    `slab_idx` identifiers outside test code; cell traffic flows through
//!    the gather/scatter helpers.
//! 6. **graph confinement** (`graph_confinement`) — step-graph task bodies
//!    (`core/src/stepgraph.rs`) reach slabs and slots only through the
//!    race-audit claiming accessors, so every access lands in the
//!    declared-vs-actual ledger.
//! 7. **SIMD confinement** (`simd_confinement`) — architecture intrinsics
//!    (`_mm*`/`__m*`), `core::arch`/`std::arch` paths, and
//!    `#[target_feature]` wrappers stay inside `crates/simd`; kernel code
//!    vectorizes through the portable `Lane` abstraction, keeping the
//!    bit-identity contract and the unsafe surface in one reviewed place.
//!
//! Per-site escape hatch: an `analyze::allow` comment — the rule id in
//! parentheses, then a colon and a mandatory reason — on or directly above
//! the offending line (full syntax in README.md). See `check_source` for
//! the programmatic entry point; `src/main.rs` provides the CLI used by CI.

pub mod inventory;
pub mod lexer;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use inventory::Inventory;
pub use rules::{check_source, Violation};
use source::SourceFile;

/// Name of the committed inventory baseline at the workspace root.
pub const INVENTORY_FILE: &str = "unsafe_inventory.json";

/// Directories (relative to the workspace root) that hold first-party
/// sources. `vendor/` is deliberately absent: vendored stubs are not ours
/// to lint.
const SCAN_ROOTS: &[&str] = &["src", "tests", "examples", "benches", "crates"];

/// Subtrees skipped during the walk: analyzer fixtures contain deliberate
/// violations, and build output is not source.
const SKIP_SUFFIXES: &[&str] = &["crates/analyze/tests/fixtures", "target"];

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// All first-party `.rs` files under `root`, as (absolute, workspace-relative)
/// pairs, sorted by relative path for deterministic reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    let rel = dir
        .strip_prefix(root)
        .unwrap_or(dir)
        .to_string_lossy()
        .replace('\\', "/");
    if SKIP_SUFFIXES.iter().any(|s| rel.ends_with(s)) {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Run every rule over the workspace. Violations sort by (file, line).
pub fn check_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for (path, rel) in workspace_files(root)? {
        let src = fs::read_to_string(&path)?;
        violations.extend(check_source(&rel, &src));
    }
    violations.sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));
    Ok(violations)
}

/// Build the unsafe inventory for the workspace.
pub fn build_inventory(root: &Path) -> io::Result<Inventory> {
    let mut inv = Inventory::default();
    for (path, rel) in workspace_files(root)? {
        let src = fs::read_to_string(&path)?;
        inv.add_file(&SourceFile::parse(&rel, &src));
    }
    inv.finish();
    Ok(inv)
}

/// Check a standalone fixture file. The workspace path the file pretends to
/// live at is taken from a leading `//@ path: <rel>` directive, defaulting
/// to `crates/fixture/src/lib.rs` (which is neither hot-path nor confined,
/// so path-dependent fixtures must carry the directive).
pub fn check_fixture(path: &Path) -> io::Result<Vec<Violation>> {
    let src = fs::read_to_string(path)?;
    let rel = fixture_pretend_path(&src)
        .unwrap_or_else(|| "crates/fixture/src/lib.rs".to_string());
    Ok(check_source(&rel, &src))
}

/// Parse the `//@ path:` directive from a fixture header.
pub fn fixture_pretend_path(src: &str) -> Option<String> {
    for line in src.lines().take(5) {
        if let Some(rest) = line.trim().strip_prefix("//@ path:") {
            return Some(rest.trim().to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretend_path_directive_parses() {
        let src = "//@ path: crates/eos/src/fixture.rs\nfn f() {}\n";
        assert_eq!(
            fixture_pretend_path(src).as_deref(),
            Some("crates/eos/src/fixture.rs")
        );
        assert_eq!(fixture_pretend_path("fn f() {}\n"), None);
    }

    #[test]
    fn workspace_root_is_discoverable_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/analyze");
        assert!(root.join("crates/analyze").is_dir());
    }

    #[test]
    fn walker_skips_fixture_tree() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = workspace_files(&root).expect("walk");
        assert!(files.iter().all(|(_, rel)| !rel.contains("tests/fixtures")));
        assert!(files.iter().any(|(_, rel)| rel == "crates/analyze/src/lib.rs"));
    }
}
