//! CLI driver: `cargo run -p rflash-analyze -- <command>`.
//!
//! Commands:
//!   check [--root DIR]            run all rules over the workspace; exit 1
//!                                 on any violation
//!   check --json                  emit findings as a JSON array on stdout
//!                                 (exit codes unchanged)
//!   check --fixture FILE...       run the rules over standalone fixture
//!                                 files (honors their `//@ path:` header)
//!   inventory [--root DIR]        write unsafe_inventory.json at the root
//!   inventory --check             exit 1 if the committed inventory is
//!                                 stale (CI uses this)
//!   inventory --stdout            print the inventory instead of writing

use std::path::PathBuf;
use std::process::ExitCode;

use rflash_analyze as analyze;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("check") => cmd_check(&args[1..]),
        Some("inventory") => cmd_inventory(&args[1..]),
        Some(other) => usage(&format!("unknown command '{other}'")),
        None => usage("missing command"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("rflash-analyze: {err}");
    eprintln!("usage: rflash-analyze check [--root DIR] [--json] | check --fixture FILE...");
    eprintln!("       rflash-analyze inventory [--root DIR] [--check | --stdout]");
    ExitCode::from(2)
}

fn resolve_root(explicit: Option<PathBuf>) -> Result<PathBuf, ExitCode> {
    if let Some(r) = explicit {
        return Ok(r);
    }
    let cwd = std::env::current_dir().map_err(|e| {
        eprintln!("rflash-analyze: cannot read cwd: {e}");
        ExitCode::from(2)
    })?;
    analyze::find_workspace_root(&cwd).ok_or_else(|| {
        eprintln!("rflash-analyze: no [workspace] Cargo.toml above {}", cwd.display());
        ExitCode::from(2)
    })
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fixtures: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--fixture" => {
                fixtures.extend(it.by_ref().map(PathBuf::from));
            }
            other => return usage(&format!("unknown check flag '{other}'")),
        }
    }

    let violations = if fixtures.is_empty() {
        let root = match resolve_root(root) {
            Ok(r) => r,
            Err(code) => return code,
        };
        match analyze::check_workspace(&root) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("rflash-analyze: walking workspace failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut all = Vec::new();
        for f in &fixtures {
            match analyze::check_fixture(f) {
                Ok(v) => all.extend(v),
                Err(e) => {
                    eprintln!("rflash-analyze: reading {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        all
    };

    if json {
        println!("{}", findings_json(&violations));
    } else {
        for v in &violations {
            println!("{v}");
        }
    }
    if violations.is_empty() {
        eprintln!("rflash-analyze: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("rflash-analyze: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Findings as a JSON array — one object per violation, stable field order
/// (`file`, `line`, `rule`, `message`) so CI diffs are meaningful. Built by
/// hand: the analyzer deliberately has no serde dependency.
fn findings_json(violations: &[analyze::Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&v.rel),
            v.line,
            json_string(v.rule),
            json_string(&v.msg)
        ));
    }
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cmd_inventory(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut check = false;
    let mut stdout = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--check" => check = true,
            "--stdout" => stdout = true,
            other => return usage(&format!("unknown inventory flag '{other}'")),
        }
    }
    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let inv = match analyze::build_inventory(&root) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("rflash-analyze: building inventory failed: {e}");
            return ExitCode::from(2);
        }
    };
    let json = inv.to_json();
    let target = root.join(analyze::INVENTORY_FILE);

    if stdout {
        print!("{json}");
        return ExitCode::SUCCESS;
    }
    if check {
        return match std::fs::read_to_string(&target) {
            Ok(committed) if committed == json => {
                eprintln!(
                    "rflash-analyze: inventory up to date ({} sites, {} with SAFETY)",
                    inv.total(),
                    inv.with_safety()
                );
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!(
                    "rflash-analyze: {} is stale; regenerate with \
                     `cargo run -p rflash-analyze -- inventory`",
                    target.display()
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("rflash-analyze: reading {}: {e}", target.display());
                ExitCode::FAILURE
            }
        };
    }
    match std::fs::write(&target, &json) {
        Ok(()) => {
            eprintln!(
                "rflash-analyze: wrote {} ({} sites, {} with SAFETY)",
                target.display(),
                inv.total(),
                inv.with_safety()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rflash-analyze: writing {}: {e}", target.display());
            ExitCode::from(2)
        }
    }
}
