//! A minimal Rust lexer: just enough structure to audit sources safely.
//!
//! The rules in this crate key off identifiers and punctuation, so the lexer
//! must never mistake the *word* `mmap` inside a string literal, a comment,
//! or a doc example for a call site. It therefore understands line and
//! (nested) block comments, string/raw-string/byte-string literals, char
//! literals vs. lifetimes, and numeric literals — and deliberately nothing
//! more. Everything else comes out as single-character punctuation tokens.

/// One lexical token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `mmap`, `foo`).
    Ident(String),
    /// Single punctuation character (`{`, `#`, `!`, `:`…). Multi-character
    /// operators appear as consecutive tokens (`::` is two `:`).
    Punct(char),
    /// `// …` comment (including `///` and `//!` doc comments), text after
    /// the slashes, or `/* … */` comment body.
    Comment(String),
    /// Any string-like literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    StrLit,
    /// Character literal (`'x'`, `'\n'`).
    CharLit,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal, loosely consumed (`1_000u64`, `0xff`, `1e-3`).
    Number,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `true` iff this is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.ident() == Some(word)
    }

    /// `true` iff this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// `true` iff this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::Comment(_))
    }
}

/// Tokenize `src`. Never fails: unterminated constructs consume to EOF,
/// which is the forgiving behavior a lint pass wants (the compiler is the
/// authority on well-formedness; we only need to not misclassify).
pub fn tokenize(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Comment(text),
                    line,
                });
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Nested block comment; body may span lines.
                let start_line = line;
                let mut depth = 1;
                let mut j = i + 2;
                let body_start = j;
                while j < n && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let body_end = if depth == 0 { j - 2 } else { j };
                let text: String = chars[body_start..body_end.max(body_start)].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Comment(text),
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                i = consume_string(&chars, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::StrLit,
                    line,
                });
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`, `'\n'`).
                // A lifetime is a quote followed by an identifier that is NOT
                // closed by another quote.
                let next = chars.get(i + 1).copied();
                let is_lifetime = match next {
                    Some(c2) if c2.is_alphanumeric() || c2 == '_' => {
                        // Find end of the identifier run; lifetime iff no
                        // closing quote right after it.
                        let mut j = i + 1;
                        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                            j += 1;
                        }
                        !(j < n && chars[j] == '\'' && j == i + 2)
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    // Char literal: consume until unescaped closing quote.
                    let mut j = i + 1;
                    while j < n {
                        match chars[j] {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            '\n' => break, // malformed; bail at EOL
                            _ => j += 1,
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::CharLit,
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[start..j].iter().collect();
                // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#, c"…".
                let is_str_prefix = matches!(word.as_str(), "r" | "b" | "br" | "c" | "cr")
                    && j < n
                    && (chars[j] == '"' || chars[j] == '#');
                if is_str_prefix && lookahead_is_raw_or_plain_string(&chars, j) {
                    i = consume_prefixed_string(&chars, j, &mut line);
                    tokens.push(Token {
                        kind: TokenKind::StrLit,
                        line,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Ident(word),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                let mut seen_dot = false;
                while j < n {
                    let d = chars[j];
                    if d.is_alphanumeric() || d == '_' {
                        // Exponent sign: 1e-3 / 1E+9.
                        if (d == 'e' || d == 'E')
                            && j + 1 < n
                            && (chars[j + 1] == '+' || chars[j + 1] == '-')
                            && j + 2 < n
                            && chars[j + 2].is_ascii_digit()
                        {
                            j += 2;
                        }
                        j += 1;
                    } else if d == '.'
                        && !seen_dot
                        && j + 1 < n
                        && chars[j + 1].is_ascii_digit()
                    {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    line,
                });
                i = j;
            }
            other => {
                tokens.push(Token {
                    kind: TokenKind::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

/// After an `r`/`b`/`br`-style prefix ending at `j`, is this actually a
/// string literal (as opposed to, say, `r#foo` raw identifiers)?
fn lookahead_is_raw_or_plain_string(chars: &[char], mut j: usize) -> bool {
    let n = chars.len();
    while j < n && chars[j] == '#' {
        j += 1;
    }
    j < n && chars[j] == '"'
}

/// Consume a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote. Tracks embedded newlines.
fn consume_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let n = chars.len();
    let mut j = start + 1;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Consume a raw or prefixed string whose `#…"` run starts at `j` (just past
/// the alphabetic prefix). Handles `r"…"`, `r#"…"#`, `br##"…"##`, etc.
fn consume_prefixed_string(chars: &[char], mut j: usize, line: &mut usize) -> usize {
    let n = chars.len();
    let mut hashes = 0;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return j;
    }
    if hashes == 0 {
        // Plain prefixed string (b"…", c"…"): escapes apply. A raw string
        // (r"…") has no escapes, but `\` before `"` cannot appear unescaped
        // in valid raw strings anyway, so sharing the escape-aware path only
        // errs on the side of consuming more — acceptable for a linter.
        return consume_string(chars, j, line);
    }
    // Raw with hashes: scan for `"` followed by `hashes` `#`s.
    j += 1;
    while j < n {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut count = 0;
            while k < n && chars[k] == '#' && count < hashes {
                k += 1;
                count += 1;
            }
            if count == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn words_in_strings_and_comments_are_not_idents() {
        let src = r##"
            let a = "libc::mmap in a string";
            // a comment mentioning madvise
            /* block with munmap */
            let b = r#"raw mmap"#;
            call(real_ident);
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|w| w == "mmap" || w == "madvise" || w == "munmap"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { 'q': loop { break 'q; } }";
        let toks = tokenize(src);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime));
        // Everything after the lifetimes must still lex; `str` appears twice.
        assert_eq!(idents(src).iter().filter(|w| *w == "str").count(), 2);
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let toks = tokenize(r"let c = '\''; let d = 'x'; after");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::CharLit).count(), 2);
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = tokenize("/* outer /* inner */ still comment */ code");
        assert!(toks[0].is_comment());
        assert!(toks[1].is_ident("code"));
    }

    #[test]
    fn comment_text_is_captured() {
        let toks = tokenize("// SAFETY: the caller owns the mapping\nunsafe {}");
        match &toks[0].kind {
            TokenKind::Comment(text) => assert!(text.contains("SAFETY:")),
            other => panic!("expected comment, got {other:?}"),
        }
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line\none\ntwo\";\nlet t = 1;";
        let toks = tokenize(src);
        let t_line = toks
            .iter()
            .find(|t| t.is_ident("t"))
            .map(|t| t.line)
            .expect("t token");
        assert_eq!(t_line, 4);
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let src = r###"let s = r##"contains "quotes" and mmap"##; tail"###;
        let toks = tokenize(src);
        assert!(toks.iter().any(|t| t.is_ident("tail")));
        assert!(!toks.iter().any(|t| t.is_ident("mmap")));
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let src = "let x = 1_000u64 + 0xff + 1e-3 + 2.5f64; done";
        let toks = tokenize(src);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Number).count(), 4);
    }
}
