//@ path: crates/perfmon/src/hw.rs
// Fixture: the perfmon hardware backend is the one allowlisted non-hugepages
// user of libc — perf_event_open(2) plumbing, not an allocation path.
// Expected: clean.

fn read_counter(fd: i32) -> u64 {
    let mut v: u64 = 0;
    // SAFETY: fd is a live perf-event descriptor and the buffer is 8 bytes.
    let n = unsafe { libc::read(fd, (&mut v as *mut u64).cast(), 8) };
    if n == 8 {
        v
    } else {
        0
    }
}
