//@ path: crates/hydro/src/fixture.rs
// Fixture: hot-path panics suppressed by documented allow annotations, both
// placements (line above, same line).
// Expected: clean.

pub fn dispatch(dir: usize, x: Option<f64>) -> f64 {
    let v = match dir {
        0 | 1 | 2 => 1.0,
        // analyze::allow(panic): dir is bounded by the three-sweep driver.
        _ => panic!("dir < 3"),
    };
    v + x.unwrap() // analyze::allow(panic): x is Some for every caller in this fixture.
}
