//@ path: crates/core/src/stepgraph.rs
// Fixture: a step-graph task body staying inside the contract — slab and
// slot traffic through the claiming accessors only, with locals that happen
// to be named `slab` (an identifier, not a call) and prose mentioning the
// raw names. Expected: clean.

pub fn claimed_access(cells: &UnkCells, stage: &Slots, blk: usize) -> f64 {
    // the old body called cells.slab(blk) and stage.get(blk) directly
    // SAFETY: shared interior access per the declared graph edges.
    let slab = unsafe { cells.read_slab(blk, Region::Interior) };
    let v = slab[0];
    // SAFETY: exclusive stage-slot access via the stage-buffer resource.
    let st = unsafe { stage.write_slot(blk) };
    st.push(v);
    // SAFETY: exclusive interior write with ordered shared guard reads.
    let out = unsafe { cells.write_slab(blk, Region::Interior, Some(Region::Guards)) };
    out[0] = v;
    v
}
