//@ path: crates/hydro/src/pencil.rs
// Fixture: a pencil-confined module staying inside the contract — lane
// loops over gathered slices, gather/scatter at the edges, no per-cell
// accessors. Longer identifiers containing the forbidden words (base_addr,
// settle, getter-free `at`) must not trip the token matcher.
// Expected: clean.

pub fn advance_lane(geom: &UnkGeom, slab: &mut [f64], dens: &mut [f64], lo: usize, hi: usize) {
    geom.gather_pencil(slab, 0, 0, 2, 2, dens);
    for x in dens[lo..hi].iter_mut() {
        *x = (*x).max(1e-30);
    }
    geom.scatter_pencil(slab, 0, 0, 2, 2, lo..hi, dens);
}

pub fn table_span(t: &Table) -> usize {
    // base_addr contains "addr" as a substring but is its own identifier.
    t.base_addr() + t.bytes()
}
