//@ path: crates/hugepages/src/fixture.rs
// Fixture: raw page syscalls are fine inside the hugepages crate — that is
// exactly where the confinement rule routes them.
// Expected: clean.

fn grab(len: usize) -> *mut u8 {
    // SAFETY: anonymous private mapping; len is page-aligned by the caller.
    let p = unsafe {
        libc::mmap(
            core::ptr::null_mut(),
            len,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_HUGETLB,
            -1,
            0,
        )
    };
    p.cast()
}
