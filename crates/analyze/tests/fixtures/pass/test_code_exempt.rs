//@ path: crates/eos/src/fixture.rs
// Fixture: the panic rule skips #[cfg(test)] modules and #[test] fns even
// inside hot-path crates — tests are supposed to assert loudly.
// Expected: clean.

pub fn invert(x: f64) -> Result<f64, &'static str> {
    if x == 0.0 {
        return Err("zero");
    }
    Ok(1.0 / x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverts() {
        assert_eq!(invert(2.0).unwrap(), 0.5);
        invert(0.0).expect_err("zero must fail");
    }

    #[test]
    #[should_panic]
    fn panics_are_fine_here() {
        panic!("expected");
    }
}
