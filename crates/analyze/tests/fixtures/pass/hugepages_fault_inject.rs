//@ path: crates/hugepages/src/faults.rs
// Fixture: fault-injection plumbing lives inside the hugepages hot path, so
// it must stay panic-free outside tests — a malformed env spec degrades to
// "no plan" with a stderr note instead of unwrap/expect/panic!.
// Expected: clean.

fn plan_from_env(raw: Option<&str>) -> Option<Vec<(String, String)>> {
    let raw = raw?;
    let mut rules = Vec::new();
    for entry in raw.split(';') {
        match entry.split_once('=') {
            Some((site, kind)) => rules.push((site.to_string(), kind.to_string())),
            None => {
                eprintln!("ignoring malformed fault entry {entry:?}");
                return None;
            }
        }
    }
    Some(rules)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        // Tests are exempt from the panic-freedom rule.
        let rules = super::plan_from_env(Some("a=b")).unwrap();
        assert_eq!(rules.len(), 1);
    }
}
