// Fixture: every unsafe site carries a proper justification.
// Expected: clean.

fn deref(p: *const u64) -> u64 {
    // SAFETY: p is non-null and aligned; the caller keeps the allocation
    // alive for the duration of this call.
    unsafe { *p }
}

fn trailing(p: *const u64) -> u64 {
    unsafe { *p } // SAFETY: validated by the caller's bounds check.
}

/// Reads one element.
///
/// # Safety
/// `p` must point to a live, aligned `u64`.
pub unsafe fn read_raw(p: *const u64) -> u64 {
    // SAFETY: forwarded verbatim from this fn's own contract.
    unsafe { *p }
}

struct Zeroable(u64);

// SAFETY: every field of each listed type is valid for all bit patterns,
// so a shared comment covers the whole group.
unsafe impl Send for Zeroable {}
unsafe impl Sync for Zeroable {}
