//@ path: crates/core/src/guardian.rs
// Fixture: the step guardian's validate/rollback path is hot-path code —
// its whole point is turning bad states into typed errors, so it reports
// violations as values and lets the caller decide, never unwrap/panic!.
// Expected: clean.

pub struct Violation {
    pub block: usize,
    pub detail: String,
}

/// First unphysical zone, or `None` when the state is clean.
pub fn first_violation(dens: &[f64], floor: f64) -> Option<Violation> {
    for (block, &x) in dens.iter().enumerate() {
        if !x.is_finite() {
            return Some(Violation {
                block,
                detail: format!("dens = {x:e} is not finite"),
            });
        }
        if x <= floor {
            return Some(Violation {
                block,
                detail: format!("dens = {x:e} <= floor {floor:e}"),
            });
        }
    }
    None
}

/// Roll back refuses — with a value, not an abort — when the snapshot is
/// stale.
pub fn restore(epoch: u64, captured: Option<u64>) -> bool {
    match captured {
        Some(e) if e == epoch => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = super::first_violation(&[1.0, -2.0], 0.0).unwrap();
        assert_eq!(v.block, 1);
    }
}
