//@ path: crates/hydro/src/riemann.rs
// Fixture: kernel code staying inside the SIMD confinement contract — the
// lane math is generic over the portable `Lane` trait, backend selection
// is a `cfg(target_feature = ...)` *probe* (allowed anywhere; only the
// codegen-changing `#[target_feature(enable = ...)]` attribute is
// confined), and intrinsic names in prose never trip the token matcher.
// Expected: clean.

// the avx2 backend lowers Lane::mul_add to _mm256_fmadd_pd via core::arch

/// Build-time report of what the compile target already guarantees.
#[cfg(target_feature = "sse2")]
pub const BASELINE_SSE2: bool = true;

pub fn wave_speed<L: Lane>(dens: L, pres: L, gamc: L) -> L {
    gamc.mul(pres).div(dens).sqrt()
}

pub fn sum_lanes<L: Lane>(a: &[f64], b: &[f64], out: &mut [f64]) {
    let mut i = 0;
    while i + L::W <= out.len() {
        L::load(&a[i..]).add(L::load(&b[i..])).store(&mut out[i..]);
        i += L::W;
    }
}
