// Fixture: an unsafe block with no SAFETY justification anywhere near it.
// Expected: safety_comment.

fn deref(p: *const u64) -> u64 {
    unsafe { *p }
}

// A preceding comment that is not a SAFETY comment does not count.
fn also_bad(p: *mut u8) {
    // writes one byte
    unsafe {
        *p = 0;
    }
}
