//@ path: crates/core/src/guardian.rs
// Fixture: panic-capable calls on the guardian's rollback path. The
// guardian exists to degrade through bad states; aborting the process from
// inside it defeats the typed-StepError contract.
// Expected: panic (three sites: unwrap, expect, panic!).

pub fn rollback(snapshot: Option<&[f64]>, state: &mut [f64]) {
    let shadow = snapshot.unwrap();
    if shadow.len() != state.len() {
        panic!("snapshot shape drifted");
    }
    state.copy_from_slice(shadow);
}

pub fn halve_dt(dt: Option<f64>) -> f64 {
    dt.expect("a dt was computed") * 0.5
}
