//@ path: crates/core/src/stepgraph.rs
// Fixture: raw slab/slot accessors inside a step-graph task body. Every
// access in a graph task must flow through the claiming accessors
// (read_slab/write_slab/update_cell, read_slot/write_slot) so it lands in
// the race-audit ledger — a raw `.slab()`/`.slab_mut()`/`.get()` is an
// access the declared-vs-actual audit cannot see.
// Expected: graph_confinement (three sites).

pub fn leak_raw_access(cells: &UnkCells, stage: &Slots, blk: usize) -> f64 {
    // SAFETY: fixture stand-in; the real contract lives in the graph edges.
    let src = unsafe { cells.slab(blk) };
    // SAFETY: as above.
    let dst = unsafe { cells.slab_mut(blk + 1) };
    dst[0] = src[0];
    // SAFETY: as above.
    let st = unsafe { stage.get(blk) };
    st[0]
}
