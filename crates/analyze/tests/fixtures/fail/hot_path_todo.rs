//@ path: crates/eos/src/fixture.rs
// Fixture: unfinished-code macros in a hot-path crate.
// Expected: panic (todo! and unimplemented!).

pub fn call(mode: u8) -> f64 {
    match mode {
        0 => 1.0,
        1 => todo!(),
        _ => unimplemented!("mode {mode}"),
    }
}
