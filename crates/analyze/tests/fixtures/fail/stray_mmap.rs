//@ path: crates/mesh/src/stray.rs
// Fixture: raw page-level syscalls outside crates/hugepages.
// Expected: alloc_confinement (for `libc`, `mmap`, `MAP_HUGETLB`, `munmap`).

fn grab(len: usize) -> *mut u8 {
    // SAFETY: anonymous private mapping; len is page-aligned by the caller.
    let p = unsafe {
        libc::mmap(
            core::ptr::null_mut(),
            len,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_HUGETLB,
            -1,
            0,
        )
    };
    p.cast()
}

fn drop_it(p: *mut u8, len: usize) {
    // SAFETY: p came from grab() with the same len.
    unsafe {
        libc::munmap(p.cast(), len);
    }
}
