// Fixture: a well-formed allow with nothing to suppress.
// Expected: unused_allow.

// analyze::allow(panic): left behind after the unwrap was refactored away.
pub fn f(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}
