//@ path: crates/hydro/src/pencil.rs
// Fixture: per-cell unk accessors inside a pencil-confined module. The SoA
// engine must move cells through gather_pencil/scatter_pencil; a stray
// `get`/`set`/`addr`/`slab_idx` reintroduces the per-cell index arithmetic.
// Expected: pencil_confinement (four sites).

pub fn leak_per_cell(u: &mut Unk, v: usize, i: usize, j: usize, k: usize, b: usize) -> f64 {
    let x = u.get(v, i, j, k, b);
    u.set(v, i, j, k, b, x * 2.0);
    let base = u.geom().addr(v, i, j, k, b);
    let off = u.geom().slab_idx(v, i, j, k);
    (base + off) as f64
}
