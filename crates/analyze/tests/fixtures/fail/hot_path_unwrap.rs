//@ path: crates/hydro/src/fixture.rs
// Fixture: panic-capable calls in a hot-path crate, outside test code.
// Expected: panic (three sites: unwrap, expect, panic!).

pub fn riemann(left: Option<f64>, right: Option<f64>) -> f64 {
    let l = left.unwrap();
    let r = right.expect("right state");
    if l < 0.0 {
        panic!("negative density");
    }
    l + r
}
