//@ path: crates/eos/src/fixture.rs
// Fixture: malformed escape hatches.
// Expected: allow_syntax (unknown rule; missing reason), plus the panic
// violation the reasonless allow fails to suppress.

pub fn f(x: Option<u8>) -> u8 {
    // analyze::allow(everything): not a known rule id.
    // analyze::allow(panic)
    x.unwrap()
}
