//@ path: crates/hydro/src/riemann.rs
// Fixture: architecture intrinsics, a `#[target_feature]` wrapper, and a
// `core::arch` import leaking into a kernel crate. Vector code outside
// `crates/simd` must go through the portable `Lane` abstraction — a stray
// intrinsic forks the bit-identity contract per architecture and reopens
// an unsafe surface the simd crate exists to confine.
// Expected: simd_confinement (the `# Safety` doc section satisfies the
// safety_comment rule, so only the confinement rule trips).

use core::arch::x86_64::{__m256d, _mm256_add_pd};

/// Sums two AVX2 vectors without going through `Lane`.
///
/// # Safety
/// Caller must have verified AVX2 support.
#[target_feature(enable = "avx2")]
pub unsafe fn leak_avx2(a: __m256d, b: __m256d) -> __m256d {
    _mm256_add_pd(a, b)
}
