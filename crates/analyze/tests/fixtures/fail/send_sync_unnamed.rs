// Fixture: manual Send/Sync claims that name no invariant.
// Expected: send_sync (missing comment on Send, too-thin comment on Sync).

struct Handle(*mut u8);

unsafe impl Send for Handle {}

// SAFETY: fine.
unsafe impl Sync for Handle {}
