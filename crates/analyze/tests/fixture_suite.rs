//! Fixture-driven end-to-end tests for the analyzer.
//!
//! Every file under `tests/fixtures/fail/` must produce exactly the rule set
//! registered here; every file under `tests/fixtures/pass/` must check
//! clean; and the real workspace must itself pass with a fresh inventory
//! matching the committed baseline. The CLI is exercised through
//! `CARGO_BIN_EXE` so the exit codes CI depends on are pinned by tests.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use rflash_analyze::{build_inventory, check_fixture, check_workspace, find_workspace_root};

/// Expected rule ids per fail fixture. A fixture on disk that is missing
/// from this table fails `every_fail_fixture_is_registered`.
const EXPECTED: &[(&str, &[&str])] = &[
    ("allow_bad_syntax.rs", &["allow_syntax", "panic"]),
    ("allow_unused.rs", &["unused_allow"]),
    ("guardian_abort_panics.rs", &["panic"]),
    ("hot_path_todo.rs", &["panic"]),
    ("hot_path_unwrap.rs", &["panic"]),
    ("pencil_cell_access.rs", &["pencil_confinement"]),
    ("send_sync_unnamed.rs", &["send_sync"]),
    ("simd_intrinsic_leak.rs", &["simd_confinement"]),
    ("stepgraph_raw_slab.rs", &["graph_confinement"]),
    ("stray_mmap.rs", &["alloc_confinement"]),
    ("unsafe_missing_safety.rs", &["safety_comment"]),
];

fn fixtures(sub: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(sub);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures under {}", dir.display());
    files
}

fn file_name(p: &Path) -> &str {
    p.file_name().and_then(|n| n.to_str()).expect("utf-8 name")
}

#[test]
fn every_fail_fixture_trips_exactly_its_rules() {
    for path in fixtures("fail") {
        let name = file_name(&path);
        let expected: BTreeSet<&str> = EXPECTED
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("fixture {name} not registered in EXPECTED"))
            .1
            .iter()
            .copied()
            .collect();
        let violations = check_fixture(&path).expect("fixture readable");
        assert!(!violations.is_empty(), "{name}: expected violations, got none");
        let got: BTreeSet<&str> = violations.iter().map(|v| v.rule).collect();
        assert_eq!(got, expected, "{name}: wrong rule set — {violations:?}");
    }
}

#[test]
fn every_fail_fixture_is_registered() {
    let on_disk: BTreeSet<String> = fixtures("fail")
        .iter()
        .map(|p| file_name(p).to_string())
        .collect();
    let registered: BTreeSet<String> = EXPECTED.iter().map(|(n, _)| n.to_string()).collect();
    assert_eq!(on_disk, registered);
}

#[test]
fn every_pass_fixture_is_clean() {
    for path in fixtures("pass") {
        let violations = check_fixture(&path).expect("fixture readable");
        assert!(
            violations.is_empty(),
            "{}: expected clean, got {violations:?}",
            file_name(&path)
        );
    }
}

#[test]
fn real_workspace_passes_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let violations = check_workspace(&root).expect("workspace walk");
    assert!(violations.is_empty(), "workspace is not clean: {violations:#?}");
}

#[test]
fn committed_inventory_matches_fresh_build() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let committed = std::fs::read_to_string(root.join(rflash_analyze::INVENTORY_FILE))
        .expect("committed unsafe_inventory.json at workspace root — regenerate with `cargo run -p rflash-analyze -- inventory`");
    let fresh = build_inventory(&root).expect("inventory build").to_json();
    assert_eq!(
        committed, fresh,
        "unsafe_inventory.json is stale — regenerate with `cargo run -p rflash-analyze -- inventory`"
    );
}

// ---- CLI exit codes (what CI scripts against) --------------------------

fn run_cli(args: &[&str]) -> i32 {
    run_cli_output(args).0
}

fn run_cli_output(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rflash-analyze"))
        .args(args)
        .output()
        .expect("spawn rflash-analyze");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
    )
}

#[test]
fn cli_check_is_zero_on_workspace_and_pass_fixtures() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    assert_eq!(run_cli(&["check", "--root", root.to_str().expect("utf-8 root")]), 0);
    for path in fixtures("pass") {
        let p = path.to_str().expect("utf-8 path");
        assert_eq!(run_cli(&["check", "--fixture", p]), 0, "{p}");
    }
}

#[test]
fn cli_check_is_nonzero_on_each_fail_fixture() {
    for path in fixtures("fail") {
        let p = path.to_str().expect("utf-8 path");
        assert_eq!(run_cli(&["check", "--fixture", p]), 1, "{p}");
    }
}

#[test]
fn cli_check_json_keeps_exit_codes_and_emits_parseable_findings() {
    // Clean run: exit 0 and an empty JSON array.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let (code, stdout) = run_cli_output(&["check", "--json", "--root", root.to_str().expect("utf-8 root")]);
    assert_eq!(code, 0);
    let parsed: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON");
    assert_eq!(parsed.as_array().expect("array").len(), 0, "{stdout}");

    // Failing run: exit 1 (unchanged) and one object per violation with the
    // documented fields.
    for path in fixtures("fail") {
        let p = path.to_str().expect("utf-8 path");
        let (code, stdout) = run_cli_output(&["check", "--json", "--fixture", p]);
        assert_eq!(code, 1, "{p}");
        let parsed: serde_json::Value = serde_json::from_str(stdout.trim())
            .unwrap_or_else(|e| panic!("{p}: invalid JSON ({e}): {stdout}"));
        let arr = parsed.as_array().expect("array");
        assert!(!arr.is_empty(), "{p}: expected findings in {stdout}");
        for f in arr {
            for field in ["file", "line", "rule", "message"] {
                assert!(f.get(field).is_some(), "{p}: finding missing '{field}': {f:?}");
            }
        }
    }
}

#[test]
fn cli_inventory_check_accepts_committed_baseline() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let root = root.to_str().expect("utf-8 root");
    assert_eq!(run_cli(&["inventory", "--root", root, "--check"]), 0);
}
