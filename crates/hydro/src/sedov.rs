//! Analytic Sedov–Taylor point-explosion solution.
//!
//! The self-similar blast wave: a point energy `E₀` released at t = 0 in a
//! cold uniform medium of density ρ₀ drives a shock at
//! `R(t) = ξ₀ (E₀ t² / ρ₀)^{1/(ν+2)}` (ν = 2 cylindrical, 3 spherical).
//! We integrate the similarity ODEs numerically from the strong-shock
//! boundary conditions inward and fix ξ₀ from the energy integral — no
//! tabulated magic constants (the classic ξ₀(γ=1.4, ν=3) = 1.0328 emerges
//! as a test).
//!
//! Scalings: with δ = 2/(ν+2), ξ = r/R(t),
//! `u = δ (r/t) V(ξ)`, `c² = δ² (r/t)² Z(ξ)`, `ρ = ρ₀ G(ξ)`,
//! `p = ρ c² / γ`.

/// Integrated similarity profile plus normalization.
#[derive(Clone, Debug)]
pub struct SedovSolution {
    pub gamma: f64,
    /// Geometry index ν (2 or 3).
    pub nu: usize,
    pub e0: f64,
    pub rho0: f64,
    /// Ambient pressure (only used for the exterior state).
    pub p_ambient: f64,
    xi0: f64,
    /// Profile samples from ξ ≈ 0 to 1: (ξ, V, Z, G).
    profile: Vec<[f64; 4]>,
}

/// Solve a 3×3 linear system by Gaussian elimination with partial pivoting.
fn solve3(a: [[f64; 3]; 3], b: [f64; 3]) -> [f64; 3] {
    let mut m = [[0.0; 4]; 3];
    for r in 0..3 {
        m[r][..3].copy_from_slice(&a[r]);
        m[r][3] = b[r];
    }
    for col in 0..3 {
        let mut piv = col;
        for r in col + 1..3 {
            if m[r][col].abs() > m[piv][col].abs() {
                piv = r;
            }
        }
        m.swap(col, piv);
        let p = m[col][col];
        assert!(p.abs() > 1e-300, "singular similarity system");
        let prow = m[col];
        for (r, row) in m.iter_mut().enumerate() {
            if r != col {
                let f = row[col] / p;
                for (mc, &pc) in row.iter_mut().zip(&prow).skip(col) {
                    *mc -= f * pc;
                }
            }
        }
    }
    [m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]]
}

impl SedovSolution {
    /// Integrate the similarity ODEs and normalize via the energy integral.
    pub fn new(gamma: f64, nu: usize, e0: f64, rho0: f64, p_ambient: f64) -> SedovSolution {
        assert!(nu == 2 || nu == 3);
        assert!(gamma > 1.0 && gamma < 3.0);
        let delta = 2.0 / (nu as f64 + 2.0);
        let g = gamma;

        // Strong-shock boundary values at ξ = 1.
        let mut v = 2.0 / (g + 1.0);
        let mut z = 2.0 * g * (g - 1.0) / ((g + 1.0) * (g + 1.0));
        let mut ln_g = ((g + 1.0) / (g - 1.0)).ln();

        // d/dη of (V, Z, lnG) from the three similarity ODEs (continuity,
        // momentum, entropy advection), which are linear in the derivatives.
        let nuf = nu as f64;
        let derivs = |v: f64, z: f64| -> [f64; 3] {
            let a = [
                // continuity: dV + (V−1) dlnG = −νV
                [1.0, 0.0, v - 1.0],
                // momentum: δ(V−1) dV + (δ/γ) dZ + (δZ/γ) dlnG
                //           = −V(δV−1) − 2δZ/γ
                [delta * (v - 1.0), delta / g, delta * z / g],
                // entropy: (δ(V−1)/Z) dZ + δ(V−1)(1−γ) dlnG = 2(1−δV)
                [0.0, delta * (v - 1.0) / z, delta * (v - 1.0) * (1.0 - g)],
            ];
            let b = [
                -nuf * v,
                -v * (delta * v - 1.0) - 2.0 * delta * z / g,
                2.0 * (1.0 - delta * v),
            ];
            solve3(a, b)
        };

        // RK4 from η = 0 inward to η = −12 (ξ ≈ 6×10⁻⁶).
        let steps = 6000;
        let h = -12.0 / steps as f64;
        let mut profile = Vec::with_capacity(steps + 1);
        profile.push([1.0, v, z, ln_g.exp()]);
        let mut eta = 0.0;
        for _ in 0..steps {
            let y = [v, z, ln_g];
            let k1 = derivs(y[0], y[1]);
            let k2 = derivs(y[0] + 0.5 * h * k1[0], y[1] + 0.5 * h * k1[1]);
            let k3 = derivs(y[0] + 0.5 * h * k2[0], y[1] + 0.5 * h * k2[1]);
            let k4 = derivs(y[0] + h * k3[0], y[1] + h * k3[1]);
            v += h / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]);
            z += h / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1]);
            ln_g += h / 6.0 * (k1[2] + 2.0 * k2[2] + 2.0 * k3[2] + k4[2]);
            eta += h;
            profile.push([eta.exp(), v, z.max(0.0), ln_g.exp()]);
        }
        profile.reverse(); // ascending ξ

        // Energy integral I = ∫₀¹ [G V²/2 + G Z /(γ(γ−1))] ξ^{ν+1} dξ by
        // the trapezoid rule on the (log-spaced) profile.
        let integrand = |s: &[f64; 4]| -> f64 {
            let (xi, v, z, gg) = (s[0], s[1], s[2], s[3]);
            (gg * v * v / 2.0 + gg * z / (g * (g - 1.0))) * xi.powi(nu as i32 + 1)
        };
        let mut i_energy = 0.0;
        for w in profile.windows(2) {
            let dxi = w[1][0] - w[0][0];
            i_energy += 0.5 * (integrand(&w[0]) + integrand(&w[1])) * dxi;
        }
        let s_nu = match nu {
            2 => 2.0 * std::f64::consts::PI,
            _ => 4.0 * std::f64::consts::PI,
        };
        let xi0 = (s_nu * delta * delta * i_energy).powf(-1.0 / (nuf + 2.0));

        SedovSolution {
            gamma,
            nu,
            e0,
            rho0,
            p_ambient,
            xi0,
            profile,
        }
    }

    /// The dimensionless shock-position constant ξ₀.
    pub fn xi0(&self) -> f64 {
        self.xi0
    }

    /// Shock radius at time t.
    pub fn shock_radius(&self, t: f64) -> f64 {
        self.xi0 * (self.e0 * t * t / self.rho0).powf(1.0 / (self.nu as f64 + 2.0))
    }

    /// Shock speed at time t.
    pub fn shock_speed(&self, t: f64) -> f64 {
        2.0 / (self.nu as f64 + 2.0) * self.shock_radius(t) / t
    }

    /// Interpolate the similarity profile at ξ ∈ [0, 1] → (V, Z, G).
    fn interp(&self, xi: f64) -> [f64; 3] {
        let p = &self.profile;
        if xi <= p[0][0] {
            return [p[0][1], p[0][2], p[0][3]];
        }
        if xi >= 1.0 {
            if let Some(last) = p.last() {
                return [last[1], last[2], last[3]];
            }
        }
        let idx = p.partition_point(|s| s[0] < xi).max(1);
        let (a, b) = (&p[idx - 1], &p[idx]);
        let f = (xi - a[0]) / (b[0] - a[0]).max(1e-300);
        [
            a[1] + f * (b[1] - a[1]),
            a[2] + f * (b[2] - a[2]),
            a[3] + f * (b[3] - a[3]),
        ]
    }

    /// (ρ, u_radial, p) at radius r and time t.
    pub fn state(&self, r: f64, t: f64) -> (f64, f64, f64) {
        let rs = self.shock_radius(t);
        if r >= rs || t <= 0.0 {
            return (self.rho0, 0.0, self.p_ambient);
        }
        let xi = r / rs;
        let [v, z, gg] = self.interp(xi);
        let delta = 2.0 / (self.nu as f64 + 2.0);
        let u = delta * (r / t) * v;
        let rho = self.rho0 * gg;
        let c2 = (delta * r / t).powi(2) * z;
        let p = rho * c2 / self.gamma;
        (rho, u, p.max(self.p_ambient))
    }

    /// Post-shock (immediately inside the shock) density — the strong-shock
    /// limit (γ+1)/(γ−1)·ρ₀.
    pub fn post_shock_density(&self) -> f64 {
        self.rho0 * (self.gamma + 1.0) / (self.gamma - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_xi0_for_gamma_1_4_spherical() {
        let s = SedovSolution::new(1.4, 3, 1.0, 1.0, 1e-12);
        // Sedov's classical value: 1.03279…
        assert!(
            (s.xi0() - 1.0328).abs() < 3e-3,
            "xi0 = {} (expected ≈1.0328)",
            s.xi0()
        );
    }

    #[test]
    fn xi0_for_gamma_5_3() {
        let s = SedovSolution::new(5.0 / 3.0, 3, 1.0, 1.0, 1e-12);
        // Literature value ≈ 1.152.
        assert!((s.xi0() - 1.152).abs() < 5e-3, "xi0 = {}", s.xi0());
    }

    #[test]
    fn shock_radius_scales_as_t_to_two_fifths() {
        let s = SedovSolution::new(1.4, 3, 1e51, 1e-24, 1e-12);
        let r1 = s.shock_radius(1.0e10);
        let r2 = s.shock_radius(2.0e10);
        assert!((r2 / r1 - 2f64.powf(0.4)).abs() < 1e-12);
    }

    #[test]
    fn mass_is_conserved_inside_the_shock() {
        // ∫₀¹ G ξ^{ν−1} dξ = 1/ν: swept-up mass equals interior mass.
        for (gamma, nu) in [(1.4, 3usize), (5.0 / 3.0, 3), (1.4, 2)] {
            let s = SedovSolution::new(gamma, nu, 1.0, 1.0, 1e-12);
            let mut m = 0.0;
            for w in s.profile.windows(2) {
                let f = |p: &[f64; 4]| p[3] * p[0].powi(nu as i32 - 1);
                m += 0.5 * (f(&w[0]) + f(&w[1])) * (w[1][0] - w[0][0]);
            }
            let expect = 1.0 / nu as f64;
            assert!(
                (m - expect).abs() / expect < 2e-3,
                "gamma={gamma} nu={nu}: {m} vs {expect}"
            );
        }
    }

    #[test]
    fn jump_conditions_at_the_shock() {
        let s = SedovSolution::new(1.4, 3, 1.0, 1.0, 1e-12);
        let t = 1.0;
        let rs = s.shock_radius(t);
        // Sample very close to the front — the density profile falls
        // steeply behind it (G(0.999) is already ≈ 5.88).
        let (rho, u, p) = s.state(rs * 0.99999, t);
        // Strong-shock density jump: 6 for γ = 1.4.
        assert!((rho - 6.0).abs() < 0.05, "rho2 = {rho}");
        // Post-shock velocity: 2Ṙ/(γ+1).
        let expect_u = 2.0 / 2.4 * s.shock_speed(t);
        assert!((u - expect_u).abs() / expect_u < 2e-2, "{u} vs {expect_u}");
        // Post-shock pressure: 2ρ₀Ṙ²/(γ+1).
        let expect_p = 2.0 / 2.4 * s.shock_speed(t).powi(2);
        assert!((p - expect_p).abs() / expect_p < 2e-2, "{p} vs {expect_p}");
    }

    #[test]
    fn ambient_beyond_the_shock() {
        let s = SedovSolution::new(1.4, 3, 1.0, 2.0, 3e-9);
        let (rho, u, p) = s.state(10.0 * s.shock_radius(1.0), 1.0);
        assert_eq!((rho, u, p), (2.0, 0.0, 3e-9));
    }

    #[test]
    fn density_vanishes_toward_the_center() {
        let s = SedovSolution::new(1.4, 3, 1.0, 1.0, 1e-12);
        let (rho_c, _, _) = s.state(1e-4 * s.shock_radius(1.0), 1.0);
        assert!(rho_c < 1e-3, "hollow interior: {rho_c}");
        // And monotone outward.
        let mut prev = 0.0;
        for frac in [0.2, 0.4, 0.6, 0.8, 0.99] {
            let (rho, _, _) = s.state(frac * s.shock_radius(1.0), 1.0);
            assert!(rho >= prev);
            prev = rho;
        }
    }

    #[test]
    fn pressure_tends_to_finite_center_value() {
        // The Sedov interior has nearly uniform pressure ≈ 0.3–0.5 of the
        // post-shock value.
        let s = SedovSolution::new(1.4, 3, 1.0, 1.0, 1e-12);
        let t = 1.0;
        let (_, _, p_shock) = s.state(0.999 * s.shock_radius(t), t);
        let (_, _, p_center) = s.state(0.05 * s.shock_radius(t), t);
        let ratio = p_center / p_shock;
        assert!(
            (0.2..0.6).contains(&ratio),
            "central pressure plateau ratio {ratio}"
        );
    }
}
