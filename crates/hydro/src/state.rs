//! Primitive and conserved state vectors for one zone.

use crate::NFLUX;

/// Primitive state in the sweep frame: `vel[0]` is the sweep-normal
/// velocity, `vel[1..]` are transverse.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prim {
    pub dens: f64,
    pub vel: [f64; 3],
    pub pres: f64,
    /// Specific total energy (internal + kinetic).
    pub ener: f64,
    /// First adiabatic index Γ₁ at this zone (from the EOS).
    pub gamc: f64,
}

impl Prim {
    /// Adiabatic sound speed.
    #[inline]
    pub fn sound_speed(&self) -> f64 {
        (self.gamc * self.pres / self.dens).max(0.0).sqrt()
    }

    /// Conserved vector (ρ, ρu, ρv, ρw, ρE).
    #[inline]
    pub fn to_cons(&self) -> [f64; NFLUX] {
        [
            self.dens,
            self.dens * self.vel[0],
            self.dens * self.vel[1],
            self.dens * self.vel[2],
            self.dens * self.ener,
        ]
    }

    /// Physical flux through a face normal to the sweep direction.
    #[inline]
    pub fn flux(&self) -> [f64; NFLUX] {
        let u = self.vel[0];
        let m = self.to_cons();
        [
            m[0] * u,
            m[1] * u + self.pres,
            m[2] * u,
            m[3] * u,
            (m[4] + self.pres) * u,
        ]
    }

    /// Kinetic specific energy.
    #[inline]
    pub fn ekin(&self) -> f64 {
        0.5 * (self.vel[0] * self.vel[0] + self.vel[1] * self.vel[1] + self.vel[2] * self.vel[2])
    }
}

/// Recover velocity and specific total energy from a conserved vector;
/// density floors protect against vacuum states created by strong
/// rarefactions (FLASH's `smlrho`).
#[inline]
pub fn cons_to_vel_ener(u: &[f64; NFLUX], dens_floor: f64) -> (f64, [f64; 3], f64) {
    let dens = u[0].max(dens_floor);
    let inv = 1.0 / dens;
    let vel = [u[1] * inv, u[2] * inv, u[3] * inv];
    let ener = u[4] * inv;
    (dens, vel, ener)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim() -> Prim {
        Prim {
            dens: 2.0,
            vel: [3.0, -1.0, 0.5],
            pres: 10.0,
            ener: 20.0,
            gamc: 5.0 / 3.0,
        }
    }

    #[test]
    fn cons_round_trip() {
        let p = prim();
        let u = p.to_cons();
        let (dens, vel, ener) = cons_to_vel_ener(&u, 1e-30);
        assert_eq!(dens, p.dens);
        assert_eq!(vel, p.vel);
        assert_eq!(ener, p.ener);
    }

    #[test]
    fn flux_is_consistent_with_rankine_hugoniot_trivial_case() {
        // At rest: only the pressure terms survive.
        let p = Prim {
            dens: 1.0,
            vel: [0.0; 3],
            pres: 7.0,
            ener: 10.0,
            gamc: 1.4,
        };
        let f = p.flux();
        assert_eq!(f, [0.0, 7.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn sound_speed_matches_formula() {
        let p = prim();
        assert!((p.sound_speed() - (5.0 / 3.0 * 10.0 / 2.0f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn density_floor_applies() {
        let u = [0.0, 0.0, 0.0, 0.0, 0.0];
        let (dens, _, _) = cons_to_vel_ener(&u, 1e-10);
        assert_eq!(dens, 1e-10);
    }

    #[test]
    fn ekin() {
        let p = prim();
        assert!((p.ekin() - 0.5 * (9.0 + 1.0 + 0.25)).abs() < 1e-14);
    }
}
