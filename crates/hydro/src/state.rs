//! Primitive and conserved state vectors for one zone, plus the
//! lane-generic twin [`PrimL`] holding `W` zones' states in packed lanes
//! for the pencil engine's SIMD path. The twin replicates [`Prim`]'s
//! operation order exactly so both are bit-identical per lane.

use crate::NFLUX;
use rflash_simd::Lane;

/// Primitive state in the sweep frame: `vel[0]` is the sweep-normal
/// velocity, `vel[1..]` are transverse.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prim {
    pub dens: f64,
    pub vel: [f64; 3],
    pub pres: f64,
    /// Specific total energy (internal + kinetic).
    pub ener: f64,
    /// First adiabatic index Γ₁ at this zone (from the EOS).
    pub gamc: f64,
}

impl Prim {
    /// Adiabatic sound speed.
    #[cfg_attr(debug_assertions, inline)]
    #[cfg_attr(not(debug_assertions), inline(always))]
    pub fn sound_speed(&self) -> f64 {
        (self.gamc * self.pres / self.dens).max(0.0).sqrt()
    }

    /// Conserved vector (ρ, ρu, ρv, ρw, ρE).
    #[cfg_attr(debug_assertions, inline)]
    #[cfg_attr(not(debug_assertions), inline(always))]
    pub fn to_cons(&self) -> [f64; NFLUX] {
        [
            self.dens,
            self.dens * self.vel[0],
            self.dens * self.vel[1],
            self.dens * self.vel[2],
            self.dens * self.ener,
        ]
    }

    /// Physical flux through a face normal to the sweep direction.
    #[cfg_attr(debug_assertions, inline)]
    #[cfg_attr(not(debug_assertions), inline(always))]
    pub fn flux(&self) -> [f64; NFLUX] {
        let u = self.vel[0];
        let m = self.to_cons();
        [
            m[0] * u,
            m[1] * u + self.pres,
            m[2] * u,
            m[3] * u,
            (m[4] + self.pres) * u,
        ]
    }

    /// Kinetic specific energy.
    #[cfg_attr(debug_assertions, inline)]
    #[cfg_attr(not(debug_assertions), inline(always))]
    pub fn ekin(&self) -> f64 {
        0.5 * (self.vel[0] * self.vel[0] + self.vel[1] * self.vel[1] + self.vel[2] * self.vel[2])
    }
}

/// Recover velocity and specific total energy from a conserved vector;
/// density floors protect against vacuum states created by strong
/// rarefactions (FLASH's `smlrho`).
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
pub fn cons_to_vel_ener(u: &[f64; NFLUX], dens_floor: f64) -> (f64, [f64; 3], f64) {
    let dens = u[0].max(dens_floor);
    let inv = 1.0 / dens;
    let vel = [u[1] * inv, u[2] * inv, u[3] * inv];
    let ener = u[4] * inv;
    (dens, vel, ener)
}

/// [`Prim`] over `W` packed zones — the lane-generic twin used by the
/// pencil engine under dispatch. Each method mirrors the scalar method's
/// operation order; `sound_speed`'s `max(0.0)` uses the lane select-`max`,
/// which agrees bitwise with `f64::max` here because the argument is a
/// product/quotient of positive floored quantities (never NaN, and a zero
/// from underflow is positive).
#[derive(Clone, Copy, Debug)]
pub struct PrimL<L: Lane> {
    pub dens: L,
    pub vel: [L; 3],
    pub pres: L,
    pub ener: L,
    pub gamc: L,
}

impl<L: Lane> PrimL<L> {
    /// Adiabatic sound speed (twin of [`Prim::sound_speed`]).
    #[cfg_attr(debug_assertions, inline)]
    #[cfg_attr(not(debug_assertions), inline(always))]
    pub fn sound_speed(&self) -> L {
        self.gamc
            .mul(self.pres)
            .div(self.dens)
            .max(L::splat(0.0))
            .sqrt()
    }

    /// Conserved vector (twin of [`Prim::to_cons`]).
    #[cfg_attr(debug_assertions, inline)]
    #[cfg_attr(not(debug_assertions), inline(always))]
    pub fn to_cons(&self) -> [L; NFLUX] {
        [
            self.dens,
            self.dens.mul(self.vel[0]),
            self.dens.mul(self.vel[1]),
            self.dens.mul(self.vel[2]),
            self.dens.mul(self.ener),
        ]
    }

    /// Physical flux (twin of [`Prim::flux`]).
    #[cfg_attr(debug_assertions, inline)]
    #[cfg_attr(not(debug_assertions), inline(always))]
    pub fn flux(&self) -> [L; NFLUX] {
        let u = self.vel[0];
        let m = self.to_cons();
        [
            m[0].mul(u),
            m[1].mul(u).add(self.pres),
            m[2].mul(u),
            m[3].mul(u),
            m[4].add(self.pres).mul(u),
        ]
    }

    /// Kinetic specific energy (twin of [`Prim::ekin`]).
    #[cfg_attr(debug_assertions, inline)]
    #[cfg_attr(not(debug_assertions), inline(always))]
    pub fn ekin(&self) -> L {
        L::splat(0.5).mul(
            self.vel[0]
                .mul(self.vel[0])
                .add(self.vel[1].mul(self.vel[1]))
                .add(self.vel[2].mul(self.vel[2])),
        )
    }
}

/// Twin of [`cons_to_vel_ener`]. The density floor's `max` sees a positive
/// floor constant, where the lane select-`max` equals `f64::max` bitwise
/// (NaN/−0 in the first operand both yield the floor in either form).
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
pub fn cons_to_vel_ener_lanes<L: Lane>(u: &[L; NFLUX], dens_floor: L) -> (L, [L; 3], L) {
    let dens = u[0].max(dens_floor);
    let inv = L::splat(1.0).div(dens);
    let vel = [u[1].mul(inv), u[2].mul(inv), u[3].mul(inv)];
    let ener = u[4].mul(inv);
    (dens, vel, ener)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim() -> Prim {
        Prim {
            dens: 2.0,
            vel: [3.0, -1.0, 0.5],
            pres: 10.0,
            ener: 20.0,
            gamc: 5.0 / 3.0,
        }
    }

    #[test]
    fn cons_round_trip() {
        let p = prim();
        let u = p.to_cons();
        let (dens, vel, ener) = cons_to_vel_ener(&u, 1e-30);
        assert_eq!(dens, p.dens);
        assert_eq!(vel, p.vel);
        assert_eq!(ener, p.ener);
    }

    #[test]
    fn flux_is_consistent_with_rankine_hugoniot_trivial_case() {
        // At rest: only the pressure terms survive.
        let p = Prim {
            dens: 1.0,
            vel: [0.0; 3],
            pres: 7.0,
            ener: 10.0,
            gamc: 1.4,
        };
        let f = p.flux();
        assert_eq!(f, [0.0, 7.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn sound_speed_matches_formula() {
        let p = prim();
        assert!((p.sound_speed() - (5.0 / 3.0 * 10.0 / 2.0f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn density_floor_applies() {
        let u = [0.0, 0.0, 0.0, 0.0, 0.0];
        let (dens, _, _) = cons_to_vel_ener(&u, 1e-10);
        assert_eq!(dens, 1e-10);
    }

    #[test]
    fn ekin() {
        let p = prim();
        assert!((p.ekin() - 0.5 * (9.0 + 1.0 + 0.25)).abs() < 1e-14);
    }
}
