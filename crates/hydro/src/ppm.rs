//! Piecewise-parabolic reconstruction (Colella & Woodward 1984) with
//! monotonization and shock flattening, as in FLASH's split PPM unit.
//!
//! Operates on 1-d pencils of zone averages and produces limited left/right
//! interface states per zone.

/// Left/right face values of one zone's parabola.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FacePair {
    /// Value at the zone's low (left) face.
    pub minus: f64,
    /// Value at the zone's high (right) face.
    pub plus: f64,
}

/// Fourth-order interface value between zones `i` and `i+1`
/// (CW84 eq. 1.6 on a uniform grid), using limited slopes.
fn interface_value(a: &[f64], i: usize) -> f64 {
    // a[i-1], a[i], a[i+1], a[i+2] must exist.
    let da_i = limited_slope(a, i);
    let da_ip = limited_slope(a, i + 1);
    0.5 * (a[i] + a[i + 1]) - (da_ip - da_i) / 6.0
}

/// CW84 monotonized central slope (eq. 1.8).
fn limited_slope(a: &[f64], i: usize) -> f64 {
    let d = 0.5 * (a[i + 1] - a[i - 1]);
    let dl = a[i] - a[i - 1];
    let dr = a[i + 1] - a[i];
    if dl * dr > 0.0 {
        let lim = 2.0 * dl.abs().min(dr.abs());
        d.signum() * d.abs().min(lim)
    } else {
        0.0
    }
}

/// One zone's limited parabola face values — the per-zone kernel shared by
/// [`reconstruct`] and [`reconstruct_into`] so both are bit-identical.
#[inline]
fn reconstruct_zone(a: &[f64], i: usize, f: f64) -> (f64, f64) {
    let mut am = interface_value(a, i - 1);
    let mut ap = interface_value(a, i);

    // Blend toward the cell average where the flattening detector fired.
    am = f * am + (1.0 - f) * a[i];
    ap = f * ap + (1.0 - f) * a[i];

    // CW84 monotonization (eq. 1.10).
    if (ap - a[i]) * (a[i] - am) <= 0.0 {
        am = a[i];
        ap = a[i];
    } else {
        let d = ap - am;
        let six = 6.0 * (a[i] - 0.5 * (am + ap));
        if d * six > d * d {
            am = 3.0 * a[i] - 2.0 * ap;
        } else if -d * d > d * six {
            ap = 3.0 * a[i] - 2.0 * am;
        }
    }
    (am, ap)
}

/// Reconstruct limited parabola face values for zones
/// `lo..hi` of the pencil `a` (needs 2 ghost zones each side of that
/// range). `flat[i]` ∈ \[0,1\] blends toward first order at shocks (1 = keep
/// the parabola, 0 = flat).
pub fn reconstruct(a: &[f64], lo: usize, hi: usize, flat: &[f64], out: &mut [FacePair]) {
    assert!(lo >= 2 && hi + 2 <= a.len());
    assert_eq!(out.len(), a.len());
    for i in lo..hi {
        let (am, ap) = reconstruct_zone(a, i, flat[i]);
        out[i] = FacePair {
            minus: am,
            plus: ap,
        };
    }
}

/// [`reconstruct`] writing into separate minus/plus lanes — the SoA form
/// used by the pencil sweep engine (face lanes live in arena scratch, not a
/// `Vec<FacePair>`). Values are bit-identical to [`reconstruct`].
pub fn reconstruct_into(
    a: &[f64],
    lo: usize,
    hi: usize,
    flat: &[f64],
    minus: &mut [f64],
    plus: &mut [f64],
) {
    assert!(lo >= 2 && hi + 2 <= a.len());
    assert!(minus.len() == a.len() && plus.len() == a.len());
    for i in lo..hi {
        let (am, ap) = reconstruct_zone(a, i, flat[i]);
        minus[i] = am;
        plus[i] = ap;
    }
}

/// CW84-style shock flattening coefficient per zone, from the pressure and
/// velocity pencils: detect strong compressive pressure jumps and flatten
/// the reconstruction there.
pub fn flattening(pres: &[f64], velx: &[f64], lo: usize, hi: usize, out: &mut [f64]) {
    let mut snap = vec![0.0; out.len()];
    flattening_into(pres, velx, lo, hi, out, &mut snap);
}

/// [`flattening`] with a caller-provided neighbor-min snapshot buffer —
/// the allocation-free form the pencil sweep engine calls with arena
/// scratch. Values are bit-identical to [`flattening`] (which delegates
/// here).
pub fn flattening_into(
    pres: &[f64],
    velx: &[f64],
    lo: usize,
    hi: usize,
    out: &mut [f64],
    snap: &mut [f64],
) {
    assert_eq!(out.len(), pres.len());
    assert_eq!(snap.len(), pres.len());
    out.fill(1.0);
    // CW84 appendix parameters.
    const OMEGA1: f64 = 0.75;
    const OMEGA2: f64 = 10.0;
    const EPSILON: f64 = 0.33;
    for i in lo..hi {
        if i < 2 || i + 2 >= pres.len() {
            continue;
        }
        let dp = pres[i + 1] - pres[i - 1];
        let dp2 = pres[i + 2] - pres[i - 2];
        let compressive = velx[i - 1] > velx[i + 1];
        let strong = dp.abs() / pres[i + 1].min(pres[i - 1]).max(f64::MIN_POSITIVE) > EPSILON;
        if compressive && strong {
            let ratio = if dp2.abs() > 1e-300 { dp / dp2 } else { 1.0 };
            let chi = 1.0 - (OMEGA2 * (ratio - OMEGA1)).clamp(0.0, 1.0);
            out[i] = out[i].min(chi);
        }
    }
    // Spread the minimum to immediate neighbors (CW84 uses the neighbor in
    // the shock direction; symmetric min is a robust simplification).
    snap.copy_from_slice(out);
    for i in lo..hi {
        if i >= 1 && i + 1 < snap.len() {
            out[i] = snap[i - 1].min(snap[i]).min(snap[i + 1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct_simple(a: &[f64]) -> Vec<FacePair> {
        let flat = vec![1.0; a.len()];
        let mut out = vec![FacePair::default(); a.len()];
        reconstruct(a, 2, a.len() - 2, &flat, &mut out);
        out
    }

    #[test]
    fn linear_data_reconstructs_exactly() {
        let a: Vec<f64> = (0..12).map(|i| 3.0 + 2.0 * i as f64).collect();
        let out = reconstruct_simple(&a);
        for i in 2..10 {
            assert!((out[i].minus - (a[i] - 1.0)).abs() < 1e-13, "zone {i}");
            assert!((out[i].plus - (a[i] + 1.0)).abs() < 1e-13);
        }
    }

    #[test]
    fn parabola_mean_is_preserved() {
        // The parabola defined by (minus, plus, a) integrates back to a:
        // mean = (minus + plus)/2 + (a − (minus+plus)/2) = a by
        // construction; verify face values bracket sanely on smooth data.
        let a: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4).sin() + 2.0).collect();
        let out = reconstruct_simple(&a);
        for i in 2..14 {
            let lo = a[i - 1].min(a[i]).min(a[i + 1]);
            let hi = a[i - 1].max(a[i]).max(a[i + 1]);
            assert!(out[i].minus >= lo - 1e-12 && out[i].minus <= hi + 1e-12);
            assert!(out[i].plus >= lo - 1e-12 && out[i].plus <= hi + 1e-12);
        }
    }

    #[test]
    fn local_extremum_flattens_to_constant() {
        let a = [1.0, 1.0, 1.0, 5.0, 1.0, 1.0, 1.0, 1.0];
        let out = reconstruct_simple(&a);
        // Zone 3 is a local max: parabola must collapse (monotonization).
        assert_eq!(out[3].minus, 5.0);
        assert_eq!(out[3].plus, 5.0);
    }

    #[test]
    fn step_is_monotone() {
        let a = [1.0, 1.0, 1.0, 1.0, 10.0, 10.0, 10.0, 10.0];
        let out = reconstruct_simple(&a);
        for f in out.iter().take(6).skip(2) {
            assert!(f.minus >= 1.0 - 1e-12 && f.minus <= 10.0 + 1e-12);
            assert!(f.plus >= 1.0 - 1e-12 && f.plus <= 10.0 + 1e-12);
            assert!(f.minus <= f.plus + 1e-12, "monotone within zone");
        }
    }

    #[test]
    fn flattening_fires_on_strong_compression() {
        let n = 12;
        // Strong pressure jump with converging velocity — a shock.
        let pres: Vec<f64> = (0..n).map(|i| if i < 6 { 100.0 } else { 1.0 }).collect();
        let velx: Vec<f64> = (0..n).map(|i| if i < 6 { 1.0 } else { -1.0 }).collect();
        let mut flat = vec![1.0; n];
        flattening(&pres, &velx, 2, n - 2, &mut flat);
        assert!(flat[5] < 0.5 || flat[6] < 0.5, "flattening at the jump: {flat:?}");
        // Smooth region untouched.
        assert_eq!(flat[2], 1.0);
    }

    #[test]
    fn soa_variants_match_aos_bit_exactly() {
        let a: Vec<f64> = (0..16)
            .map(|i| ((i as f64 * 0.9).sin() * 3.0).exp())
            .collect();
        let velx: Vec<f64> = (0..16).map(|i| (8.0 - i as f64) * 0.3).collect();
        let mut flat = vec![1.0; 16];
        flattening(&a, &velx, 2, 14, &mut flat);
        let mut flat2 = vec![0.0; 16];
        let mut snap = vec![0.0; 16];
        flattening_into(&a, &velx, 2, 14, &mut flat2, &mut snap);
        assert_eq!(flat, flat2);

        let mut faces = vec![FacePair::default(); 16];
        reconstruct(&a, 2, 14, &flat, &mut faces);
        let mut minus = vec![0.0; 16];
        let mut plus = vec![0.0; 16];
        reconstruct_into(&a, 2, 14, &flat, &mut minus, &mut plus);
        for i in 2..14 {
            assert_eq!(faces[i].minus, minus[i], "zone {i}");
            assert_eq!(faces[i].plus, plus[i], "zone {i}");
        }
    }

    #[test]
    fn flattening_ignores_expansion() {
        let n = 12;
        let pres: Vec<f64> = (0..n).map(|i| if i < 6 { 100.0 } else { 1.0 }).collect();
        // Diverging velocity: rarefaction, no flattening.
        let velx: Vec<f64> = (0..n).map(|i| if i < 6 { -1.0 } else { 1.0 }).collect();
        let mut flat = vec![1.0; n];
        flattening(&pres, &velx, 2, n - 2, &mut flat);
        assert!(flat.iter().all(|&f| f == 1.0), "{flat:?}");
    }
}
