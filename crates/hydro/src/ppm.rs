//! Piecewise-parabolic reconstruction (Colella & Woodward 1984) with
//! monotonization and shock flattening, as in FLASH's split PPM unit.
//!
//! Operates on 1-d pencils of zone averages and produces limited left/right
//! interface states per zone.
//!
//! Two forms of each kernel exist: the scalar reference
//! ([`reconstruct_into`], [`flattening_into`]) used by the scalar sweep
//! engine and as the parity oracle, and lane-generic twins
//! ([`reconstruct_lanes`], [`flattening_lanes`]) over [`rflash_simd::Lane`]
//! used by the pencil engine under runtime dispatch. The twins replicate
//! the scalar operation order exactly (branches become masked selects on
//! speculatively computed values; see the bit-identity notes on each) so
//! every backend produces bit-identical faces.

use rflash_simd::{Lane, LaneMask, ScalarLane};

/// Left/right face values of one zone's parabola.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FacePair {
    /// Value at the zone's low (left) face.
    pub minus: f64,
    /// Value at the zone's high (right) face.
    pub plus: f64,
}

/// Fourth-order interface value between zones `i` and `i+1`
/// (CW84 eq. 1.6 on a uniform grid), using limited slopes.
fn interface_value(a: &[f64], i: usize) -> f64 {
    // a[i-1], a[i], a[i+1], a[i+2] must exist.
    let da_i = limited_slope(a, i);
    let da_ip = limited_slope(a, i + 1);
    0.5 * (a[i] + a[i + 1]) - (da_ip - da_i) / 6.0
}

/// CW84 monotonized central slope (eq. 1.8).
fn limited_slope(a: &[f64], i: usize) -> f64 {
    let d = 0.5 * (a[i + 1] - a[i - 1]);
    let dl = a[i] - a[i - 1];
    let dr = a[i + 1] - a[i];
    if dl * dr > 0.0 {
        let lim = 2.0 * dl.abs().min(dr.abs());
        d.signum() * d.abs().min(lim)
    } else {
        0.0
    }
}

/// One zone's limited parabola face values — the per-zone kernel shared by
/// [`reconstruct`] and [`reconstruct_into`] so both are bit-identical.
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn reconstruct_zone(a: &[f64], i: usize, f: f64) -> (f64, f64) {
    let mut am = interface_value(a, i - 1);
    let mut ap = interface_value(a, i);

    // Blend toward the cell average where the flattening detector fired.
    am = f * am + (1.0 - f) * a[i];
    ap = f * ap + (1.0 - f) * a[i];

    // CW84 monotonization (eq. 1.10).
    if (ap - a[i]) * (a[i] - am) <= 0.0 {
        am = a[i];
        ap = a[i];
    } else {
        let d = ap - am;
        let six = 6.0 * (a[i] - 0.5 * (am + ap));
        if d * six > d * d {
            am = 3.0 * a[i] - 2.0 * ap;
        } else if -d * d > d * six {
            ap = 3.0 * a[i] - 2.0 * am;
        }
    }
    (am, ap)
}

/// Reconstruct limited parabola face values for zones
/// `lo..hi` of the pencil `a` (needs 2 ghost zones each side of that
/// range). `flat[i]` ∈ \[0,1\] blends toward first order at shocks (1 = keep
/// the parabola, 0 = flat).
pub fn reconstruct(a: &[f64], lo: usize, hi: usize, flat: &[f64], out: &mut [FacePair]) {
    assert!(lo >= 2 && hi + 2 <= a.len());
    assert_eq!(out.len(), a.len());
    for i in lo..hi {
        let (am, ap) = reconstruct_zone(a, i, flat[i]);
        out[i] = FacePair {
            minus: am,
            plus: ap,
        };
    }
}

/// [`reconstruct`] writing into separate minus/plus lanes — the SoA form
/// used by the pencil sweep engine (face lanes live in arena scratch, not a
/// `Vec<FacePair>`). Values are bit-identical to [`reconstruct`].
pub fn reconstruct_into(
    a: &[f64],
    lo: usize,
    hi: usize,
    flat: &[f64],
    minus: &mut [f64],
    plus: &mut [f64],
) {
    assert!(lo >= 2 && hi + 2 <= a.len());
    assert!(minus.len() == a.len() && plus.len() == a.len());
    for i in lo..hi {
        let (am, ap) = reconstruct_zone(a, i, flat[i]);
        minus[i] = am;
        plus[i] = ap;
    }
}

/// CW84-style shock flattening coefficient per zone, from the pressure and
/// velocity pencils: detect strong compressive pressure jumps and flatten
/// the reconstruction there.
pub fn flattening(pres: &[f64], velx: &[f64], lo: usize, hi: usize, out: &mut [f64]) {
    let mut snap = vec![0.0; out.len()];
    flattening_into(pres, velx, lo, hi, out, &mut snap);
}

/// [`flattening`] with a caller-provided neighbor-min snapshot buffer —
/// the allocation-free form the pencil sweep engine calls with arena
/// scratch. Values are bit-identical to [`flattening`] (which delegates
/// here).
pub fn flattening_into(
    pres: &[f64],
    velx: &[f64],
    lo: usize,
    hi: usize,
    out: &mut [f64],
    snap: &mut [f64],
) {
    assert_eq!(out.len(), pres.len());
    assert_eq!(snap.len(), pres.len());
    out.fill(1.0);
    // CW84 appendix parameters.
    const OMEGA1: f64 = 0.75;
    const OMEGA2: f64 = 10.0;
    const EPSILON: f64 = 0.33;
    for i in lo..hi {
        if i < 2 || i + 2 >= pres.len() {
            continue;
        }
        let dp = pres[i + 1] - pres[i - 1];
        let dp2 = pres[i + 2] - pres[i - 2];
        let compressive = velx[i - 1] > velx[i + 1];
        let strong = dp.abs() / pres[i + 1].min(pres[i - 1]).max(f64::MIN_POSITIVE) > EPSILON;
        if compressive && strong {
            let ratio = if dp2.abs() > 1e-300 { dp / dp2 } else { 1.0 };
            let chi = 1.0 - (OMEGA2 * (ratio - OMEGA1)).clamp(0.0, 1.0);
            out[i] = out[i].min(chi);
        }
    }
    // Spread the minimum to immediate neighbors (CW84 uses the neighbor in
    // the shock direction; symmetric min is a robust simplification).
    snap.copy_from_slice(out);
    for i in lo..hi {
        if i >= 1 && i + 1 < snap.len() {
            out[i] = snap[i - 1].min(snap[i]).min(snap[i + 1]);
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-generic twins (pencil engine hot path)
// ---------------------------------------------------------------------------

/// [`limited_slope`] on `W` consecutive zones starting at `j0`.
///
/// Bit-identity vs the scalar reference: on gated lanes (`dl*dr > 0`) the
/// slope `d = 0.5*(dl+dr)` is nonzero and non-NaN, so
/// `d.signum()*d.abs().min(lim)` equals `copysign(min(|d|, lim), d)`; the
/// operands of `min` are positive and non-NaN there, where the x86 select
/// `min` agrees with `f64::min`. Ungated lanes select the literal `0.0`.
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn slope_at<L: Lane>(a: &[f64], j0: usize) -> L {
    let am1 = L::load(&a[j0 - 1..]);
    let a0 = L::load(&a[j0..]);
    let ap1 = L::load(&a[j0 + 1..]);
    let d = L::splat(0.5).mul(ap1.sub(am1));
    let dl = a0.sub(am1);
    let dr = ap1.sub(a0);
    let gate = dl.mul(dr).gt(L::splat(0.0));
    let lim = L::splat(2.0).mul(dl.abs().min(dr.abs()));
    let slope = d.abs().min(lim).copysign(d);
    L::select(gate, slope, L::splat(0.0))
}

/// [`reconstruct_zone`] on `W` consecutive zones starting at `i`,
/// writing `minus[i..i+W]`/`plus[i..i+W]`.
///
/// The scalar if/else-if monotonization becomes a select cascade over
/// values computed from the *original* face pair — legal because the
/// scalar branches are mutually exclusive and each reads only unmodified
/// state. NaN discriminants take the scalar else-paths in both forms
/// (`<=`/`>` compares are false on NaN, as are the lane masks).
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn reconstruct_at<L: Lane>(a: &[f64], flat: &[f64], minus: &mut [f64], plus: &mut [f64], i: usize) {
    let s_m = slope_at::<L>(a, i - 1);
    let s_0 = slope_at::<L>(a, i);
    let s_p = slope_at::<L>(a, i + 1);
    let am1 = L::load(&a[i - 1..]);
    let a0 = L::load(&a[i..]);
    let ap1 = L::load(&a[i + 1..]);
    let half = L::splat(0.5);
    let sixth = L::splat(6.0);
    // interface_value(a, i-1) and interface_value(a, i).
    let mut am = half.mul(am1.add(a0)).sub(s_0.sub(s_m).div(sixth));
    let mut ap = half.mul(a0.add(ap1)).sub(s_p.sub(s_0).div(sixth));

    // Blend toward the cell average where the flattening detector fired.
    let f = L::load(&flat[i..]);
    let one_m_f = L::splat(1.0).sub(f);
    am = f.mul(am).add(one_m_f.mul(a0));
    ap = f.mul(ap).add(one_m_f.mul(a0));

    // CW84 monotonization (eq. 1.10) as a masked cascade.
    let m_flat = ap.sub(a0).mul(a0.sub(am)).le(L::splat(0.0));
    let d = ap.sub(am);
    let six = sixth.mul(a0.sub(half.mul(am.add(ap))));
    let m_hi = d.mul(six).gt(d.mul(d));
    let m_lo = d.mul(d).neg().gt(d.mul(six)).and(m_hi.not());
    let am_new = L::splat(3.0).mul(a0).sub(L::splat(2.0).mul(ap));
    let ap_new = L::splat(3.0).mul(a0).sub(L::splat(2.0).mul(am));
    let out_m = L::select(m_flat, a0, L::select(m_hi, am_new, am));
    let out_p = L::select(m_flat, a0, L::select(m_lo, ap_new, ap));
    out_m.store(&mut minus[i..]);
    out_p.store(&mut plus[i..]);
}

/// Lane-generic twin of [`reconstruct_into`]: `W`-wide chunks through
/// [`reconstruct_at`], scalar-lane tail through the *same* kernel at
/// `W = 1`, so the tail is bit-identical by construction.
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
pub fn reconstruct_lanes<L: Lane>(
    a: &[f64],
    lo: usize,
    hi: usize,
    flat: &[f64],
    minus: &mut [f64],
    plus: &mut [f64],
) {
    assert!(lo >= 2 && hi + 2 <= a.len());
    assert!(minus.len() == a.len() && plus.len() == a.len());
    let mut i = lo;
    while i + L::W <= hi {
        reconstruct_at::<L>(a, flat, minus, plus, i);
        i += L::W;
    }
    while i < hi {
        reconstruct_at::<ScalarLane>(a, flat, minus, plus, i);
        i += 1;
    }
}

/// Pass 1 of the flattening detector on `W` zones starting at `i`
/// (callers restrict `i` to the guard-safe subrange).
///
/// Bit-identity notes: the pencil engine floors pressure lanes to
/// `f64::MIN_POSITIVE` before calling, so the `min`/`max` chain sees
/// positive non-NaN operands where select semantics equal `f64::min`/
/// `f64::max`; `clamp` becomes the select chain `x<0 -> 0, x>1 -> 1, x`
/// which matches `f64::clamp` including NaN passthrough; the guarded
/// `dp/dp2` ratio is computed speculatively and discarded by mask; the
/// running `out[i].min(chi)` keeps `min`'s first-operand-NaN rule on the
/// `chi` side so a NaN `chi` leaves `out` untouched exactly like
/// `f64::min`.
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn flatten_pass1_at<L: Lane>(pres: &[f64], velx: &[f64], out: &mut [f64], i: usize) {
    const OMEGA1: f64 = 0.75;
    const OMEGA2: f64 = 10.0;
    const EPSILON: f64 = 0.33;
    let dp = L::load(&pres[i + 1..]).sub(L::load(&pres[i - 1..]));
    let dp2 = L::load(&pres[i + 2..]).sub(L::load(&pres[i - 2..]));
    let compressive = L::load(&velx[i - 1..]).gt(L::load(&velx[i + 1..]));
    let denom = L::load(&pres[i + 1..])
        .min(L::load(&pres[i - 1..]))
        .max(L::splat(f64::MIN_POSITIVE));
    let strong = dp.abs().div(denom).gt(L::splat(EPSILON));
    let gate = compressive.and(strong);
    let ratio = L::select(dp2.abs().gt(L::splat(1e-300)), dp.div(dp2), L::splat(1.0));
    let x = L::splat(OMEGA2).mul(ratio.sub(L::splat(OMEGA1)));
    let clamped = L::select(
        x.lt(L::splat(0.0)),
        L::splat(0.0),
        L::select(x.gt(L::splat(1.0)), L::splat(1.0), x),
    );
    let chi = L::splat(1.0).sub(clamped);
    let cur = L::load(&out[i..]);
    L::select(gate, chi.min(cur), cur).store(&mut out[i..]);
}

/// Pass 2 (neighbor-min spread) on `W` zones starting at `i`.
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn flatten_pass2_at<L: Lane>(snap: &[f64], out: &mut [f64], i: usize) {
    L::load(&snap[i - 1..])
        .min(L::load(&snap[i..]))
        .min(L::load(&snap[i + 1..]))
        .store(&mut out[i..]);
}

/// Lane-generic twin of [`flattening_into`]. The scalar loop's per-zone
/// guards (`i < 2 || i + 2 >= len` ⇒ untouched, `i >= 1 && i + 1 < len`)
/// become subrange clamps — zones outside keep the pass's incoming value
/// exactly as the scalar `continue` leaves them.
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
pub fn flattening_lanes<L: Lane>(
    pres: &[f64],
    velx: &[f64],
    lo: usize,
    hi: usize,
    out: &mut [f64],
    snap: &mut [f64],
) {
    assert_eq!(out.len(), pres.len());
    assert_eq!(snap.len(), pres.len());
    out.fill(1.0);
    let s_lo = lo.max(2);
    let s_hi = hi.min(pres.len().saturating_sub(2));
    let mut i = s_lo;
    while i + L::W <= s_hi {
        flatten_pass1_at::<L>(pres, velx, out, i);
        i += L::W;
    }
    while i < s_hi {
        flatten_pass1_at::<ScalarLane>(pres, velx, out, i);
        i += 1;
    }
    snap.copy_from_slice(out);
    let t_lo = lo.max(1);
    let t_hi = hi.min(pres.len().saturating_sub(1));
    let mut i = t_lo;
    while i + L::W <= t_hi {
        flatten_pass2_at::<L>(snap, out, i);
        i += L::W;
    }
    while i < t_hi {
        flatten_pass2_at::<ScalarLane>(snap, out, i);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct_simple(a: &[f64]) -> Vec<FacePair> {
        let flat = vec![1.0; a.len()];
        let mut out = vec![FacePair::default(); a.len()];
        reconstruct(a, 2, a.len() - 2, &flat, &mut out);
        out
    }

    #[test]
    fn linear_data_reconstructs_exactly() {
        let a: Vec<f64> = (0..12).map(|i| 3.0 + 2.0 * i as f64).collect();
        let out = reconstruct_simple(&a);
        for i in 2..10 {
            assert!((out[i].minus - (a[i] - 1.0)).abs() < 1e-13, "zone {i}");
            assert!((out[i].plus - (a[i] + 1.0)).abs() < 1e-13);
        }
    }

    #[test]
    fn parabola_mean_is_preserved() {
        // The parabola defined by (minus, plus, a) integrates back to a:
        // mean = (minus + plus)/2 + (a − (minus+plus)/2) = a by
        // construction; verify face values bracket sanely on smooth data.
        let a: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4).sin() + 2.0).collect();
        let out = reconstruct_simple(&a);
        for i in 2..14 {
            let lo = a[i - 1].min(a[i]).min(a[i + 1]);
            let hi = a[i - 1].max(a[i]).max(a[i + 1]);
            assert!(out[i].minus >= lo - 1e-12 && out[i].minus <= hi + 1e-12);
            assert!(out[i].plus >= lo - 1e-12 && out[i].plus <= hi + 1e-12);
        }
    }

    #[test]
    fn local_extremum_flattens_to_constant() {
        let a = [1.0, 1.0, 1.0, 5.0, 1.0, 1.0, 1.0, 1.0];
        let out = reconstruct_simple(&a);
        // Zone 3 is a local max: parabola must collapse (monotonization).
        assert_eq!(out[3].minus, 5.0);
        assert_eq!(out[3].plus, 5.0);
    }

    #[test]
    fn step_is_monotone() {
        let a = [1.0, 1.0, 1.0, 1.0, 10.0, 10.0, 10.0, 10.0];
        let out = reconstruct_simple(&a);
        for f in out.iter().take(6).skip(2) {
            assert!(f.minus >= 1.0 - 1e-12 && f.minus <= 10.0 + 1e-12);
            assert!(f.plus >= 1.0 - 1e-12 && f.plus <= 10.0 + 1e-12);
            assert!(f.minus <= f.plus + 1e-12, "monotone within zone");
        }
    }

    #[test]
    fn flattening_fires_on_strong_compression() {
        let n = 12;
        // Strong pressure jump with converging velocity — a shock.
        let pres: Vec<f64> = (0..n).map(|i| if i < 6 { 100.0 } else { 1.0 }).collect();
        let velx: Vec<f64> = (0..n).map(|i| if i < 6 { 1.0 } else { -1.0 }).collect();
        let mut flat = vec![1.0; n];
        flattening(&pres, &velx, 2, n - 2, &mut flat);
        assert!(flat[5] < 0.5 || flat[6] < 0.5, "flattening at the jump: {flat:?}");
        // Smooth region untouched.
        assert_eq!(flat[2], 1.0);
    }

    #[test]
    fn soa_variants_match_aos_bit_exactly() {
        let a: Vec<f64> = (0..16)
            .map(|i| ((i as f64 * 0.9).sin() * 3.0).exp())
            .collect();
        let velx: Vec<f64> = (0..16).map(|i| (8.0 - i as f64) * 0.3).collect();
        let mut flat = vec![1.0; 16];
        flattening(&a, &velx, 2, 14, &mut flat);
        let mut flat2 = vec![0.0; 16];
        let mut snap = vec![0.0; 16];
        flattening_into(&a, &velx, 2, 14, &mut flat2, &mut snap);
        assert_eq!(flat, flat2);

        let mut faces = vec![FacePair::default(); 16];
        reconstruct(&a, 2, 14, &flat, &mut faces);
        let mut minus = vec![0.0; 16];
        let mut plus = vec![0.0; 16];
        reconstruct_into(&a, 2, 14, &flat, &mut minus, &mut plus);
        for i in 2..14 {
            assert_eq!(faces[i].minus, minus[i], "zone {i}");
            assert_eq!(faces[i].plus, plus[i], "zone {i}");
        }
    }

    struct PpmLanes<'a> {
        a: &'a [f64],
        velx: &'a [f64],
        lo: usize,
        hi: usize,
        flat: &'a mut [f64],
        snap: &'a mut [f64],
        minus: &'a mut [f64],
        plus: &'a mut [f64],
    }

    impl rflash_simd::WithLanes for PpmLanes<'_> {
        type Output = ();
        #[cfg_attr(debug_assertions, inline)]
        #[cfg_attr(not(debug_assertions), inline(always))]
        fn with_lanes<L: Lane>(self) {
            flattening_lanes::<L>(self.a, self.velx, self.lo, self.hi, self.flat, self.snap);
            reconstruct_lanes::<L>(self.a, self.lo, self.hi, self.flat, self.minus, self.plus);
        }
    }

    #[test]
    fn lane_twins_match_scalar_reference_bit_exactly_on_every_backend() {
        // Positive, shock-bearing data (the pencil engine floors pressure
        // before flattening; replicate that precondition here).
        let n = 23; // prime: exercises every chunk/tail split
        let a: Vec<f64> = (0..n)
            .map(|i| ((i as f64 * 0.9).sin() * 3.0).exp() + if i > n / 2 { 40.0 } else { 0.0 })
            .collect();
        let velx: Vec<f64> = (0..n).map(|i| (11.0 - i as f64) * 0.3).collect();

        let mut flat_ref = vec![0.0; n];
        let mut snap = vec![0.0; n];
        flattening_into(&a, &velx, 2, n - 2, &mut flat_ref, &mut snap);
        let mut minus_ref = vec![0.0; n];
        let mut plus_ref = vec![0.0; n];
        reconstruct_into(&a, 2, n - 2, &flat_ref, &mut minus_ref, &mut plus_ref);

        for &backend in rflash_simd::Resolved::all() {
            let mut flat = vec![0.0; n];
            let mut snap = vec![0.0; n];
            let mut minus = vec![0.0; n];
            let mut plus = vec![0.0; n];
            rflash_simd::dispatch(
                backend,
                PpmLanes {
                    a: &a,
                    velx: &velx,
                    lo: 2,
                    hi: n - 2,
                    flat: &mut flat,
                    snap: &mut snap,
                    minus: &mut minus,
                    plus: &mut plus,
                },
            );
            for i in 0..n {
                assert_eq!(flat[i].to_bits(), flat_ref[i].to_bits(), "{backend} flat {i}");
                assert_eq!(minus[i].to_bits(), minus_ref[i].to_bits(), "{backend} minus {i}");
                assert_eq!(plus[i].to_bits(), plus_ref[i].to_bits(), "{backend} plus {i}");
            }
        }
    }

    #[test]
    fn flattening_ignores_expansion() {
        let n = 12;
        let pres: Vec<f64> = (0..n).map(|i| if i < 6 { 100.0 } else { 1.0 }).collect();
        // Diverging velocity: rarefaction, no flattening.
        let velx: Vec<f64> = (0..n).map(|i| if i < 6 { -1.0 } else { 1.0 }).collect();
        let mut flat = vec![1.0; n];
        flattening(&pres, &velx, 2, n - 2, &mut flat);
        assert!(flat.iter().all(|&f| f == 1.0), "{flat:?}");
    }
}
