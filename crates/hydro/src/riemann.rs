//! HLLC approximate Riemann solver (Toro), general-EOS via per-side Γ₁.

use crate::state::Prim;
use crate::NFLUX;

/// Solve the Riemann problem between `l` and `r` (sweep-normal components
/// in `vel[0]`) and return the interface flux.
pub fn hllc(l: &Prim, r: &Prim) -> [f64; NFLUX] {
    let cl = l.sound_speed();
    let cr = r.sound_speed();

    // Davis wave-speed estimates, robust for strong shocks.
    let s_l = (l.vel[0] - cl).min(r.vel[0] - cr);
    let s_r = (l.vel[0] + cl).max(r.vel[0] + cr);

    if s_l >= 0.0 {
        return l.flux();
    }
    if s_r <= 0.0 {
        return r.flux();
    }

    // Contact speed (Toro eq. 10.37).
    let dl = l.dens * (s_l - l.vel[0]);
    let dr = r.dens * (s_r - r.vel[0]);
    let s_star = (r.pres - l.pres + l.vel[0] * dl - r.vel[0] * dr) / (dl - dr);

    let star_flux = |s: &Prim, s_k: f64| -> [f64; NFLUX] {
        let u = s.to_cons();
        let f = s.flux();
        let coef = s.dens * (s_k - s.vel[0]) / (s_k - s_star);
        let e_star = s.ener
            + (s_star - s.vel[0]) * (s_star + s.pres / (s.dens * (s_k - s.vel[0])));
        let u_star = [
            coef,
            coef * s_star,
            coef * s.vel[1],
            coef * s.vel[2],
            coef * e_star,
        ];
        let mut out = [0.0; NFLUX];
        for n in 0..NFLUX {
            out[n] = f[n] + s_k * (u_star[n] - u[n]);
        }
        out
    };

    if s_star >= 0.0 {
        star_flux(l, s_l)
    } else {
        star_flux(r, s_r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim(dens: f64, u: f64, pres: f64, gamma: f64) -> Prim {
        let eint = pres / ((gamma - 1.0) * dens);
        Prim {
            dens,
            vel: [u, 0.0, 0.0],
            pres,
            ener: eint + 0.5 * u * u,
            gamc: gamma,
        }
    }

    #[test]
    fn uniform_state_gives_exact_advection_flux() {
        let p = prim(1.0, 2.0, 1.0, 1.4);
        let f = hllc(&p, &p);
        let exact = p.flux();
        for n in 0..NFLUX {
            assert!((f[n] - exact[n]).abs() < 1e-13, "channel {n}");
        }
    }

    #[test]
    fn symmetry_of_mirrored_states() {
        // Mirroring left/right with negated velocities must negate the mass
        // flux and preserve the momentum flux.
        let l = prim(1.0, 0.3, 1.0, 1.4);
        let r = prim(0.5, -0.1, 0.4, 1.4);
        let f = hllc(&l, &r);
        let mut lm = l;
        let mut rm = r;
        lm.vel[0] = -l.vel[0];
        rm.vel[0] = -r.vel[0];
        let fm = hllc(&rm, &lm);
        assert!((f[0] + fm[0]).abs() < 1e-12, "mass flux antisymmetry");
        assert!((f[1] - fm[1]).abs() < 1e-12, "momentum flux symmetry");
        assert!((f[4] + fm[4]).abs() < 1e-12, "energy flux antisymmetry");
    }

    #[test]
    fn supersonic_flows_upwind_fully() {
        let l = prim(1.0, 10.0, 1.0, 1.4); // far supersonic to the right
        let r = prim(0.125, 10.0, 0.1, 1.4);
        let f = hllc(&l, &r);
        let exact = l.flux();
        for n in 0..NFLUX {
            assert!((f[n] - exact[n]).abs() < 1e-12);
        }
        let f = hllc(&prim(1.0, -10.0, 1.0, 1.4), &prim(0.125, -10.0, 0.1, 1.4));
        let exact = prim(0.125, -10.0, 0.1, 1.4).flux();
        for n in 0..NFLUX {
            assert!((f[n] - exact[n]).abs() < 1e-12);
        }
    }

    #[test]
    fn sod_interface_flux_is_sane() {
        // Sod shock tube: interface flux must transport mass rightward with
        // positive momentum flux bounded by the left pressure.
        let l = prim(1.0, 0.0, 1.0, 1.4);
        let r = prim(0.125, 0.0, 0.1, 1.4);
        let f = hllc(&l, &r);
        assert!(f[0] > 0.0, "mass flows right");
        assert!(f[1] > 0.1 && f[1] < 1.0, "momentum flux between pressures");
        assert!(f[4] > 0.0, "energy flows right");
        // The exact Sod solution has p* ≈ 0.30313 and u* ≈ 0.92745;
        // HLLC resolves the contact, so the mass flux should be close to
        // ρ*L u* ≈ 0.426·0.927.
        assert!((f[0] - 0.39).abs() < 0.06, "mass flux {}", f[0]);
    }

    #[test]
    fn transverse_momentum_is_passively_advected() {
        let mut l = prim(1.0, 0.5, 1.0, 1.4);
        let mut r = prim(1.0, 0.5, 1.0, 1.4);
        l.vel[1] = 3.0;
        r.vel[1] = -2.0;
        l.ener += 0.5 * 9.0;
        r.ener += 0.5 * 4.0;
        let f = hllc(&l, &r);
        // Positive contact speed: transverse momentum comes from the left.
        assert!((f[2] - f[0] * 3.0).abs() < 1e-12);
    }

    #[test]
    fn strong_shock_does_not_nan() {
        let l = prim(1.0, 0.0, 1e10, 5.0 / 3.0);
        let r = prim(1e-4, 0.0, 1e-4, 5.0 / 3.0);
        let f = hllc(&l, &r);
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
    }
}
