//! HLLC approximate Riemann solver (Toro), general-EOS via per-side Γ₁.
//!
//! [`hllc`] is the scalar reference; [`hllc_lanes`] is the lane-generic
//! twin used by the pencil engine's SIMD path. The twin computes every
//! branch of the wave fan for all lanes and blends with masks, which is
//! bit-identical to the scalar early returns because the blend is bitwise
//! (inf/NaN garbage from a masked-out branch's divisions is discarded, and
//! on selected lanes the op order matches the scalar solver exactly).

use crate::state::{Prim, PrimL};
use crate::NFLUX;
use rflash_simd::Lane;

/// Solve the Riemann problem between `l` and `r` (sweep-normal components
/// in `vel[0]`) and return the interface flux.
pub fn hllc(l: &Prim, r: &Prim) -> [f64; NFLUX] {
    let cl = l.sound_speed();
    let cr = r.sound_speed();

    // Davis wave-speed estimates, robust for strong shocks.
    let s_l = (l.vel[0] - cl).min(r.vel[0] - cr);
    let s_r = (l.vel[0] + cl).max(r.vel[0] + cr);

    if s_l >= 0.0 {
        return l.flux();
    }
    if s_r <= 0.0 {
        return r.flux();
    }

    // Contact speed (Toro eq. 10.37).
    let dl = l.dens * (s_l - l.vel[0]);
    let dr = r.dens * (s_r - r.vel[0]);
    let s_star = (r.pres - l.pres + l.vel[0] * dl - r.vel[0] * dr) / (dl - dr);

    let star_flux = |s: &Prim, s_k: f64| -> [f64; NFLUX] {
        let u = s.to_cons();
        let f = s.flux();
        let coef = s.dens * (s_k - s.vel[0]) / (s_k - s_star);
        let e_star = s.ener
            + (s_star - s.vel[0]) * (s_star + s.pres / (s.dens * (s_k - s.vel[0])));
        let u_star = [
            coef,
            coef * s_star,
            coef * s.vel[1],
            coef * s.vel[2],
            coef * e_star,
        ];
        let mut out = [0.0; NFLUX];
        for n in 0..NFLUX {
            out[n] = f[n] + s_k * (u_star[n] - u[n]);
        }
        out
    };

    if s_star >= 0.0 {
        star_flux(l, s_l)
    } else {
        star_flux(r, s_r)
    }
}

/// Star-region flux for one side (twin of the scalar `star_flux` closure).
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn star_flux_lanes<L: Lane>(s: &PrimL<L>, s_k: L, s_star: L) -> [L; NFLUX] {
    let u = s.to_cons();
    let f = s.flux();
    let coef = s.dens.mul(s_k.sub(s.vel[0])).div(s_k.sub(s_star));
    let e_star = s.ener.add(
        s_star
            .sub(s.vel[0])
            .mul(s_star.add(s.pres.div(s.dens.mul(s_k.sub(s.vel[0]))))),
    );
    let u_star = [
        coef,
        coef.mul(s_star),
        coef.mul(s.vel[1]),
        coef.mul(s.vel[2]),
        coef.mul(e_star),
    ];
    let mut out = [L::splat(0.0); NFLUX];
    for n in 0..NFLUX {
        out[n] = f[n].add(s_k.mul(u_star[n].sub(u[n])));
    }
    out
}

/// Lane-generic twin of [`hllc`].
///
/// The wave-speed `min`/`max` use lane select semantics; they agree with
/// the scalar `f64::min`/`f64::max` because the estimates are non-NaN and
/// an exact ±0 tie would need `u = c = 0`, impossible with floored
/// pressure (`c > 0`). The scalar early returns (`s_l >= 0`, `s_r <= 0`)
/// and the contact-side pick (`s_star >= 0`) become a nested bitwise
/// select; divisions by `dl - dr` or `s_k - s_star` can only degenerate on
/// lanes a mask discards.
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
pub fn hllc_lanes<L: Lane>(l: &PrimL<L>, r: &PrimL<L>) -> [L; NFLUX] {
    let cl = l.sound_speed();
    let cr = r.sound_speed();

    let s_l = l.vel[0].sub(cl).min(r.vel[0].sub(cr));
    let s_r = l.vel[0].add(cl).max(r.vel[0].add(cr));

    let fl = l.flux();
    let fr = r.flux();

    let dl = l.dens.mul(s_l.sub(l.vel[0]));
    let dr = r.dens.mul(s_r.sub(r.vel[0]));
    let s_star = r
        .pres
        .sub(l.pres)
        .add(l.vel[0].mul(dl))
        .sub(r.vel[0].mul(dr))
        .div(dl.sub(dr));

    let fsl = star_flux_lanes(l, s_l, s_star);
    let fsr = star_flux_lanes(r, s_r, s_star);

    let zero = L::splat(0.0);
    let m_l = s_l.ge(zero);
    let m_r = s_r.le(zero);
    let m_star = s_star.ge(zero);
    let mut out = [zero; NFLUX];
    for n in 0..NFLUX {
        out[n] = L::select(
            m_l,
            fl[n],
            L::select(m_r, fr[n], L::select(m_star, fsl[n], fsr[n])),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim(dens: f64, u: f64, pres: f64, gamma: f64) -> Prim {
        let eint = pres / ((gamma - 1.0) * dens);
        Prim {
            dens,
            vel: [u, 0.0, 0.0],
            pres,
            ener: eint + 0.5 * u * u,
            gamc: gamma,
        }
    }

    #[test]
    fn uniform_state_gives_exact_advection_flux() {
        let p = prim(1.0, 2.0, 1.0, 1.4);
        let f = hllc(&p, &p);
        let exact = p.flux();
        for n in 0..NFLUX {
            assert!((f[n] - exact[n]).abs() < 1e-13, "channel {n}");
        }
    }

    #[test]
    fn symmetry_of_mirrored_states() {
        // Mirroring left/right with negated velocities must negate the mass
        // flux and preserve the momentum flux.
        let l = prim(1.0, 0.3, 1.0, 1.4);
        let r = prim(0.5, -0.1, 0.4, 1.4);
        let f = hllc(&l, &r);
        let mut lm = l;
        let mut rm = r;
        lm.vel[0] = -l.vel[0];
        rm.vel[0] = -r.vel[0];
        let fm = hllc(&rm, &lm);
        assert!((f[0] + fm[0]).abs() < 1e-12, "mass flux antisymmetry");
        assert!((f[1] - fm[1]).abs() < 1e-12, "momentum flux symmetry");
        assert!((f[4] + fm[4]).abs() < 1e-12, "energy flux antisymmetry");
    }

    #[test]
    fn supersonic_flows_upwind_fully() {
        let l = prim(1.0, 10.0, 1.0, 1.4); // far supersonic to the right
        let r = prim(0.125, 10.0, 0.1, 1.4);
        let f = hllc(&l, &r);
        let exact = l.flux();
        for n in 0..NFLUX {
            assert!((f[n] - exact[n]).abs() < 1e-12);
        }
        let f = hllc(&prim(1.0, -10.0, 1.0, 1.4), &prim(0.125, -10.0, 0.1, 1.4));
        let exact = prim(0.125, -10.0, 0.1, 1.4).flux();
        for n in 0..NFLUX {
            assert!((f[n] - exact[n]).abs() < 1e-12);
        }
    }

    #[test]
    fn sod_interface_flux_is_sane() {
        // Sod shock tube: interface flux must transport mass rightward with
        // positive momentum flux bounded by the left pressure.
        let l = prim(1.0, 0.0, 1.0, 1.4);
        let r = prim(0.125, 0.0, 0.1, 1.4);
        let f = hllc(&l, &r);
        assert!(f[0] > 0.0, "mass flows right");
        assert!(f[1] > 0.1 && f[1] < 1.0, "momentum flux between pressures");
        assert!(f[4] > 0.0, "energy flows right");
        // The exact Sod solution has p* ≈ 0.30313 and u* ≈ 0.92745;
        // HLLC resolves the contact, so the mass flux should be close to
        // ρ*L u* ≈ 0.426·0.927.
        assert!((f[0] - 0.39).abs() < 0.06, "mass flux {}", f[0]);
    }

    #[test]
    fn transverse_momentum_is_passively_advected() {
        let mut l = prim(1.0, 0.5, 1.0, 1.4);
        let mut r = prim(1.0, 0.5, 1.0, 1.4);
        l.vel[1] = 3.0;
        r.vel[1] = -2.0;
        l.ener += 0.5 * 9.0;
        r.ener += 0.5 * 4.0;
        let f = hllc(&l, &r);
        // Positive contact speed: transverse momentum comes from the left.
        assert!((f[2] - f[0] * 3.0).abs() < 1e-12);
    }

    #[test]
    fn strong_shock_does_not_nan() {
        let l = prim(1.0, 0.0, 1e10, 5.0 / 3.0);
        let r = prim(1e-4, 0.0, 1e-4, 5.0 / 3.0);
        let f = hllc(&l, &r);
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
    }

    struct HllcLanes<'a> {
        l: &'a [Prim],
        r: &'a [Prim],
        out: &'a mut [[f64; NFLUX]],
    }

    impl rflash_simd::WithLanes for HllcLanes<'_> {
        type Output = ();
        #[cfg_attr(debug_assertions, inline)]
        #[cfg_attr(not(debug_assertions), inline(always))]
        fn with_lanes<L: Lane>(self) {
            #[cfg_attr(debug_assertions, inline)]
            #[cfg_attr(not(debug_assertions), inline(always))]
            fn pack<L: Lane>(p: &[Prim], i: usize) -> PrimL<L> {
                PrimL {
                    dens: L::from_fn(|k| p[i + k].dens),
                    vel: [
                        L::from_fn(|k| p[i + k].vel[0]),
                        L::from_fn(|k| p[i + k].vel[1]),
                        L::from_fn(|k| p[i + k].vel[2]),
                    ],
                    pres: L::from_fn(|k| p[i + k].pres),
                    ener: L::from_fn(|k| p[i + k].ener),
                    gamc: L::from_fn(|k| p[i + k].gamc),
                }
            }
            let n = self.l.len();
            let mut i = 0;
            while i + L::W <= n {
                let f = hllc_lanes(&pack::<L>(self.l, i), &pack::<L>(self.r, i));
                for k in 0..L::W {
                    for (ch, lane) in f.iter().enumerate() {
                        self.out[i + k][ch] = lane.extract(k);
                    }
                }
                i += L::W;
            }
            while i < n {
                let f = hllc_lanes(
                    &pack::<rflash_simd::ScalarLane>(self.l, i),
                    &pack::<rflash_simd::ScalarLane>(self.r, i),
                );
                for (ch, lane) in f.iter().enumerate() {
                    self.out[i][ch] = lane.extract(0);
                }
                i += 1;
            }
        }
    }

    #[test]
    fn lane_twin_matches_scalar_hllc_bit_exactly_on_every_backend() {
        // A spread of face states covering all four wave-fan branches:
        // supersonic left/right, subsonic with contact on either side.
        let mut ls = Vec::new();
        let mut rs = Vec::new();
        for i in 0..21 {
            let g = if i % 2 == 0 { 1.4 } else { 5.0 / 3.0 };
            let u = (i as f64 - 10.0) * 1.3;
            let mut l = prim(1.0 + 0.07 * i as f64, u, 1.0 + 0.3 * i as f64, g);
            let mut r = prim(0.125 + 0.02 * i as f64, -u * 0.7, 0.1 + 0.05 * i as f64, g);
            l.vel[1] = 0.2 * i as f64;
            r.vel[2] = -0.1 * i as f64;
            ls.push(l);
            rs.push(r);
        }
        let reference: Vec<[f64; NFLUX]> = ls.iter().zip(&rs).map(|(l, r)| hllc(l, r)).collect();
        for &backend in rflash_simd::Resolved::all() {
            let mut out = vec![[0.0; NFLUX]; ls.len()];
            rflash_simd::dispatch(
                backend,
                HllcLanes {
                    l: &ls,
                    r: &rs,
                    out: &mut out,
                },
            );
            for (i, (got, want)) in out.iter().zip(&reference).enumerate() {
                for ch in 0..NFLUX {
                    assert_eq!(
                        got[ch].to_bits(),
                        want[ch].to_bits(),
                        "{backend} face {i} channel {ch}: {} vs {}",
                        got[ch],
                        want[ch]
                    );
                }
            }
        }
    }
}
