//! Compressible hydrodynamics for the FLASH reproduction.
//!
//! FLASH's default hydro solver is the dimensionally split PPM scheme; the
//! paper's "3-d Hydro" experiment instruments exactly these routines while
//! running the Sedov explosion problem for 200 steps. This crate implements
//! the split finite-volume solver from scratch:
//!
//! * [`state`] — primitive/conserved conversions for a general-EOS gas;
//! * [`ppm`] — piecewise-parabolic reconstruction with monotonization and
//!   shock flattening;
//! * [`riemann`] — an HLLC approximate Riemann solver;
//! * [`sweep`] — the per-direction pencil update over all AMR blocks,
//!   including boundary-flux recording for [`rflash_mesh::flux`]
//!   conservation fix-ups and the per-sweep EOS update (the call pattern
//!   whose cost dominates the paper's supernova runs);
//! * [`dt`] — the CFL time-step computation;
//! * [`sedov`] — the analytic Sedov–Taylor self-similar solution, used to
//!   validate the solver end-to-end;
//! * [`exact_riemann`] — the exact gamma-law Riemann solution (Toro), the
//!   reference for shock-tube validation.

pub mod dt;
pub mod exact_riemann;
pub(crate) mod pencil;
pub mod ppm;
pub mod riemann;
pub mod sedov;
pub mod state;
pub mod sweep;

pub use dt::{block_min_wavetime_slab, compute_dt, compute_dt_parallel, compute_dt_parallel_raw};
pub use exact_riemann::{ExactRiemann, GasState};
pub use sedov::SedovSolution;
pub use sweep::{
    apply_block_corrections, sweep_direction, sweep_direction_prefilled, sweep_leaf_block,
    BlockFluxes, SweepConfig, SweepEngine, SweepEos,
};

/// Number of conserved flux channels (ρ, ρu, ρv, ρw, ρE) — fixed even in
/// 2-d, where the w channel is identically zero.
pub const NFLUX: usize = 5;
