//! Directional sweeps over the AMR mesh — FLASH's `hy_ppm_sweep`.
//!
//! Each sweep fills guard cells, updates every leaf block along one
//! direction (PPM reconstruction → HLLC fluxes → conservative update →
//! per-zone EOS), records boundary fluxes, and applies the fine–coarse flux
//! corrections. The per-zone EOS call after every sweep is FLASH's
//! `Eos_wrapped(MODE_DENS_EI)` — the call pattern the paper's "EOS"
//! experiment instruments.

use rflash_eos::{Eos, EosBatch, EosError, EosMode, EosState};
use rflash_hugepages::Policy;
use rflash_mesh::flux::{Correction, Face, FluxRegister};
use rflash_mesh::unk::UnkGeom;
use rflash_mesh::{vars, BlockId, Domain, Tree};
use rflash_perfmon::Probe;
use serde::{Deserialize, Serialize};

use crate::ppm::{flattening, reconstruct, FacePair};
use crate::riemann::hllc;
use crate::state::{cons_to_vel_ener, Prim};
use crate::NFLUX;

/// A per-zone EOS callback: given a state with (dens, eint) set (and temp as
/// a guess), fill pres/temp/gamc/game and return `Ok(true)`. Returning
/// `Ok(false)` means "EOS deferred": the sweep leaves the thermodynamic
/// cache variables stale and the driver runs its own instrumented EOS pass
/// afterwards — FLASH's actual structure (`hy_ppm_sweep` then
/// `Eos_wrapped(MODE_DENS_EI)`), and the split the paper's "EOS" experiment
/// relies on. The probe lets the callback account table gathers and EOS work.
pub type ZoneEos<'a> = dyn Fn(&mut EosState, &mut Probe) -> Result<bool, EosError> + Sync + 'a;

/// How the sweep services the per-zone EOS after the conservative update.
pub enum SweepEos<'a> {
    /// Leave the thermodynamic cache variables (PRES/TEMP/GAMC/GAME) stale;
    /// the driver runs its own instrumented `Eos_wrapped(MODE_DENS_EI)` pass
    /// after the sweep — FLASH's actual structure and the split the paper's
    /// "EOS" experiment relies on.
    Defer,
    /// Route interior zones through [`Eos::eos_batch`] with a fixed
    /// composition — whole pencils at a time under the pencil engine, one
    /// lane at a time from the scalar engine and the flux-correction
    /// re-derive (bit-identical either way: lanes are independent).
    Batch {
        /// The equation of state to batch through.
        eos: &'a dyn Eos,
        /// Mean atomic mass applied to every zone.
        abar: f64,
        /// Mean nuclear charge applied to every zone.
        zbar: f64,
    },
    /// Per-zone callback (tests, exotic compositions).
    PerZone(&'a ZoneEos<'a>),
}

/// Which inner-loop implementation `sweep_direction` runs per block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SweepEngine {
    /// The original per-zone path: `Vec`-backed work arrays indexed through
    /// `UnkGeom::slab_idx` per cell. Kept as the parity reference and as the
    /// fallback when pencil scratch cannot be mapped.
    Scalar,
    /// Pencil-batched SoA engine: gather each pencil into contiguous arena
    /// lanes once, run the kernels as lane loops, scatter back in one pass.
    #[default]
    Pencil,
}

/// Sweep tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Simulated MPI ranks (threads).
    pub nranks: usize,
    /// Density floor (`smlrho`).
    pub dens_floor: f64,
    /// Specific-internal-energy floor (`smalle`).
    pub eint_floor: f64,
    /// Record unk access patterns for every N-th pencil (0 = off, the
    /// default — pattern capture costs more than the sweep itself, so the
    /// TLB-simulation benches opt in explicitly).
    pub pattern_every: usize,
    /// Inner-loop engine.
    pub engine: SweepEngine,
    /// Huge-page policy for the per-rank pencil scratch arena (same
    /// degradation chain as `unk` itself).
    pub scratch_policy: Policy,
    /// Resolved SIMD backend the pencil engine's lane kernels run on
    /// (see `rflash_simd::resolve`; every backend is bit-identical).
    pub simd: rflash_simd::Resolved,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            nranks: 1,
            dens_floor: 1e-30,
            eint_floor: 1e-30,
            pattern_every: 0,
            engine: SweepEngine::default(),
            scratch_policy: Policy::None,
            simd: rflash_simd::resolve(rflash_simd::Backend::default()),
        }
    }
}

/// Variables read by a sweep (for access-pattern recording).
pub(crate) const READ_VARS: [usize; 8] = [
    vars::DENS,
    vars::VELX,
    vars::VELY,
    vars::VELZ,
    vars::PRES,
    vars::ENER,
    vars::GAMC,
    vars::GAME,
];
/// Variables written back after the update + EOS.
pub(crate) const WRITE_VARS: [usize; 10] = [
    vars::DENS,
    vars::VELX,
    vars::VELY,
    vars::VELZ,
    vars::PRES,
    vars::ENER,
    vars::TEMP,
    vars::EINT,
    vars::GAMC,
    vars::GAME,
];

/// Boundary fluxes of one block for the sweep direction:
/// `[side][t1][t2][channel]` flattened.
pub struct BlockFluxes {
    data: Vec<f64>,
    t2_cells: usize,
}

impl BlockFluxes {
    fn new(nxb: usize, ndim: usize) -> BlockFluxes {
        let t2_cells = if ndim == 3 { nxb } else { 1 };
        BlockFluxes {
            data: vec![0.0; 2 * nxb * t2_cells * NFLUX],
            t2_cells,
        }
    }
    /// Transverse extent along the second face-plane axis (1 in 2-d).
    pub fn t2_cells(&self) -> usize {
        self.t2_cells
    }
    #[inline]
    fn slot(&self, side: usize, t1: usize, t2: usize, ch: usize) -> usize {
        ((side * (self.data.len() / (2 * self.t2_cells * NFLUX)) + t1) * self.t2_cells + t2)
            * NFLUX
            + ch
    }
    #[inline]
    pub(crate) fn store(&mut self, side: usize, t1: usize, t2: usize, f: &[f64; NFLUX]) {
        let s = self.slot(side, t1, t2, 0);
        self.data[s..s + NFLUX].copy_from_slice(f);
    }
    /// Stored flux of `ch` at face cell (t1, t2) of `side` (0 = low).
    #[inline]
    pub fn at(&self, side: usize, t1: usize, t2: usize, ch: usize) -> f64 {
        self.data[self.slot(side, t1, t2, ch)]
    }
}

/// The sweep-frame permutation: maps sweep-local velocity components
/// (normal, t1, t2) to unk variables, per direction.
pub(crate) fn vel_map(dir: usize) -> [usize; 3] {
    match dir {
        0 => [vars::VELX, vars::VELY, vars::VELZ],
        1 => [vars::VELY, vars::VELX, vars::VELZ],
        2 => [vars::VELZ, vars::VELX, vars::VELY],
        // analyze::allow(panic): dir ∈ {0,1,2} is fixed by the three-sweep
        // driver loop; a fourth direction is a compile-time bug.
        _ => panic!("dir < 3"),
    }
}

/// Load zone `p` of a pencil into a [`Prim`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn load_prim(
    slab: &[f64],
    geom: &UnkGeom,
    dir: usize,
    p: usize,
    t1: usize,
    t2: usize,
    vm: &[usize; 3],
    floor: f64,
) -> Prim {
    let (i, j, k) = pencil_cell(dir, p, t1, t2);
    let at = |var: usize| slab[geom.slab_idx(var, i, j, k)];
    Prim {
        dens: at(vars::DENS).max(floor),
        vel: [at(vm[0]), at(vm[1]), at(vm[2])],
        pres: at(vars::PRES).max(f64::MIN_POSITIVE),
        ener: at(vars::ENER),
        gamc: at(vars::GAMC).max(1.01),
    }
}

/// (i, j, k) of pencil position `p` at transverse coords (t1, t2).
#[inline]
pub(crate) fn pencil_cell(dir: usize, p: usize, t1: usize, t2: usize) -> (usize, usize, usize) {
    match dir {
        0 => (p, t1, t2),
        1 => (t1, p, t2),
        2 => (t1, t2, p),
        // analyze::allow(panic): dir ∈ {0,1,2} is fixed by the three-sweep
        // driver loop; a fourth direction is a compile-time bug.
        _ => panic!("dir < 3"),
    }
}

/// Sweep one leaf block along `dir`: the per-block body of
/// [`sweep_direction`], shared verbatim with the task-graph scheduler's
/// per-block sweep tasks (which is what keeps the two paths bit-identical).
/// Guard cells of `slab` must already be filled for this step.
#[allow(clippy::too_many_arguments)]
pub fn sweep_leaf_block(
    tree: &Tree,
    geom: &UnkGeom,
    id: BlockId,
    slab: &mut [f64],
    eos: &SweepEos<'_>,
    dir: usize,
    dt: f64,
    cfg: &SweepConfig,
    probe: &mut Probe,
) -> BlockFluxes {
    let ndim = tree.config().ndim;
    let nxb = tree.config().nxb;
    let ng = tree.config().nguard;
    let geometry = tree.config().geometry;
    let geom = *geom;
    let vm = vel_map(dir);
    let cfg_local = *cfg;
    {
        let dx = tree.cell_size(id)[dir];
        let dtdx = dt / dx;
        // Cylindrical r-sweep: divergence picks up face-radius weights and
        // the radial momentum equation a +p/r source (the (1/r)(rp)' − p'
        // remainder). The z-sweep and all Cartesian sweeps use the plain
        // update. Face r = 0 (the axis) has zero area, so the axis flux
        // drops out naturally.
        let r_lo = tree.bounds(id).0[0];
        let cylindrical_r = dir == 0 && geometry == rflash_mesh::Geometry::CylindricalRZ;
        let n_pencil = match dir {
            0 => geom.ni,
            1 => geom.nj,
            _ => geom.nk,
        };
        let t1_range = ng..ng + nxb;
        let t2_range = if ndim == 3 { ng..ng + nxb } else { 0..1 };

        let mut fluxes_out = BlockFluxes::new(nxb, ndim);

        if cfg_local.engine == SweepEngine::Pencil {
            let done = crate::pencil::sweep_block(&crate::pencil::BlockCtx {
                geom: &geom,
                eos,
                dir,
                dt,
                dx,
                r_lo,
                cylindrical_r,
                block_idx: id.idx(),
                cfg: &cfg_local,
                nxb,
                ng,
                ndim,
                vm: &vm,
            }, slab, &mut fluxes_out, probe);
            if done {
                return fluxes_out;
            }
            // Pencil scratch unavailable (arena mapping failed under every
            // policy): fall through to the scalar path for this block.
        }

        // Pencil work arrays.
        let mut w = vec![[0.0f64; 8]; n_pencil]; // dens,u,v,wv,pres,game,gamc,ener
        let mut faces = vec![[FacePair::default(); 5]; n_pencil];
        let mut flat = vec![1.0f64; n_pencil];
        let mut scratch = vec![0.0f64; n_pencil];
        let mut face_scratch = vec![FacePair::default(); n_pencil];
        let mut iface = vec![[0.0f64; NFLUX]; n_pencil + 1];
        let mut pencil_counter = 0usize;

        for t2 in t2_range.clone() {
            for t1 in t1_range.clone() {
                // Load the pencil.
                for (p, wp) in w.iter_mut().enumerate() {
                    let prim = load_prim(slab, &geom, dir, p, t1, t2, &vm, cfg_local.dens_floor);
                    let (i, j, k) = pencil_cell(dir, p, t1, t2);
                    let game = slab[geom.slab_idx(vars::GAME, i, j, k)].max(1.01);
                    *wp = [
                        prim.dens, prim.vel[0], prim.vel[1], prim.vel[2], prim.pres, game,
                        prim.gamc, prim.ener,
                    ];
                }

                // Flattening from pressure & normal velocity.
                for p in 0..n_pencil {
                    scratch[p] = w[p][4];
                }
                let velx: Vec<f64> = w.iter().map(|z| z[1]).collect();
                flattening(&scratch, &velx, ng - 1, ng + nxb + 1, &mut flat);

                // Reconstruct the 5 hydro variables.
                for (v, slot) in [0usize, 1, 2, 3, 4].into_iter().enumerate() {
                    for p in 0..n_pencil {
                        scratch[p] = w[p][slot];
                    }
                    reconstruct(&scratch, ng - 1, ng + nxb + 1, &flat, &mut face_scratch);
                    for p in ng - 1..ng + nxb + 1 {
                        faces[p][v] = face_scratch[p];
                    }
                }

                // Build primitive face states from the parabolae.
                let mk = |z: usize, side_plus: bool, faces: &Vec<[FacePair; 5]>| -> Prim {
                    let pick = |v: usize| {
                        if side_plus {
                            faces[z][v].plus
                        } else {
                            faces[z][v].minus
                        }
                    };
                    let dens = pick(0).max(cfg_local.dens_floor);
                    let pres = pick(4).max(f64::MIN_POSITIVE);
                    let vel = [pick(1), pick(2), pick(3)];
                    let game = w[z][5];
                    let eint = pres / ((game - 1.0) * dens);
                    Prim {
                        dens,
                        vel,
                        pres,
                        ener: eint
                            + 0.5 * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]),
                        gamc: w[z][6],
                    }
                };

                // MUSCL–Hancock predictor: evolve each zone's pair of face
                // states by a half step using the flux difference of its own
                // faces — second order in time without characteristic
                // tracing (a documented simplification of full PPM).
                for z in ng - 1..ng + nxb + 1 {
                    let minus = mk(z, false, &faces);
                    let plus = mk(z, true, &faces);
                    let f_minus = minus.flux();
                    let f_plus = plus.flux();
                    let half = 0.5 * dtdx;
                    let mut um = minus.to_cons();
                    let mut up = plus.to_cons();
                    for n in 0..NFLUX {
                        let d = half * (f_plus[n] - f_minus[n]);
                        um[n] -= d;
                        up[n] -= d;
                    }
                    // Back to primitive face values (gamma-law locally).
                    let game = w[z][5];
                    let to_prim = |u: &[f64; NFLUX], fallback: &Prim| -> [f64; 5] {
                        let (dens, vel, ener) = cons_to_vel_ener(u, cfg_local.dens_floor);
                        let eint =
                            ener - 0.5 * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
                        if !(eint > 0.0 && dens > 0.0) {
                            // Predictor produced an unphysical state (strong
                            // wave in one zone): keep the unevolved face.
                            return [
                                fallback.dens,
                                fallback.vel[0],
                                fallback.vel[1],
                                fallback.vel[2],
                                fallback.pres,
                            ];
                        }
                        [dens, vel[0], vel[1], vel[2], (game - 1.0) * dens * eint]
                    };
                    let pm = to_prim(&um, &minus);
                    let pp = to_prim(&up, &plus);
                    for v in 0..5 {
                        faces[z][v] = FacePair {
                            minus: pm[v],
                            plus: pp[v],
                        };
                    }
                    probe.stats.add_vec(60);
                }

                // Interface fluxes at faces ng..=ng+nxb.
                for (f, face) in iface.iter_mut().enumerate().take(ng + nxb + 1).skip(ng) {
                    let l = mk(f - 1, true, &faces);
                    let r = mk(f, false, &faces);
                    *face = hllc(&l, &r);
                    // ~90 lane ops per Riemann solve + 5×~30 per zone of
                    // reconstruction, amortized here.
                    probe.stats.add_vec(240);
                }

                // Conservative update + EOS on interior zones.
                for p in ng..ng + nxb {
                    let mut u5 = Prim {
                        dens: w[p][0],
                        vel: [w[p][1], w[p][2], w[p][3]],
                        pres: w[p][4],
                        ener: w[p][7],
                        gamc: w[p][6],
                    }
                    .to_cons();
                    if cylindrical_r {
                        let r_m = r_lo + (p - ng) as f64 * dx;
                        let r_p = r_m + dx;
                        let r_c = r_m + 0.5 * dx;
                        for n in 0..NFLUX {
                            u5[n] -= dt / (r_c * dx)
                                * (r_p * iface[p + 1][n] - r_m * iface[p][n]);
                        }
                        // Geometric pressure source on radial momentum.
                        u5[1] += dt * w[p][4] / r_c;
                    } else {
                        for n in 0..NFLUX {
                            u5[n] -= dtdx * (iface[p + 1][n] - iface[p][n]);
                        }
                    }
                    write_zone(
                        slab,
                        &geom,
                        dir,
                        p,
                        t1,
                        t2,
                        &vm,
                        &u5,
                        &cfg_local,
                        eos,
                        probe,
                    );
                    probe.stats.zones += 1;
                    probe.stats.add_fp(40);
                }

                // Boundary fluxes for the conservation fix-up.
                let c1 = t1 - ng;
                let c2 = if ndim == 3 { t2 - ng } else { 0 };
                fluxes_out.store(0, c1, c2, &iface[ng]);
                fluxes_out.store(1, c1, c2, &iface[ng + nxb]);

                // Access-pattern recording (sampled).
                if cfg_local.pattern_every > 0 {
                    if pencil_counter.is_multiple_of(cfg_local.pattern_every) {
                        for &v in &READ_VARS {
                            probe.record(geom.pencil_pattern(v, dir, t1, t2, id.idx()));
                        }
                        for &v in &WRITE_VARS {
                            probe.record_write(geom.pencil_pattern(v, dir, t1, t2, id.idx()));
                        }
                    }
                    pencil_counter += 1;
                }
            }
        }
        fluxes_out
    }
}

/// One directional sweep over the whole domain. Returns the rank probes for
/// the driver to absorb.
pub fn sweep_direction(
    domain: &mut Domain,
    eos: &SweepEos<'_>,
    dir: usize,
    dt: f64,
    reg: &mut FluxRegister,
    cfg: &SweepConfig,
) -> Vec<Probe> {
    domain.fill_guardcells(cfg.nranks);
    sweep_direction_prefilled(domain, eos, dir, dt, reg, cfg)
}

/// [`sweep_direction`] minus the guard-cell fill — for drivers that fill (and
/// time) the exchange themselves, e.g. the barrier stepper's per-phase
/// wall-time breakdown. Guard cells must be current for this step.
pub fn sweep_direction_prefilled(
    domain: &mut Domain,
    eos: &SweepEos<'_>,
    dir: usize,
    dt: f64,
    reg: &mut FluxRegister,
    cfg: &SweepConfig,
) -> Vec<Probe> {
    let ndim = domain.tree.config().ndim;
    assert!(dir < ndim, "sweep direction outside dimensionality");
    let nxb = domain.tree.config().nxb;
    let ng = domain.tree.config().nguard;
    assert!(ng >= 4, "PPM needs 4 guard cells");

    let geom = domain.unk.geom();
    let (probes, block_fluxes) = domain.par_leaf_map(cfg.nranks, |tree, id, slab, probe| {
        sweep_leaf_block(tree, &geom, id, slab, eos, dir, dt, cfg, probe)
    });

    // Record boundary fluxes and apply the fine–coarse corrections.
    reg.clear();
    for (id, bf) in &block_fluxes {
        for side in 0..2 {
            let face = Face { axis: dir, side };
            for t1 in 0..nxb {
                for t2 in 0..bf.t2_cells {
                    for ch in 0..NFLUX {
                        reg.save(id.idx(), face, [t1, t2], ch, bf.at(side, t1, t2, ch));
                    }
                }
            }
        }
    }
    apply_flux_corrections(domain, eos, dir, dt, reg, cfg);

    probes
}

/// Conservative write-back of one zone plus the per-zone EOS call.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_zone(
    slab: &mut [f64],
    geom: &UnkGeom,
    dir: usize,
    p: usize,
    t1: usize,
    t2: usize,
    vm: &[usize; 3],
    u5: &[f64; NFLUX],
    cfg: &SweepConfig,
    eos: &SweepEos<'_>,
    probe: &mut Probe,
) {
    let (i, j, k) = pencil_cell(dir, p, t1, t2);
    let (dens, vel, mut ener) = cons_to_vel_ener(u5, cfg.dens_floor);
    let ekin = 0.5 * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
    let mut eint = ener - ekin;
    if eint < cfg.eint_floor {
        eint = cfg.eint_floor;
        ener = eint + ekin;
    }
    let mut state = EosState {
        dens,
        temp: slab[geom.slab_idx(vars::TEMP, i, j, k)],
        abar: 1.0, // overwritten per SweepEos mode below
        zbar: 1.0,
        pres: 0.0,
        eint,
        entr: 0.0,
        gamc: 0.0,
        game: 0.0,
        cs: 0.0,
        cv: 0.0,
    };
    let eos_done = match eos {
        SweepEos::Defer => false,
        SweepEos::PerZone(zone) => zone(&mut state, probe).unwrap_or_else(|e| {
            // analyze::allow(panic): an EOS failure here leaves the zone
            // half-updated with no recovery path; the rank pool catches the
            // unwind and converts it into a clean whole-simulation abort with
            // the zone coordinates and thermodynamic state in the message.
            panic!("EOS failure at zone ({i},{j},{k}): dens={dens:e} eint={eint:e}: {e}")
        }),
        SweepEos::Batch {
            eos: batch_eos,
            abar,
            zbar,
        } => {
            // A one-lane batch: lanes of the batched interface are
            // independent, so this produces bit-identical values to the
            // pencil engine's whole-pencil batches.
            let dens_l = [dens];
            let mut eint_l = [eint];
            let mut temp_l = [state.temp];
            let abar_l = [*abar];
            let zbar_l = [*zbar];
            let mut pres_l = [0.0];
            let mut gamc_l = [0.0];
            let mut game_l = [0.0];
            let mut b = EosBatch {
                dens: &dens_l,
                eint: &mut eint_l,
                temp: &mut temp_l,
                abar: &abar_l,
                zbar: &zbar_l,
                pres: &mut pres_l,
                gamc: &mut gamc_l,
                game: &mut game_l,
            };
            let report = batch_eos.eos_batch(EosMode::DensEi, &mut b).unwrap_or_else(|e| {
                // analyze::allow(panic): same abort contract as the PerZone
                // arm — the rank pool converts the unwind into a clean
                // whole-simulation abort carrying the zone state.
                panic!("EOS failure at zone ({i},{j},{k}): dens={dens:e} eint={eint:e}: {e}")
            });
            probe.stats.batch_lanes += report.lanes;
            probe.stats.batch_vector_lanes += report.vector_lanes;
            state.temp = temp_l[0];
            state.pres = pres_l[0];
            state.gamc = gamc_l[0];
            state.game = game_l[0];
            true
        }
    };

    let mut put = |var: usize, v: f64| slab[geom.slab_idx(var, i, j, k)] = v;
    put(vars::DENS, dens);
    put(vm[0], vel[0]);
    put(vm[1], vel[1]);
    put(vm[2], vel[2]);
    put(vars::ENER, ener);
    put(vars::EINT, eint);
    if eos_done {
        probe.stats.eos_calls += 1;
        put(vars::PRES, state.pres);
        put(vars::TEMP, state.temp);
        put(vars::GAMC, state.gamc);
        put(vars::GAME, state.game);
    }
}

/// Apply ⟨F_fine⟩ − F_coarse corrections to coarse zones at refinement
/// jumps, then re-run the EOS on the corrected zones.
fn apply_flux_corrections(
    domain: &mut Domain,
    eos: &SweepEos<'_>,
    dir: usize,
    dt: f64,
    reg: &FluxRegister,
    cfg: &SweepConfig,
) {
    let corrections = reg.corrections(&domain.tree);
    if corrections.is_empty() {
        return;
    }
    let geom = domain.unk.geom();
    let mut probe = Probe::new();

    // Group by block so we can fetch slabs one at a time.
    let mut by_block: std::collections::HashMap<BlockId, Vec<&Correction>> =
        std::collections::HashMap::new();
    for c in &corrections {
        if c.face.axis == dir {
            by_block.entry(c.block).or_default().push(c);
        }
    }

    for (id, corrs) in by_block {
        let slab = domain.unk.block_slab_mut(id.idx());
        apply_block_corrections(
            &domain.tree,
            &geom,
            id,
            slab,
            &corrs,
            eos,
            dir,
            dt,
            cfg,
            &mut probe,
        );
    }
}

/// Apply one block's flux corrections to its slab and re-run the EOS on the
/// corrected zones: the per-block body of the fix-up pass, shared verbatim
/// with the task-graph scheduler's correction tasks. `corrs` must all target
/// block `id` along `dir`, in the order the register emitted them (the
/// per-zone accumulation order is part of the bit-identical contract).
#[allow(clippy::too_many_arguments)]
pub fn apply_block_corrections(
    tree: &Tree,
    geom: &UnkGeom,
    id: BlockId,
    slab: &mut [f64],
    corrs: &[&Correction],
    eos: &SweepEos<'_>,
    dir: usize,
    dt: f64,
    cfg: &SweepConfig,
    probe: &mut Probe,
) {
    let ng = tree.config().nguard;
    let nxb = tree.config().nxb;
    let ndim = tree.config().ndim;
    let vm = vel_map(dir);
    let dx = tree.cell_size(id)[dir];
    let dtdx = dt / dx;
    // Accumulate per-zone channel deltas first (5 channels per zone).
    let mut zone_delta: std::collections::HashMap<(usize, usize, usize), [f64; NFLUX]> =
        std::collections::HashMap::new();
    for c in corrs {
        debug_assert!(c.block == id && c.face.axis == dir);
        let p = if c.face.side == 0 { ng } else { ng + nxb - 1 };
        let t1 = ng + c.cell[0];
        let t2 = if ndim == 3 { ng + c.cell[1] } else { 0 };
        let cell = pencil_cell(dir, p, t1, t2);
        // Outward-face sign: subtracting a larger outgoing flux lowers U.
        let sign = if c.face.side == 0 { 1.0 } else { -1.0 };
        zone_delta.entry(cell).or_default()[c.channel] += sign * dtdx * c.delta;
    }
    for ((i, j, k), delta) in zone_delta {
        let at = |var: usize, slab: &[f64]| slab[geom.slab_idx(var, i, j, k)];
        let prim = Prim {
            dens: at(vars::DENS, slab),
            vel: [at(vm[0], slab), at(vm[1], slab), at(vm[2], slab)],
            pres: at(vars::PRES, slab),
            ener: at(vars::ENER, slab),
            gamc: at(vars::GAMC, slab),
        };
        let mut u5 = prim.to_cons();
        for n in 0..NFLUX {
            u5[n] += delta[n];
        }
        // Re-derive the zone (reuse the sweep-frame write-back, p/t1/t2
        // reconstruction from (i,j,k) via identity mapping for dir 0).
        let (p, t1, t2) = match dir {
            0 => (i, j, k),
            1 => (j, i, k),
            _ => (k, i, j),
        };
        write_zone(slab, geom, dir, p, t1, t2, &vm, &u5, cfg, eos, probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rflash_eos::{Eos, EosMode, GammaLaw};
    use rflash_hugepages::Policy;
    use rflash_mesh::tree::MeshConfig;
    use rflash_mesh::Geometry;

    fn gamma_zone_eos() -> impl Fn(&mut EosState, &mut Probe) -> Result<bool, EosError> + Sync {
        let eos = GammaLaw::new(1.4);
        move |s: &mut EosState, _p: &mut Probe| {
            s.abar = 1.0;
            s.zbar = 1.0;
            eos.call(EosMode::DensEi, s).map(|_| true)
        }
    }

    fn uniform_domain(bc: rflash_mesh::BoundaryCondition) -> Domain {
        let mut cfg = MeshConfig::test_2d();
        cfg.bc = bc;
        cfg.geometry = Geometry::Cartesian;
        let mut d = Domain::new(cfg, Policy::None);
        let eos = GammaLaw::new(1.4);
        for id in d.tree.leaves() {
            for j in 0..d.unk.padded().1 {
                for i in 0..d.unk.padded().0 {
                    let mut s = EosState::co_wd(1.0, 0.0);
                    s.abar = 1.0;
                    s.zbar = 1.0;
                    s.pres = 1.0;
                    eos.call(EosMode::DensPres, &mut s).unwrap();
                    d.unk.set(vars::DENS, i, j, 0, id.idx(), s.dens);
                    d.unk.set(vars::PRES, i, j, 0, id.idx(), s.pres);
                    d.unk.set(vars::TEMP, i, j, 0, id.idx(), s.temp);
                    d.unk.set(vars::EINT, i, j, 0, id.idx(), s.eint);
                    d.unk.set(vars::ENER, i, j, 0, id.idx(), s.eint);
                    d.unk.set(vars::GAMC, i, j, 0, id.idx(), s.gamc);
                    d.unk.set(vars::GAME, i, j, 0, id.idx(), s.game);
                }
            }
        }
        d
    }

    #[test]
    fn uniform_state_is_a_fixed_point() {
        let mut d = uniform_domain(rflash_mesh::BoundaryCondition::Periodic);
        let eos_zone = gamma_zone_eos();
        let mut reg = FluxRegister::new(2, 8, NFLUX, d.tree.config().max_blocks);
        let cfg = SweepConfig::default();
        for dir in 0..2 {
            sweep_direction(&mut d, &SweepEos::PerZone(&eos_zone), dir, 1e-3, &mut reg, &cfg);
        }
        for id in d.tree.leaves() {
            for j in d.unk.interior() {
                for i in d.unk.interior() {
                    let dens = d.unk.get(vars::DENS, i, j, 0, id.idx());
                    let velx = d.unk.get(vars::VELX, i, j, 0, id.idx());
                    assert!((dens - 1.0).abs() < 1e-13, "dens drifted: {dens}");
                    assert!(velx.abs() < 1e-13, "vel appeared: {velx}");
                }
            }
        }
    }

    #[test]
    fn mass_is_conserved_with_periodic_bcs() {
        let mut d = uniform_domain(rflash_mesh::BoundaryCondition::Periodic);
        // Perturb the density smoothly.
        let eos = GammaLaw::new(1.4);
        for id in d.tree.leaves() {
            for j in d.unk.interior() {
                for i in d.unk.interior() {
                    let x = d.tree.cell_center(id, i, j, 0);
                    let dens =
                        1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0]).sin();
                    let mut s = EosState::co_wd(dens, 0.0);
                    s.abar = 1.0;
                    s.zbar = 1.0;
                    s.pres = 1.0;
                    eos.call(EosMode::DensPres, &mut s).unwrap();
                    d.unk.set(vars::DENS, i, j, 0, id.idx(), dens);
                    d.unk.set(vars::TEMP, i, j, 0, id.idx(), s.temp);
                    d.unk.set(vars::EINT, i, j, 0, id.idx(), s.eint);
                    d.unk.set(vars::ENER, i, j, 0, id.idx(), s.eint);
                }
            }
        }
        let total_mass = |d: &Domain| -> f64 {
            let mut m = 0.0;
            for id in d.tree.leaves() {
                let dx = d.tree.cell_size(id);
                for j in d.unk.interior() {
                    for i in d.unk.interior() {
                        m += d.unk.get(vars::DENS, i, j, 0, id.idx()) * dx[0] * dx[1];
                    }
                }
            }
            m
        };
        let m0 = total_mass(&d);
        let eos_zone = gamma_zone_eos();
        let mut reg = FluxRegister::new(2, 8, NFLUX, d.tree.config().max_blocks);
        let cfg = SweepConfig::default();
        for _step in 0..5 {
            let dt = crate::dt::compute_dt(&d, 0.3);
            for dir in 0..2 {
                sweep_direction(&mut d, &SweepEos::PerZone(&eos_zone), dir, dt, &mut reg, &cfg);
            }
        }
        let m1 = total_mass(&d);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "mass drift {m0} -> {m1}"
        );
    }

    #[test]
    fn probes_account_work_and_patterns() {
        let mut d = uniform_domain(rflash_mesh::BoundaryCondition::Periodic);
        let eos_zone = gamma_zone_eos();
        let mut reg = FluxRegister::new(2, 8, NFLUX, d.tree.config().max_blocks);
        let cfg = SweepConfig {
            pattern_every: 1, // off by default; the accounting test opts in
            ..SweepConfig::default()
        };
        let probes = sweep_direction(&mut d, &SweepEos::PerZone(&eos_zone), 0, 1e-4, &mut reg, &cfg);
        let stats = &probes[0].stats;
        assert_eq!(stats.zones, 64, "one 8×8 block");
        assert_eq!(stats.eos_calls, 64);
        assert!(stats.vec_ops > 0);
        assert!(probes[0].pattern_count() > 0);
        assert!(stats.bytes_read > 0 && stats.bytes_written > 0);
        // Default engine is the pencil engine: the gather pass is accounted.
        assert!(stats.gather_cells > 0);
    }

    /// Bit-compare every solution variable over the interiors of two domains.
    fn assert_unk_identical(a: &Domain, b: &Domain, what: &str) {
        for id in a.tree.leaves() {
            for var in 0..vars::NVAR {
                for j in a.unk.interior() {
                    for i in a.unk.interior() {
                        let va = a.unk.get(var, i, j, 0, id.idx());
                        let vb = b.unk.get(var, i, j, 0, id.idx());
                        assert!(
                            va.to_bits() == vb.to_bits(),
                            "{what}: var {var} at ({i},{j}) block {}: {va:e} != {vb:e}",
                            id.idx()
                        );
                    }
                }
            }
        }
    }

    fn perturbed_domain() -> Domain {
        let mut d = uniform_domain(rflash_mesh::BoundaryCondition::Periodic);
        let eos = GammaLaw::new(1.4);
        for id in d.tree.leaves() {
            for j in d.unk.interior() {
                for i in d.unk.interior() {
                    let x = d.tree.cell_center(id, i, j, 0);
                    let dens = 1.0
                        + 0.4 * (2.0 * std::f64::consts::PI * x[0]).sin()
                        + 0.2 * (2.0 * std::f64::consts::PI * x[1]).cos();
                    let pres = 1.0 + 0.5 * (2.0 * std::f64::consts::PI * x[1]).sin();
                    let mut s = EosState::co_wd(dens, 0.0);
                    s.abar = 1.0;
                    s.zbar = 1.0;
                    s.pres = pres;
                    eos.call(EosMode::DensPres, &mut s).unwrap();
                    d.unk.set(vars::DENS, i, j, 0, id.idx(), dens);
                    d.unk.set(vars::PRES, i, j, 0, id.idx(), pres);
                    d.unk.set(vars::TEMP, i, j, 0, id.idx(), s.temp);
                    d.unk.set(vars::EINT, i, j, 0, id.idx(), s.eint);
                    d.unk.set(vars::ENER, i, j, 0, id.idx(), s.eint);
                    d.unk.set(vars::GAMC, i, j, 0, id.idx(), s.gamc);
                    d.unk.set(vars::GAME, i, j, 0, id.idx(), s.game);
                }
            }
        }
        d
    }

    fn run_steps(d: &mut Domain, eos: &SweepEos<'_>, engine: SweepEngine, steps: usize) {
        let mut reg = FluxRegister::new(2, 8, NFLUX, d.tree.config().max_blocks);
        let cfg = SweepConfig {
            engine,
            ..SweepConfig::default()
        };
        for _ in 0..steps {
            let dt = crate::dt::compute_dt(d, 0.3);
            for dir in 0..2 {
                sweep_direction(d, eos, dir, dt, &mut reg, &cfg);
            }
        }
    }

    #[test]
    fn pencil_engine_matches_scalar_bit_for_bit_per_zone() {
        let eos_zone = gamma_zone_eos();
        let mut a = perturbed_domain();
        let mut b = perturbed_domain();
        run_steps(&mut a, &SweepEos::PerZone(&eos_zone), SweepEngine::Scalar, 3);
        run_steps(&mut b, &SweepEos::PerZone(&eos_zone), SweepEngine::Pencil, 3);
        assert_unk_identical(&a, &b, "scalar vs pencil (PerZone)");
    }

    #[test]
    fn pencil_engine_matches_scalar_bit_for_bit_batch() {
        let eos = GammaLaw::new(1.4);
        let batch = SweepEos::Batch {
            eos: &eos,
            abar: 1.0,
            zbar: 1.0,
        };
        let mut a = perturbed_domain();
        let mut b = perturbed_domain();
        run_steps(&mut a, &batch, SweepEngine::Scalar, 3);
        run_steps(&mut b, &batch, SweepEngine::Pencil, 3);
        assert_unk_identical(&a, &b, "scalar vs pencil (Batch)");
    }

    #[test]
    fn batch_mode_matches_per_zone_gamma() {
        // The batched gamma-law EOS reproduces the per-zone closure's
        // outputs bit-for-bit, so the whole sweep must too.
        let eos = GammaLaw::new(1.4);
        let eos_zone = gamma_zone_eos();
        let batch = SweepEos::Batch {
            eos: &eos,
            abar: 1.0,
            zbar: 1.0,
        };
        let mut a = perturbed_domain();
        let mut b = perturbed_domain();
        run_steps(&mut a, &SweepEos::PerZone(&eos_zone), SweepEngine::Pencil, 2);
        run_steps(&mut b, &batch, SweepEngine::Pencil, 2);
        assert_unk_identical(&a, &b, "PerZone vs Batch");
    }

    #[test]
    fn defer_mode_leaves_thermo_cache_stale() {
        let mut a = perturbed_domain();
        let mut b = perturbed_domain();
        // One sweep with Defer under both engines: identical results, and
        // PRES stays at its pre-sweep value (the driver's EOS pass owns it).
        let pres_before = a.unk.get(vars::PRES, 4, 4, 0, a.tree.leaves()[0].idx());
        let mut reg = FluxRegister::new(2, 8, NFLUX, a.tree.config().max_blocks);
        let scalar = SweepConfig {
            engine: SweepEngine::Scalar,
            ..SweepConfig::default()
        };
        let pencil = SweepConfig {
            engine: SweepEngine::Pencil,
            ..SweepConfig::default()
        };
        sweep_direction(&mut a, &SweepEos::Defer, 0, 1e-4, &mut reg, &scalar);
        sweep_direction(&mut b, &SweepEos::Defer, 0, 1e-4, &mut reg, &pencil);
        assert_unk_identical(&a, &b, "scalar vs pencil (Defer)");
        let id0 = a.tree.leaves()[0];
        assert_eq!(
            a.unk.get(vars::PRES, 4, 4, 0, id0.idx()),
            pres_before,
            "Defer must not touch PRES"
        );
        // Density did move (the sweep ran).
        assert!(
            (a.unk.get(vars::DENS, 4, 4, 0, id0.idx())
                - b.unk.get(vars::DENS, 4, 4, 0, id0.idx()))
            .abs()
                == 0.0
        );
    }

    #[test]
    fn pencil_defer_accounts_gather_and_scatter() {
        let mut d = perturbed_domain();
        let mut reg = FluxRegister::new(2, 8, NFLUX, d.tree.config().max_blocks);
        let cfg = SweepConfig::default(); // pencil engine
        let probes = sweep_direction(&mut d, &SweepEos::Defer, 0, 1e-4, &mut reg, &cfg);
        let stats = &probes[0].stats;
        // 8 read vars × pencil length (8 + 2·4 guards = 16) × 8 pencils.
        assert_eq!(stats.gather_cells, 8 * 16 * 8);
        // 6 write vars × 8 interior zones × 8 pencils.
        assert_eq!(stats.scatter_cells, 6 * 8 * 8);
        assert_eq!(stats.eos_calls, 0, "Defer runs no EOS");
    }

    #[test]
    #[should_panic(expected = "sweep direction outside dimensionality")]
    fn z_sweep_rejected_in_2d() {
        let mut d = uniform_domain(rflash_mesh::BoundaryCondition::Periodic);
        let eos_zone = gamma_zone_eos();
        let mut reg = FluxRegister::new(2, 8, NFLUX, d.tree.config().max_blocks);
        sweep_direction(&mut d, &SweepEos::PerZone(&eos_zone), 2, 1e-4, &mut reg, &SweepConfig::default());
    }

    #[test]
    fn cylindrical_uniform_state_is_a_fixed_point() {
        // In r-z the pressure-only momentum flux divergence (p/r) must be
        // cancelled exactly by the geometric source.
        let mut cfg = MeshConfig::test_2d();
        cfg.geometry = Geometry::CylindricalRZ;
        cfg.bc = rflash_mesh::BoundaryCondition::Reflecting;
        let mut d = Domain::new(cfg, Policy::None);
        let eos = GammaLaw::new(1.4);
        for id in d.tree.leaves() {
            for j in 0..d.unk.padded().1 {
                for i in 0..d.unk.padded().0 {
                    let mut s = EosState::co_wd(1.0, 0.0);
                    s.abar = 1.0;
                    s.zbar = 1.0;
                    s.pres = 1.0;
                    eos.call(EosMode::DensPres, &mut s).unwrap();
                    d.unk.set(vars::DENS, i, j, 0, id.idx(), s.dens);
                    d.unk.set(vars::PRES, i, j, 0, id.idx(), s.pres);
                    d.unk.set(vars::TEMP, i, j, 0, id.idx(), s.temp);
                    d.unk.set(vars::EINT, i, j, 0, id.idx(), s.eint);
                    d.unk.set(vars::ENER, i, j, 0, id.idx(), s.eint);
                    d.unk.set(vars::GAMC, i, j, 0, id.idx(), s.gamc);
                    d.unk.set(vars::GAME, i, j, 0, id.idx(), s.game);
                }
            }
        }
        let eos_zone = gamma_zone_eos();
        let mut reg = FluxRegister::new(2, 8, NFLUX, d.tree.config().max_blocks);
        let cfg_sweep = SweepConfig::default();
        for _step in 0..4 {
            for dir in 0..2 {
                sweep_direction(&mut d, &SweepEos::PerZone(&eos_zone), dir, 1e-3, &mut reg, &cfg_sweep);
            }
        }
        for id in d.tree.leaves() {
            for j in d.unk.interior() {
                for i in d.unk.interior() {
                    let dens = d.unk.get(vars::DENS, i, j, 0, id.idx());
                    let velr = d.unk.get(vars::VELX, i, j, 0, id.idx());
                    assert!((dens - 1.0).abs() < 1e-12, "dens drifted: {dens}");
                    assert!(velr.abs() < 1e-12, "radial velocity appeared: {velr}");
                }
            }
        }
    }

    #[test]
    fn refined_mesh_conserves_mass_across_jumps() {
        let mut d = uniform_domain(rflash_mesh::BoundaryCondition::Periodic);
        // Refine one block so flux corrections engage.
        let root = d.tree.leaves()[0];
        let children = d.tree.refine_block(root, &mut d.unk);
        let _ = children;
        // Smooth density bump centered mid-domain.
        let eos = GammaLaw::new(1.4);
        for id in d.tree.leaves() {
            for j in d.unk.interior() {
                for i in d.unk.interior() {
                    let x = d.tree.cell_center(id, i, j, 0);
                    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
                    let dens = 1.0 + 2.0 * (-r2 / 0.02).exp();
                    let mut s = EosState::co_wd(dens, 0.0);
                    s.abar = 1.0;
                    s.zbar = 1.0;
                    s.pres = 1.0;
                    eos.call(EosMode::DensPres, &mut s).unwrap();
                    d.unk.set(vars::DENS, i, j, 0, id.idx(), dens);
                    d.unk.set(vars::TEMP, i, j, 0, id.idx(), s.temp);
                    d.unk.set(vars::EINT, i, j, 0, id.idx(), s.eint);
                    d.unk.set(vars::ENER, i, j, 0, id.idx(), s.eint);
                }
            }
        }
        let total_mass = |d: &Domain| -> f64 {
            let mut m = 0.0;
            for id in d.tree.leaves() {
                let dx = d.tree.cell_size(id);
                for j in d.unk.interior() {
                    for i in d.unk.interior() {
                        m += d.unk.get(vars::DENS, i, j, 0, id.idx()) * dx[0] * dx[1];
                    }
                }
            }
            m
        };
        let m0 = total_mass(&d);
        let eos_zone = gamma_zone_eos();
        let mut reg = FluxRegister::new(2, 8, NFLUX, d.tree.config().max_blocks);
        let cfg = SweepConfig::default();
        for _ in 0..3 {
            let dt = crate::dt::compute_dt(&d, 0.3);
            for dir in 0..2 {
                sweep_direction(&mut d, &SweepEos::PerZone(&eos_zone), dir, dt, &mut reg, &cfg);
            }
        }
        let m1 = total_mass(&d);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-10,
            "mass drift across refinement jump: {m0} -> {m1}"
        );
    }
}
