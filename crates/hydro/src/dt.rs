//! CFL time-step control (FLASH's `Driver_computeDt` / `Hydro_computeDt`).

use rflash_mesh::unk::UnkGeom;
use rflash_mesh::{vars, BlockId, Domain, Tree, UnkStorage};

/// Smallest `dx_d / (|u_d| + c_s)` over the interior zones of one leaf —
/// the per-block piece shared by the serial scan and the pooled reduction.
fn block_min_wavetime(tree: &Tree, unk: &UnkStorage, id: BlockId) -> f64 {
    block_min_wavetime_slab(tree, &unk.geom(), unk.block_slab(id.idx()), id)
}

/// [`block_min_wavetime`] over one block's slab — the form the task-graph
/// scheduler's per-block dt tasks call (same loop, same `min` fold order,
/// hence bit-identical contributions).
pub fn block_min_wavetime_slab(tree: &Tree, geom: &UnkGeom, slab: &[f64], id: BlockId) -> f64 {
    let ndim = tree.config().ndim;
    let ng = geom.nguard;
    let nxb = geom.nxb;
    let krange = if ndim == 3 { ng..ng + nxb } else { 0..1 };
    let vel = [vars::VELX, vars::VELY, vars::VELZ];
    let dx = tree.cell_size(id);
    let mut dt = f64::INFINITY;
    for k in krange {
        for j in ng..ng + nxb {
            for i in ng..ng + nxb {
                let dens = slab[geom.slab_idx(vars::DENS, i, j, k)];
                let pres = slab[geom.slab_idx(vars::PRES, i, j, k)];
                let gamc = slab[geom.slab_idx(vars::GAMC, i, j, k)];
                let cs = (gamc * pres / dens).max(0.0).sqrt();
                for d in 0..ndim {
                    let u = slab[geom.slab_idx(vel[d], i, j, k)].abs();
                    let speed = u + cs;
                    if speed > 0.0 {
                        dt = dt.min(dx[d] / speed);
                    }
                }
            }
        }
    }
    dt
}

/// Largest stable time step: `cfl · min(dx_d / (|u_d| + c_s))` over every
/// interior zone of every leaf and every direction. Serial reference scan.
pub fn compute_dt(domain: &Domain, cfl: f64) -> f64 {
    assert!(cfl > 0.0 && cfl < 1.0, "CFL must be in (0, 1)");
    let mut dt = f64::INFINITY;
    for id in domain.tree.leaves() {
        dt = dt.min(block_min_wavetime(&domain.tree, &domain.unk, id));
    }
    assert!(
        dt.is_finite(),
        "no finite time step: mesh uninitialized or all-zero state"
    );
    cfl * dt
}

/// [`compute_dt`] as a reduction over the persistent rank pool: each rank
/// scans its Morton segment and the minima are folded in rank order. `min`
/// is exact (associative and commutative), so the result is bit-identical
/// to the serial scan for any `nranks`.
pub fn compute_dt_parallel(domain: &mut Domain, cfl: f64, nranks: usize) -> f64 {
    let dt = compute_dt_parallel_raw(domain, cfl, nranks);
    assert!(
        dt.is_finite() && dt > 0.0,
        "no usable time step: mesh uninitialized or all-zero state"
    );
    dt
}

/// [`compute_dt_parallel`] without the usability assertion: the raw
/// `cfl · min(wavetime)` reduction, which is `inf` on an uninitialized
/// mesh and may be corrupted by the `dt-zero` fault site. Callers that
/// cannot panic (the step guardian) inspect the value themselves.
pub fn compute_dt_parallel_raw(domain: &mut Domain, cfl: f64, nranks: usize) -> f64 {
    assert!(cfl > 0.0 && cfl < 1.0, "CFL must be in (0, 1)");
    if rflash_hugepages::faults::fires(rflash_hugepages::faults::FaultSite::DtZero) {
        return 0.0;
    }
    cfl * domain.par_leaf_min(nranks, block_min_wavetime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rflash_hugepages::Policy;
    use rflash_mesh::tree::MeshConfig;

    fn domain_with(dens: f64, pres: f64, gamc: f64, velx: f64) -> Domain {
        let mut d = Domain::new(MeshConfig::test_2d(), Policy::None);
        for id in d.tree.leaves() {
            for j in 0..d.unk.padded().1 {
                for i in 0..d.unk.padded().0 {
                    d.unk.set(vars::DENS, i, j, 0, id.idx(), dens);
                    d.unk.set(vars::PRES, i, j, 0, id.idx(), pres);
                    d.unk.set(vars::GAMC, i, j, 0, id.idx(), gamc);
                    d.unk.set(vars::VELX, i, j, 0, id.idx(), velx);
                }
            }
        }
        d
    }

    #[test]
    fn matches_hand_computation() {
        // dx = 1/8, cs = sqrt(1.6·1/1) ≈ 1.2649, u = 0.
        let d = domain_with(1.0, 1.0, 1.6, 0.0);
        let dt = compute_dt(&d, 0.8);
        let expect = 0.8 * (1.0 / 8.0) / 1.6f64.sqrt();
        assert!((dt - expect).abs() < 1e-14, "{dt} vs {expect}");
    }

    #[test]
    fn velocity_shrinks_dt() {
        let still = compute_dt(&domain_with(1.0, 1.0, 1.6, 0.0), 0.5);
        let moving = compute_dt(&domain_with(1.0, 1.0, 1.6, 10.0), 0.5);
        assert!(moving < still / 5.0);
    }

    #[test]
    fn refined_zones_dominate() {
        let mut d = domain_with(1.0, 1.0, 1.6, 0.0);
        let before = compute_dt(&d, 0.5);
        let root = d.tree.leaves()[0];
        d.tree.refine_block(root, &mut d.unk);
        // Children inherit the state via prolongation; dx halves.
        let after = compute_dt(&d, 0.5);
        assert!((after - before / 2.0).abs() < 1e-13);
    }

    #[test]
    fn parallel_dt_is_bit_identical_to_serial() {
        let mut d = domain_with(1.3, 0.9, 1.6, 2.5);
        let root = d.tree.leaves()[0];
        let children = d.tree.refine_block(root, &mut d.unk);
        d.tree.refine_block(children[0], &mut d.unk);
        let serial = compute_dt(&d, 0.7);
        for nranks in [1, 2, 4, 7] {
            let par = compute_dt_parallel(&mut d, 0.7, nranks);
            assert_eq!(par.to_bits(), serial.to_bits(), "nranks={nranks}");
        }
    }

    #[test]
    #[should_panic(expected = "CFL must be in")]
    fn cfl_validated() {
        let d = domain_with(1.0, 1.0, 1.6, 0.0);
        let _ = compute_dt(&d, 1.5);
    }

    #[test]
    #[should_panic(expected = "CFL must be in")]
    fn parallel_cfl_validated() {
        let mut d = domain_with(1.0, 1.0, 1.6, 0.0);
        let _ = compute_dt_parallel(&mut d, 1.5, 2);
    }
}
