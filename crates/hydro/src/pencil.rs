//! Pencil-batched SoA sweep engine, vectorized through `rflash-simd`.
//!
//! The scalar engine in [`crate::sweep`] walks zones through
//! `UnkGeom::slab_idx` per cell: every read is a strided index computation
//! plus a bounds check, and every kernel sees AoS-shaped `[f64; 8]` rows.
//! This module is the batched alternative: each pencil is gathered **once**
//! into contiguous f64 lanes (one lane per variable, guard cells included),
//! the PPM/flattening/HLLC/update kernels run as explicit-SIMD lane loops
//! over those lanes, and the results scatter back to `unk` in one pass.
//! Real FLASH works the same way — `hy_ppm_sweep` copies blocks into 1-d
//! sweep arrays before touching physics.
//!
//! The kernels are generic over [`rflash_simd::Lane`] and the whole block
//! body is entered through [`rflash_simd::dispatch`] exactly once per
//! block — the backend (`SweepConfig::simd`) is a single branch out here,
//! not a branch per loop iteration, and the AVX2 instantiation inlines
//! into the `#[target_feature]` wrapper. Lane arithmetic keeps exactly the
//! scalar engine's operation order (branches become bitwise masked
//! selects; see the per-kernel notes in `ppm.rs`/`riemann.rs`/`state.rs`),
//! so every backend produces bit-identical `unk` contents and the scalar
//! path remains the parity reference and the fallback when scratch cannot
//! be mapped.
//!
//! Scratch comes from a per-rank [`HugeArena`] created on first use (the
//! rank pool's threads persist across epochs, so a `thread_local` is
//! per-rank persistent storage), sized for the largest pencil seen, and
//! `recycle()`d per block — steady state performs no allocations and the
//! lanes sit in one huge-page-backed VMA under the same policy/degradation
//! chain as `unk` itself.
//!
//! This module is under the `pencil_confinement` static-analysis rule: no
//! per-cell `unk` access (`slab_idx`/`get`/`set`) may appear here — all
//! `unk` traffic must flow through the gather/scatter helpers.

use std::cell::RefCell;

use rflash_eos::{EosBatch, EosMode};
use rflash_hugepages::{HugeArena, Policy};
use rflash_mesh::unk::UnkGeom;
use rflash_mesh::vars;
use rflash_perfmon::Probe;
use rflash_simd::{chunk_split, Lane, LaneMask, ScalarLane, WithLanes};

use crate::ppm::{flattening_lanes, reconstruct_lanes};
use crate::riemann::hllc_lanes;
use crate::state::{cons_to_vel_ener_lanes, Prim, PrimL};
use crate::sweep::{write_zone, BlockFluxes, SweepConfig, SweepEos, READ_VARS, WRITE_VARS};
use crate::NFLUX;

/// Everything about the block being swept that the engine needs and that is
/// constant across the block's pencils.
pub(crate) struct BlockCtx<'a> {
    pub geom: &'a UnkGeom,
    pub eos: &'a SweepEos<'a>,
    pub dir: usize,
    pub dt: f64,
    pub dx: f64,
    pub r_lo: f64,
    pub cylindrical_r: bool,
    pub block_idx: usize,
    pub cfg: &'a SweepConfig,
    pub nxb: usize,
    pub ng: usize,
    pub ndim: usize,
    pub vm: &'a [usize; 3],
}

/// Per-rank scratch: one arena reused for every block the rank sweeps.
struct Scratch {
    arena: HugeArena,
    /// The policy the arena was *requested* under (the region itself may
    /// have degraded along the chain); a config change rebuilds the arena.
    requested: Policy,
}

thread_local! {
    static SCRATCH: RefCell<Option<Scratch>> = const { RefCell::new(None) };
}

/// Split `len` elements off the front of `rest`.
fn carve<'s>(rest: &mut &'s mut [f64], len: usize) -> &'s mut [f64] {
    let whole = std::mem::take(rest);
    let (head, tail) = whole.split_at_mut(len);
    *rest = tail;
    head
}

/// Floor `lane` in place: `x = max(x, floor)` with the same bits as the
/// scalar `f64::max` (the floor is a positive constant, so the lane
/// select-`max` agrees — NaN or −0 in the data yields the floor either
/// way, and an exact tie is the same positive bit pattern).
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn floor_lane<L: Lane>(lane: &mut [f64], floor: f64) {
    let fl = L::splat(floor);
    let n = lane.len();
    let mut i = 0;
    while i + L::W <= n {
        L::load(&lane[i..]).max(fl).store(&mut lane[i..]);
        i += L::W;
    }
    let f1 = ScalarLane::splat(floor);
    while i < n {
        ScalarLane::load(&lane[i..]).max(f1).store(&mut lane[i..]);
        i += 1;
    }
}

/// Primitive face states of `W` zones starting at `z` from one side's face
/// lanes — the lane twin of the scalar engine's `mk` closure, same
/// operations in the same order.
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn face_prim_lanes<L: Lane>(
    face: &[&mut [f64]; 5],
    z: usize,
    game: L,
    gamc: L,
    dens_floor: f64,
) -> PrimL<L> {
    let dens = L::load(&face[0][z..]).max(L::splat(dens_floor));
    let pres = L::load(&face[4][z..]).max(L::splat(f64::MIN_POSITIVE));
    let vel = [
        L::load(&face[1][z..]),
        L::load(&face[2][z..]),
        L::load(&face[3][z..]),
    ];
    let eint = pres.div(game.sub(L::splat(1.0)).mul(dens));
    let ener = eint.add(L::splat(0.5).mul(
        vel[0]
            .mul(vel[0])
            .add(vel[1].mul(vel[1]))
            .add(vel[2].mul(vel[2])),
    ));
    PrimL {
        dens,
        vel,
        pres,
        ener,
        gamc,
    }
}

/// Predictor-state recovery (twin of the scalar engine's `to_prim`
/// closure): unphysical lanes (`eint <= 0` or `dens <= 0`, NaN included —
/// the comparisons are false on NaN in both forms) fall back to the
/// unpredicted face state via masked select.
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn to_prim_lanes<L: Lane>(u: &[L; NFLUX], fallback: &PrimL<L>, game: L, dens_floor: f64) -> [L; 5] {
    let (dens, vel, ener) = cons_to_vel_ener_lanes(u, L::splat(dens_floor));
    let eint = ener.sub(L::splat(0.5).mul(
        vel[0]
            .mul(vel[0])
            .add(vel[1].mul(vel[1]))
            .add(vel[2].mul(vel[2])),
    ));
    let ok = eint.gt(L::splat(0.0)).and(dens.gt(L::splat(0.0)));
    let pres = game.sub(L::splat(1.0)).mul(dens).mul(eint);
    [
        L::select(ok, dens, fallback.dens),
        L::select(ok, vel[0], fallback.vel[0]),
        L::select(ok, vel[1], fallback.vel[1]),
        L::select(ok, vel[2], fallback.vel[2]),
        L::select(ok, pres, fallback.pres),
    ]
}

/// MUSCL–Hancock predictor on `W` zones starting at `z` (twin of the
/// scalar engine's predictor loop body; see `sweep.rs` for the scheme
/// commentary).
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn muscl_at<L: Lane>(
    fm: &mut [&mut [f64]; 5],
    fp: &mut [&mut [f64]; 5],
    w_game: &[f64],
    w_gamc: &[f64],
    z: usize,
    half_dtdx: f64,
    dens_floor: f64,
) {
    let game = L::load(&w_game[z..]);
    let gamc = L::load(&w_gamc[z..]);
    let minus = face_prim_lanes::<L>(&*fm, z, game, gamc, dens_floor);
    let plus = face_prim_lanes::<L>(&*fp, z, game, gamc, dens_floor);
    let f_minus = minus.flux();
    let f_plus = plus.flux();
    let half = L::splat(half_dtdx);
    let mut um = minus.to_cons();
    let mut up = plus.to_cons();
    for ch in 0..NFLUX {
        let d = half.mul(f_plus[ch].sub(f_minus[ch]));
        um[ch] = um[ch].sub(d);
        up[ch] = up[ch].sub(d);
    }
    let pm = to_prim_lanes(&um, &minus, game, dens_floor);
    let pp = to_prim_lanes(&up, &plus, game, dens_floor);
    for v in 0..5 {
        pm[v].store(&mut fm[v][z..]);
        pp[v].store(&mut fp[v][z..]);
    }
}

/// HLLC interface fluxes for `W` faces starting at `f` into the interface
/// lanes (face `f` sees zone `f-1`'s plus side and zone `f`'s minus side).
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
fn hllc_at<L: Lane>(
    fm: &[&mut [f64]; 5],
    fp: &[&mut [f64]; 5],
    w_game: &[f64],
    w_gamc: &[f64],
    ifl: &mut [&mut [f64]; NFLUX],
    f: usize,
    dens_floor: f64,
) {
    let l = face_prim_lanes::<L>(
        fp,
        f - 1,
        L::load(&w_game[f - 1..]),
        L::load(&w_gamc[f - 1..]),
        dens_floor,
    );
    let r = face_prim_lanes::<L>(
        fm,
        f,
        L::load(&w_game[f..]),
        L::load(&w_gamc[f..]),
        dens_floor,
    );
    let fx = hllc_lanes(&l, &r);
    for (ch, lane) in ifl.iter_mut().enumerate() {
        fx[ch].store(&mut lane[f..]);
    }
}

/// Conservative update + eint floor on `W` zones starting at `p`, writing
/// the out lanes (twin of the scalar engine's update + `write_zone`
/// conversion; the energy is re-derived from the floored eint only on
/// floored lanes, exactly like the scalar branch).
#[cfg_attr(debug_assertions, inline)]
#[cfg_attr(not(debug_assertions), inline(always))]
#[allow(clippy::too_many_arguments)] // flat lane-slice plumbing, no natural struct
fn update_at<L: Lane>(
    ctx: &BlockCtx<'_>,
    lanes: &PencilLanes<'_>,
    ifl: &[&mut [f64]; NFLUX],
    out: &mut OutLanes<'_>,
    p: usize,
    dtdx: f64,
) {
    let prim = PrimL {
        dens: L::load(&lanes.w_dens[p..]),
        vel: [
            L::load(&lanes.w_u[p..]),
            L::load(&lanes.w_v[p..]),
            L::load(&lanes.w_w[p..]),
        ],
        pres: L::load(&lanes.w_pres[p..]),
        ener: L::load(&lanes.w_ener[p..]),
        gamc: L::load(&lanes.w_gamc[p..]),
    };
    let mut u5 = prim.to_cons();
    if ctx.cylindrical_r {
        let ng = ctx.ng;
        let r_m = L::from_fn(|k| ctx.r_lo + (p - ng + k) as f64 * ctx.dx);
        let r_p = r_m.add(L::splat(ctx.dx));
        let r_c = r_m.add(L::splat(0.5 * ctx.dx));
        for (ch, lane) in ifl.iter().enumerate() {
            let lo = L::load(&lane[p..]);
            let hi = L::load(&lane[p + 1..]);
            u5[ch] = u5[ch].sub(
                L::splat(ctx.dt)
                    .div(r_c.mul(L::splat(ctx.dx)))
                    .mul(r_p.mul(hi).sub(r_m.mul(lo))),
            );
        }
        u5[1] = u5[1].add(L::splat(ctx.dt).mul(prim.pres).div(r_c));
    } else {
        for (ch, lane) in ifl.iter().enumerate() {
            let lo = L::load(&lane[p..]);
            let hi = L::load(&lane[p + 1..]);
            u5[ch] = u5[ch].sub(L::splat(dtdx).mul(hi.sub(lo)));
        }
    }
    let (dens, vel, ener) = cons_to_vel_ener_lanes(&u5, L::splat(ctx.cfg.dens_floor));
    let ekin = L::splat(0.5).mul(
        vel[0]
            .mul(vel[0])
            .add(vel[1].mul(vel[1]))
            .add(vel[2].mul(vel[2])),
    );
    let eint = ener.sub(ekin);
    let fl = L::splat(ctx.cfg.eint_floor);
    let m = eint.lt(fl);
    let eint_o = L::select(m, fl, eint);
    let ener_o = L::select(m, fl.add(ekin), ener);
    dens.store(&mut out.dens[p..]);
    vel[0].store(&mut out.u[p..]);
    vel[1].store(&mut out.v[p..]);
    vel[2].store(&mut out.w[p..]);
    ener_o.store(&mut out.ener[p..]);
    eint_o.store(&mut out.eint[p..]);
}

/// The gathered (read-side) pencil lanes.
struct PencilLanes<'a> {
    w_dens: &'a [f64],
    w_u: &'a [f64],
    w_v: &'a [f64],
    w_w: &'a [f64],
    w_pres: &'a [f64],
    w_ener: &'a [f64],
    w_gamc: &'a [f64],
}

/// The update-output pencil lanes.
struct OutLanes<'a> {
    dens: &'a mut [f64],
    u: &'a mut [f64],
    v: &'a mut [f64],
    w: &'a mut [f64],
    ener: &'a mut [f64],
    eint: &'a mut [f64],
}

/// The whole per-block sweep body, monomorphized per lane backend and
/// entered once through [`rflash_simd::dispatch`].
struct PencilBody<'a, 'b> {
    ctx: &'a BlockCtx<'a>,
    slab: &'a mut [f64],
    fluxes_out: &'a mut BlockFluxes,
    probe: &'a mut Probe,
    all: &'b mut [f64],
}

impl WithLanes for PencilBody<'_, '_> {
    type Output = ();
    #[cfg_attr(debug_assertions, inline)]
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn with_lanes<L: Lane>(self) {
        run_pencils::<L>(self.ctx, self.slab, self.fluxes_out, self.probe, self.all)
    }
}

#[cfg_attr(debug_assertions, inline)]

#[cfg_attr(not(debug_assertions), inline(always))]
fn run_pencils<L: Lane>(
    ctx: &BlockCtx<'_>,
    slab: &mut [f64],
    fluxes_out: &mut BlockFluxes,
    probe: &mut Probe,
    all: &mut [f64],
) {
    let (geom, dir, ng, nxb) = (ctx.geom, ctx.dir, ctx.ng, ctx.nxb);
    let n = geom.pencil_len(dir);
    let dtdx = ctx.dt / ctx.dx;
    let dens_floor = ctx.cfg.dens_floor;

    let mut rest = all;
    let w_dens = carve(&mut rest, n);
    let w_u = carve(&mut rest, n);
    let w_v = carve(&mut rest, n);
    let w_w = carve(&mut rest, n);
    let w_pres = carve(&mut rest, n);
    let w_game = carve(&mut rest, n);
    let w_gamc = carve(&mut rest, n);
    let w_ener = carve(&mut rest, n);
    let flat = carve(&mut rest, n);
    let snap = carve(&mut rest, n);
    let mut fm: [&mut [f64]; 5] = [
        carve(&mut rest, n),
        carve(&mut rest, n),
        carve(&mut rest, n),
        carve(&mut rest, n),
        carve(&mut rest, n),
    ];
    let mut fp: [&mut [f64]; 5] = [
        carve(&mut rest, n),
        carve(&mut rest, n),
        carve(&mut rest, n),
        carve(&mut rest, n),
        carve(&mut rest, n),
    ];
    let mut ifl: [&mut [f64]; NFLUX] = [
        carve(&mut rest, n + 1),
        carve(&mut rest, n + 1),
        carve(&mut rest, n + 1),
        carve(&mut rest, n + 1),
        carve(&mut rest, n + 1),
    ];
    let out_dens = carve(&mut rest, n);
    let out_u = carve(&mut rest, n);
    let out_v = carve(&mut rest, n);
    let out_w = carve(&mut rest, n);
    let out_ener = carve(&mut rest, n);
    let out_eint = carve(&mut rest, n);
    let eos_pres = carve(&mut rest, n);
    let eos_gamc = carve(&mut rest, n);
    let eos_game = carve(&mut rest, n);
    let temp_lane = carve(&mut rest, n);
    let abar_lane = carve(&mut rest, n);
    let zbar_lane = carve(&mut rest, n);

    let t1_range = ng..ng + nxb;
    let t2_range = if ctx.ndim == 3 { ng..ng + nxb } else { 0..1 };
    let mut pencil_counter = 0usize;

    for t2 in t2_range {
        for t1 in t1_range.clone() {
            // Gather all read variables into SoA lanes, one strided walk
            // per variable, then apply the same floors the scalar
            // engine's `load_prim` applies.
            geom.gather_pencil(slab, vars::DENS, dir, t1, t2, w_dens);
            geom.gather_pencil(slab, ctx.vm[0], dir, t1, t2, w_u);
            geom.gather_pencil(slab, ctx.vm[1], dir, t1, t2, w_v);
            geom.gather_pencil(slab, ctx.vm[2], dir, t1, t2, w_w);
            geom.gather_pencil(slab, vars::PRES, dir, t1, t2, w_pres);
            geom.gather_pencil(slab, vars::GAME, dir, t1, t2, w_game);
            geom.gather_pencil(slab, vars::GAMC, dir, t1, t2, w_gamc);
            geom.gather_pencil(slab, vars::ENER, dir, t1, t2, w_ener);
            probe.stats.gather_cells += (8 * n) as u64;
            floor_lane::<L>(w_dens, dens_floor);
            floor_lane::<L>(w_pres, f64::MIN_POSITIVE);
            floor_lane::<L>(w_gamc, 1.01);
            floor_lane::<L>(w_game, 1.01);

            // Flattening and reconstruction directly on the lanes.
            flattening_lanes::<L>(w_pres, w_u, ng - 1, ng + nxb + 1, flat, snap);
            reconstruct_lanes::<L>(w_dens, ng - 1, ng + nxb + 1, flat, fm[0], fp[0]);
            reconstruct_lanes::<L>(w_u, ng - 1, ng + nxb + 1, flat, fm[1], fp[1]);
            reconstruct_lanes::<L>(w_v, ng - 1, ng + nxb + 1, flat, fm[2], fp[2]);
            reconstruct_lanes::<L>(w_w, ng - 1, ng + nxb + 1, flat, fm[3], fp[3]);
            reconstruct_lanes::<L>(w_pres, ng - 1, ng + nxb + 1, flat, fm[4], fp[4]);

            // MUSCL–Hancock predictor, identical math to the scalar
            // engine (see `sweep.rs` for the scheme commentary).
            let half_dtdx = 0.5 * dtdx;
            let mut z = ng - 1;
            while z + L::W <= ng + nxb + 1 {
                muscl_at::<L>(&mut fm, &mut fp, w_game, w_gamc, z, half_dtdx, dens_floor);
                z += L::W;
            }
            while z < ng + nxb + 1 {
                muscl_at::<ScalarLane>(&mut fm, &mut fp, w_game, w_gamc, z, half_dtdx, dens_floor);
                z += 1;
            }
            probe.stats.add_vec(60 * (nxb + 2) as u64);

            // Interface fluxes into the SoA interface lanes.
            let mut f = ng;
            while f + L::W <= ng + nxb + 1 {
                hllc_at::<L>(&fm, &fp, w_game, w_gamc, &mut ifl, f, dens_floor);
                f += L::W;
            }
            while f < ng + nxb + 1 {
                hllc_at::<ScalarLane>(&fm, &fp, w_game, w_gamc, &mut ifl, f, dens_floor);
                f += 1;
            }
            probe.stats.add_vec(240 * (nxb + 1) as u64);

            // Conservative update on interior zones.
            if let SweepEos::PerZone(_) = ctx.eos {
                // Per-zone callbacks are inherently cell-at-a-time; route
                // through the shared write-back helper so the callback
                // semantics (and probe accounting) match the scalar engine
                // exactly.
                for p in ng..ng + nxb {
                    let mut u5 = Prim {
                        dens: w_dens[p],
                        vel: [w_u[p], w_v[p], w_w[p]],
                        pres: w_pres[p],
                        ener: w_ener[p],
                        gamc: w_gamc[p],
                    }
                    .to_cons();
                    if ctx.cylindrical_r {
                        let r_m = ctx.r_lo + (p - ng) as f64 * ctx.dx;
                        let r_p = r_m + ctx.dx;
                        let r_c = r_m + 0.5 * ctx.dx;
                        for (ch, lane) in ifl.iter().enumerate() {
                            u5[ch] -= ctx.dt / (r_c * ctx.dx) * (r_p * lane[p + 1] - r_m * lane[p]);
                        }
                        u5[1] += ctx.dt * w_pres[p] / r_c;
                    } else {
                        for (ch, lane) in ifl.iter().enumerate() {
                            u5[ch] -= dtdx * (lane[p + 1] - lane[p]);
                        }
                    }
                    write_zone(
                        slab, geom, dir, p, t1, t2, ctx.vm, &u5, ctx.cfg, ctx.eos, probe,
                    );
                    probe.stats.zones += 1;
                    probe.stats.add_fp(40);
                }
            } else {
                let lanes = PencilLanes {
                    w_dens: &*w_dens,
                    w_u: &*w_u,
                    w_v: &*w_v,
                    w_w: &*w_w,
                    w_pres: &*w_pres,
                    w_ener: &*w_ener,
                    w_gamc: &*w_gamc,
                };
                let mut out = OutLanes {
                    dens: &mut *out_dens,
                    u: &mut *out_u,
                    v: &mut *out_v,
                    w: &mut *out_w,
                    ener: &mut *out_ener,
                    eint: &mut *out_eint,
                };
                let mut p = ng;
                while p + L::W <= ng + nxb {
                    update_at::<L>(ctx, &lanes, &ifl, &mut out, p, dtdx);
                    p += L::W;
                }
                while p < ng + nxb {
                    update_at::<ScalarLane>(ctx, &lanes, &ifl, &mut out, p, dtdx);
                    p += 1;
                }
                probe.stats.zones += nxb as u64;
                probe.stats.add_fp(40 * nxb as u64);
            }

            // SIMD occupancy accounting over the lane-kernel spans of this
            // pencil: flattening + 5 reconstructions + MUSCL (nxb+2 zones
            // each), HLLC (nxb+1 faces), update (nxb zones, lane path only).
            let (c_wide, t_wide) = chunk_split(nxb + 2, L::W);
            let (c_face, t_face) = chunk_split(nxb + 1, L::W);
            let mut chunk = 7 * c_wide + c_face;
            let mut tail = 7 * t_wide + t_face;
            if !matches!(ctx.eos, SweepEos::PerZone(_)) {
                let (c_upd, t_upd) = chunk_split(nxb, L::W);
                chunk += c_upd;
                tail += t_upd;
            }
            probe.stats.simd_chunk_lanes += chunk as u64;
            probe.stats.simd_tail_lanes += tail as u64;

            // Batched EOS over the whole interior span of the pencil.
            if let SweepEos::Batch { eos, abar, zbar } = ctx.eos {
                geom.gather_pencil(slab, vars::TEMP, dir, t1, t2, temp_lane);
                probe.stats.gather_cells += n as u64;
                abar_lane[ng..ng + nxb].fill(*abar);
                zbar_lane[ng..ng + nxb].fill(*zbar);
                let mut batch = EosBatch {
                    dens: &out_dens[ng..ng + nxb],
                    eint: &mut out_eint[ng..ng + nxb],
                    temp: &mut temp_lane[ng..ng + nxb],
                    abar: &abar_lane[ng..ng + nxb],
                    zbar: &zbar_lane[ng..ng + nxb],
                    pres: &mut eos_pres[ng..ng + nxb],
                    gamc: &mut eos_gamc[ng..ng + nxb],
                    game: &mut eos_game[ng..ng + nxb],
                };
                let report = match eos.eos_batch(EosMode::DensEi, &mut batch) {
                    Ok(r) => r,
                    Err(e) => {
                        // analyze::allow(panic): an EOS failure leaves the
                        // pencil half-updated with no recovery path; the
                        // rank pool converts the unwind into a clean
                        // whole-simulation abort (same contract as the
                        // scalar engine's per-zone arm).
                        panic!("EOS failure in pencil dir={dir} t1={t1} t2={t2}: {e}")
                    }
                };
                probe.stats.batch_lanes += report.lanes;
                probe.stats.batch_vector_lanes += report.vector_lanes;
                probe.stats.batch_plateau_lanes += report.plateau_lanes;
                for (bin, count) in report.iter_hist.iter().enumerate() {
                    probe.stats.newton_iter_hist[bin] += count;
                }
                probe.stats.eos_calls += nxb as u64;
            }

            // Scatter the write set back in one pass.
            match ctx.eos {
                SweepEos::PerZone(_) => {} // write_zone already stored the zones
                SweepEos::Defer => {
                    for (var, lane) in [
                        (vars::DENS, &*out_dens),
                        (ctx.vm[0], &*out_u),
                        (ctx.vm[1], &*out_v),
                        (ctx.vm[2], &*out_w),
                        (vars::ENER, &*out_ener),
                        (vars::EINT, &*out_eint),
                    ] {
                        geom.scatter_pencil(slab, var, dir, t1, t2, ng..ng + nxb, lane);
                    }
                    probe.stats.scatter_cells += (6 * nxb) as u64;
                }
                SweepEos::Batch { .. } => {
                    for (var, lane) in [
                        (vars::DENS, &*out_dens),
                        (ctx.vm[0], &*out_u),
                        (ctx.vm[1], &*out_v),
                        (ctx.vm[2], &*out_w),
                        (vars::ENER, &*out_ener),
                        (vars::EINT, &*out_eint),
                        (vars::PRES, &*eos_pres),
                        (vars::TEMP, &*temp_lane),
                        (vars::GAMC, &*eos_gamc),
                        (vars::GAME, &*eos_game),
                    ] {
                        geom.scatter_pencil(slab, var, dir, t1, t2, ng..ng + nxb, lane);
                    }
                    probe.stats.scatter_cells += (10 * nxb) as u64;
                }
            }

            // Boundary fluxes for the conservation fix-up.
            let c1 = t1 - ng;
            let c2 = if ctx.ndim == 3 { t2 - ng } else { 0 };
            let lo_face = [ifl[0][ng], ifl[1][ng], ifl[2][ng], ifl[3][ng], ifl[4][ng]];
            let hi_face = [
                ifl[0][ng + nxb],
                ifl[1][ng + nxb],
                ifl[2][ng + nxb],
                ifl[3][ng + nxb],
                ifl[4][ng + nxb],
            ];
            fluxes_out.store(0, c1, c2, &lo_face);
            fluxes_out.store(1, c1, c2, &hi_face);

            // Access-pattern recording (sampled), identical to the
            // scalar engine's gating.
            if ctx.cfg.pattern_every > 0 {
                if pencil_counter.is_multiple_of(ctx.cfg.pattern_every) {
                    for &v in &READ_VARS {
                        probe.record(geom.pencil_pattern(v, dir, t1, t2, ctx.block_idx));
                    }
                    for &v in &WRITE_VARS {
                        probe.record_write(geom.pencil_pattern(v, dir, t1, t2, ctx.block_idx));
                    }
                }
                pencil_counter += 1;
            }
        }
    }
}

/// Sweep one block with the pencil engine. Returns `false` when scratch
/// could not be mapped (the caller then runs the scalar path — no hot-path
/// panic on allocation failure). The lane backend (`SweepConfig::simd`) is
/// dispatched exactly once here, covering the whole block body.
pub(crate) fn sweep_block(
    ctx: &BlockCtx<'_>,
    slab: &mut [f64],
    fluxes_out: &mut BlockFluxes,
    probe: &mut Probe,
) -> bool {
    let n = ctx.geom.pencil_len(ctx.dir);
    // Lane budget: 8 prim + flat/snap + 5×2 faces + 6 update outputs +
    // 3 EOS outputs + temp + abar/zbar, each `n` long, plus 5 interface
    // lanes of `n + 1`.
    let total = 32 * n + NFLUX * (n + 1);

    SCRATCH.with(|cell| {
        let mut slot = cell.borrow_mut();
        let need = total * std::mem::size_of::<f64>();
        let rebuild = match slot.as_ref() {
            Some(s) => s.arena.capacity() < need || s.requested != ctx.cfg.scratch_policy,
            None => true,
        };
        if rebuild {
            match HugeArena::new(need, ctx.cfg.scratch_policy) {
                Ok(arena) => {
                    *slot = Some(Scratch {
                        arena,
                        requested: ctx.cfg.scratch_policy,
                    })
                }
                Err(_) => return false,
            }
        }
        let Some(scratch) = slot.as_mut() else {
            return false;
        };
        scratch.arena.recycle();
        let Ok(all) = scratch.arena.alloc_slice::<f64>(total) else {
            return false;
        };

        rflash_simd::dispatch(
            ctx.cfg.simd,
            PencilBody {
                ctx,
                slab,
                fluxes_out,
                probe,
                all,
            },
        );
        true
    })
}
