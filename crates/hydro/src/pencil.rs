//! Pencil-batched SoA sweep engine.
//!
//! The scalar engine in [`crate::sweep`] walks zones through
//! `UnkGeom::slab_idx` per cell: every read is a strided index computation
//! plus a bounds check, and every kernel sees AoS-shaped `[f64; 8]` rows.
//! This module is the batched alternative: each pencil is gathered **once**
//! into contiguous f64 lanes (one lane per variable, guard cells included),
//! the PPM/flattening/HLLC/update kernels run as branch-light loops over
//! those lanes, and the results scatter back to `unk` in one pass. Real
//! FLASH works the same way — `hy_ppm_sweep` copies blocks into 1-d sweep
//! arrays before touching physics.
//!
//! Lane arithmetic is kept in exactly the scalar engine's operation order,
//! so the two engines produce bit-identical `unk` contents; the scalar path
//! remains as the parity reference and as the fallback when scratch cannot
//! be mapped.
//!
//! Scratch comes from a per-rank [`HugeArena`] created on first use (the
//! rank pool's threads persist across epochs, so a `thread_local` is
//! per-rank persistent storage), sized for the largest pencil seen, and
//! `recycle()`d per block — steady state performs no allocations and the
//! lanes sit in one huge-page-backed VMA under the same policy/degradation
//! chain as `unk` itself.
//!
//! This module is under the `pencil_confinement` static-analysis rule: no
//! per-cell `unk` access (`slab_idx`/`get`/`set`) may appear here — all
//! `unk` traffic must flow through the gather/scatter helpers.

use std::cell::RefCell;

use rflash_eos::{EosBatch, EosMode};
use rflash_hugepages::{HugeArena, Policy};
use rflash_mesh::unk::UnkGeom;
use rflash_mesh::vars;
use rflash_perfmon::Probe;

use crate::ppm::{flattening_into, reconstruct_into};
use crate::riemann::hllc;
use crate::state::{cons_to_vel_ener, Prim};
use crate::sweep::{write_zone, BlockFluxes, SweepConfig, SweepEos, READ_VARS, WRITE_VARS};
use crate::NFLUX;

/// Everything about the block being swept that the engine needs and that is
/// constant across the block's pencils.
pub(crate) struct BlockCtx<'a> {
    pub geom: &'a UnkGeom,
    pub eos: &'a SweepEos<'a>,
    pub dir: usize,
    pub dt: f64,
    pub dx: f64,
    pub r_lo: f64,
    pub cylindrical_r: bool,
    pub block_idx: usize,
    pub cfg: &'a SweepConfig,
    pub nxb: usize,
    pub ng: usize,
    pub ndim: usize,
    pub vm: &'a [usize; 3],
}

/// Per-rank scratch: one arena reused for every block the rank sweeps.
struct Scratch {
    arena: HugeArena,
    /// The policy the arena was *requested* under (the region itself may
    /// have degraded along the chain); a config change rebuilds the arena.
    requested: Policy,
}

thread_local! {
    static SCRATCH: RefCell<Option<Scratch>> = const { RefCell::new(None) };
}

/// Split `len` elements off the front of `rest`.
fn carve<'s>(rest: &mut &'s mut [f64], len: usize) -> &'s mut [f64] {
    let whole = std::mem::take(rest);
    let (head, tail) = whole.split_at_mut(len);
    *rest = tail;
    head
}

/// Primitive face state of zone `z` from the face lanes — the SoA twin of
/// the scalar engine's `mk` closure, same operations in the same order.
#[inline]
fn face_prim(
    fm: &[&mut [f64]; 5],
    fp: &[&mut [f64]; 5],
    z: usize,
    side_plus: bool,
    game: f64,
    gamc: f64,
    dens_floor: f64,
) -> Prim {
    let pick = |v: usize| {
        if side_plus {
            fp[v][z]
        } else {
            fm[v][z]
        }
    };
    let dens = pick(0).max(dens_floor);
    let pres = pick(4).max(f64::MIN_POSITIVE);
    let vel = [pick(1), pick(2), pick(3)];
    let eint = pres / ((game - 1.0) * dens);
    Prim {
        dens,
        vel,
        pres,
        ener: eint + 0.5 * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]),
        gamc,
    }
}

/// Sweep one block with the pencil engine. Returns `false` when scratch
/// could not be mapped (the caller then runs the scalar path — no hot-path
/// panic on allocation failure).
pub(crate) fn sweep_block(
    ctx: &BlockCtx<'_>,
    slab: &mut [f64],
    fluxes_out: &mut BlockFluxes,
    probe: &mut Probe,
) -> bool {
    let (geom, dir, ng, nxb) = (ctx.geom, ctx.dir, ctx.ng, ctx.nxb);
    let n = geom.pencil_len(dir);
    let dtdx = ctx.dt / ctx.dx;
    let dens_floor = ctx.cfg.dens_floor;
    // Lane budget: 8 prim + flat/snap + 5×2 faces + 6 update outputs +
    // 3 EOS outputs + temp + abar/zbar, each `n` long, plus 5 interface
    // lanes of `n + 1`.
    let total = 32 * n + NFLUX * (n + 1);

    SCRATCH.with(|cell| {
        let mut slot = cell.borrow_mut();
        let need = total * std::mem::size_of::<f64>();
        let rebuild = match slot.as_ref() {
            Some(s) => s.arena.capacity() < need || s.requested != ctx.cfg.scratch_policy,
            None => true,
        };
        if rebuild {
            match HugeArena::new(need, ctx.cfg.scratch_policy) {
                Ok(arena) => {
                    *slot = Some(Scratch {
                        arena,
                        requested: ctx.cfg.scratch_policy,
                    })
                }
                Err(_) => return false,
            }
        }
        let Some(scratch) = slot.as_mut() else {
            return false;
        };
        scratch.arena.recycle();
        let Ok(all) = scratch.arena.alloc_slice::<f64>(total) else {
            return false;
        };

        let mut rest = all;
        let w_dens = carve(&mut rest, n);
        let w_u = carve(&mut rest, n);
        let w_v = carve(&mut rest, n);
        let w_w = carve(&mut rest, n);
        let w_pres = carve(&mut rest, n);
        let w_game = carve(&mut rest, n);
        let w_gamc = carve(&mut rest, n);
        let w_ener = carve(&mut rest, n);
        let flat = carve(&mut rest, n);
        let snap = carve(&mut rest, n);
        let fm: [&mut [f64]; 5] = [
            carve(&mut rest, n),
            carve(&mut rest, n),
            carve(&mut rest, n),
            carve(&mut rest, n),
            carve(&mut rest, n),
        ];
        let fp: [&mut [f64]; 5] = [
            carve(&mut rest, n),
            carve(&mut rest, n),
            carve(&mut rest, n),
            carve(&mut rest, n),
            carve(&mut rest, n),
        ];
        let mut ifl: [&mut [f64]; NFLUX] = [
            carve(&mut rest, n + 1),
            carve(&mut rest, n + 1),
            carve(&mut rest, n + 1),
            carve(&mut rest, n + 1),
            carve(&mut rest, n + 1),
        ];
        let out_dens = carve(&mut rest, n);
        let out_u = carve(&mut rest, n);
        let out_v = carve(&mut rest, n);
        let out_w = carve(&mut rest, n);
        let out_ener = carve(&mut rest, n);
        let out_eint = carve(&mut rest, n);
        let eos_pres = carve(&mut rest, n);
        let eos_gamc = carve(&mut rest, n);
        let eos_game = carve(&mut rest, n);
        let temp_lane = carve(&mut rest, n);
        let abar_lane = carve(&mut rest, n);
        let zbar_lane = carve(&mut rest, n);

        let t1_range = ng..ng + nxb;
        let t2_range = if ctx.ndim == 3 { ng..ng + nxb } else { 0..1 };
        let mut pencil_counter = 0usize;

        for t2 in t2_range {
            for t1 in t1_range.clone() {
                // Gather all read variables into SoA lanes, one strided walk
                // per variable, then apply the same floors the scalar
                // engine's `load_prim` applies.
                geom.gather_pencil(slab, vars::DENS, dir, t1, t2, w_dens);
                geom.gather_pencil(slab, ctx.vm[0], dir, t1, t2, w_u);
                geom.gather_pencil(slab, ctx.vm[1], dir, t1, t2, w_v);
                geom.gather_pencil(slab, ctx.vm[2], dir, t1, t2, w_w);
                geom.gather_pencil(slab, vars::PRES, dir, t1, t2, w_pres);
                geom.gather_pencil(slab, vars::GAME, dir, t1, t2, w_game);
                geom.gather_pencil(slab, vars::GAMC, dir, t1, t2, w_gamc);
                geom.gather_pencil(slab, vars::ENER, dir, t1, t2, w_ener);
                probe.stats.gather_cells += (8 * n) as u64;
                for x in w_dens.iter_mut() {
                    *x = (*x).max(dens_floor);
                }
                for x in w_pres.iter_mut() {
                    *x = (*x).max(f64::MIN_POSITIVE);
                }
                for x in w_gamc.iter_mut() {
                    *x = (*x).max(1.01);
                }
                for x in w_game.iter_mut() {
                    *x = (*x).max(1.01);
                }

                // Flattening and reconstruction directly on the lanes.
                flattening_into(w_pres, w_u, ng - 1, ng + nxb + 1, flat, snap);
                reconstruct_into(w_dens, ng - 1, ng + nxb + 1, flat, fm[0], fp[0]);
                reconstruct_into(w_u, ng - 1, ng + nxb + 1, flat, fm[1], fp[1]);
                reconstruct_into(w_v, ng - 1, ng + nxb + 1, flat, fm[2], fp[2]);
                reconstruct_into(w_w, ng - 1, ng + nxb + 1, flat, fm[3], fp[3]);
                reconstruct_into(w_pres, ng - 1, ng + nxb + 1, flat, fm[4], fp[4]);

                // MUSCL–Hancock predictor, identical math to the scalar
                // engine (see `sweep.rs` for the scheme commentary).
                for z in ng - 1..ng + nxb + 1 {
                    let game = w_game[z];
                    let gamc = w_gamc[z];
                    let minus = face_prim(&fm, &fp, z, false, game, gamc, dens_floor);
                    let plus = face_prim(&fm, &fp, z, true, game, gamc, dens_floor);
                    let f_minus = minus.flux();
                    let f_plus = plus.flux();
                    let half = 0.5 * dtdx;
                    let mut um = minus.to_cons();
                    let mut up = plus.to_cons();
                    for ch in 0..NFLUX {
                        let d = half * (f_plus[ch] - f_minus[ch]);
                        um[ch] -= d;
                        up[ch] -= d;
                    }
                    let to_prim = |u: &[f64; NFLUX], fallback: &Prim| -> [f64; 5] {
                        let (dens, vel, ener) = cons_to_vel_ener(u, dens_floor);
                        let eint =
                            ener - 0.5 * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
                        if !(eint > 0.0 && dens > 0.0) {
                            return [
                                fallback.dens,
                                fallback.vel[0],
                                fallback.vel[1],
                                fallback.vel[2],
                                fallback.pres,
                            ];
                        }
                        [dens, vel[0], vel[1], vel[2], (game - 1.0) * dens * eint]
                    };
                    let pm = to_prim(&um, &minus);
                    let pp = to_prim(&up, &plus);
                    for v in 0..5 {
                        fm[v][z] = pm[v];
                        fp[v][z] = pp[v];
                    }
                    probe.stats.add_vec(60);
                }

                // Interface fluxes into the SoA interface lanes.
                for f in ng..=ng + nxb {
                    let l = face_prim(&fm, &fp, f - 1, true, w_game[f - 1], w_gamc[f - 1], dens_floor);
                    let r = face_prim(&fm, &fp, f, false, w_game[f], w_gamc[f], dens_floor);
                    let fx = hllc(&l, &r);
                    for (ch, lane) in ifl.iter_mut().enumerate() {
                        lane[f] = fx[ch];
                    }
                    probe.stats.add_vec(240);
                }

                // Conservative update on interior zones.
                for p in ng..ng + nxb {
                    let mut u5 = Prim {
                        dens: w_dens[p],
                        vel: [w_u[p], w_v[p], w_w[p]],
                        pres: w_pres[p],
                        ener: w_ener[p],
                        gamc: w_gamc[p],
                    }
                    .to_cons();
                    if ctx.cylindrical_r {
                        let r_m = ctx.r_lo + (p - ng) as f64 * ctx.dx;
                        let r_p = r_m + ctx.dx;
                        let r_c = r_m + 0.5 * ctx.dx;
                        for (ch, lane) in ifl.iter().enumerate() {
                            u5[ch] -= ctx.dt / (r_c * ctx.dx) * (r_p * lane[p + 1] - r_m * lane[p]);
                        }
                        u5[1] += ctx.dt * w_pres[p] / r_c;
                    } else {
                        for (ch, lane) in ifl.iter().enumerate() {
                            u5[ch] -= dtdx * (lane[p + 1] - lane[p]);
                        }
                    }
                    match ctx.eos {
                        SweepEos::PerZone(_) => {
                            // Per-zone callbacks are inherently cell-at-a-time;
                            // route through the shared write-back helper so the
                            // callback semantics (and probe accounting) match
                            // the scalar engine exactly.
                            write_zone(
                                slab, geom, dir, p, t1, t2, ctx.vm, &u5, ctx.cfg, ctx.eos, probe,
                            );
                        }
                        _ => {
                            // Same conversion + floors as `write_zone`, into
                            // lanes instead of the slab.
                            let (dens, vel, mut ener) = cons_to_vel_ener(&u5, dens_floor);
                            let ekin =
                                0.5 * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
                            let mut eint = ener - ekin;
                            if eint < ctx.cfg.eint_floor {
                                eint = ctx.cfg.eint_floor;
                                ener = eint + ekin;
                            }
                            out_dens[p] = dens;
                            out_u[p] = vel[0];
                            out_v[p] = vel[1];
                            out_w[p] = vel[2];
                            out_ener[p] = ener;
                            out_eint[p] = eint;
                        }
                    }
                    probe.stats.zones += 1;
                    probe.stats.add_fp(40);
                }

                // Batched EOS over the whole interior span of the pencil.
                if let SweepEos::Batch { eos, abar, zbar } = ctx.eos {
                    geom.gather_pencil(slab, vars::TEMP, dir, t1, t2, temp_lane);
                    probe.stats.gather_cells += n as u64;
                    abar_lane[ng..ng + nxb].fill(*abar);
                    zbar_lane[ng..ng + nxb].fill(*zbar);
                    let mut batch = EosBatch {
                        dens: &out_dens[ng..ng + nxb],
                        eint: &mut out_eint[ng..ng + nxb],
                        temp: &mut temp_lane[ng..ng + nxb],
                        abar: &abar_lane[ng..ng + nxb],
                        zbar: &zbar_lane[ng..ng + nxb],
                        pres: &mut eos_pres[ng..ng + nxb],
                        gamc: &mut eos_gamc[ng..ng + nxb],
                        game: &mut eos_game[ng..ng + nxb],
                    };
                    let report = match eos.eos_batch(EosMode::DensEi, &mut batch) {
                        Ok(r) => r,
                        Err(e) => {
                            // analyze::allow(panic): an EOS failure leaves the
                            // pencil half-updated with no recovery path; the
                            // rank pool converts the unwind into a clean
                            // whole-simulation abort (same contract as the
                            // scalar engine's per-zone arm).
                            panic!("EOS failure in pencil dir={dir} t1={t1} t2={t2}: {e}")
                        }
                    };
                    probe.stats.batch_lanes += report.lanes;
                    probe.stats.batch_vector_lanes += report.vector_lanes;
                    probe.stats.eos_calls += nxb as u64;
                }

                // Scatter the write set back in one pass.
                match ctx.eos {
                    SweepEos::PerZone(_) => {} // write_zone already stored the zones
                    SweepEos::Defer => {
                        for (var, lane) in [
                            (vars::DENS, &*out_dens),
                            (ctx.vm[0], &*out_u),
                            (ctx.vm[1], &*out_v),
                            (ctx.vm[2], &*out_w),
                            (vars::ENER, &*out_ener),
                            (vars::EINT, &*out_eint),
                        ] {
                            geom.scatter_pencil(slab, var, dir, t1, t2, ng..ng + nxb, lane);
                        }
                        probe.stats.scatter_cells += (6 * nxb) as u64;
                    }
                    SweepEos::Batch { .. } => {
                        for (var, lane) in [
                            (vars::DENS, &*out_dens),
                            (ctx.vm[0], &*out_u),
                            (ctx.vm[1], &*out_v),
                            (ctx.vm[2], &*out_w),
                            (vars::ENER, &*out_ener),
                            (vars::EINT, &*out_eint),
                            (vars::PRES, &*eos_pres),
                            (vars::TEMP, &*temp_lane),
                            (vars::GAMC, &*eos_gamc),
                            (vars::GAME, &*eos_game),
                        ] {
                            geom.scatter_pencil(slab, var, dir, t1, t2, ng..ng + nxb, lane);
                        }
                        probe.stats.scatter_cells += (10 * nxb) as u64;
                    }
                }

                // Boundary fluxes for the conservation fix-up.
                let c1 = t1 - ng;
                let c2 = if ctx.ndim == 3 { t2 - ng } else { 0 };
                let lo_face = [ifl[0][ng], ifl[1][ng], ifl[2][ng], ifl[3][ng], ifl[4][ng]];
                let hi_face = [
                    ifl[0][ng + nxb],
                    ifl[1][ng + nxb],
                    ifl[2][ng + nxb],
                    ifl[3][ng + nxb],
                    ifl[4][ng + nxb],
                ];
                fluxes_out.store(0, c1, c2, &lo_face);
                fluxes_out.store(1, c1, c2, &hi_face);

                // Access-pattern recording (sampled), identical to the
                // scalar engine's gating.
                if ctx.cfg.pattern_every > 0 {
                    if pencil_counter.is_multiple_of(ctx.cfg.pattern_every) {
                        for &v in &READ_VARS {
                            probe.record(geom.pencil_pattern(v, dir, t1, t2, ctx.block_idx));
                        }
                        for &v in &WRITE_VARS {
                            probe.record_write(geom.pencil_pattern(v, dir, t1, t2, ctx.block_idx));
                        }
                    }
                    pencil_counter += 1;
                }
            }
        }
        true
    })
}
