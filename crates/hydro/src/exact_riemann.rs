//! Exact Riemann solver for the gamma-law gas (Toro ch. 4).
//!
//! Used to validate the HLLC solver and the full shock-tube evolution; the
//! paper's hydro solver heritage (PPM) was historically verified the same
//! way (Fryxell et al. 2000 §8).

/// A constant state for the exact solver.
#[derive(Clone, Copy, Debug)]
pub struct GasState {
    pub dens: f64,
    pub vel: f64,
    pub pres: f64,
}

/// Star-region solution of the Riemann problem.
#[derive(Clone, Copy, Debug)]
pub struct StarState {
    pub pres: f64,
    pub vel: f64,
    /// Density left/right of the contact.
    pub dens_l: f64,
    pub dens_r: f64,
}

/// Exact Riemann solution for a gamma-law gas.
pub struct ExactRiemann {
    pub gamma: f64,
    pub left: GasState,
    pub right: GasState,
    star: StarState,
}

impl ExactRiemann {
    /// Solve the star region by Newton iteration on the pressure function
    /// (Toro eq. 4.5), with a positivity check for vacuum generation.
    pub fn new(gamma: f64, left: GasState, right: GasState) -> ExactRiemann {
        assert!(gamma > 1.0);
        assert!(left.dens > 0.0 && right.dens > 0.0);
        assert!(left.pres > 0.0 && right.pres > 0.0);
        let cl = (gamma * left.pres / left.dens).sqrt();
        let cr = (gamma * right.pres / right.dens).sqrt();
        // Vacuum check (Toro eq. 4.40).
        assert!(
            2.0 * (cl + cr) / (gamma - 1.0) > right.vel - left.vel,
            "initial states generate vacuum"
        );

        // f_K(p): change of velocity across the K-wave (Toro eqs. 4.6/4.7).
        let f = |p: f64, s: &GasState, c: f64| -> (f64, f64) {
            if p > s.pres {
                // Shock.
                let a = 2.0 / ((gamma + 1.0) * s.dens);
                let b = (gamma - 1.0) / (gamma + 1.0) * s.pres;
                let sq = (a / (p + b)).sqrt();
                let fv = (p - s.pres) * sq;
                let dfv = sq * (1.0 - 0.5 * (p - s.pres) / (p + b));
                (fv, dfv)
            } else {
                // Rarefaction.
                let pr = p / s.pres;
                let fv = 2.0 * c / (gamma - 1.0) * (pr.powf((gamma - 1.0) / (2.0 * gamma)) - 1.0);
                let dfv = 1.0 / (s.dens * c) * pr.powf(-(gamma + 1.0) / (2.0 * gamma));
                (fv, dfv)
            }
        };

        // Initial guess: two-rarefaction approximation (Toro eq. 4.46).
        let z = (gamma - 1.0) / (2.0 * gamma);
        let mut p = ((cl + cr - 0.5 * (gamma - 1.0) * (right.vel - left.vel))
            / (cl / left.pres.powf(z) + cr / right.pres.powf(z)))
        .powf(1.0 / z);
        if !p.is_finite() || p <= 0.0 {
            p = 0.5 * (left.pres + right.pres);
        }

        let du = right.vel - left.vel;
        for _ in 0..100 {
            let (fl, dfl) = f(p, &left, cl);
            let (fr, dfr) = f(p, &right, cr);
            let g = fl + fr + du;
            let dg = dfl + dfr;
            let p_new = (p - g / dg).max(1e-14 * p);
            if (p_new - p).abs() / (0.5 * (p_new + p)) < 1e-14 {
                p = p_new;
                break;
            }
            p = p_new;
        }

        let (fl, _) = f(p, &left, cl);
        let (fr, _) = f(p, &right, cr);
        let u_star = 0.5 * (left.vel + right.vel) + 0.5 * (fr - fl);

        // Star densities (shock: Rankine–Hugoniot; rarefaction: isentrope).
        let star_dens = |s: &GasState, p_star: f64| -> f64 {
            if p_star > s.pres {
                let r = p_star / s.pres;
                let g1 = (gamma - 1.0) / (gamma + 1.0);
                s.dens * (r + g1) / (g1 * r + 1.0)
            } else {
                s.dens * (p_star / s.pres).powf(1.0 / gamma)
            }
        };

        ExactRiemann {
            gamma,
            left,
            right,
            star: StarState {
                pres: p,
                vel: u_star,
                dens_l: star_dens(&left, p),
                dens_r: star_dens(&right, p),
            },
        }
    }

    /// The star region.
    pub fn star(&self) -> StarState {
        self.star
    }

    /// Sample the self-similar solution at speed ξ = x/t (Toro §4.5).
    pub fn sample(&self, xi: f64) -> GasState {
        let g = self.gamma;
        let s = &self.star;
        if xi <= s.vel {
            // Left of the contact.
            let k = &self.left;
            let c = (g * k.pres / k.dens).sqrt();
            if s.pres > k.pres {
                // Left shock.
                let shock_speed = k.vel
                    - c * ((g + 1.0) / (2.0 * g) * s.pres / k.pres + (g - 1.0) / (2.0 * g)).sqrt();
                if xi < shock_speed {
                    *k
                } else {
                    GasState {
                        dens: s.dens_l,
                        vel: s.vel,
                        pres: s.pres,
                    }
                }
            } else {
                // Left rarefaction.
                let c_star = c * (s.pres / k.pres).powf((g - 1.0) / (2.0 * g));
                let head = k.vel - c;
                let tail = s.vel - c_star;
                if xi < head {
                    *k
                } else if xi > tail {
                    GasState {
                        dens: s.dens_l,
                        vel: s.vel,
                        pres: s.pres,
                    }
                } else {
                    // Inside the fan.
                    let u = 2.0 / (g + 1.0) * (c + (g - 1.0) / 2.0 * k.vel + xi);
                    let cfan = 2.0 / (g + 1.0) * (c + (g - 1.0) / 2.0 * (k.vel - xi));
                    let dens = k.dens * (cfan / c).powf(2.0 / (g - 1.0));
                    let pres = k.pres * (cfan / c).powf(2.0 * g / (g - 1.0));
                    GasState { dens, vel: u, pres }
                }
            }
        } else {
            // Right of the contact (mirror).
            let k = &self.right;
            let c = (g * k.pres / k.dens).sqrt();
            if s.pres > k.pres {
                let shock_speed = k.vel
                    + c * ((g + 1.0) / (2.0 * g) * s.pres / k.pres + (g - 1.0) / (2.0 * g)).sqrt();
                if xi > shock_speed {
                    *k
                } else {
                    GasState {
                        dens: s.dens_r,
                        vel: s.vel,
                        pres: s.pres,
                    }
                }
            } else {
                let c_star = c * (s.pres / k.pres).powf((g - 1.0) / (2.0 * g));
                let head = k.vel + c;
                let tail = s.vel + c_star;
                if xi > head {
                    *k
                } else if xi < tail {
                    GasState {
                        dens: s.dens_r,
                        vel: s.vel,
                        pres: s.pres,
                    }
                } else {
                    let u = 2.0 / (g + 1.0) * (-c + (g - 1.0) / 2.0 * k.vel + xi);
                    let cfan = 2.0 / (g + 1.0) * (c - (g - 1.0) / 2.0 * (k.vel - xi));
                    let dens = k.dens * (cfan / c).powf(2.0 / (g - 1.0));
                    let pres = k.pres * (cfan / c).powf(2.0 * g / (g - 1.0));
                    GasState { dens, vel: u, pres }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toro's test 1: the Sod problem. Known star values (Toro table 4.3):
    /// p* = 0.30313, u* = 0.92745.
    #[test]
    fn sod_star_state_matches_toro() {
        let ex = ExactRiemann::new(
            1.4,
            GasState {
                dens: 1.0,
                vel: 0.0,
                pres: 1.0,
            },
            GasState {
                dens: 0.125,
                vel: 0.0,
                pres: 0.1,
            },
        );
        let s = ex.star();
        assert!((s.pres - 0.30313).abs() < 1e-4, "p* = {}", s.pres);
        assert!((s.vel - 0.92745).abs() < 1e-4, "u* = {}", s.vel);
        // Star densities from Toro: 0.42632 (left of contact), 0.26557 (right).
        assert!((s.dens_l - 0.42632).abs() < 1e-4, "{}", s.dens_l);
        assert!((s.dens_r - 0.26557).abs() < 1e-4, "{}", s.dens_r);
    }

    /// Toro's test 2: the 123 problem (double rarefaction). p* ≈ 0.00189.
    #[test]
    fn double_rarefaction_star() {
        let ex = ExactRiemann::new(
            1.4,
            GasState {
                dens: 1.0,
                vel: -2.0,
                pres: 0.4,
            },
            GasState {
                dens: 1.0,
                vel: 2.0,
                pres: 0.4,
            },
        );
        let s = ex.star();
        assert!((s.pres - 0.00189).abs() < 5e-5, "p* = {}", s.pres);
        assert!(s.vel.abs() < 1e-10, "symmetric: u* = {}", s.vel);
    }

    /// Toro's test 3: strong left blast. p* ≈ 460.894, u* ≈ 19.5975.
    #[test]
    fn strong_blast_star() {
        let ex = ExactRiemann::new(
            1.4,
            GasState {
                dens: 1.0,
                vel: 0.0,
                pres: 1000.0,
            },
            GasState {
                dens: 1.0,
                vel: 0.0,
                pres: 0.01,
            },
        );
        let s = ex.star();
        assert!((s.pres - 460.894).abs() / 460.894 < 1e-4, "p* = {}", s.pres);
        assert!((s.vel - 19.5975).abs() / 19.5975 < 1e-4, "u* = {}", s.vel);
    }

    #[test]
    fn sampling_recovers_far_field_and_contact() {
        let l = GasState {
            dens: 1.0,
            vel: 0.0,
            pres: 1.0,
        };
        let r = GasState {
            dens: 0.125,
            vel: 0.0,
            pres: 0.1,
        };
        let ex = ExactRiemann::new(1.4, l, r);
        // Far field.
        let far_l = ex.sample(-10.0);
        assert_eq!(far_l.dens, 1.0);
        let far_r = ex.sample(10.0);
        assert_eq!(far_r.dens, 0.125);
        // Just either side of the contact: same p and u, different dens.
        let a = ex.sample(ex.star().vel - 1e-9);
        let b = ex.sample(ex.star().vel + 1e-9);
        assert!((a.pres - b.pres).abs() < 1e-9);
        assert!((a.vel - b.vel).abs() < 1e-9);
        assert!(a.dens > b.dens);
    }

    #[test]
    fn sampled_profile_is_physical_everywhere() {
        let ex = ExactRiemann::new(
            5.0 / 3.0,
            GasState {
                dens: 2.0,
                vel: 0.5,
                pres: 3.0,
            },
            GasState {
                dens: 0.5,
                vel: -0.3,
                pres: 0.2,
            },
        );
        for i in -100..=100 {
            let s = ex.sample(i as f64 * 0.05);
            assert!(s.dens > 0.0 && s.pres > 0.0, "xi={}: {s:?}", i as f64 * 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "vacuum")]
    fn vacuum_generation_rejected() {
        let _ = ExactRiemann::new(
            1.4,
            GasState {
                dens: 1.0,
                vel: -20.0,
                pres: 0.1,
            },
            GasState {
                dens: 1.0,
                vel: 20.0,
                pres: 0.1,
            },
        );
    }
}
