//! Property-based backend parity: every explicit SIMD backend the build
//! carries (portable 2/4-wide, SSE2, AVX2 where the CPU has them) must
//! produce **bit-identical** results to the 1-wide scalar lane on
//! randomized states — the contract DESIGN.md §16 pins (no FMA, scalar
//! operation order, select-semantics min/max, W-chunks + scalar tail
//! through one generic kernel).
//!
//! Two surfaces are exercised: full pencil-engine sweeps over randomized
//! smooth domains (PPM + HLLC + conservative update + batched gamma EOS),
//! and the batched Helmholtz DensEi inversion (bicubic table evaluation +
//! masked-re-iteration Newton) on randomized thermodynamic states.

use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;
use rflash_eos::{Eos, EosBatch, EosMode, EosState, GammaLaw, Helmholtz, TableConfig};
use rflash_hugepages::Policy;
use rflash_hydro::{
    compute_dt_parallel, sweep_direction, SweepConfig, SweepEngine, SweepEos, NFLUX,
};
use rflash_mesh::flux::FluxRegister;
use rflash_mesh::tree::MeshConfig;
use rflash_mesh::{vars, BoundaryCondition, Domain};
use rflash_simd::Resolved;

/// Randomized smooth initial condition: sinusoidal density/pressure/velocity
/// perturbations, thermodynamically consistent through the gamma law.
#[derive(Clone, Debug)]
struct InitParams {
    dens_amp: f64,
    pres_amp: f64,
    vel_amp: f64,
    kx: f64,
    ky: f64,
    phase: f64,
}

fn arb_init() -> impl Strategy<Value = InitParams> {
    (
        0.0f64..0.45,
        0.0f64..0.45,
        0.0f64..0.3,
        1.0f64..3.0,
        1.0f64..3.0,
        0.0f64..std::f64::consts::TAU,
    )
        .prop_map(|(dens_amp, pres_amp, vel_amp, kx, ky, phase)| InitParams {
            dens_amp,
            pres_amp,
            vel_amp,
            kx: kx.round(),
            ky: ky.round(),
            phase,
        })
}

fn build_domain(p: &InitParams) -> Domain {
    let mut cfg = MeshConfig::test_2d();
    cfg.bc = BoundaryCondition::Periodic;
    let mut d = Domain::new(cfg, Policy::None);
    let eos = GammaLaw::new(1.4);
    let tau = std::f64::consts::TAU;
    for id in d.tree.leaves() {
        for j in d.unk.interior() {
            for i in d.unk.interior() {
                let x = d.tree.cell_center(id, i, j, 0);
                let dens = 1.0 + p.dens_amp * (tau * p.kx * x[0] + p.phase).sin();
                let pres = 1.0 + p.pres_amp * (tau * p.ky * x[1]).cos();
                let u = p.vel_amp * (tau * p.kx * x[1]).sin();
                let v = p.vel_amp * (tau * p.ky * x[0] + p.phase).cos();
                let mut s = EosState::co_wd(dens, 0.0);
                s.abar = 1.0;
                s.zbar = 1.0;
                s.pres = pres;
                eos.call(EosMode::DensPres, &mut s).unwrap();
                d.unk.set(vars::DENS, i, j, 0, id.idx(), dens);
                d.unk.set(vars::VELX, i, j, 0, id.idx(), u);
                d.unk.set(vars::VELY, i, j, 0, id.idx(), v);
                d.unk.set(vars::PRES, i, j, 0, id.idx(), pres);
                d.unk.set(vars::TEMP, i, j, 0, id.idx(), s.temp);
                d.unk.set(vars::EINT, i, j, 0, id.idx(), s.eint);
                d.unk
                    .set(vars::ENER, i, j, 0, id.idx(), s.eint + 0.5 * (u * u + v * v));
                d.unk.set(vars::GAMC, i, j, 0, id.idx(), s.gamc);
                d.unk.set(vars::GAME, i, j, 0, id.idx(), s.game);
            }
        }
    }
    d
}

/// Run two steps of full (x, y) sweeps with the batched gamma EOS on one
/// backend.
fn run_backend(p: &InitParams, simd: Resolved) -> Domain {
    let mut d = build_domain(p);
    let eos = GammaLaw::new(1.4);
    let batch = SweepEos::Batch {
        eos: &eos,
        abar: 1.0,
        zbar: 1.0,
    };
    let cfg = SweepConfig {
        engine: SweepEngine::Pencil,
        simd,
        ..SweepConfig::default()
    };
    let mut reg = FluxRegister::new(2, 8, NFLUX, d.tree.config().max_blocks);
    for _ in 0..2 {
        let dt = compute_dt_parallel(&mut d, 0.3, 1);
        for dir in 0..2 {
            sweep_direction(&mut d, &batch, dir, dt, &mut reg, &cfg);
        }
    }
    d
}

/// Bit-compare every solution variable over the interiors of two domains.
fn assert_unk_identical(a: &Domain, b: &Domain, what: &str) -> Result<(), TestCaseError> {
    for id in a.tree.leaves() {
        for var in 0..vars::NVAR {
            for j in a.unk.interior() {
                for i in a.unk.interior() {
                    let va = a.unk.get(var, i, j, 0, id.idx());
                    let vb = b.unk.get(var, i, j, 0, id.idx());
                    prop_assert!(
                        va.to_bits() == vb.to_bits(),
                        "{what}: var {var} at ({i},{j}) block {}: {va:e} != {vb:e}",
                        id.idx()
                    );
                }
            }
        }
    }
    Ok(())
}

/// The coarse Helmholtz table is expensive to build; share one instance
/// across proptest cases (`set_simd` retargets it per backend).
fn helmholtz() -> &'static Mutex<Helmholtz> {
    static TABLE: OnceLock<Mutex<Helmholtz>> = OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(
            Helmholtz::build(TableConfig::coarse(), Policy::None)
                .expect("coarse Helmholtz table"),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full pencil sweeps: every wider backend reproduces the 1-wide lane
    /// bit-for-bit on randomized smooth flows.
    #[test]
    fn pencil_sweeps_are_bit_identical_across_backends(p in arb_init()) {
        let reference = run_backend(&p, Resolved::Scalar);
        for &b in Resolved::all() {
            if b == Resolved::Scalar {
                continue;
            }
            let d = run_backend(&p, b);
            assert_unk_identical(&reference, &d, b.name())?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched Helmholtz DensEi inversion: randomized (ρ, T) states and a
    /// randomized (bad) temperature guess produce bit-identical
    /// temp/pres/gamc/game on every backend, and identical per-iteration
    /// occupancy histograms (the masked re-iteration walks the same
    /// trajectory regardless of lane width).
    #[test]
    fn helmholtz_batch_is_bit_identical_across_backends(
        states in proptest::collection::vec((-0.5f64..6.5, 6.1f64..8.9), 3..37),
        guess_scale in 0.4f64..2.5,
    ) {
        let n = states.len();
        let abar = vec![13.714285714285715; n];
        let zbar = vec![6.857142857142857; n];
        let dens: Vec<f64> = states.iter().map(|&(d, _)| 10f64.powf(d)).collect();
        let temp0: Vec<f64> = states.iter().map(|&(_, t)| 10f64.powf(t)).collect();
        let mut h = helmholtz().lock().unwrap();

        type Captured = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, [u64; 16]);
        let mut reference: Option<Captured> = None;
        for &b in Resolved::all() {
            // Forward pass fixes consistent energies for this backend run.
            let mut temp = temp0.clone();
            let mut eint = vec![0.0; n];
            let mut pres = vec![0.0; n];
            let mut gamc = vec![0.0; n];
            let mut game = vec![0.0; n];
            let mut fwd = EosBatch {
                dens: &dens,
                eint: &mut eint,
                temp: &mut temp,
                abar: &abar,
                zbar: &zbar,
                pres: &mut pres,
                gamc: &mut gamc,
                game: &mut game,
            };
            h.set_simd(b);
            h.eos_batch(EosMode::DensTemp, &mut fwd).expect("forward pass");
            for t in temp.iter_mut() {
                *t *= guess_scale;
            }
            let mut inv = EosBatch {
                dens: &dens,
                eint: &mut eint,
                temp: &mut temp,
                abar: &abar,
                zbar: &zbar,
                pres: &mut pres,
                gamc: &mut gamc,
                game: &mut game,
            };
            let report = h.eos_batch(EosMode::DensEi, &mut inv).expect("inversion");
            match &reference {
                None => reference = Some((temp, pres, gamc, game, report.iter_hist)),
                Some((rt, rp, rc, rg, rh)) => {
                    for k in 0..n {
                        prop_assert!(rt[k].to_bits() == temp[k].to_bits(),
                            "{}: temp lane {k}: {:e} != {:e}", b.name(), rt[k], temp[k]);
                        prop_assert!(rp[k].to_bits() == pres[k].to_bits(),
                            "{}: pres lane {k}", b.name());
                        prop_assert!(rc[k].to_bits() == gamc[k].to_bits(),
                            "{}: gamc lane {k}", b.name());
                        prop_assert!(rg[k].to_bits() == game[k].to_bits(),
                            "{}: game lane {k}", b.name());
                    }
                    prop_assert!(rh == &report.iter_hist,
                        "{}: newton histogram diverged", b.name());
                }
            }
        }
    }
}
