//! Property-based tests of the Riemann solver and reconstruction.

use proptest::prelude::*;
use rflash_hydro::ppm::{reconstruct, FacePair};
use rflash_hydro::riemann::hllc;
use rflash_hydro::state::Prim;
use rflash_hydro::NFLUX;

fn arb_prim() -> impl Strategy<Value = Prim> {
    (
        1e-3f64..1e3,         // dens
        -1e2f64..1e2,         // u
        -1e2f64..1e2,         // v
        -1e2f64..1e2,         // w
        1e-3f64..1e6,         // pres
        1.1f64..1.9,          // gamc (= game here)
    )
        .prop_map(|(dens, u, v, w, pres, gamma)| {
            let eint = pres / ((gamma - 1.0) * dens);
            Prim {
                dens,
                vel: [u, v, w],
                pres,
                ener: eint + 0.5 * (u * u + v * v + w * w),
                gamc: gamma,
            }
        })
}

proptest! {
    /// Consistency: F(U, U) equals the physical flux of U.
    #[test]
    fn hllc_consistency(p in arb_prim()) {
        let f = hllc(&p, &p);
        let exact = p.flux();
        for n in 0..NFLUX {
            let scale = exact[n].abs().max(1e-30);
            prop_assert!((f[n] - exact[n]).abs() / scale < 1e-10,
                "channel {n}: {} vs {}", f[n], exact[n]);
        }
    }

    /// Mirror symmetry: flipping left/right and the normal velocity negates
    /// odd fluxes (mass, energy) and preserves the momentum flux.
    #[test]
    fn hllc_mirror_symmetry(l in arb_prim(), r in arb_prim()) {
        let f = hllc(&l, &r);
        let mut lm = l;
        let mut rm = r;
        lm.vel[0] = -l.vel[0];
        rm.vel[0] = -r.vel[0];
        let fm = hllc(&rm, &lm);
        let tol = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1e-10);
        prop_assert!(tol(f[0], -fm[0]), "mass: {} vs {}", f[0], -fm[0]);
        prop_assert!(tol(f[1], fm[1]), "momentum: {} vs {}", f[1], fm[1]);
        prop_assert!(tol(f[4], -fm[4]), "energy: {} vs {}", f[4], -fm[4]);
    }

    /// HLLC never produces NaN/inf for physical inputs.
    #[test]
    fn hllc_is_finite(l in arb_prim(), r in arb_prim()) {
        let f = hllc(&l, &r);
        prop_assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
    }

    /// Reconstruction is monotone: face values stay within the local
    /// neighborhood's range (no new extrema).
    #[test]
    fn ppm_no_new_extrema(cells in proptest::collection::vec(0.1f64..10.0, 12..32)) {
        let flat = vec![1.0; cells.len()];
        let mut out = vec![FacePair::default(); cells.len()];
        reconstruct(&cells, 2, cells.len() - 2, &flat, &mut out);
        for i in 2..cells.len() - 2 {
            let lo = cells[i - 1].min(cells[i]).min(cells[i + 1]) - 1e-12;
            let hi = cells[i - 1].max(cells[i]).max(cells[i + 1]) + 1e-12;
            prop_assert!(out[i].minus >= lo && out[i].minus <= hi,
                "zone {i}: minus={} outside [{lo},{hi}]", out[i].minus);
            prop_assert!(out[i].plus >= lo && out[i].plus <= hi,
                "zone {i}: plus={} outside [{lo},{hi}]", out[i].plus);
        }
    }

    /// Reconstruction of constant data is exactly constant.
    #[test]
    fn ppm_preserves_constants(v in 0.1f64..1e6, n in 10usize..24) {
        let cells = vec![v; n];
        let flat = vec![1.0; n];
        let mut out = vec![FacePair::default(); n];
        reconstruct(&cells, 2, n - 2, &flat, &mut out);
        for f in out.iter().take(n - 2).skip(2) {
            prop_assert_eq!(f.minus, v);
            prop_assert_eq!(f.plus, v);
        }
    }
}
