//! Step-guardian telemetry: every rollback, retry, and degradation the
//! guardian performs, folded into the same reporting surface as the
//! allocation chain ([`crate::AllocSummary`]). A run that silently halved
//! its time step or fell back to the scalar sweep engine would corrupt any
//! performance comparison; these counters make recovery as explicit as PR
//! 3 made allocation degradation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One recovery action taken by the step guardian, in the order it
/// happened. `step` is the simulation step *being attempted* (the committed
/// step count at the time), `attempt` counts retries within that step
/// (0 = the original attempt).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GuardianEvent {
    /// Validation found non-finite values or floor violations.
    Violation {
        step: u64,
        attempt: u32,
        detail: String,
    },
    /// The computed time step was non-finite or ≤ 0.
    BadDt { step: u64, attempt: u32, dt: f64 },
    /// Leaf state was rolled back to the pre-step shadow snapshot.
    Rollback { step: u64, attempt: u32 },
    /// A retry was launched with this (possibly halved) time step.
    Retry { step: u64, attempt: u32, dt: f64 },
    /// The sweep engine was degraded `Pencil → Scalar` for a final attempt.
    EngineDegrade { step: u64, attempt: u32 },
    /// An emergency checkpoint of the last good state was written.
    EmergencyCheckpoint { step: u64, path: String },
    /// The retry budget ran out; the step returned a typed error.
    Abort { step: u64, detail: String },
}

/// Counters plus the ordered event log for one simulation's guardian.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GuardianStats {
    /// Post-step validation scans performed (one per attempt).
    pub validations: u64,
    /// Scans that found an unphysical state.
    pub violations: u64,
    /// Bad (non-finite or ≤ 0) time steps caught before advancing.
    pub bad_dts: u64,
    /// Rollbacks to the shadow snapshot.
    pub rollbacks: u64,
    /// Retry attempts launched after a rollback.
    pub retries: u64,
    /// Retries that ran at a halved (or further halved) time step.
    pub dt_halvings: u64,
    /// `Pencil → Scalar` engine degradations.
    pub engine_degrades: u64,
    /// Emergency checkpoints written on abort paths.
    pub emergency_checkpoints: u64,
    /// Steps abandoned with a typed error.
    pub aborts: u64,
    /// Every event, in order.
    pub events: Vec<GuardianEvent>,
}

impl GuardianStats {
    /// Record one event: bump the matching counter and append to the log.
    /// (`validations` has no event shape — clean scans are counted via
    /// [`count_validation`](Self::count_validation) without log spam.)
    pub fn record(&mut self, event: GuardianEvent) {
        match &event {
            GuardianEvent::Violation { .. } => self.violations += 1,
            GuardianEvent::BadDt { .. } => self.bad_dts += 1,
            GuardianEvent::Rollback { .. } => self.rollbacks += 1,
            GuardianEvent::Retry { .. } => self.retries += 1,
            GuardianEvent::EngineDegrade { .. } => self.engine_degrades += 1,
            GuardianEvent::EmergencyCheckpoint { .. } => self.emergency_checkpoints += 1,
            GuardianEvent::Abort { .. } => self.aborts += 1,
        }
        self.events.push(event);
    }

    /// Count one clean validation scan.
    pub fn count_validation(&mut self) {
        self.validations += 1;
    }

    /// `true` when the guardian never had to intervene.
    pub fn clean(&self) -> bool {
        self.events.is_empty()
    }
}

impl fmt::Display for GuardianStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "STEP GUARDIAN")?;
        writeln!(f, "| {:<28} | {:>13} |", "validation scans", self.validations)?;
        writeln!(f, "| {:<28} | {:>13} |", "violations", self.violations)?;
        writeln!(f, "| {:<28} | {:>13} |", "bad time steps", self.bad_dts)?;
        writeln!(f, "| {:<28} | {:>13} |", "rollbacks", self.rollbacks)?;
        writeln!(f, "| {:<28} | {:>13} |", "retries", self.retries)?;
        writeln!(f, "| {:<28} | {:>13} |", "dt halvings", self.dt_halvings)?;
        writeln!(
            f,
            "| {:<28} | {:>13} |",
            "engine degradations", self.engine_degrades
        )?;
        writeln!(
            f,
            "| {:<28} | {:>13} |",
            "emergency checkpoints", self.emergency_checkpoints
        )?;
        writeln!(f, "| {:<28} | {:>13} |", "aborts", self.aborts)?;
        for ev in &self.events {
            match ev {
                GuardianEvent::Violation {
                    step,
                    attempt,
                    detail,
                } => writeln!(f, "  step {step} attempt {attempt}: violation — {detail}")?,
                GuardianEvent::BadDt { step, attempt, dt } => {
                    writeln!(f, "  step {step} attempt {attempt}: bad dt {dt:e}")?
                }
                GuardianEvent::Rollback { step, attempt } => {
                    writeln!(f, "  step {step} attempt {attempt}: rollback to shadow")?
                }
                GuardianEvent::Retry { step, attempt, dt } => {
                    writeln!(f, "  step {step} attempt {attempt}: retry at dt {dt:e}")?
                }
                GuardianEvent::EngineDegrade { step, attempt } => writeln!(
                    f,
                    "  step {step} attempt {attempt}: engine degraded pencil -> scalar"
                )?,
                GuardianEvent::EmergencyCheckpoint { step, path } => {
                    writeln!(f, "  step {step}: emergency checkpoint {path}")?
                }
                GuardianEvent::Abort { step, detail } => {
                    writeln!(f, "  step {step}: ABORT — {detail}")?
                }
            }
        }
        if !self.clean() {
            writeln!(
                f,
                "NOTE: the guardian intervened; timings include rollback/retry \
                 work and are not comparable to a clean run."
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_bumps_matching_counter() {
        let mut g = GuardianStats::default();
        g.count_validation();
        g.record(GuardianEvent::Violation {
            step: 3,
            attempt: 0,
            detail: "dens < floor".into(),
        });
        g.record(GuardianEvent::Rollback { step: 3, attempt: 0 });
        g.record(GuardianEvent::Retry {
            step: 3,
            attempt: 1,
            dt: 1e-3,
        });
        assert_eq!(g.validations, 1);
        assert_eq!(g.violations, 1);
        assert_eq!(g.rollbacks, 1);
        assert_eq!(g.retries, 1);
        assert_eq!(g.events.len(), 3);
        assert!(!g.clean());
    }

    #[test]
    fn display_lists_events_and_flags_intervention() {
        let mut g = GuardianStats::default();
        assert!(g.clean());
        assert!(!g.to_string().contains("NOTE"));
        g.record(GuardianEvent::EngineDegrade { step: 7, attempt: 2 });
        g.record(GuardianEvent::Abort {
            step: 7,
            detail: "retry budget exhausted".into(),
        });
        let text = g.to_string();
        assert!(text.contains("STEP GUARDIAN"), "{text}");
        assert!(text.contains("pencil -> scalar"), "{text}");
        assert!(text.contains("ABORT"), "{text}");
        assert!(text.contains("NOTE"), "{text}");
        assert_eq!(g.engine_degrades, 1);
        assert_eq!(g.aborts, 1);
    }

    #[test]
    fn serde_round_trip() {
        let mut g = GuardianStats::default();
        g.count_validation();
        g.record(GuardianEvent::BadDt {
            step: 1,
            attempt: 0,
            dt: 0.0,
        });
        g.record(GuardianEvent::EmergencyCheckpoint {
            step: 1,
            path: "/tmp/x_000001.ckpt".into(),
        });
        let json = serde_json::to_string(&g).unwrap();
        let back: GuardianStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
