//! Instrumented-region sessions: the analog of the paper's PAPI begin/end
//! wrapping of the EOS and hydro routines.

use std::time::Instant;

use rflash_tlbsim::{AccessPattern, FrameSizing, Tlb, TlbConfig, TlbStats};

use crate::hw::{HwCounters, HwEvent};
use crate::kernel_stats::KernelStats;
use crate::report::Measures;
use crate::NOMINAL_HZ;

/// Session configuration.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Geometry of the modeled TLB.
    pub tlb: TlbConfig,
    /// Replay one in `sample_every` recorded patterns into the TLB model;
    /// reported miss counts are scaled back up by the same factor. 1 = every
    /// pattern (exact).
    pub sample_every: u32,
    /// Extra scale applied to reported TLB counters when the *kernels*
    /// themselves record only a subset of their accesses (e.g. one pencil
    /// pattern in N); keeps absolute rates honest. 1.0 = full coverage.
    pub coverage_scale: f64,
    /// Attempt to open hardware counters alongside the model.
    pub use_hw: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            tlb: TlbConfig::a64fx_like(),
            sample_every: 1,
            coverage_scale: 1.0,
            use_hw: true,
        }
    }
}

/// A lightweight per-thread accumulator kernels write into. Threads build
/// probes independently; the driver [`PerfSession::absorb`]s them in rank
/// order after each parallel section (the MPI-rank analog).
#[derive(Default)]
pub struct Probe {
    /// Work counters (always exact, never sampled).
    pub stats: KernelStats,
    patterns: Vec<AccessPattern>,
}

impl Probe {
    /// An empty probe.
    pub fn new() -> Probe {
        Probe::default()
    }

    /// Record an access pattern: its bytes count toward bandwidth
    /// accounting, and it will be replayed into the TLB model on absorb.
    /// (Do **not** also call `stats.add_read` for the same bytes.)
    #[inline]
    pub fn record(&mut self, pattern: AccessPattern) {
        self.stats.bytes_read += pattern.bytes();
        self.patterns.push(pattern);
    }

    /// Record a pattern that writes rather than reads.
    #[inline]
    pub fn record_write(&mut self, pattern: AccessPattern) {
        self.stats.bytes_written += pattern.bytes();
        self.patterns.push(pattern);
    }

    /// Number of buffered patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }
}

/// Instrumentation context for one experiment configuration.
pub struct PerfSession {
    config: SessionConfig,
    tlb: Tlb,
    stats: KernelStats,
    hw: Option<HwCounters>,
    region_begun: Option<Instant>,
    region_secs: f64,
    regions: u64,
    sample_counter: u32,
    sampled_in: u64,
    total_patterns: u64,
    hw_cycles: u64,
    hw_instructions: u64,
    hw_dtlb: u64,
}

impl PerfSession {
    /// Open the session, probing hardware counters if requested.
    pub fn new(config: SessionConfig) -> PerfSession {
        let hw = if config.use_hw {
            HwCounters::try_open_default()
        } else {
            None
        };
        PerfSession {
            tlb: Tlb::new(config.tlb),
            stats: KernelStats::default(),
            hw,
            region_begun: None,
            region_secs: 0.0,
            regions: 0,
            sample_counter: 0,
            sampled_in: 0,
            total_patterns: 0,
            hw_cycles: 0,
            hw_instructions: 0,
            hw_dtlb: 0,
            config,
        }
    }

    /// Did the hardware-counter backend open successfully?
    pub fn hw_active(&self) -> bool {
        self.hw.is_some()
    }

    /// Register a buffer with the TLB model's page table.
    pub fn map_region(&mut self, base: usize, len: usize, sizing: FrameSizing) {
        self.tlb.map_region(base, len, sizing);
    }

    /// Enter the instrumented region (PAPI begin).
    pub fn start_region(&mut self) {
        assert!(self.region_begun.is_none(), "region already started");
        if let Some(hw) = &mut self.hw {
            hw.start();
        }
        self.region_begun = Some(Instant::now());
    }

    /// Leave the instrumented region (PAPI end), accumulating elapsed time
    /// and hardware deltas.
    pub fn stop_region(&mut self) {
        let begun = self.region_begun.take().expect("region not started");
        self.region_secs += begun.elapsed().as_secs_f64();
        self.regions += 1;
        if let Some(hw) = &self.hw {
            for (event, delta) in hw.read_deltas() {
                match event {
                    HwEvent::Cycles => self.hw_cycles += delta,
                    HwEvent::Instructions => self.hw_instructions += delta,
                    HwEvent::DtlbReadMisses => self.hw_dtlb += delta,
                }
            }
        }
    }

    /// Merge a probe produced by a kernel/thread: exact work counters plus a
    /// sampled replay of its access patterns through the TLB model.
    pub fn absorb(&mut self, probe: Probe) {
        self.stats += probe.stats;
        for pattern in probe.patterns {
            self.total_patterns += 1;
            self.sample_counter += 1;
            if self.sample_counter >= self.config.sample_every {
                self.sample_counter = 0;
                self.sampled_in += 1;
                pattern.replay(&mut self.tlb);
            }
        }
    }

    /// Direct access for single-threaded callers that skip [`Probe`].
    pub fn stats_mut(&mut self) -> &mut KernelStats {
        &mut self.stats
    }

    /// Raw (unscaled) TLB model counters.
    pub fn tlb_stats_raw(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// TLB counters scaled back up by the sampling and coverage factors.
    pub fn tlb_stats(&self) -> TlbStats {
        let factor = if self.sampled_in == 0 {
            1.0
        } else {
            self.total_patterns as f64 / self.sampled_in as f64
        };
        self.tlb.stats().scaled(factor * self.config.coverage_scale.max(1.0))
    }

    /// Accumulated instrumented-region seconds.
    pub fn region_seconds(&self) -> f64 {
        self.region_secs
    }

    /// Hardware DTLB misses, if the backend is live.
    pub fn hw_dtlb_misses(&self) -> Option<u64> {
        self.hw.as_ref().map(|_| self.hw_dtlb)
    }

    /// Build the paper-style measure rows. `total_time_s` is the "FLASH
    /// Timer" (whole-run) value the driver supplies.
    pub fn measures(&self, total_time_s: f64) -> Measures {
        let time_s = self.region_secs;
        let cycles = if self.hw.is_some() && self.hw_cycles > 0 {
            self.hw_cycles as f64
        } else {
            time_s * NOMINAL_HZ
        };
        let tlb = self.tlb_stats();
        let stall_cycles = tlb.stall_cycles(&self.config.tlb.cost) as f64;
        Measures {
            cycles,
            time_s,
            vec_ops_per_cycle: self.stats.vec_ops_per_cycle(cycles),
            mem_gb_per_s: self.stats.gb_per_s(time_s),
            dtlb_miss_per_s: tlb.misses_per_second(time_s),
            total_time_s,
            dtlb_misses: tlb.walks,
            hw_backend: self.hw.is_some(),
            hw_dtlb_miss_per_s: self.hw.as_ref().and_then(|_| {
                (time_s > 0.0).then_some(self.hw_dtlb as f64 / time_s)
            }),
            stall_fraction: if cycles > 0.0 {
                (stall_cycles / cycles).min(1.0)
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> SessionConfig {
        SessionConfig {
            use_hw: false,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn region_timing_accumulates() {
        let mut s = PerfSession::new(quiet_config());
        for _ in 0..2 {
            s.start_region();
            std::thread::sleep(std::time::Duration::from_millis(2));
            s.stop_region();
        }
        assert!(s.region_seconds() >= 0.004);
    }

    #[test]
    #[should_panic(expected = "region already started")]
    fn double_start_panics() {
        let mut s = PerfSession::new(quiet_config());
        s.start_region();
        s.start_region();
    }

    #[test]
    fn probe_absorb_replays_into_model() {
        let mut s = PerfSession::new(quiet_config());
        s.map_region(0, 1 << 24, FrameSizing::Base);
        let mut probe = Probe::new();
        probe.record(AccessPattern::Strided {
            base: 0,
            stride: 4096,
            count: 1024,
            elem: 8,
        });
        probe.stats.add_vec(4096);
        s.absorb(probe);
        let tlb = s.tlb_stats();
        assert_eq!(tlb.accesses, 1024);
        assert!(tlb.walks > 0);
        assert_eq!(s.stats_mut().vec_ops, 4096);
        // Pattern bytes were accounted as reads.
        assert_eq!(s.stats_mut().bytes_read, 1024 * 8);
    }

    #[test]
    fn sampling_scales_counters_back_up() {
        let mk_probe = || {
            let mut p = Probe::new();
            for i in 0..100usize {
                p.record(AccessPattern::Range {
                    base: i << 22,
                    len: 4096,
                });
            }
            p
        };
        let mut exact = PerfSession::new(quiet_config());
        exact.absorb(mk_probe());
        let mut sampled = PerfSession::new(SessionConfig {
            sample_every: 4,
            ..quiet_config()
        });
        sampled.absorb(mk_probe());
        assert_eq!(sampled.tlb_stats_raw().accesses, 25);
        let scaled = sampled.tlb_stats();
        assert_eq!(scaled.accesses, 100);
        assert_eq!(exact.tlb_stats().accesses, 100);
    }

    #[test]
    fn measures_are_consistent() {
        let mut s = PerfSession::new(quiet_config());
        s.start_region();
        std::thread::sleep(std::time::Duration::from_millis(5));
        s.stop_region();
        s.stats_mut().add_read(1_000_000);
        s.stats_mut().add_vec(1000);
        let m = s.measures(1.0);
        assert!(m.time_s >= 0.005);
        assert!(m.cycles > 0.0);
        assert!(!m.hw_backend);
        assert!(m.mem_gb_per_s > 0.0);
        assert_eq!(m.total_time_s, 1.0);
    }

    #[test]
    fn hw_session_probes_gracefully() {
        // With use_hw=true the session must construct whether or not the
        // host allows perf events.
        let mut s = PerfSession::new(SessionConfig::default());
        s.start_region();
        s.stop_region();
        let m = s.measures(0.1);
        assert_eq!(m.hw_backend, s.hw_active());
    }

    #[test]
    fn record_write_counts_writes() {
        let mut p = Probe::new();
        p.record_write(AccessPattern::Range { base: 0, len: 512 });
        assert_eq!(p.stats.bytes_written, 512);
        assert_eq!(p.stats.bytes_read, 0);
        assert_eq!(p.pattern_count(), 1);
    }
}

/// RAII wrapper for an instrumented region.
///
/// The paper's §II describes instrumenting FLASH with a Fortran object
/// whose *finalizer* stops the counters — and how the Fujitsu compiler's
/// unreliable finalizer support forced a fall-back to hard-coded begin/end
/// calls. Rust's drop glue is guaranteed, so the guard pattern is safe
/// here: the region closes on every exit path, including panics.
pub struct RegionGuard<'a> {
    session: &'a mut PerfSession,
}

impl PerfSession {
    /// Enter the instrumented region, closing it automatically on drop.
    pub fn region(&mut self) -> RegionGuard<'_> {
        self.start_region();
        RegionGuard { session: self }
    }
}

impl RegionGuard<'_> {
    /// Access the underlying session while the region is open (e.g. to
    /// absorb probes recorded inside it).
    pub fn session(&mut self) -> &mut PerfSession {
        self.session
    }
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        self.session.stop_region();
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;

    #[test]
    fn guard_times_the_region() {
        let mut s = PerfSession::new(SessionConfig {
            use_hw: false,
            ..SessionConfig::default()
        });
        {
            let mut g = s.region();
            std::thread::sleep(std::time::Duration::from_millis(3));
            g.session().stats_mut().add_vec(7);
        }
        assert!(s.region_seconds() >= 0.003);
        assert_eq!(s.stats_mut().vec_ops, 7);
        // Reusable after close.
        {
            let _g = s.region();
        }
        assert!(s.region_seconds() >= 0.003);
    }

    #[test]
    fn guard_closes_on_panic() {
        let mut s = PerfSession::new(SessionConfig {
            use_hw: false,
            ..SessionConfig::default()
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = s.region();
            panic!("instrumented code failed");
        }));
        assert!(result.is_err());
        // The finalizer ran: a new region can start without tripping the
        // double-start assertion.
        s.start_region();
        s.stop_region();
    }
}
