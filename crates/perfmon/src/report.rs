//! Paper-style measure rows and with/without-huge-pages ratio reports.
//!
//! Tables I and II of the paper have six rows; [`Measures`] carries the same
//! six (plus bookkeeping about which backend produced the DTLB number), and
//! [`RatioReport`] reproduces Figure 1's ratio series.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One column of the paper's Tables I/II.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Measures {
    /// "Hardware (cycles)".
    pub cycles: f64,
    /// "Time (s)" — instrumented-region seconds.
    pub time_s: f64,
    /// "SVE Instructions/cycle" analog: vector-lane ops per cycle.
    pub vec_ops_per_cycle: f64,
    /// "Memory (Gbytes/s)".
    pub mem_gb_per_s: f64,
    /// "DTLB misses (1/s)" from the TLB model.
    pub dtlb_miss_per_s: f64,
    /// "FLASH Timer (s)" — total run time.
    pub total_time_s: f64,
    /// Absolute modeled DTLB miss count (not a paper row; useful raw datum).
    pub dtlb_misses: u64,
    /// Whether cycles came from hardware counters (else nominal-clock estimate).
    pub hw_backend: bool,
    /// Modeled fraction of all cycles spent in TLB stalls (L2-TLB hits +
    /// page walks, costed by the TLB model). This is the quantity that
    /// *answers the paper's open question*: if it is small without huge
    /// pages, eliminating the misses cannot move the runtime much.
    #[serde(default)]
    pub stall_fraction: f64,
    /// Hardware DTLB misses/s when counters were available.
    pub hw_dtlb_miss_per_s: Option<f64>,
}

impl Measures {
    /// Row labels in the paper's order.
    pub const ROW_LABELS: [&'static str; 6] = [
        "Hardware (cycles)",
        "Time (s)",
        "Vec ops/cycle (SVE analog)",
        "Memory (Gbytes/s)",
        "DTLB misses (1/s)",
        "FLASH Timer (s)",
    ];

    /// Values in the paper's row order.
    pub fn rows(&self) -> [f64; 6] {
        [
            self.cycles,
            self.time_s,
            self.vec_ops_per_cycle,
            self.mem_gb_per_s,
            self.dtlb_miss_per_s,
            self.total_time_s,
        ]
    }

    /// Per-row ratios `self / baseline` — Figure 1's bar heights, where
    /// `self` is the with-huge-pages run and `baseline` is without.
    pub fn ratios(&self, baseline: &Measures) -> [f64; 6] {
        let a = self.rows();
        let b = baseline.rows();
        let mut out = [0.0; 6];
        for i in 0..6 {
            out[i] = if b[i] == 0.0 { f64::NAN } else { a[i] / b[i] };
        }
        out
    }
}

/// Scientific-notation formatting like the paper ("1.25 × 10^11").
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    if !v.is_finite() {
        return format!("{v}");
    }
    let exp = v.abs().log10().floor() as i32;
    if (-2..4).contains(&exp) {
        format!("{v:.3}")
    } else {
        let mant = v / 10f64.powi(exp);
        format!("{mant:.2}e{exp}")
    }
}

/// A two-column (without / with huge pages) table in the paper's layout.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RatioReport {
    /// Experiment label, e.g. "EOS" or "3-d Hydro".
    pub name: String,
    pub without_hp: Measures,
    pub with_hp: Measures,
}

impl RatioReport {
    /// Per-measure with/without ratios in the paper's row order.
    pub fn ratios(&self) -> [f64; 6] {
        self.with_hp.ratios(&self.without_hp)
    }

    /// The paper's headline number: the DTLB-miss ratio (0.047 for EOS,
    /// 0.324 for 3-d Hydro on Ookami).
    pub fn dtlb_ratio(&self) -> f64 {
        self.ratios()[4]
    }
}

impl fmt::Display for RatioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RESULTS FOR THE {} PROBLEM (backend: {})",
            self.name.to_uppercase(),
            if self.without_hp.hw_backend {
                "hardware+model"
            } else {
                "model (perf_event unavailable)"
            }
        )?;
        writeln!(
            f,
            "| {:<28} | {:>13} | {:>13} | {:>7} |",
            "Measure", "Without HPs", "With HPs", "Ratio"
        )?;
        writeln!(f, "|{:-<30}|{:-<15}|{:-<15}|{:-<9}|", "", "", "", "")?;
        let without = self.without_hp.rows();
        let with = self.with_hp.rows();
        let ratios = self.ratios();
        for i in 0..6 {
            writeln!(
                f,
                "| {:<28} | {:>13} | {:>13} | {:>7.3} |",
                Measures::ROW_LABELS[i],
                sci(without[i]),
                sci(with[i]),
                ratios[i]
            )?;
        }
        writeln!(
            f,
            "| {:<28} | {:>12.2}% | {:>12.2}% |  (model)|",
            "TLB-stall share of cycles",
            self.without_hp.stall_fraction * 100.0,
            self.with_hp.stall_fraction * 100.0,
        )?;
        if let (Some(a), Some(b)) = (
            self.without_hp.hw_dtlb_miss_per_s,
            self.with_hp.hw_dtlb_miss_per_s,
        ) {
            writeln!(
                f,
                "| {:<28} | {:>13} | {:>13} | {:>7.3} |",
                "DTLB misses (1/s) [hw]",
                sci(a),
                sci(b),
                if a == 0.0 { f64::NAN } else { b / a }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measures(dtlb: f64, time: f64) -> Measures {
        Measures {
            cycles: time * 1.8e9,
            time_s: time,
            vec_ops_per_cycle: 0.5,
            mem_gb_per_s: 4.0,
            dtlb_miss_per_s: dtlb,
            total_time_s: time * 5.0,
            dtlb_misses: (dtlb * time) as u64,
            hw_backend: false,
            hw_dtlb_miss_per_s: None,
            stall_fraction: 0.01,
        }
    }

    #[test]
    fn ratios_match_paper_shape() {
        // Numbers shaped like Table I.
        let without = measures(2.34e7, 69.7);
        let with = measures(1.10e6, 65.2);
        let report = RatioReport {
            name: "EOS".into(),
            without_hp: without,
            with_hp: with,
        };
        let r = report.ratios();
        assert!((report.dtlb_ratio() - 0.047).abs() < 0.001);
        assert!((r[1] - 65.2 / 69.7).abs() < 1e-12);
        assert!((r[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_gives_nan_not_panic() {
        let mut base = measures(0.0, 1.0);
        base.mem_gb_per_s = 0.0;
        let with = measures(1.0, 1.0);
        let r = with.ratios(&base);
        assert!(r[4].is_nan());
        assert!(r[3].is_nan());
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.25e11), "1.25e11");
        assert_eq!(sci(69.7), "69.700");
        assert_eq!(sci(0.47), "0.470");
        assert_eq!(sci(2.34e7), "2.34e7");
        assert_eq!(sci(1.10e-6), "1.10e-6");
    }

    #[test]
    fn display_contains_all_rows() {
        let report = RatioReport {
            name: "3-d Hydro".into(),
            without_hp: measures(2.42e6, 670.0),
            with_hp: measures(7.83e5, 669.0),
        };
        let text = report.to_string();
        for label in Measures::ROW_LABELS {
            assert!(text.contains(label), "missing row {label}");
        }
        assert!(text.contains("3-D HYDRO"));
    }

    #[test]
    fn serde_round_trip() {
        let report = RatioReport {
            name: "EOS".into(),
            without_hp: measures(2.34e7, 69.7),
            with_hp: measures(1.10e6, 65.2),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: RatioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, "EOS");
        assert!((back.dtlb_ratio() - report.dtlb_ratio()).abs() < 1e-12);
    }
}
