//! PAPI-like performance monitoring for the FLASH reproduction.
//!
//! The paper instruments FLASH with PAPI for five measures (hardware cycles,
//! elapsed time, SVE instructions per cycle, memory bandwidth, DTLB misses
//! per second) plus the code's internal timers. This crate provides the same
//! interface shape with two counter backends:
//!
//! * [`hw`] — real hardware counters via `perf_event_open(2)` where the
//!   kernel allows it (it frequently does not in containers; the probe
//!   degrades gracefully and the harness reports which backend produced
//!   each number).
//! * the *simulated* backend — a [`rflash_tlbsim::Tlb`] model fed by the
//!   kernels' access patterns, plus software accounting of bytes moved and
//!   vector-lane operations ([`KernelStats`]).
//!
//! [`PerfSession`] ties both together around an instrumented region, the way
//! the paper wraps the EOS and hydro routines, and produces [`Measures`]
//! rows formatted like the paper's Tables I/II.

pub mod alloc;
pub mod fleet;
pub mod guardian;
pub mod hw;
pub mod kernel_stats;
pub mod rank_load;
pub mod report;
pub mod session;
pub mod timers;

pub use alloc::AllocSummary;
pub use fleet::FleetCounters;
pub use guardian::{GuardianEvent, GuardianStats};
pub use hw::HwCounters;
pub use kernel_stats::KernelStats;
pub use rank_load::{idle_fraction, imbalance, RankLoad};
pub use report::{Measures, RatioReport};
pub use session::{PerfSession, Probe, SessionConfig};
pub use timers::Timers;

/// Nominal clock used to convert wall time to "cycles" when hardware
/// counters are unavailable — the A64FX's 1.8 GHz.
pub const NOMINAL_HZ: f64 = 1.8e9;
