//! Real hardware counters via `perf_event_open(2)`.
//!
//! This is the PAPI-equivalent backend. Containers and locked-down hosts
//! commonly deny the syscall (`perf_event_paranoid`, seccomp) — exactly why
//! the paper's authors had to set `kernel.perf_event_paranoid=1` on the
//! modified Ookami nodes. We therefore probe at startup and expose
//! `Option`-shaped results; harnesses report the backend used per number.

use std::io;
use std::os::unix::io::RawFd;

/// Which hardware events we count, mirroring the paper's PAPI subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HwEvent {
    /// `PERF_COUNT_HW_CPU_CYCLES` — the paper's "Hardware (cycles)".
    Cycles,
    /// Data-TLB read misses (`PERF_COUNT_HW_CACHE_DTLB | READ | MISS`) —
    /// the paper's "DTLB misses".
    DtlbReadMisses,
    /// `PERF_COUNT_HW_INSTRUCTIONS` — for per-cycle normalizations.
    Instructions,
}

// perf_event_attr constants (from <linux/perf_event.h>); kept local because
// the libc crate does not export all of them on every target.
const PERF_TYPE_HARDWARE: u32 = 0;
const PERF_TYPE_HW_CACHE: u32 = 3;
const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
const PERF_COUNT_HW_CACHE_DTLB: u64 = 3;
const PERF_COUNT_HW_CACHE_OP_READ: u64 = 0;
const PERF_COUNT_HW_CACHE_RESULT_MISS: u64 = 1;

impl HwEvent {
    fn type_and_config(self) -> (u32, u64) {
        match self {
            HwEvent::Cycles => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
            HwEvent::Instructions => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
            HwEvent::DtlbReadMisses => (
                PERF_TYPE_HW_CACHE,
                PERF_COUNT_HW_CACHE_DTLB
                    | (PERF_COUNT_HW_CACHE_OP_READ << 8)
                    | (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
            ),
        }
    }
}

/// One open perf fd.
struct Counter {
    event: HwEvent,
    fd: RawFd,
    /// Value captured at `start()`.
    base: u64,
}

impl Counter {
    fn open(event: HwEvent) -> io::Result<Counter> {
        let (type_, config) = event.type_and_config();
        // perf_event_attr is large and version-dependent; zero a maximal
        // buffer and set the handful of fields we need at their fixed
        // offsets per the UAPI layout (stable by ABI contract):
        //   u32 type; u32 size; u64 config; u64 sample_period/freq;
        //   u64 sample_type; u64 read_format; u64 flag bits; ...
        const ATTR_SIZE: usize = 128;
        let mut attr = [0u8; ATTR_SIZE];
        attr[0..4].copy_from_slice(&type_.to_ne_bytes());
        attr[4..8].copy_from_slice(&(ATTR_SIZE as u32).to_ne_bytes());
        attr[8..16].copy_from_slice(&config.to_ne_bytes());
        // Flag bits live in the u64 at offset 40. We want:
        //   disabled(bit 0)=0, inherit(1)=0, exclude_kernel(5)=1,
        //   exclude_hv(6)=1 — counting starts immediately at open.
        let flags: u64 = (1 << 5) | (1 << 6);
        attr[40..48].copy_from_slice(&flags.to_ne_bytes());

        // SAFETY: the attr buffer outlives the call; the kernel validates
        // its contents. pid=0, cpu=-1: this process, any CPU.
        let fd = unsafe {
            libc::syscall(
                libc::SYS_perf_event_open,
                attr.as_ptr(),
                0 as libc::pid_t,
                -1 as libc::c_int,
                -1 as libc::c_int,
                0 as libc::c_ulong,
            )
        };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Counter {
            event,
            fd: fd as RawFd,
            base: 0,
        })
    }

    fn read_value(&self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        // SAFETY: fd is a live perf fd owned by self; buffer is 8 bytes.
        let n = unsafe { libc::read(self.fd, buf.as_mut_ptr() as *mut libc::c_void, 8) };
        if n != 8 {
            return Err(io::Error::last_os_error());
        }
        Ok(u64::from_ne_bytes(buf))
    }
}

impl Drop for Counter {
    fn drop(&mut self) {
        // SAFETY: closing our own fd exactly once.
        unsafe { libc::close(self.fd) };
    }
}

/// A set of hardware counters around an instrumented region.
pub struct HwCounters {
    counters: Vec<Counter>,
}

impl HwCounters {
    /// Try to open the given events. Returns `None` if *any* fails — partial
    /// hardware data is more confusing than none, and the simulated backend
    /// always covers the full set.
    pub fn try_open(events: &[HwEvent]) -> Option<HwCounters> {
        let mut counters = Vec::with_capacity(events.len());
        for &e in events {
            match Counter::open(e) {
                Ok(c) => counters.push(c),
                Err(_) => return None,
            }
        }
        Some(HwCounters { counters })
    }

    /// Convenience: the paper's trio.
    pub fn try_open_default() -> Option<HwCounters> {
        Self::try_open(&[
            HwEvent::Cycles,
            HwEvent::Instructions,
            HwEvent::DtlbReadMisses,
        ])
    }

    /// Snapshot current values as the region baseline.
    pub fn start(&mut self) {
        for c in &mut self.counters {
            c.base = c.read_value().unwrap_or(0);
        }
    }

    /// Deltas since `start()`, in the order the events were opened.
    pub fn read_deltas(&self) -> Vec<(HwEvent, u64)> {
        self.counters
            .iter()
            .map(|c| {
                let now = c.read_value().unwrap_or(c.base);
                (c.event, now.saturating_sub(c.base))
            })
            .collect()
    }

    /// Delta for one event, if it was opened.
    pub fn delta(&self, event: HwEvent) -> Option<u64> {
        self.read_deltas()
            .into_iter()
            .find(|(e, _)| *e == event)
            .map(|(_, v)| v)
    }
}

/// Is the hardware backend usable on this host? (Cached probe.)
pub fn hw_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| HwCounters::try_open(&[HwEvent::Cycles]).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_never_panics() {
        // Whether or not the kernel allows perf events, the probe must
        // return cleanly.
        let _ = hw_available();
    }

    #[test]
    fn counting_when_available() {
        let Some(mut hw) = HwCounters::try_open(&[HwEvent::Cycles]) else {
            eprintln!("perf_event_open unavailable here; hardware path untestable");
            return;
        };
        hw.start();
        // Burn some cycles.
        let mut acc = 0u64;
        for i in 0..1_000_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        let cycles = hw.delta(HwEvent::Cycles).unwrap();
        assert!(cycles > 0, "a million multiplies must cost cycles");
    }

    #[test]
    fn missing_event_yields_none_delta() {
        let Some(hw) = HwCounters::try_open(&[HwEvent::Cycles]) else {
            return;
        };
        assert!(hw.delta(HwEvent::DtlbReadMisses).is_none());
    }

    #[test]
    fn event_encodings_match_uapi() {
        assert_eq!(HwEvent::Cycles.type_and_config(), (0, 0));
        assert_eq!(HwEvent::Instructions.type_and_config(), (0, 1));
        let (t, c) = HwEvent::DtlbReadMisses.type_and_config();
        assert_eq!(t, 3);
        assert_eq!(c, 3 | (1 << 16));
    }
}
