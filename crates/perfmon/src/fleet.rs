//! Fleet-level counters for the supervised multi-process runtime.
//!
//! The supervisor (see `rflash-core`'s `dist` module and DESIGN.md §17)
//! accumulates one of these per run: process lifecycle (spawns, respawns,
//! migrations), failure handling (heartbeat misses, probes, rollbacks), and
//! wire traffic. They ride along in the `FleetReport` and are what
//! `fleet_bench` serializes into `BENCH_fleet.json`.

use serde::{Deserialize, Serialize};

/// Monotonic counters covering one fleet run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetCounters {
    /// Worker processes launched, including the initial fleet.
    pub spawns: u64,
    /// Launches that replaced a lost worker.
    pub respawns: u64,
    /// Launch attempts that failed (including injected `spawn-fail`).
    pub spawn_failures: u64,
    /// Shards permanently migrated to survivors (fleet shrank by one).
    pub migrations: u64,
    /// Fleet-wide rollbacks to a checkpoint (or to step 0).
    pub rollbacks: u64,
    /// Heartbeat frames received.
    pub heartbeats: u64,
    /// Heartbeat deadlines that expired (worker entered the probe ladder).
    pub heartbeat_misses: u64,
    /// Liveness probes sent.
    pub probes: u64,
    /// Workers declared lost (any cause).
    pub worker_losses: u64,
    /// Protocol frames received from workers.
    pub frames_rx: u64,
    /// Payload bytes received from workers.
    pub bytes_rx: u64,
    /// Protocol frames sent to workers.
    pub frames_tx: u64,
    /// Payload bytes sent to workers.
    pub bytes_tx: u64,
    /// Checkpoints the fleet recorded as recovery points.
    pub checkpoints: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_default_to_zero_and_serialize() {
        let c = FleetCounters {
            spawns: 3,
            rollbacks: 1,
            ..FleetCounters::default()
        };
        assert_eq!(FleetCounters::default().spawns, 0);
        let json = serde_json::to_string(&c).unwrap();
        let back: FleetCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
