//! FLASH-style hierarchical named timers.
//!
//! FLASH's `Timers_start("eos") / Timers_stop("eos")` accumulate inclusive
//! wall time per label with nesting; the summary the paper quotes as
//! "FLASH Timer (s)" is the total evolution time. This is a faithful small
//! reimplementation: labels form a stack, re-entrant starts are counted,
//! and the report shows inclusive seconds and call counts per label.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

#[derive(Clone, Copy, Debug, Default)]
struct TimerSlot {
    inclusive_secs: f64,
    calls: u64,
    depth_sum: u64,
}

/// A set of nestable named timers. Not thread-safe by design — FLASH timers
/// are per-process and the driver owns them; per-thread probes aggregate
/// into [`crate::KernelStats`] instead.
#[derive(Default)]
pub struct Timers {
    slots: HashMap<String, TimerSlot>,
    stack: Vec<(String, Instant)>,
}

impl Timers {
    /// An empty timer set.
    pub fn new() -> Timers {
        Timers::default()
    }

    /// Begin timing `label`. Nesting is allowed (including re-entrancy).
    pub fn start(&mut self, label: &str) {
        self.stack.push((label.to_owned(), Instant::now()));
    }

    /// Stop the innermost timer, which must match `label`.
    ///
    /// # Panics
    /// Panics on mismatched or missing starts — a structural bug in the
    /// caller that silently wrong numbers must not paper over.
    pub fn stop(&mut self, label: &str) {
        let (top, begun) = self
            .stack
            .pop()
            .unwrap_or_else(|| panic!("Timers::stop({label:?}) with no timer running"));
        assert_eq!(
            top, label,
            "Timers::stop({label:?}) but innermost running timer is {top:?}"
        );
        let slot = self.slots.entry(top).or_default();
        slot.inclusive_secs += begun.elapsed().as_secs_f64();
        slot.calls += 1;
        slot.depth_sum += self.stack.len() as u64;
    }

    /// Time a closure under `label`.
    pub fn time<R>(&mut self, label: &str, f: impl FnOnce() -> R) -> R {
        self.start(label);
        let r = f();
        self.stop(label);
        r
    }

    /// Inclusive seconds accumulated for `label` (0 if never stopped).
    pub fn seconds(&self, label: &str) -> f64 {
        self.slots.get(label).map_or(0.0, |s| s.inclusive_secs)
    }

    /// Number of completed start/stop pairs for `label`.
    pub fn calls(&self, label: &str) -> u64 {
        self.slots.get(label).map_or(0, |s| s.calls)
    }

    /// Labels with completed measurements, sorted by descending time.
    pub fn labels(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.slots.keys().map(String::as_str).collect();
        v.sort_by(|a, b| {
            self.seconds(b)
                .partial_cmp(&self.seconds(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }

    /// Are any timers currently running?
    pub fn running(&self) -> bool {
        !self.stack.is_empty()
    }
}

impl fmt::Display for Timers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<28} {:>12} {:>8}", "timer", "secs", "calls")?;
        for label in self.labels() {
            let slot = &self.slots[label];
            writeln!(
                f,
                "{:<28} {:>12.6} {:>8}",
                label, slot.inclusive_secs, slot.calls
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn accumulates_across_calls() {
        let mut t = Timers::new();
        for _ in 0..3 {
            t.start("evolve");
            std::thread::sleep(Duration::from_millis(2));
            t.stop("evolve");
        }
        assert_eq!(t.calls("evolve"), 3);
        assert!(t.seconds("evolve") >= 0.006);
        assert!(!t.running());
    }

    #[test]
    fn nesting_is_inclusive() {
        let mut t = Timers::new();
        t.start("outer");
        t.start("inner");
        std::thread::sleep(Duration::from_millis(3));
        t.stop("inner");
        t.stop("outer");
        assert!(t.seconds("outer") >= t.seconds("inner"));
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = Timers::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.calls("work"), 1);
    }

    #[test]
    #[should_panic(expected = "innermost running timer")]
    fn mismatched_stop_panics() {
        let mut t = Timers::new();
        t.start("a");
        t.stop("b");
    }

    #[test]
    #[should_panic(expected = "no timer running")]
    fn stop_without_start_panics() {
        let mut t = Timers::new();
        t.stop("ghost");
    }

    #[test]
    fn labels_sorted_by_time() {
        let mut t = Timers::new();
        t.time("fast", || std::thread::sleep(Duration::from_millis(1)));
        t.time("slow", || std::thread::sleep(Duration::from_millis(8)));
        assert_eq!(t.labels()[0], "slow");
        let report = t.to_string();
        assert!(report.contains("slow"));
        assert!(report.contains("fast"));
    }

    #[test]
    fn unknown_label_reads_zero() {
        let t = Timers::new();
        assert_eq!(t.seconds("nope"), 0.0);
        assert_eq!(t.calls("nope"), 0);
    }
}

/// RAII scope for a named timer (see [`crate::session::RegionGuard`] for
/// why guards rather than explicit stop calls).
pub struct TimerScope<'a> {
    timers: &'a mut Timers,
    label: String,
}

impl Timers {
    /// Start `label`, stopping it when the returned scope drops.
    pub fn scoped(&mut self, label: &str) -> TimerScope<'_> {
        self.start(label);
        TimerScope {
            timers: self,
            label: label.to_owned(),
        }
    }
}

impl Drop for TimerScope<'_> {
    fn drop(&mut self) {
        self.timers.stop(&self.label);
    }
}

#[cfg(test)]
mod scope_tests {
    use super::*;

    #[test]
    fn scope_accumulates_on_drop() {
        let mut t = Timers::new();
        {
            let _scope = t.scoped("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(t.calls("work"), 1);
        assert!(t.seconds("work") >= 0.002);
        assert!(!t.running());
    }
}
