//! Software accounting of the work kernels perform.
//!
//! Hardware counters tell you what the machine did; these counters tell you
//! what the *kernels* did (bytes they logically moved, floating-point lane
//! operations they issued). The ratio of the two is how the harness forms
//! the paper's "Memory (Gbytes/s)" and "SVE instructions/cycle" analogs on
//! machines without SVE or uncore counters.

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Per-region work counters, accumulated by instrumented kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Bytes logically read by the kernel.
    pub bytes_read: u64,
    /// Bytes logically written.
    pub bytes_written: u64,
    /// Scalar floating-point operations.
    pub fp_ops: u64,
    /// Vectorizable lane operations (the SVE-instruction analog: ops issued
    /// in inner loops a vectorizing compiler would turn into SVE lanes).
    pub vec_ops: u64,
    /// Zones (cells) processed — FLASH's natural work unit.
    pub zones: u64,
    /// EOS evaluations performed (table lookups + Newton iterations).
    pub eos_calls: u64,
    /// Cells copied `unk` → SoA pencil lanes by the sweep gather pass.
    #[serde(default)]
    pub gather_cells: u64,
    /// Cells copied SoA lanes → `unk` by the sweep scatter pass.
    #[serde(default)]
    pub scatter_cells: u64,
    /// Zones submitted to the batched EOS interface.
    #[serde(default)]
    pub batch_lanes: u64,
    /// Of those, zones the vectorized fast path completed without scalar
    /// fallback (batch occupancy = batch_vector_lanes / batch_lanes).
    #[serde(default)]
    pub batch_vector_lanes: u64,
    /// Zones that exhausted the batched Newton iteration budget and were
    /// accepted on the residual-plateau criterion instead. Counted apart
    /// from `batch_vector_lanes` so occupancy numbers stay honest.
    #[serde(default)]
    pub batch_plateau_lanes: u64,
    /// Zones processed in full-width SIMD chunks by the explicit lane
    /// kernels (PPM / HLLC / update under dispatch).
    #[serde(default)]
    pub simd_chunk_lanes: u64,
    /// Zones processed by the scalar-lane tail of those kernels
    /// (mask occupancy = simd_chunk_lanes / (simd_chunk_lanes + simd_tail_lanes)).
    #[serde(default)]
    pub simd_tail_lanes: u64,
    /// Active-lane histogram per batched-EOS Newton iteration: bin `i`
    /// counts lanes still unconverged entering iteration `i` (last bin
    /// accumulates everything past it). Shows how occupancy decays as the
    /// masked re-iteration drains.
    #[serde(default)]
    pub newton_iter_hist: [u64; 16],
}

impl KernelStats {
    /// Total bytes moved in either direction.
    #[inline]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Bandwidth in GB/s over an elapsed time.
    pub fn gb_per_s(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.bytes_total() as f64 / 1e9 / elapsed_secs
        }
    }

    /// Vector-lane operations per cycle, given a cycle count.
    pub fn vec_ops_per_cycle(&self, cycles: f64) -> f64 {
        if cycles <= 0.0 {
            0.0
        } else {
            self.vec_ops as f64 / cycles
        }
    }

    #[inline]
    /// Account `bytes` of logical reads.
    pub fn add_read(&mut self, bytes: u64) {
        self.bytes_read += bytes;
    }

    #[inline]
    /// Account `bytes` of logical writes.
    pub fn add_write(&mut self, bytes: u64) {
        self.bytes_written += bytes;
    }

    #[inline]
    /// Account scalar floating-point operations.
    pub fn add_fp(&mut self, ops: u64) {
        self.fp_ops += ops;
    }

    #[inline]
    /// Account vectorizable lane operations.
    pub fn add_vec(&mut self, ops: u64) {
        self.vec_ops += ops;
    }

    /// Fraction of batched-EOS zones the vector path handled; 0 when the
    /// batched interface was never used.
    pub fn batch_occupancy(&self) -> f64 {
        if self.batch_lanes == 0 {
            0.0
        } else {
            self.batch_vector_lanes as f64 / self.batch_lanes as f64
        }
    }

    /// Fraction of lane-kernel zones processed in full-width SIMD chunks
    /// (the rest ran through the scalar-lane tail); 0 when the explicit
    /// path never ran.
    pub fn simd_occupancy(&self) -> f64 {
        let total = self.simd_chunk_lanes + self.simd_tail_lanes;
        if total == 0 {
            0.0
        } else {
            self.simd_chunk_lanes as f64 / total as f64
        }
    }
}

impl Add for KernelStats {
    type Output = KernelStats;
    fn add(self, r: KernelStats) -> KernelStats {
        KernelStats {
            bytes_read: self.bytes_read + r.bytes_read,
            bytes_written: self.bytes_written + r.bytes_written,
            fp_ops: self.fp_ops + r.fp_ops,
            vec_ops: self.vec_ops + r.vec_ops,
            zones: self.zones + r.zones,
            eos_calls: self.eos_calls + r.eos_calls,
            gather_cells: self.gather_cells + r.gather_cells,
            scatter_cells: self.scatter_cells + r.scatter_cells,
            batch_lanes: self.batch_lanes + r.batch_lanes,
            batch_vector_lanes: self.batch_vector_lanes + r.batch_vector_lanes,
            batch_plateau_lanes: self.batch_plateau_lanes + r.batch_plateau_lanes,
            simd_chunk_lanes: self.simd_chunk_lanes + r.simd_chunk_lanes,
            simd_tail_lanes: self.simd_tail_lanes + r.simd_tail_lanes,
            newton_iter_hist: {
                let mut h = [0u64; 16];
                for (i, slot) in h.iter_mut().enumerate() {
                    *slot = self.newton_iter_hist[i] + r.newton_iter_hist[i];
                }
                h
            },
        }
    }
}

impl AddAssign for KernelStats {
    fn add_assign(&mut self, r: KernelStats) {
        *self = *self + r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_rates() {
        let mut s = KernelStats::default();
        s.add_read(3_000_000_000);
        s.add_write(1_000_000_000);
        s.add_fp(100);
        s.add_vec(2_000);
        s.zones = 10;
        assert_eq!(s.bytes_total(), 4_000_000_000);
        assert!((s.gb_per_s(2.0) - 2.0).abs() < 1e-12);
        assert!((s.vec_ops_per_cycle(1000.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_denominators() {
        let s = KernelStats::default();
        assert_eq!(s.gb_per_s(0.0), 0.0);
        assert_eq!(s.vec_ops_per_cycle(0.0), 0.0);
        assert_eq!(s.gb_per_s(-1.0), 0.0);
    }

    #[test]
    fn add_merges_all_fields() {
        let a = KernelStats {
            bytes_read: 1,
            bytes_written: 2,
            fp_ops: 3,
            vec_ops: 4,
            zones: 5,
            eos_calls: 6,
            gather_cells: 7,
            scatter_cells: 8,
            batch_lanes: 9,
            batch_vector_lanes: 10,
            batch_plateau_lanes: 11,
            simd_chunk_lanes: 12,
            simd_tail_lanes: 13,
            newton_iter_hist: {
                let mut h = [0u64; 16];
                for (i, slot) in h.iter_mut().enumerate() {
                    *slot = i as u64;
                }
                h
            },
        };
        let sum = a + a;
        assert_eq!(sum.eos_calls, 12);
        assert_eq!(sum.zones, 10);
        assert_eq!(sum.gather_cells, 14);
        assert_eq!(sum.scatter_cells, 16);
        assert_eq!(sum.batch_lanes, 18);
        assert_eq!(sum.batch_vector_lanes, 20);
        assert_eq!(sum.batch_plateau_lanes, 22);
        assert_eq!(sum.simd_chunk_lanes, 24);
        assert_eq!(sum.simd_tail_lanes, 26);
        assert_eq!(sum.newton_iter_hist[15], 30);
        let mut acc = KernelStats::default();
        acc += a;
        assert_eq!(acc, a);
    }

    #[test]
    fn simd_occupancy_ratio() {
        let mut s = KernelStats::default();
        assert_eq!(s.simd_occupancy(), 0.0);
        s.simd_chunk_lanes = 12;
        s.simd_tail_lanes = 4;
        assert!((s.simd_occupancy() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn batch_occupancy_ratio() {
        let mut s = KernelStats::default();
        assert_eq!(s.batch_occupancy(), 0.0);
        s.batch_lanes = 8;
        s.batch_vector_lanes = 6;
        assert!((s.batch_occupancy() - 0.75).abs() < 1e-15);
    }
}
