//! Allocation-chain telemetry in profile reports.
//!
//! The hugepages crate counts every fallback, retry, and injected fault in
//! its degradation chain ([`rflash_hugepages::metrics`]); this module folds
//! a snapshot (or a delta across an instrumented region) into the same
//! reporting surface as the paper-style tables, so a run that silently lost
//! its huge pages is visible right next to the DTLB numbers it corrupts.

use std::fmt;

use rflash_hugepages::AllocStats;
use serde::{Deserialize, Serialize};

/// Allocation-chain counters attached to a profile report.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AllocSummary {
    /// The counters (process-wide totals, or a region delta).
    pub stats: AllocStats,
}

impl AllocSummary {
    /// Snapshot the process-wide counters right now.
    pub fn capture() -> Self {
        AllocSummary {
            stats: rflash_hugepages::alloc_stats(),
        }
    }

    /// Counters accumulated since an earlier [`capture`](Self::capture) —
    /// what an instrumented region itself cost.
    pub fn since(baseline: &AllocSummary) -> Self {
        let now = rflash_hugepages::alloc_stats();
        let b = baseline.stats;
        AllocSummary {
            stats: AllocStats {
                hugetlb_attempts: now.hugetlb_attempts - b.hugetlb_attempts,
                hugetlb_grants: now.hugetlb_grants - b.hugetlb_grants,
                transient_retries: now.transient_retries - b.transient_retries,
                thp_fallbacks: now.thp_fallbacks - b.thp_fallbacks,
                base_fallbacks: now.base_fallbacks - b.base_fallbacks,
                madvise_denials: now.madvise_denials - b.madvise_denials,
                injected_faults: now.injected_faults - b.injected_faults,
            },
        }
    }

    /// Did any allocation degrade below its requested backing?
    pub fn degraded(&self) -> bool {
        self.stats.degraded()
    }
}

impl fmt::Display for AllocSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ALLOCATION CHAIN")?;
        writeln!(
            f,
            "| {:<28} | {:>13} |",
            "hugetlb attempts", self.stats.hugetlb_attempts
        )?;
        writeln!(
            f,
            "| {:<28} | {:>13} |",
            "hugetlb grants", self.stats.hugetlb_grants
        )?;
        writeln!(
            f,
            "| {:<28} | {:>13} |",
            "transient retries", self.stats.transient_retries
        )?;
        writeln!(
            f,
            "| {:<28} | {:>13} |",
            "fallbacks to THP", self.stats.thp_fallbacks
        )?;
        writeln!(
            f,
            "| {:<28} | {:>13} |",
            "fallbacks to base pages", self.stats.base_fallbacks
        )?;
        writeln!(
            f,
            "| {:<28} | {:>13} |",
            "madvise denials", self.stats.madvise_denials
        )?;
        writeln!(
            f,
            "| {:<28} | {:>13} |",
            "injected faults", self.stats.injected_faults
        )?;
        if self.degraded() {
            writeln!(
                f,
                "NOTE: allocations degraded below the requested backing; \
                 huge-page measures reflect the *achieved* chain above."
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rflash_hugepages::{PageBuffer, PageSize, Policy};

    #[test]
    fn delta_sees_a_hugetlb_attempt() {
        let before = AllocSummary::capture();
        let _buf =
            PageBuffer::<u8>::zeroed(1 << 21, Policy::HugeTlbFs(PageSize::Huge2M)).unwrap();
        let delta = AllocSummary::since(&before);
        assert!(delta.stats.hugetlb_attempts >= 1);
        // Either the pool granted it or the chain recorded the degradation.
        assert!(delta.stats.hugetlb_grants >= 1 || delta.stats.thp_fallbacks >= 1);
        let text = delta.to_string();
        assert!(text.contains("hugetlb attempts"), "{text}");
    }

    #[test]
    fn display_flags_degradation() {
        let s = AllocSummary {
            stats: rflash_hugepages::AllocStats {
                hugetlb_attempts: 2,
                thp_fallbacks: 2,
                ..Default::default()
            },
        };
        assert!(s.degraded());
        assert!(s.to_string().contains("degraded below"));
    }

    #[test]
    fn serde_round_trip() {
        let s = AllocSummary::capture();
        let json = serde_json::to_string(&s).unwrap();
        let back: AllocSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stats, s.stats);
    }
}
