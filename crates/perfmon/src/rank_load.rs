//! Per-rank load accounting for the persistent executor.
//!
//! FLASH's MPI ranks advance in lockstep: every collective (guard exchange,
//! reduction, sweep barrier) makes the fastest rank wait for the slowest.
//! The simulated-rank pool keeps the same ledger — per-rank busy seconds
//! inside dispatched work and idle seconds at the dispatch barrier — so
//! `profile_report` can show how well the cost-weighted Morton partition
//! balances the block distribution.

use serde::{Deserialize, Serialize};

/// Cumulative load of one simulated rank on the persistent executor.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RankLoad {
    /// Rank index (also the pool thread index).
    pub rank: usize,
    /// Seconds spent executing dispatched work.
    pub busy_s: f64,
    /// Seconds spent waiting at the dispatch barrier for slower ranks.
    pub idle_s: f64,
    /// Pool dispatches this rank participated in.
    pub dispatches: u64,
}

/// Load imbalance of a dispatch history: `max(busy) / mean(busy)`.
/// 1.0 is a perfectly balanced partition; FLASH's own Morton distribution
/// typically sits a few percent above it.
pub fn imbalance(loads: &[RankLoad]) -> f64 {
    let mean = loads.iter().map(|l| l.busy_s).sum::<f64>() / loads.len().max(1) as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    let max = loads.iter().map(|l| l.busy_s).fold(0.0, f64::max);
    max / mean
}

/// Fraction of total rank-seconds spent idle at dispatch barriers:
/// `Σ idle / Σ (busy + idle)`. Zero when every rank finishes together.
pub fn idle_fraction(loads: &[RankLoad]) -> f64 {
    let idle: f64 = loads.iter().map(|l| l.idle_s).sum();
    let total: f64 = loads.iter().map(|l| l.busy_s + l.idle_s).sum();
    if total <= 0.0 {
        0.0
    } else {
        idle / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(rank: usize, busy_s: f64, idle_s: f64) -> RankLoad {
        RankLoad {
            rank,
            busy_s,
            idle_s,
            dispatches: 1,
        }
    }

    #[test]
    fn balanced_ranks_have_unit_imbalance() {
        let loads = [load(0, 2.0, 0.0), load(1, 2.0, 0.0)];
        assert!((imbalance(&loads) - 1.0).abs() < 1e-12);
        assert_eq!(idle_fraction(&loads), 0.0);
    }

    #[test]
    fn skewed_ranks_show_up() {
        let loads = [load(0, 3.0, 0.0), load(1, 1.0, 2.0)];
        assert!((imbalance(&loads) - 1.5).abs() < 1e-12);
        assert!((idle_fraction(&loads) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_are_defined() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(idle_fraction(&[]), 0.0);
        let zeros = [load(0, 0.0, 0.0)];
        assert_eq!(imbalance(&zeros), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let l = load(3, 1.25, 0.5);
        let json = serde_json::to_string(&l).unwrap();
        let back: RankLoad = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rank, 3);
        assert_eq!(back.busy_s, 1.25);
    }
}
