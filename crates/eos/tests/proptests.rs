//! Property-based tests of EOS invariants over the full table domain.

use proptest::prelude::*;
use rflash_eos::{Eos, EosMode, EosState, GammaLaw, Helmholtz, TableConfig};
use rflash_hugepages::Policy;
use std::sync::OnceLock;

fn helm() -> &'static Helmholtz {
    static EOS: OnceLock<Helmholtz> = OnceLock::new();
    EOS.get_or_init(|| Helmholtz::build(TableConfig::coarse(), Policy::None).unwrap())
}

/// Interior of the coarse table domain (avoiding the clamped edges).
fn arb_state() -> impl Strategy<Value = (f64, f64)> {
    ((-3.0f64..9.0), (4.0f64..11.0)).prop_map(|(lr, lt)| {
        // rho_ye -> dens for Ye = 0.5.
        (2.0 * 10f64.powf(lr), 10f64.powf(lt))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DensTemp → DensEi round-trips the temperature.
    #[test]
    fn dens_ei_round_trip((dens, temp) in arb_state()) {
        let mut s = EosState::co_wd(dens, temp);
        helm().call(EosMode::DensTemp, &mut s).unwrap();
        let t_true = s.temp;
        s.temp = 1e6; // stale guess
        helm().call(EosMode::DensEi, &mut s).unwrap();
        prop_assert!((s.temp - t_true).abs() / t_true < 1e-3,
            "T={:e} vs {:e} at dens={dens:e}", s.temp, t_true);
    }

    /// Thermodynamic sanity on every evaluation: positive P, e, cv, and
    /// gamc in a physical window; sound speed below c.
    #[test]
    fn outputs_are_physical((dens, temp) in arb_state()) {
        let mut s = EosState::co_wd(dens, temp);
        helm().call(EosMode::DensTemp, &mut s).unwrap();
        prop_assert!(s.pres > 0.0);
        prop_assert!(s.eint > 0.0);
        prop_assert!(s.cv > 0.0);
        prop_assert!(s.gamc > 1.0 && s.gamc < 3.0, "gamc={}", s.gamc);
        prop_assert!(s.cs > 0.0 && s.cs.is_finite(), "cs={:e}", s.cs);
        // Newtonian hydro (like FLASH's) only bounds cs < c where the
        // rest-mass density dominates the inertia; the radiation-dominated
        // low-density corner formally exceeds c in any Newtonian code.
        let c_light = 2.9979e10f64;
        if s.pres < 0.1 * dens * c_light * c_light {
            prop_assert!(s.cs < c_light, "cs={:e} at dens={dens:e}", s.cs);
        }
        prop_assert!(s.game > 1.0);
    }

    /// Pressure increases with density at fixed temperature — up to table
    /// interpolation tolerance: at pair-creation onset the physical
    /// dP/dρ|T is nearly zero (pairs dominate and don't care about ρYₑ),
    /// so coarse-table wiggles (up to percent-level there: 0.35-dex cells
    /// across the exp(−2/β) pair turn-on) can flip the sign of a tiny
    /// difference. The robust property is monotone-within-tolerance.
    #[test]
    fn pressure_monotone_in_density((dens, temp) in arb_state()) {
        let mut a = EosState::co_wd(dens, temp);
        helm().call(EosMode::DensTemp, &mut a).unwrap();
        let mut b = EosState::co_wd(dens * 1.3, temp);
        helm().call(EosMode::DensTemp, &mut b).unwrap();
        prop_assert!(b.pres > a.pres * (1.0 - 0.02),
            "P({:e})={:e} vs P({dens:e})={:e}", dens * 1.3, b.pres, a.pres);
    }

    /// Internal energy does not decrease with temperature at fixed density
    /// (cv ≥ 0 globally, up to table-interpolation tolerance).
    #[test]
    fn energy_monotone_in_temperature((dens, temp) in arb_state()) {
        let mut a = EosState::co_wd(dens, temp);
        helm().call(EosMode::DensTemp, &mut a).unwrap();
        let mut b = EosState::co_wd(dens, temp * 1.3);
        helm().call(EosMode::DensTemp, &mut b).unwrap();
        prop_assert!(b.eint >= a.eint * (1.0 - 1e-3),
            "e({:e})={:e} < e({temp:e})={:e}", temp * 1.3, b.eint, a.eint);
    }

    /// Gamma-law: all three modes agree for arbitrary inputs.
    #[test]
    fn gamma_modes_agree(dens in 1e-6f64..1e6, temp in 1e2f64..1e10, gamma in 1.1f64..2.0) {
        let eos = GammaLaw::new(gamma);
        let mut s = EosState::co_wd(dens, temp);
        eos.call(EosMode::DensTemp, &mut s).unwrap();
        let (p0, e0) = (s.pres, s.eint);
        s.temp = 1.0;
        eos.call(EosMode::DensEi, &mut s).unwrap();
        prop_assert!((s.pres - p0).abs() / p0 < 1e-12);
        s.temp = 1.0;
        s.eint = 0.0;
        s.pres = p0;
        eos.call(EosMode::DensPres, &mut s).unwrap();
        prop_assert!((s.eint - e0).abs() / e0 < 1e-12);
    }
}
