//! The full Helmholtz-style EOS: tabulated electrons/positrons + ideal ions
//! + radiation, with the FLASH call modes.

use crate::consts::{A_RAD, H_PLANCK, K_B, N_A};
use crate::table::{ElecPoint, HelmTable, TableConfig};
use crate::{BatchReport, Eos, EosBatch, EosError, EosMode, EosState};

use crate::batch::NEWTON_HIST_BINS;
use rflash_hugepages::Policy;
use rflash_simd::Resolved;
use std::cell::RefCell;

/// The white-dwarf-matter EOS of the paper's supernova simulations.
pub struct Helmholtz {
    table: HelmTable,
    /// SIMD backend the batched table path dispatches on; set from
    /// `RuntimeParams::simd_backend` via [`Self::set_simd`], defaults to
    /// the resolved native backend.
    simd: Resolved,
    /// Include the photon gas (on in FLASH; switchable for tests).
    pub include_radiation: bool,
    /// Include the ideal ion gas.
    pub include_ions: bool,
    /// Include ion Coulomb corrections (FLASH's `coulomb_mult`):
    /// Debye–Hückel in the weak-coupling limit, the Slattery–Doolen–DeWitt
    /// one-component-plasma fit beyond. **Off by default**: the liquid OCP
    /// fit is only valid below crystallization (Γ ≲ 175); enabling it is
    /// appropriate for runs confined to the fluid regime (the supernova
    /// interior), where it is a ~1–3 % negative correction. Over the full
    /// table domain — which reaches solid carbon — no fluid correction is
    /// thermodynamically consistent, which is also why FLASH ships
    /// bomb-proofing cutoffs for it.
    pub include_coulomb: bool,
}

/// Intermediate full evaluation at (ρ, T).
#[derive(Clone, Copy, Debug, Default)]
struct Eval {
    pres: f64,
    eint: f64, // specific, erg/g
    entr: f64, // specific, erg/(g K)
    cv: f64,   // specific
    dpdt: f64,
    dpdr: f64,
}

impl Helmholtz {
    /// Build with a freshly computed table under the given huge-page policy.
    pub fn build(config: TableConfig, policy: Policy) -> Result<Helmholtz, EosError> {
        Ok(Helmholtz {
            table: HelmTable::build(config, policy)?,
            simd: rflash_simd::resolve(rflash_simd::Backend::default()),
            include_radiation: true,
            include_ions: true,
            include_coulomb: false,
        })
    }

    /// Build with a disk-cached table (FLASH's `helm_table.dat` pattern):
    /// loads `cache` when its geometry matches, else computes and caches.
    pub fn build_cached(
        config: TableConfig,
        policy: Policy,
        cache: &std::path::Path,
    ) -> Result<Helmholtz, EosError> {
        Ok(Helmholtz {
            table: HelmTable::build_or_load(config, policy, cache)?,
            simd: rflash_simd::resolve(rflash_simd::Backend::default()),
            include_radiation: true,
            include_ions: true,
            include_coulomb: false,
        })
    }

    /// Access the underlying table (harness: TLB registration, backing audit).
    pub fn table(&self) -> &HelmTable {
        &self.table
    }

    /// Select the SIMD backend the batched table path dispatches on.
    pub fn set_simd(&mut self, simd: Resolved) {
        self.simd = simd;
    }

    fn evaluate(&self, dens: f64, temp: f64, abar: f64, zbar: f64) -> Result<Eval, EosError> {
        let rho_ye = dens * zbar / abar;
        let ele: ElecPoint = self.table.interp(rho_ye, temp)?;
        Ok(self.assemble(ele, dens, temp, abar, zbar))
    }

    /// Combine an interpolated electron point with radiation/ions/Coulomb.
    /// Shared by the scalar and batched paths so both produce bit-identical
    /// `Eval`s for the same (ρ, T) point.
    fn assemble(&self, ele: ElecPoint, dens: f64, temp: f64, abar: f64, zbar: f64) -> Eval {
        let mut ev = Eval {
            pres: ele.pres,
            eint: ele.ener / dens,
            entr: ele.entr / dens,
            cv: ele.ener / dens / temp * ele.dlne_dlnt,
            dpdt: ele.pres / temp * ele.dlnp_dlnt,
            // ρYₑ ∝ ρ at fixed composition, so ∂lnP/∂lnρ = dlnp_dlnr.
            dpdr: ele.pres / dens * ele.dlnp_dlnr,
        };
        if self.include_radiation {
            let prad = A_RAD * temp.powi(4) / 3.0;
            ev.pres += prad;
            ev.eint += 3.0 * prad / dens;
            ev.entr += 4.0 * prad / (dens * temp); // s_rad = 4aT³/(3ρ) = 4P_rad/(ρT)
            ev.cv += 12.0 * prad / (dens * temp); // d(3aT⁴/ρ)/dT = 12aT³/ρ
            ev.dpdt += 4.0 * prad / temp;
        }
        if self.include_ions {
            let nkt = dens * N_A * K_B * temp / abar; // ion ideal pressure
            ev.pres += nkt;
            ev.eint += 1.5 * nkt / dens;
            ev.cv += 1.5 * N_A * K_B / abar;
            ev.dpdt += nkt / temp;
            ev.dpdr += nkt / dens;
            ev.entr += sackur_tetrode(dens, temp, abar);
            if self.include_coulomb {
                add_coulomb(&mut ev, dens, temp, abar, zbar);
            }
        }
        ev
    }

    fn apply(&self, s: &mut EosState, ev: Eval) {
        s.pres = ev.pres;
        s.eint = ev.eint;
        s.entr = ev.entr;
        s.cv = ev.cv;
        // Γ₁ = ρ/P · (∂P/∂ρ|T + T (∂P/∂T|ρ)² / (ρ² c_v)).
        let chi = ev.dpdr + s.temp * ev.dpdt * ev.dpdt / (s.dens * s.dens * ev.cv);
        s.gamc = (chi * s.dens / ev.pres).max(1.01);
        s.finish_derived();
    }

    /// Temperature bounds of the table domain.
    fn temp_bounds(&self) -> (f64, f64) {
        let (lo, hi) = self.table.config().log_temp;
        (10f64.powf(lo), 10f64.powf(hi))
    }

    /// Invert `target(T) = goal` by safeguarded Newton in ln T.
    fn invert<F>(&self, s: &EosState, goal: f64, mode: &'static str, f: F) -> Result<(f64, Eval), EosError>
    where
        F: Fn(&Eval) -> (f64, f64), // (value, d(value)/dT)
    {
        let (tmin, tmax) = self.temp_bounds();
        let mut t = s.temp.clamp(tmin * 1.0001, tmax * 0.9999);
        if !t.is_finite() || t <= 0.0 {
            t = (tmin * tmax).sqrt();
        }
        let (mut lo, mut hi) = (tmin, tmax);
        let mut best: Option<(f64, f64, Eval)> = None; // (|resid|, t, eval)
        let mut prev_resid = f64::INFINITY;
        for iter in 0..160 {
            let ev = self.evaluate(s.dens, t, s.abar, s.zbar)?;
            let (value, dvdt) = f(&ev);
            let resid = (value - goal) / goal.abs().max(f64::MIN_POSITIVE);
            if best.as_ref().is_none_or(|(r, _, _)| resid.abs() < *r) {
                best = Some((resid.abs(), t, ev));
            }
            if resid.abs() < 1e-10 {
                return Ok((t, ev));
            }
            if value > goal {
                hi = hi.min(t);
            } else {
                lo = lo.max(t);
            }
            // The bicubic interpolant can be locally non-monotone (pair
            // region, patch boundaries); once the bracket has collapsed the
            // best point is as converged as the table permits.
            if hi / lo < 1.0 + 1e-14 {
                break;
            }
            // Newton only while it actually improves; otherwise guarantee
            // progress with log-space bisection (the bracket always
            // shrinks because t is strictly inside (lo, hi)).
            let newton = t - (value - goal) / dvdt;
            let newton_ok = newton.is_finite()
                && newton > lo
                && newton < hi
                && (iter < 8 || resid.abs() < 0.5 * prev_resid);
            t = if newton_ok { newton } else { (lo * hi).sqrt() };
            prev_resid = resid.abs();
        }
        // Accept the bracket-collapse plateau: when the (bicubic) e(T) or
        // P(T) interpolant is locally non-monotone, the bisection limit IS
        // the table's accuracy — a coarse table can leave ~1e-3-level
        // residuals at the jump. FLASH's helmholtz accepts comparable
        // Newton plateaus with a warning counter.
        let Some((best_resid, best_t, best_ev)) = best else {
            // Unreachable in practice (the loop body runs at least once and
            // either records a best point or propagates an evaluate error),
            // but a typed error beats an abort mid-simulation.
            return Err(EosError::NoConvergence {
                mode,
                residual: f64::INFINITY,
            });
        };
        // Goal below/above the physically representable range (e.g. a
        // rarefaction cooled matter below the table's temperature floor):
        // pin to the table edge, FLASH-style.
        let edge_pinned = best_t < tmin * 1.01 || best_t > tmax * 0.99;
        if best_resid < 1e-2 || (edge_pinned && best_resid < 0.5) {
            Ok((best_t, best_ev))
        } else {
            Err(EosError::NoConvergence {
                mode,
                residual: best_resid,
            })
        }
    }

    /// Lane-parallel replica of [`Self::invert`], plateau acceptance
    /// included.
    ///
    /// Every lane follows *exactly* the scalar iteration (same clamp, same
    /// bracket updates, same best-point tracking, same Newton-vs-bisection
    /// decision), but the table interpolation — the hot part — runs batched
    /// over the still-active lanes each round via
    /// [`HelmTable::interp_lanes`], so non-converged lanes stay in the
    /// compacted active set as a masked re-iteration instead of dropping to
    /// a scalar re-solve. A lane that hits the clean `|resid| < 1e-10` exit
    /// lands on the bit-identical (T, Eval) the scalar solve would return
    /// ([`LANE_VECTOR`]); a lane that leaves any other way (bracket
    /// collapse, 160 iterations) is resolved by the scalar path's
    /// residual-plateau criterion on its bit-identical best point
    /// ([`LANE_PLATEAU`] or the same `NoConvergence` error). Returns the
    /// active-lane histogram per iteration (occupancy decay).
    #[allow(clippy::too_many_arguments)] // one borrowed SoA lane per input
    fn invert_lanes<F>(
        &self,
        sc: &mut BatchScratch,
        mode: &'static str,
        dens: &[f64],
        abar: &[f64],
        zbar: &[f64],
        temp_guess: &[f64],
        f: F,
    ) -> Result<[u64; NEWTON_HIST_BINS], EosError>
    where
        F: Fn(&Eval) -> (f64, f64), // (value, d(value)/dT)
    {
        let n = dens.len();
        let (tmin, tmax) = self.temp_bounds();
        sc.t.resize(n, 0.0);
        sc.lo.resize(n, 0.0);
        sc.hi.resize(n, 0.0);
        sc.prev.resize(n, 0.0);
        sc.status.resize(n, LANE_ACTIVE);
        sc.t_sol.resize(n, 0.0);
        sc.ev_sol.resize(n, Eval::default());
        sc.best_r.resize(n, 0.0);
        sc.best_t.resize(n, 0.0);
        sc.best_ev.resize(n, Eval::default());
        sc.best_set.resize(n, false);
        for (l, &guess) in temp_guess.iter().enumerate() {
            let mut t = guess.clamp(tmin * 1.0001, tmax * 0.9999);
            if !t.is_finite() || t <= 0.0 {
                t = (tmin * tmax).sqrt();
            }
            sc.t[l] = t;
            sc.lo[l] = tmin;
            sc.hi[l] = tmax;
            sc.prev[l] = f64::INFINITY;
            sc.status[l] = LANE_ACTIVE;
            sc.best_set[l] = false;
        }
        sc.active.clear();
        sc.active.extend(0..n);

        let mut hist = [0u64; NEWTON_HIST_BINS];
        for iter in 0..160 {
            let n_active = sc.active.len();
            if n_active == 0 {
                break;
            }
            hist[iter.min(NEWTON_HIST_BINS - 1)] += n_active as u64;
            // Compact the active lanes so the interpolation runs over
            // contiguous inputs.
            sc.c_dens.clear();
            sc.c_temp.clear();
            sc.c_abar.clear();
            sc.c_zbar.clear();
            for &l in &sc.active {
                sc.c_dens.push(dens[l]);
                sc.c_temp.push(sc.t[l]);
                sc.c_abar.push(abar[l]);
                sc.c_zbar.push(zbar[l]);
            }
            sc.c_rho.clear();
            sc.c_rho.resize(n_active, 0.0);
            for i in 0..n_active {
                sc.c_rho[i] = sc.c_dens[i] * sc.c_zbar[i] / sc.c_abar[i];
            }
            sc.c_ele.clear();
            sc.c_ele.resize(n_active, ElecPoint::default());
            self.table
                .interp_lanes(self.simd, &sc.c_rho, &sc.c_temp, &mut sc.c_ele)?;

            let mut w = 0;
            for i in 0..n_active {
                let l = sc.active[i];
                let ev = self.assemble(
                    sc.c_ele[i],
                    sc.c_dens[i],
                    sc.c_temp[i],
                    sc.c_abar[i],
                    sc.c_zbar[i],
                );
                let (value, dvdt) = f(&ev);
                let goal = sc.goal[l];
                let resid = (value - goal) / goal.abs().max(f64::MIN_POSITIVE);
                // Best-point tracking BEFORE the clean exit, exactly like
                // the scalar `is_none_or` (a NaN residual is recorded when
                // nothing was recorded yet, never displaces a finite one).
                if !sc.best_set[l] || resid.abs() < sc.best_r[l] {
                    sc.best_set[l] = true;
                    sc.best_r[l] = resid.abs();
                    sc.best_t[l] = sc.t[l];
                    sc.best_ev[l] = ev;
                }
                if resid.abs() < 1e-10 {
                    sc.status[l] = LANE_VECTOR;
                    sc.t_sol[l] = sc.t[l];
                    sc.ev_sol[l] = ev;
                    continue;
                }
                if value > goal {
                    sc.hi[l] = sc.hi[l].min(sc.t[l]);
                } else {
                    sc.lo[l] = sc.lo[l].max(sc.t[l]);
                }
                if sc.hi[l] / sc.lo[l] < 1.0 + 1e-14 {
                    // Bracket collapse: leave the masked set, plateau-check
                    // below.
                    continue;
                }
                let newton = sc.t[l] - (value - goal) / dvdt;
                let newton_ok = newton.is_finite()
                    && newton > sc.lo[l]
                    && newton < sc.hi[l]
                    && (iter < 8 || resid.abs() < 0.5 * sc.prev[l]);
                sc.t[l] = if newton_ok {
                    newton
                } else {
                    (sc.lo[l] * sc.hi[l]).sqrt()
                };
                sc.prev[l] = resid.abs();
                sc.active[w] = l;
                w += 1;
            }
            sc.active.truncate(w);
        }

        // Post-loop plateau resolution, in lane order so the first failing
        // lane yields the same error the scalar path's per-zone abort
        // would. The criterion and the accepted (T, Eval) are bit-identical
        // to `invert`'s tail because the tracked best point is.
        for l in 0..n {
            if sc.status[l] == LANE_VECTOR {
                continue;
            }
            if !sc.best_set[l] {
                return Err(EosError::NoConvergence {
                    mode,
                    residual: f64::INFINITY,
                });
            }
            let edge_pinned = sc.best_t[l] < tmin * 1.01 || sc.best_t[l] > tmax * 0.99;
            if sc.best_r[l] < 1e-2 || (edge_pinned && sc.best_r[l] < 0.5) {
                sc.status[l] = LANE_PLATEAU;
                sc.t_sol[l] = sc.best_t[l];
                sc.ev_sol[l] = sc.best_ev[l];
            } else {
                return Err(EosError::NoConvergence {
                    mode,
                    residual: sc.best_r[l],
                });
            }
        }
        Ok(hist)
    }
}

/// Lane states of the batched inversion.
const LANE_ACTIVE: u8 = 0;
/// Clean `|resid| < 1e-10` exit — the vector path's solution is used as-is.
const LANE_VECTOR: u8 = 1;
/// Bracket collapse or iteration exhaustion, accepted on the scalar path's
/// residual-plateau criterion at the lane's best-tracked point.
const LANE_PLATEAU: u8 = 2;

/// Reusable per-thread scratch for the batched solve: grown once to the
/// widest batch seen on this thread, then reused allocation-free.
#[derive(Default)]
struct BatchScratch {
    goal: Vec<f64>,
    t: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    prev: Vec<f64>,
    status: Vec<u8>,
    t_sol: Vec<f64>,
    ev_sol: Vec<Eval>,
    best_r: Vec<f64>,
    best_t: Vec<f64>,
    best_ev: Vec<Eval>,
    best_set: Vec<bool>,
    active: Vec<usize>,
    c_dens: Vec<f64>,
    c_temp: Vec<f64>,
    c_abar: Vec<f64>,
    c_zbar: Vec<f64>,
    c_rho: Vec<f64>,
    c_ele: Vec<ElecPoint>,
}

thread_local! {
    static SCRATCH: RefCell<BatchScratch> = RefCell::new(BatchScratch::default());
}

/// Ion Coulomb corrections for a one-component plasma.
///
/// Coupling parameter Γ = Z²e²/(a·kT) with the ion-sphere radius
/// a = (3/4πn_i)^{1/3}. Internal energy per ion in kT units:
/// * weak coupling: Debye–Hückel, u = −(√3/2)·Γ^{3/2};
/// * liquid OCP: Slattery, Doolen & DeWitt (1982) fit
///   u = AΓ + BΓ^{1/4} + CΓ^{−1/4} + D.
///
/// The two expressions cross at Γ ≈ 0.1821, which is where we switch —
/// u(Γ) is then continuous by construction.
///
/// The virial theorem gives P_C = n_i kT·u/3. Derivatives follow from
/// Γ ∝ n_i^{1/3}/T analytically.
fn add_coulomb(ev: &mut Eval, dens: f64, temp: f64, abar: f64, zbar: f64) {
    const E2: f64 = 2.3070775e-19; // e² in CGS (esu²)
    const A: f64 = -0.897744;
    const B: f64 = 0.95043;
    const C: f64 = 0.18956;
    const D: f64 = -0.81487;

    let n_ion = dens * N_A / abar;
    let a_ion = (3.0 / (4.0 * std::f64::consts::PI * n_ion)).cbrt();
    let kt = K_B * temp;
    let gamma = zbar * zbar * E2 / (a_ion * kt);
    if !(gamma.is_finite() && gamma > 0.0) {
        return;
    }

    // u = U/(N kT) and Γ·du/dΓ. Branches cross at Γ ≈ 0.1821.
    const GAMMA_SWITCH: f64 = 0.18214891338532474;
    let (u, gdudg) = if gamma < GAMMA_SWITCH {
        let u = -0.75f64.sqrt() * gamma.powf(1.5);
        (u, 1.5 * u)
    } else {
        let u = A * gamma + B * gamma.powf(0.25) + C * gamma.powf(-0.25) + D;
        let g = A * gamma + 0.25 * B * gamma.powf(0.25) - 0.25 * C * gamma.powf(-0.25);
        (u, g)
    };

    let nkt = n_ion * kt;
    let p_c = nkt * u / 3.0;
    // FLASH-style "bomb-proofing", smoothed: when the Coulomb term grows
    // toward ~10% of the total pressure the fluid OCP fit is leaving its
    // regime (solid carbon at low T, Γ ≫ Γ_melt), so the correction is
    // tapered off. A *smooth* taper (rather than FLASH's hard cutoff)
    // keeps e(T) and P(T) continuous so the Newton inversions stay well
    // posed. In the regimes the supernova application visits the taper is
    // ≈1 and the correction is a small negative term.
    let ratio = p_c.abs() / (0.1 * ev.pres).max(f64::MIN_POSITIVE);
    let taper = 1.0 / (1.0 + ratio * ratio * ratio * ratio);
    let p_c = p_c * taper;
    let u = u * taper;
    let gdudg = gdudg * taper;
    ev.pres += p_c;
    ev.eint += nkt * u / dens;
    // Γ ∝ T⁻¹ at fixed ρ: d(nkT·u)/dT = n k (u + T du/dT) = n k (u − Γu').
    ev.cv += n_ion * K_B * (u - gdudg) / dens;
    ev.dpdt += n_ion * K_B * (u - gdudg) / 3.0;
    // Γ ∝ ρ^{1/3} at fixed T: dP_C/dρ = (P_C/ρ)(1 + (1/3)Γu'/u) — expand:
    // P_C = (kT/3)(N_A/abar)ρ·u(Γ(ρ)), dP_C/dρ = (P_C/ρ) + (kT N_A/3abar)·(Γu')/3.
    ev.dpdr += p_c / dens + kt * N_A / (3.0 * abar) * gdudg / 3.0;
}

/// Sackur–Tetrode specific entropy for the ideal ion gas, erg/(g·K).
fn sackur_tetrode(dens: f64, temp: f64, abar: f64) -> f64 {
    let m_ion = abar / N_A; // grams per ion
    let n_ion = dens * N_A / abar; // cm⁻³
    let n_q = (2.0 * std::f64::consts::PI * m_ion * K_B * temp / (H_PLANCK * H_PLANCK)).powf(1.5);
    (N_A * K_B / abar) * ((n_q / n_ion).max(f64::MIN_POSITIVE).ln() + 2.5)
}

impl Eos for Helmholtz {
    fn call(&self, mode: EosMode, s: &mut EosState) -> Result<(), EosError> {
        if !(s.dens.is_finite() && s.dens > 0.0) {
            return Err(EosError::BadInput {
                what: "dens",
                value: s.dens,
            });
        }
        if !(s.abar > 0.0 && s.zbar > 0.0) {
            return Err(EosError::BadInput {
                what: "abar/zbar",
                value: s.abar,
            });
        }
        match mode {
            EosMode::DensTemp => {
                let ev = self.evaluate(s.dens, s.temp, s.abar, s.zbar)?;
                self.apply(s, ev);
            }
            EosMode::DensEi => {
                let goal = s.eint;
                if goal.is_nan() || goal <= 0.0 {
                    return Err(EosError::BadInput {
                        what: "eint",
                        value: goal,
                    });
                }
                let (t, ev) = self.invert(s, goal, "DensEi", |ev| (ev.eint, ev.cv))?;
                s.temp = t;
                self.apply(s, ev);
                s.eint = goal; // preserve the conserved quantity exactly
                s.finish_derived();
            }
            EosMode::DensPres => {
                let goal = s.pres;
                if goal.is_nan() || goal <= 0.0 {
                    return Err(EosError::BadInput {
                        what: "pres",
                        value: goal,
                    });
                }
                let (t, ev) = self.invert(s, goal, "DensPres", |ev| (ev.pres, ev.dpdt))?;
                s.temp = t;
                self.apply(s, ev);
                s.pres = goal;
                s.finish_derived();
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "helmholtz"
    }

    /// Vectorized batch path: table gather + bicubic evaluation run as
    /// explicit lane loops over the whole batch; `DensEi`/`DensPres` lanes
    /// that do not hit the clean convergence exit stay in the compacted
    /// masked re-iteration and are resolved by the scalar path's
    /// residual-plateau criterion. Outputs are bit-identical to per-zone
    /// [`Eos::call`] on every lane (see [`crate::batch`] for the contract,
    /// `invert_lanes` for why).
    fn eos_batch(&self, mode: EosMode, b: &mut EosBatch<'_>) -> Result<BatchReport, EosError> {
        let lanes = b.lanes();
        if lanes == 0 {
            return Ok(BatchReport::default());
        }
        // Per-lane validation in the scalar path's order, so the first bad
        // lane produces the same error `call` would.
        for l in 0..lanes {
            if !(b.dens[l].is_finite() && b.dens[l] > 0.0) {
                return Err(EosError::BadInput {
                    what: "dens",
                    value: b.dens[l],
                });
            }
            if !(b.abar[l] > 0.0 && b.zbar[l] > 0.0) {
                return Err(EosError::BadInput {
                    what: "abar/zbar",
                    value: b.abar[l],
                });
            }
            match mode {
                EosMode::DensTemp => {}
                EosMode::DensEi => {
                    if b.eint[l].is_nan() || b.eint[l] <= 0.0 {
                        return Err(EosError::BadInput {
                            what: "eint",
                            value: b.eint[l],
                        });
                    }
                }
                EosMode::DensPres => {
                    if b.pres[l].is_nan() || b.pres[l] <= 0.0 {
                        return Err(EosError::BadInput {
                            what: "pres",
                            value: b.pres[l],
                        });
                    }
                }
            }
        }

        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            if let EosMode::DensTemp = mode {
                // Direct evaluation: batch the interpolation, then the
                // additive components, exactly as `call` + `apply` would.
                sc.c_rho.clear();
                sc.c_rho.resize(lanes, 0.0);
                for l in 0..lanes {
                    sc.c_rho[l] = b.dens[l] * b.zbar[l] / b.abar[l];
                }
                sc.c_ele.clear();
                sc.c_ele.resize(lanes, ElecPoint::default());
                self.table
                    .interp_lanes(self.simd, &sc.c_rho, &*b.temp, &mut sc.c_ele)?;
                for l in 0..lanes {
                    let ev = self.assemble(sc.c_ele[l], b.dens[l], b.temp[l], b.abar[l], b.zbar[l]);
                    b.pres[l] = ev.pres;
                    b.eint[l] = ev.eint;
                    let chi =
                        ev.dpdr + b.temp[l] * ev.dpdt * ev.dpdt / (b.dens[l] * b.dens[l] * ev.cv);
                    b.gamc[l] = (chi * b.dens[l] / ev.pres).max(1.01);
                    b.game[l] =
                        1.0 + ev.pres / (b.dens[l] * ev.eint).max(f64::MIN_POSITIVE);
                }
                return Ok(BatchReport {
                    lanes: lanes as u64,
                    vector_lanes: lanes as u64,
                    ..Default::default()
                });
            }

            sc.goal.clear();
            match mode {
                EosMode::DensEi => sc.goal.extend_from_slice(b.eint),
                EosMode::DensPres => sc.goal.extend_from_slice(b.pres),
                // DensTemp returned above — this arm is statically unreachable.
                EosMode::DensTemp => unreachable!(),
            }
            let iter_hist = {
                // Split the borrow: invert_lanes mutates the solver fields
                // while reading the batch's input lanes.
                let (dens, abar, zbar, temp) = (&*b.dens, &*b.abar, &*b.zbar, &*b.temp);
                match mode {
                    EosMode::DensEi => self.invert_lanes(sc, "DensEi", dens, abar, zbar, temp, |ev| {
                        (ev.eint, ev.cv)
                    })?,
                    _ => self.invert_lanes(sc, "DensPres", dens, abar, zbar, temp, |ev| {
                        (ev.pres, ev.dpdt)
                    })?,
                }
            };

            // Every lane is now LANE_VECTOR or LANE_PLATEAU (a failed
            // plateau check returned the scalar path's error above); both
            // share the output tail because the scalar `invert` returns its
            // plateau best point through the identical `Ok` path.
            let mut vector_lanes = 0u64;
            let mut plateau_lanes = 0u64;
            for l in 0..lanes {
                if sc.status[l] == LANE_VECTOR {
                    vector_lanes += 1;
                } else {
                    plateau_lanes += 1;
                }
                let ev = sc.ev_sol[l];
                let t = sc.t_sol[l];
                // Replicates `call`'s tail: temp = t, apply(), goal
                // restored, finish_derived() — same expressions in the
                // same order, so each output is bit-identical.
                let chi = ev.dpdr + t * ev.dpdt * ev.dpdt / (b.dens[l] * b.dens[l] * ev.cv);
                b.temp[l] = t;
                b.gamc[l] = (chi * b.dens[l] / ev.pres).max(1.01);
                match mode {
                    EosMode::DensEi => {
                        b.pres[l] = ev.pres;
                        // eint stays the conserved goal.
                        b.game[l] =
                            1.0 + ev.pres / (b.dens[l] * sc.goal[l]).max(f64::MIN_POSITIVE);
                    }
                    _ => {
                        b.eint[l] = ev.eint;
                        // pres stays the goal.
                        b.game[l] =
                            1.0 + sc.goal[l] / (b.dens[l] * ev.eint).max(f64::MIN_POSITIVE);
                    }
                }
            }
            Ok(BatchReport {
                lanes: lanes as u64,
                vector_lanes,
                plateau_lanes,
                iter_hist,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::electron::cold_pressure;
    use rflash_hugepages::Policy;
    use std::sync::OnceLock;

    /// Build the (coarse) test table once for the whole module.
    fn eos() -> &'static Helmholtz {
        static EOS: OnceLock<Helmholtz> = OnceLock::new();
        EOS.get_or_init(|| Helmholtz::build(TableConfig::coarse(), Policy::None).unwrap())
    }

    #[test]
    fn ideal_regime_matches_two_ideal_gases() {
        // Warm, dilute hydrogen-like matter: ions + electrons, each n k T.
        let mut s = EosState {
            abar: 1.0,
            zbar: 1.0,
            ..EosState::co_wd(1e-3, 1e6)
        };
        eos().call(EosMode::DensTemp, &mut s).unwrap();
        let nkt = s.dens * N_A * K_B * s.temp / s.abar;
        assert!(
            (s.pres - 2.0 * nkt).abs() / (2.0 * nkt) < 0.05,
            "P={:e} 2nkT={:e}",
            s.pres,
            2.0 * nkt
        );
    }

    #[test]
    fn wd_core_is_degeneracy_dominated() {
        let mut s = EosState::co_wd(2e9, 5e7);
        eos().call(EosMode::DensTemp, &mut s).unwrap();
        let cold = cold_pressure(s.dens * s.ye() * N_A);
        assert!(
            (s.pres - cold).abs() / cold < 0.05,
            "P={:e} cold={cold:e}",
            s.pres
        );
        // Γ₁ between 4/3 (relativistic) and 5/3.
        assert!(s.gamc > 1.3 && s.gamc < 1.7, "gamc={}", s.gamc);
        // Sound speed below c.
        assert!(s.cs < 3e10);
    }

    #[test]
    fn radiation_dominated_gamma_is_four_thirds() {
        // 1e8 K: hot enough for radiation to dwarf the dilute matter,
        // cool enough that e± pair creation (which physically drives
        // gamma_1 below 4/3, the pair-instability effect) is absent.
        let mut s = EosState::co_wd(2e-4, 1e8);
        eos().call(EosMode::DensTemp, &mut s).unwrap();
        let prad = A_RAD * s.temp.powi(4) / 3.0;
        assert!(prad / s.pres > 0.9, "radiation fraction {}", prad / s.pres);
        assert!((s.gamc - 4.0 / 3.0).abs() < 0.05, "gamc={}", s.gamc);
    }

    #[test]
    fn pair_creation_region_softens_gamma() {
        // The physical counterpart of the case above: at 1e9 K and low
        // density, pair creation acts like an ionization zone and drives
        // gamma_1 below 4/3 (pair instability).
        let mut s = EosState::co_wd(2e-4, 1e9);
        eos().call(EosMode::DensTemp, &mut s).unwrap();
        assert!(s.gamc < 4.0 / 3.0, "gamc={}", s.gamc);
        assert!(s.gamc > 1.0);
    }

    #[test]
    fn dens_ei_round_trip() {
        for (dens, temp) in [(1e7, 1e8), (2e9, 5e7), (1e5, 3e9), (1e2, 1e7)] {
            let mut s = EosState::co_wd(dens, temp);
            eos().call(EosMode::DensTemp, &mut s).unwrap();
            let t_true = s.temp;
            s.temp = 1e6; // bad guess
            eos().call(EosMode::DensEi, &mut s).unwrap();
            assert!(
                (s.temp - t_true).abs() / t_true < 1e-6,
                "dens={dens:e}: T={:e} vs {t_true:e}",
                s.temp
            );
        }
    }

    #[test]
    fn dens_pres_round_trip() {
        for (dens, temp) in [(1e7, 1e8), (1e3, 1e8)] {
            let mut s = EosState::co_wd(dens, temp);
            eos().call(EosMode::DensTemp, &mut s).unwrap();
            let t_true = s.temp;
            s.temp = 1e9;
            eos().call(EosMode::DensPres, &mut s).unwrap();
            assert!(
                (s.temp - t_true).abs() / t_true < 1e-5,
                "dens={dens:e}: T={:e} vs {t_true:e}",
                s.temp
            );
        }
    }

    #[test]
    fn degenerate_pressure_insensitive_to_temperature() {
        // The WD-core property that makes thermonuclear runaways possible:
        // heating barely changes pressure.
        let mut cold = EosState::co_wd(2e9, 1e7);
        eos().call(EosMode::DensTemp, &mut cold).unwrap();
        let mut hot = EosState::co_wd(2e9, 1e9);
        eos().call(EosMode::DensTemp, &mut hot).unwrap();
        assert!(
            (hot.pres - cold.pres) / cold.pres < 0.05,
            "ΔP/P = {}",
            (hot.pres - cold.pres) / cold.pres
        );
    }

    #[test]
    fn cv_positive_and_entropy_rises_with_t() {
        let mut a = EosState::co_wd(1e6, 1e7);
        eos().call(EosMode::DensTemp, &mut a).unwrap();
        let mut b = EosState::co_wd(1e6, 1e9);
        eos().call(EosMode::DensTemp, &mut b).unwrap();
        assert!(a.cv > 0.0 && b.cv > 0.0);
        assert!(b.entr > a.entr);
        assert!(b.eint > a.eint);
    }

    #[test]
    fn bad_inputs_and_domain() {
        let mut s = EosState::co_wd(-1.0, 1e7);
        assert!(matches!(
            eos().call(EosMode::DensTemp, &mut s),
            Err(EosError::BadInput { .. })
        ));
        let mut s = EosState::co_wd(1e20, 1e7); // above table domain
        assert!(matches!(
            eos().call(EosMode::DensTemp, &mut s),
            Err(EosError::OutOfRange { .. })
        ));
    }

    #[test]
    fn name_is_helmholtz() {
        assert_eq!(eos().name(), "helmholtz");
    }

    /// Drive `eos_batch` and per-zone `call` over the same seeded lanes and
    /// demand bit-exact agreement on every output, every lane, every mode.
    #[test]
    fn batched_lanes_are_bit_exact_vs_scalar() {
        let h = eos();
        // Seeded (dens, temp) grid spanning degenerate, ideal, radiation-
        // and pair-dominated corners; abar/zbar alternate between CO and
        // helium-like compositions.
        let mut dens = Vec::new();
        let mut temp0 = Vec::new();
        let mut abar = Vec::new();
        let mut zbar = Vec::new();
        let mut eint = Vec::new();
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..48 {
            let d = 10f64.powf(-3.0 + 12.0 * next());
            let t = 10f64.powf(4.0 + 5.5 * next());
            let (a, z) = if i % 3 == 0 { (4.0, 2.0) } else { (13.714285714285715, 6.857142857142857) };
            let mut s = EosState { abar: a, zbar: z, ..EosState::co_wd(d, t) };
            if h.call(EosMode::DensTemp, &mut s).is_err() {
                continue;
            }
            dens.push(d);
            temp0.push(t);
            abar.push(a);
            zbar.push(z);
            // Perturbed goals: convergent lanes, plus non-converging lanes
            // (goal far below the table's representable floor -> the scalar
            // path only plateaus edge-pinned, i.e. the batch must resolve
            // them through its masked plateau acceptance).
            let scale = match i % 4 {
                0 => 1.0 + 0.3 * next(),
                1 => 0.7,
                2 => 1e-8, // below the table floor: edge-pinned plateau lane
                _ => 3.0,
            };
            eint.push(s.eint * scale);
        }
        let n = dens.len();
        assert!(n > 30, "grid should mostly be in-domain, got {n}");

        // Scalar reference, lane by lane (guess intentionally off).
        let mut scalar = Vec::new();
        for l in 0..n {
            let mut s = EosState {
                abar: abar[l],
                zbar: zbar[l],
                ..EosState::co_wd(dens[l], 3e7)
            };
            s.eint = eint[l];
            let r = h.call(EosMode::DensEi, &mut s);
            scalar.push(r.map(|_| s));
        }

        // Batched, all lanes at once (same guess).
        let mut b_eint = eint.clone();
        let mut b_temp = vec![3e7; n];
        let mut b_pres = vec![0.0; n];
        let mut b_gamc = vec![0.0; n];
        let mut b_game = vec![0.0; n];
        let mut b = EosBatch {
            dens: &dens,
            eint: &mut b_eint,
            temp: &mut b_temp,
            abar: &abar,
            zbar: &zbar,
            pres: &mut b_pres,
            gamc: &mut b_gamc,
            game: &mut b_game,
        };
        match h.eos_batch(EosMode::DensEi, &mut b) {
            Ok(report) => {
                assert_eq!(report.lanes, n as u64);
                // The seeded grid must exercise BOTH exits: mostly clean
                // Newton lanes and plateau-accepted lanes.
                assert!(report.vector_lanes > 0, "no lane took the vector path");
                assert!(
                    report.plateau_lanes > 0,
                    "no lane exercised the plateau acceptance"
                );
                assert_eq!(
                    report.vector_lanes + report.plateau_lanes,
                    n as u64,
                    "every lane is clean-converged or plateau-accepted"
                );
                // Occupancy decay: everyone enters iteration 0; some lanes
                // survive into later iterations.
                assert_eq!(report.iter_hist[0], n as u64);
                assert!(report.iter_hist[1] > 0, "no lane iterated twice");
                assert!(
                    report.iter_hist[1] <= report.iter_hist[0],
                    "active-lane count must decay"
                );
                for l in 0..n {
                    let s = scalar[l].as_ref().unwrap_or_else(|e| {
                        panic!("scalar lane {l} failed ({e}) but batch succeeded")
                    });
                    assert_eq!(b_temp[l], s.temp, "lane {l} temp");
                    assert_eq!(b_pres[l], s.pres, "lane {l} pres");
                    assert_eq!(b_eint[l], s.eint, "lane {l} eint");
                    assert_eq!(b_gamc[l], s.gamc, "lane {l} gamc");
                    assert_eq!(b_game[l], s.game, "lane {l} game");
                }
            }
            Err(e) => {
                // Contract: the batch errors iff some lane's scalar solve
                // errors (first such lane wins).
                assert!(
                    scalar.iter().any(|r| r.is_err()),
                    "batch failed ({e}) but every scalar lane succeeded"
                );
            }
        }
    }

    #[test]
    fn batched_dens_temp_is_bit_exact_vs_scalar() {
        let h = eos();
        let dens = [1e-3, 1e2, 1e5, 2e9, 1e7];
        let mut temp = [1e6, 1e7, 3e9, 5e7, 1e8];
        let n = dens.len();
        let abar = [13.714285714285715; 5];
        let zbar = [6.857142857142857; 5];
        let mut eint = [0.0; 5];
        let mut pres = [0.0; 5];
        let mut gamc = [0.0; 5];
        let mut game = [0.0; 5];
        let temp_in = temp;
        let mut b = EosBatch {
            dens: &dens,
            eint: &mut eint,
            temp: &mut temp,
            abar: &abar,
            zbar: &zbar,
            pres: &mut pres,
            gamc: &mut gamc,
            game: &mut game,
        };
        let report = h.eos_batch(EosMode::DensTemp, &mut b).unwrap();
        assert_eq!(report.vector_lanes, n as u64, "DensTemp is all-vector");
        for l in 0..n {
            let mut s = EosState::co_wd(dens[l], temp_in[l]);
            h.call(EosMode::DensTemp, &mut s).unwrap();
            assert_eq!(pres[l], s.pres, "lane {l} pres");
            assert_eq!(eint[l], s.eint, "lane {l} eint");
            assert_eq!(gamc[l], s.gamc, "lane {l} gamc");
            assert_eq!(game[l], s.game, "lane {l} game");
        }
    }

    #[test]
    fn batched_dens_pres_round_trips() {
        let h = eos();
        let dens = [1e7, 1e3];
        let mut s0 = EosState::co_wd(dens[0], 1e8);
        h.call(EosMode::DensTemp, &mut s0).unwrap();
        let mut s1 = EosState::co_wd(dens[1], 1e8);
        h.call(EosMode::DensTemp, &mut s1).unwrap();
        let mut pres = [s0.pres, s1.pres];
        let mut temp = [1e9, 1e9];
        let mut eint = [0.0, 0.0];
        let abar = [13.714285714285715; 2];
        let zbar = [6.857142857142857; 2];
        let mut gamc = [0.0; 2];
        let mut game = [0.0; 2];
        let mut b = EosBatch {
            dens: &dens,
            eint: &mut eint,
            temp: &mut temp,
            abar: &abar,
            zbar: &zbar,
            pres: &mut pres,
            gamc: &mut gamc,
            game: &mut game,
        };
        h.eos_batch(EosMode::DensPres, &mut b).unwrap();
        for (l, want) in [(0usize, 1e8f64), (1, 1e8)] {
            assert!(
                (temp[l] - want).abs() / want < 1e-5,
                "lane {l}: T={:e}",
                temp[l]
            );
        }
    }
}

#[cfg(test)]
mod coulomb_tests {
    use super::*;
    use rflash_hugepages::Policy;
    use std::sync::OnceLock;

    fn pair() -> &'static (Helmholtz, Helmholtz) {
        static EOS: OnceLock<(Helmholtz, Helmholtz)> = OnceLock::new();
        EOS.get_or_init(|| {
            let mut with = Helmholtz::build(TableConfig::coarse(), Policy::None).unwrap();
            with.include_coulomb = true;
            let without = Helmholtz::build(TableConfig::coarse(), Policy::None).unwrap();
            (with, without)
        })
    }

    #[test]
    fn coulomb_correction_is_negative_and_small_at_wd_core() {
        let (with, without) = pair();
        let mut a = EosState::co_wd(2e9, 5e7);
        with.call(EosMode::DensTemp, &mut a).unwrap();
        let mut b = EosState::co_wd(2e9, 5e7);
        without.call(EosMode::DensTemp, &mut b).unwrap();
        // Binding lowers both pressure and energy…
        assert!(a.pres < b.pres);
        assert!(a.eint < b.eint);
        // …by a small fraction of the (degeneracy-dominated) total.
        let dp = (b.pres - a.pres) / b.pres;
        assert!(dp > 1e-5 && dp < 0.05, "ΔP/P = {dp}");
    }

    #[test]
    fn coulomb_negligible_when_weakly_coupled() {
        // Hot and dilute: Γ ≪ 1, the correction must all but vanish.
        let (with, without) = pair();
        let mut a = EosState::co_wd(1.0, 1e9);
        with.call(EosMode::DensTemp, &mut a).unwrap();
        let mut b = EosState::co_wd(1.0, 1e9);
        without.call(EosMode::DensTemp, &mut b).unwrap();
        assert!(((b.pres - a.pres) / b.pres).abs() < 1e-4);
    }

    #[test]
    fn coulomb_branch_is_continuous_at_the_switch() {
        // The switch point is the crossing of the two fits, so u(Γ) is
        // continuous there to rounding.
        let g = 0.18214891338532474f64;
        let dh = -0.75f64.sqrt() * g.powf(1.5);
        let ocp = -0.897744 * g + 0.95043 * g.powf(0.25) + 0.18956 * g.powf(-0.25) - 0.81487;
        assert!((dh - ocp).abs() < 1e-12, "branch mismatch: {dh} vs {ocp}");
    }

    #[test]
    fn coulomb_pressure_is_continuous_across_the_switch() {
        // Vary density through the Γ-switch at fixed T and check P(ρ) has
        // no visible jump (successive relative steps stay smooth).
        let (with, _) = pair();
        let mut prev: Option<f64> = None;
        for i in 0..40 {
            let dens = 10f64.powf(-2.0 + i as f64 * 0.1);
            let mut s = EosState::co_wd(dens, 1e7);
            with.call(EosMode::DensTemp, &mut s).unwrap();
            if let Some(p_prev) = prev {
                let step = s.pres / p_prev;
                assert!(step > 1.0 && step < 4.0, "P jump at dens={dens:e}: ×{step}");
            }
            prev = Some(s.pres);
        }
    }

    #[test]
    fn inversions_still_round_trip_with_coulomb() {
        let (with, _) = pair();
        let mut s = EosState::co_wd(2e9, 5e7);
        with.call(EosMode::DensTemp, &mut s).unwrap();
        let t_true = s.temp;
        s.temp = 1e9;
        with.call(EosMode::DensEi, &mut s).unwrap();
        assert!((s.temp - t_true).abs() / t_true < 1e-5, "{:e}", s.temp);
    }
}
