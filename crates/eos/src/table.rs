//! The tabulated electron/positron EOS.
//!
//! FLASH's Helmholtz EOS interpolates a pre-computed table instead of
//! solving the Fermi–Dirac system per zone — that table (a few MB, accessed
//! by data-dependent indices from every zone of every block) is the main
//! DTLB-pressure source of the paper's "EOS" experiment. We build the table
//! from the exact [`crate::electron`] physics at startup and store it in a
//! [`PageBuffer`] so its memory backing follows the huge-page policy.
//!
//! Layout mirrors FLASH's `helm_table.dat` structure: separate planes per
//! quantity and derivative (value, ∂/∂x, ∂/∂y, ∂²/∂x∂y for each of log P,
//! log E, log S), so one interpolation gathers 48 doubles scattered over
//! 12 planes — the access signature the TLB model replays.

use rflash_hugepages::{PageBuffer, Policy};
use rflash_simd::{Lane, Resolved, WithLanes};
use serde::{Deserialize, Serialize};

use crate::electron::electron_state_with_guess;
use crate::EosError;

/// Quantities stored in the table (log10 of each).
const N_QUANT: usize = 3; // p, e, s
/// Derivative planes per quantity: value, d/dx, d/dy, d²/dxdy.
const N_DERIV: usize = 4;

/// Table geometry and domain.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TableConfig {
    /// Grid points along log10(ρYₑ).
    pub n_rho: usize,
    /// Grid points along log10(T).
    pub n_temp: usize,
    /// log10(ρYₑ) domain, g/cm³.
    pub log_rho_ye: (f64, f64),
    /// log10(T) domain, K.
    pub log_temp: (f64, f64),
}

impl Default for TableConfig {
    /// Production default: spans white-dwarf conditions with FLASH-like
    /// resolution (≈ 0.05 dex in density, 0.08 dex in temperature).
    fn default() -> Self {
        TableConfig {
            n_rho: 241,
            n_temp: 101,
            log_rho_ye: (-4.0, 10.0),
            log_temp: (3.5, 11.5),
        }
    }
}

impl TableConfig {
    /// A coarse table for fast construction in tests/examples.
    pub fn coarse() -> TableConfig {
        TableConfig {
            n_rho: 41,
            n_temp: 33,
            ..TableConfig::default()
        }
    }
}

/// Interpolated electron-gas quantities at one (ρYₑ, T) point.
///
/// Derivative slopes are logarithmic: `dlnp_dlnr` = ∂lnP/∂ln(ρYₑ) at fixed
/// T, `dlnp_dlnt` = ∂lnP/∂lnT at fixed ρYₑ; likewise for energy.
#[derive(Clone, Copy, Debug, Default)]
pub struct ElecPoint {
    /// Pressure, erg/cm³.
    pub pres: f64,
    /// Energy density, erg/cm³.
    pub ener: f64,
    /// Entropy density, erg/(cm³·K).
    pub entr: f64,
    pub dlnp_dlnr: f64,
    pub dlnp_dlnt: f64,
    pub dlne_dlnr: f64,
    pub dlne_dlnt: f64,
}

/// The tabulated electron/positron EOS.
pub struct HelmTable {
    config: TableConfig,
    /// 12 planes of n_temp × n_rho doubles, plane-major:
    /// `data[((q*N_DERIV + d) * n_temp + it) * n_rho + ir]`.
    data: PageBuffer<f64>,
    dx: f64, // log10 rho_ye spacing
    dy: f64, // log10 T spacing
}

impl HelmTable {
    /// Build the table by solving the exact electron gas at every node.
    pub fn build(config: TableConfig, policy: Policy) -> Result<HelmTable, EosError> {
        assert!(config.n_rho >= 4 && config.n_temp >= 4, "table too small");
        let (x0, x1) = config.log_rho_ye;
        let (y0, y1) = config.log_temp;
        assert!(x1 > x0 && y1 > y0, "degenerate table domain");
        let dx = (x1 - x0) / (config.n_rho - 1) as f64;
        let dy = (y1 - y0) / (config.n_temp - 1) as f64;

        let plane = config.n_rho * config.n_temp;
        let mut data = PageBuffer::<f64>::zeroed(plane * N_QUANT * N_DERIV, policy)
            .map_err(|e| EosError::Allocation {
                what: "helm table",
                detail: e.to_string(),
            })?;

        // Pass 1: values (log10 of p, e, s) at every node, warm-starting the
        // η solve along each density sweep.
        for it in 0..config.n_temp {
            let temp = 10f64.powf(y0 + it as f64 * dy);
            let mut eta_guess = None;
            for ir in 0..config.n_rho {
                let rho_ye = 10f64.powf(x0 + ir as f64 * dx);
                let st = electron_state_with_guess(rho_ye, temp, eta_guess)?;
                eta_guess = Some(st.eta);
                let node = it * config.n_rho + ir;
                data[Self::index_of(config, 0, 0, node)] = st.pres.log10();
                data[Self::index_of(config, 1, 0, node)] = st.ener.log10();
                data[Self::index_of(config, 2, 0, node)] = st.entr.max(1e-300).log10();
            }
        }

        // Pass 2: finite-difference derivative planes from the value planes.
        for q in 0..N_QUANT {
            Self::fill_derivatives(config, &mut data, q, dx, dy);
        }

        Ok(HelmTable {
            config,
            data,
            dx,
            dy,
        })
    }

    #[inline]
    fn index_of(config: TableConfig, q: usize, d: usize, node: usize) -> usize {
        ((q * N_DERIV + d) * config.n_temp * config.n_rho) + node
    }

    fn fill_derivatives(config: TableConfig, data: &mut PageBuffer<f64>, q: usize, dx: f64, dy: f64) {
        let nr = config.n_rho;
        let nt = config.n_temp;
        let val = |data: &PageBuffer<f64>, it: usize, ir: usize| {
            data[Self::index_of(config, q, 0, it * nr + ir)]
        };
        // Fritsch–Carlson limiting: log P, log E, log S are physically
        // non-decreasing in both log ρYₑ and log T, and a cubic Hermite
        // stays monotone when each node slope is within [0, 3·min(adjacent
        // secants)]. Unlimited central differences overshoot at the sharp
        // pair-creation/degeneracy transitions, producing non-monotone
        // interpolants that break the Newton inversions.
        let limit = |d: f64, sec_lo: Option<f64>, sec_hi: Option<f64>| -> f64 {
            let cap = 3.0
                * sec_lo
                    .unwrap_or(f64::INFINITY)
                    .min(sec_hi.unwrap_or(f64::INFINITY))
                    .max(0.0);
            d.clamp(0.0, cap)
        };
        // d/dx (density direction), one-sided at edges.
        for it in 0..nt {
            for ir in 0..nr {
                let sec_lo = (ir > 0).then(|| (val(data, it, ir) - val(data, it, ir - 1)) / dx);
                let sec_hi =
                    (ir + 1 < nr).then(|| (val(data, it, ir + 1) - val(data, it, ir)) / dx);
                let d = match (sec_lo, sec_hi) {
                    (Some(a), Some(b)) => 0.5 * (a + b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => 0.0,
                };
                data[Self::index_of(config, q, 1, it * nr + ir)] = limit(d, sec_lo, sec_hi);
            }
        }
        // d/dy (temperature direction).
        for it in 0..nt {
            for ir in 0..nr {
                let sec_lo = (it > 0).then(|| (val(data, it, ir) - val(data, it - 1, ir)) / dy);
                let sec_hi =
                    (it + 1 < nt).then(|| (val(data, it + 1, ir) - val(data, it, ir)) / dy);
                let d = match (sec_lo, sec_hi) {
                    (Some(a), Some(b)) => 0.5 * (a + b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => 0.0,
                };
                data[Self::index_of(config, q, 2, it * nr + ir)] = limit(d, sec_lo, sec_hi);
            }
        }
        // d²/dxdy from the d/dx plane differentiated in y.
        let dvx = |data: &PageBuffer<f64>, it: usize, ir: usize| {
            data[Self::index_of(config, q, 1, it * nr + ir)]
        };
        for it in 0..nt {
            for ir in 0..nr {
                let d = if it == 0 {
                    (dvx(data, 1, ir) - dvx(data, 0, ir)) / dy
                } else if it == nt - 1 {
                    (dvx(data, nt - 1, ir) - dvx(data, nt - 2, ir)) / dy
                } else {
                    (dvx(data, it + 1, ir) - dvx(data, it - 1, ir)) / (2.0 * dy)
                };
                data[Self::index_of(config, q, 3, it * nr + ir)] = d;
            }
        }
    }

    /// Table configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Base address of the underlying buffer (for TLB-model registration).
    pub fn base_addr(&self) -> usize {
        self.data.base_addr()
    }

    /// Size of the underlying buffer in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// How the kernel actually backs the table.
    pub fn backing_report(&self) -> rflash_hugepages::BackingReport {
        self.data.backing_report()
    }

    /// Domain check + cell/fraction location for a (ρYₑ, T) pair.
    #[inline]
    fn locate(&self, rho_ye: f64, temp: f64) -> Result<(usize, usize, f64, f64), EosError> {
        let x = rho_ye.log10();
        let y = temp.log10();
        let (x0, x1) = self.config.log_rho_ye;
        let (y0, y1) = self.config.log_temp;
        if !(x >= x0 && x <= x1) {
            return Err(EosError::OutOfRange {
                what: "log10(rho*Ye)",
                value: x,
                lo: x0,
                hi: x1,
            });
        }
        if !(y >= y0 && y <= y1) {
            return Err(EosError::OutOfRange {
                what: "log10(T)",
                value: y,
                lo: y0,
                hi: y1,
            });
        }
        let fx = (x - x0) / self.dx;
        let fy = (y - y0) / self.dy;
        let ir = (fx as usize).min(self.config.n_rho - 2);
        let it = (fy as usize).min(self.config.n_temp - 2);
        Ok((ir, it, fx - ir as f64, fy - it as f64))
    }

    /// Interpolate the electron gas at (ρYₑ [g/cm³], T \[K\]).
    pub fn interp(&self, rho_ye: f64, temp: f64) -> Result<ElecPoint, EosError> {
        let (ir, it, tx, ty) = self.locate(rho_ye, temp)?;
        Ok(self.interp_located(ir, it, tx, ty))
    }

    /// Interpolate a whole batch of (ρYₑ, T) lanes under the given SIMD
    /// backend: cells are located per lane (scalar, data-dependent), then the
    /// Hermite basis and the 48-gather bicubic accumulation run as explicit
    /// `W`-wide lane ops — the batched table path of the vectorized Helmholtz
    /// EOS. Every backend is bit-identical to [`Self::interp`] (same op
    /// order, no contractions; the final `10^x` runs per lane through the
    /// identical scalar `powf`). The first out-of-domain lane aborts the
    /// batch.
    pub fn interp_lanes(
        &self,
        simd: Resolved,
        rho_ye: &[f64],
        temp: &[f64],
        out: &mut [ElecPoint],
    ) -> Result<(), EosError> {
        debug_assert!(rho_ye.len() == temp.len() && rho_ye.len() == out.len());
        rflash_simd::dispatch(
            simd,
            InterpLanes {
                table: self,
                rho_ye,
                temp,
                out,
            },
        )
    }

    /// The bicubic Hermite kernel at an already-located cell; shared by the
    /// scalar and batched interpolation paths so both are bit-identical.
    #[inline]
    fn interp_located(&self, ir: usize, it: usize, tx: f64, ty: f64) -> ElecPoint {
        let nr = self.config.n_rho;
        let corners = [
            it * nr + ir,
            it * nr + ir + 1,
            (it + 1) * nr + ir,
            (it + 1) * nr + ir + 1,
        ];

        // Hermite basis in each direction.
        let hx = hermite_basis(tx);
        let hy = hermite_basis(ty);

        let mut out = [0.0f64; N_QUANT]; // interpolated log10 values
        let mut out_dx = [0.0f64; N_QUANT]; // d(log10 v)/d(log10 rho)
        let mut out_dy = [0.0f64; N_QUANT];
        let dhx = hermite_basis_deriv(tx);
        let dhy = hermite_basis_deriv(ty);

        for q in 0..N_QUANT {
            // Gather the 16 Hermite coefficients: v, vx, vy, vxy at 4 corners.
            let mut acc = 0.0;
            let mut acc_dx = 0.0;
            let mut acc_dy = 0.0;
            for (c, &node) in corners.iter().enumerate() {
                let cx = c % 2; // 0: left corner in x, 1: right
                let cy = c / 2;
                let v = self.data[Self::index_of(self.config, q, 0, node)];
                let vx = self.data[Self::index_of(self.config, q, 1, node)] * self.dx;
                let vy = self.data[Self::index_of(self.config, q, 2, node)] * self.dy;
                let vxy = self.data[Self::index_of(self.config, q, 3, node)] * self.dx * self.dy;
                let (bx_v, bx_d) = (hx[cx * 2], hx[cx * 2 + 1]);
                let (by_v, by_d) = (hy[cy * 2], hy[cy * 2 + 1]);
                let (dbx_v, dbx_d) = (dhx[cx * 2], dhx[cx * 2 + 1]);
                let (dby_v, dby_d) = (dhy[cy * 2], dhy[cy * 2 + 1]);
                acc += v * bx_v * by_v + vx * bx_d * by_v + vy * bx_v * by_d + vxy * bx_d * by_d;
                acc_dx += v * dbx_v * by_v
                    + vx * dbx_d * by_v
                    + vy * dbx_v * by_d
                    + vxy * dbx_d * by_d;
                acc_dy += v * bx_v * dby_v
                    + vx * bx_d * dby_v
                    + vy * bx_v * dby_d
                    + vxy * bx_d * dby_d;
            }
            out[q] = acc;
            out_dx[q] = acc_dx / self.dx; // back to per-log10(rho_ye)
            out_dy[q] = acc_dy / self.dy;
        }

        ElecPoint {
            pres: 10f64.powf(out[0]),
            ener: 10f64.powf(out[1]),
            entr: 10f64.powf(out[2]),
            // d(log10 P)/d(log10 r) equals dlnP/dlnr.
            dlnp_dlnr: out_dx[0],
            dlnp_dlnt: out_dy[0],
            dlne_dlnr: out_dx[1],
            dlne_dlnt: out_dy[1],
        }
    }

    /// Append the element indices (into the underlying buffer) that one
    /// interpolation at (ρYₑ, T) gathers — 48 scattered loads across the 12
    /// planes. Used by the harness to drive the TLB model with the real
    /// access signature.
    pub fn gather_indices(
        &self,
        rho_ye: f64,
        temp: f64,
        out: &mut Vec<usize>,
    ) -> Result<(), EosError> {
        let (ir, it, _, _) = self.locate(rho_ye, temp)?;
        let nr = self.config.n_rho;
        for q in 0..N_QUANT {
            for d in 0..N_DERIV {
                for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    out.push(Self::index_of(
                        self.config,
                        q,
                        d,
                        (it + di) * nr + ir + dj,
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Widest lane any compiled backend uses; sizes the per-chunk scratch
/// arrays of the vectorized interpolation.
const MAX_W: usize = 8;

/// The lane-dispatch visitor behind [`HelmTable::interp_lanes`].
struct InterpLanes<'a> {
    table: &'a HelmTable,
    rho_ye: &'a [f64],
    temp: &'a [f64],
    out: &'a mut [ElecPoint],
}

impl WithLanes for InterpLanes<'_> {
    type Output = Result<(), EosError>;

    #[inline(always)]
    fn with_lanes<L: Lane>(self) -> Result<(), EosError> {
        debug_assert!(L::W <= MAX_W);
        let t = self.table;
        let data = t.data.as_slice();
        let n = self.rho_ye.len();
        let mut i = 0;
        while i + L::W <= n {
            // Locate each lane (scalar: data-dependent index math and the
            // domain check, in lane order so the first bad lane errors).
            let mut txs = [0.0; MAX_W];
            let mut tys = [0.0; MAX_W];
            let mut corner = [[0usize; MAX_W]; 4];
            let nr = t.config.n_rho;
            for k in 0..L::W {
                let (ir, it, tx, ty) = t.locate(self.rho_ye[i + k], self.temp[i + k])?;
                txs[k] = tx;
                tys[k] = ty;
                corner[0][k] = it * nr + ir;
                corner[1][k] = it * nr + ir + 1;
                corner[2][k] = (it + 1) * nr + ir;
                corner[3][k] = (it + 1) * nr + ir + 1;
            }
            let (val, val_dx, val_dy) =
                interp_cell::<L>(t, data, L::load(&txs), L::load(&tys), &corner);
            for k in 0..L::W {
                self.out[i + k] = ElecPoint {
                    pres: 10f64.powf(val[0].extract(k)),
                    ener: 10f64.powf(val[1].extract(k)),
                    entr: 10f64.powf(val[2].extract(k)),
                    dlnp_dlnr: val_dx[0].extract(k),
                    dlnp_dlnt: val_dy[0].extract(k),
                    dlne_dlnr: val_dx[1].extract(k),
                    dlne_dlnt: val_dy[1].extract(k),
                };
            }
            i += L::W;
        }
        // Tail through the scalar reference kernel (bit-identical to the
        // lane kernel by the crate's contract, enforced by the tests here).
        while i < n {
            let (ir, it, tx, ty) = t.locate(self.rho_ye[i], self.temp[i])?;
            self.out[i] = t.interp_located(ir, it, tx, ty);
            i += 1;
        }
        Ok(())
    }
}

/// The bicubic Hermite cell kernel, `W` points at once: a lane-for-lane
/// replica of [`HelmTable::interp_located`]'s arithmetic (same order, no
/// contractions) with the 48 scattered coefficient loads expressed as
/// per-plane gathers. Returns (value, d/dx, d/dy) lanes per quantity, still
/// in log10 space.
#[inline(always)]
fn interp_cell<L: Lane>(
    t: &HelmTable,
    data: &[f64],
    tx: L,
    ty: L,
    corner: &[[usize; MAX_W]; 4],
) -> ([L; N_QUANT], [L; N_QUANT], [L; N_QUANT]) {
    let hx = hermite_basis_lanes::<L>(tx);
    let hy = hermite_basis_lanes::<L>(ty);
    let dhx = hermite_basis_deriv_lanes::<L>(tx);
    let dhy = hermite_basis_deriv_lanes::<L>(ty);
    let dx = L::splat(t.dx);
    let dy = L::splat(t.dy);

    let mut val = [L::splat(0.0); N_QUANT];
    let mut val_dx = [L::splat(0.0); N_QUANT];
    let mut val_dy = [L::splat(0.0); N_QUANT];
    for q in 0..N_QUANT {
        let mut acc = L::splat(0.0);
        let mut acc_dx = L::splat(0.0);
        let mut acc_dy = L::splat(0.0);
        for (c, nodes) in corner.iter().enumerate() {
            let cx = c % 2;
            let cy = c / 2;
            let v = gather_plane::<L>(t, data, q, 0, nodes);
            let vx = gather_plane::<L>(t, data, q, 1, nodes).mul(dx);
            let vy = gather_plane::<L>(t, data, q, 2, nodes).mul(dy);
            let vxy = gather_plane::<L>(t, data, q, 3, nodes).mul(dx).mul(dy);
            let (bx_v, bx_d) = (hx[cx * 2], hx[cx * 2 + 1]);
            let (by_v, by_d) = (hy[cy * 2], hy[cy * 2 + 1]);
            let (dbx_v, dbx_d) = (dhx[cx * 2], dhx[cx * 2 + 1]);
            let (dby_v, dby_d) = (dhy[cy * 2], dhy[cy * 2 + 1]);
            acc = acc.add(
                v.mul(bx_v)
                    .mul(by_v)
                    .add(vx.mul(bx_d).mul(by_v))
                    .add(vy.mul(bx_v).mul(by_d))
                    .add(vxy.mul(bx_d).mul(by_d)),
            );
            acc_dx = acc_dx.add(
                v.mul(dbx_v)
                    .mul(by_v)
                    .add(vx.mul(dbx_d).mul(by_v))
                    .add(vy.mul(dbx_v).mul(by_d))
                    .add(vxy.mul(dbx_d).mul(by_d)),
            );
            acc_dy = acc_dy.add(
                v.mul(bx_v)
                    .mul(dby_v)
                    .add(vx.mul(bx_d).mul(dby_v))
                    .add(vy.mul(bx_v).mul(dby_d))
                    .add(vxy.mul(bx_d).mul(dby_d)),
            );
        }
        val[q] = acc;
        val_dx[q] = acc_dx.div(dx);
        val_dy[q] = acc_dy.div(dy);
    }
    (val, val_dx, val_dy)
}

/// Gather one coefficient plane's value at each lane's corner node.
#[inline(always)]
fn gather_plane<L: Lane>(t: &HelmTable, data: &[f64], q: usize, d: usize, nodes: &[usize; MAX_W]) -> L {
    let base = (q * N_DERIV + d) * t.config.n_temp * t.config.n_rho;
    L::from_fn(|k| data[base + nodes[k]])
}

/// Lane twin of [`hermite_basis`], term order preserved.
#[inline(always)]
fn hermite_basis_lanes<L: Lane>(t: L) -> [L; 4] {
    let t2 = t.mul(t);
    let t3 = t2.mul(t);
    [
        L::splat(2.0).mul(t3).sub(L::splat(3.0).mul(t2)).add(L::splat(1.0)),
        t3.sub(L::splat(2.0).mul(t2)).add(t),
        L::splat(-2.0).mul(t3).add(L::splat(3.0).mul(t2)),
        t3.sub(t2),
    ]
}

/// Lane twin of [`hermite_basis_deriv`], term order preserved.
#[inline(always)]
fn hermite_basis_deriv_lanes<L: Lane>(t: L) -> [L; 4] {
    let t2 = t.mul(t);
    [
        L::splat(6.0).mul(t2).sub(L::splat(6.0).mul(t)),
        L::splat(3.0).mul(t2).sub(L::splat(4.0).mul(t)).add(L::splat(1.0)),
        L::splat(-6.0).mul(t2).add(L::splat(6.0).mul(t)),
        L::splat(3.0).mul(t2).sub(L::splat(2.0).mul(t)),
    ]
}

/// Cubic Hermite basis at parameter t: [h00, h10, h01, h11] arranged as
/// (value@0, slope@0, value@1, slope@1).
#[inline]
fn hermite_basis(t: f64) -> [f64; 4] {
    let t2 = t * t;
    let t3 = t2 * t;
    [
        2.0 * t3 - 3.0 * t2 + 1.0, // h00: value at left corner
        t3 - 2.0 * t2 + t,         // h10: slope at left corner
        -2.0 * t3 + 3.0 * t2,      // h01: value at right corner
        t3 - t2,                   // h11: slope at right corner
    ]
}

#[inline]
fn hermite_basis_deriv(t: f64) -> [f64; 4] {
    let t2 = t * t;
    [
        6.0 * t2 - 6.0 * t,
        3.0 * t2 - 4.0 * t + 1.0,
        -6.0 * t2 + 6.0 * t,
        3.0 * t2 - 2.0 * t,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::electron::electron_state;

    fn test_table() -> HelmTable {
        HelmTable::build(TableConfig::coarse(), Policy::None).unwrap()
    }

    #[test]
    fn hermite_basis_partitions_unity() {
        for t in [0.0, 0.3, 0.7, 1.0] {
            let h = hermite_basis(t);
            assert!((h[0] + h[2] - 1.0).abs() < 1e-14);
        }
        // Interpolation conditions at the endpoints.
        let h0 = hermite_basis(0.0);
        assert_eq!(h0, [1.0, 0.0, 0.0, 0.0]);
        let h1 = hermite_basis(1.0);
        assert_eq!(h1, [0.0, 0.0, 1.0, 0.0]);
        let d0 = hermite_basis_deriv(0.0);
        assert_eq!(d0[1], 1.0);
        let d1 = hermite_basis_deriv(1.0);
        assert_eq!(d1[3], 1.0);
    }

    #[test]
    fn interp_matches_exact_physics_off_grid() {
        let table = test_table();
        // Off-grid points across the domain, compared with the exact solver.
        // The last point sits at pair-creation onset, the most strongly
        // curved region of the surface; the coarse test grid (0.35 dex
        // cells) resolves it to ~1%, the production grid to much better.
        for (rho_ye, temp, tol) in [
            (3.3e2, 2.7e7, 2e-3),
            (7.7e5, 6.1e8, 2e-3),
            (2.2e8, 4.4e7, 2e-3),
            (5.0, 3.0e9, 1.5e-2),
        ] {
            let exact = electron_state(rho_ye, temp).unwrap();
            let got = table.interp(rho_ye, temp).unwrap();
            let perr = (got.pres - exact.pres).abs() / exact.pres;
            let eerr = (got.ener - exact.ener).abs() / exact.ener;
            assert!(perr < tol, "P rel err {perr:e} at ({rho_ye:e},{temp:e})");
            assert!(eerr < tol, "E rel err {eerr:e} at ({rho_ye:e},{temp:e})");
        }
    }

    #[test]
    fn interp_is_exact_on_grid_nodes() {
        let table = test_table();
        let cfg = *table.config();
        let (x0, _) = cfg.log_rho_ye;
        let (y0, _) = cfg.log_temp;
        let rho_ye = 10f64.powf(x0 + 5.0 * table.dx);
        let temp = 10f64.powf(y0 + 7.0 * table.dy);
        let exact = electron_state(rho_ye, temp).unwrap();
        let got = table.interp(rho_ye, temp).unwrap();
        assert!((got.pres - exact.pres).abs() / exact.pres < 1e-9);
    }

    #[test]
    fn slopes_match_polytropic_limits() {
        let table = test_table();
        // Non-relativistic degenerate: dlnP/dlnρ → 5/3.
        let p = table.interp(1e2, 1e5).unwrap();
        assert!((p.dlnp_dlnr - 5.0 / 3.0).abs() < 0.05, "{}", p.dlnp_dlnr);
        // Relativistic degenerate: → 4/3.
        let p = table.interp(1e9, 1e6).unwrap();
        assert!((p.dlnp_dlnr - 4.0 / 3.0).abs() < 0.05, "{}", p.dlnp_dlnr);
        // Non-degenerate ideal (cool enough that e± pairs are absent —
        // at 1e9 K pair creation makes dlnP/dlnT ≫ 1): dlnP/dlnT → 1.
        let p = table.interp(1e-2, 1e7).unwrap();
        assert!((p.dlnp_dlnt - 1.0).abs() < 0.1, "{}", p.dlnp_dlnt);
    }

    #[test]
    fn out_of_domain_is_typed() {
        let table = test_table();
        assert!(matches!(
            table.interp(1e20, 1e7),
            Err(EosError::OutOfRange { .. })
        ));
        assert!(matches!(
            table.interp(1.0, 1.0),
            Err(EosError::OutOfRange { .. })
        ));
    }

    #[test]
    fn gather_indices_shape() {
        let table = test_table();
        let mut idx = Vec::new();
        table.gather_indices(1e5, 1e8, &mut idx).unwrap();
        assert_eq!(idx.len(), 48);
        // All in-bounds and distinct-ish (4 corners × 12 planes).
        let max = table.data.len();
        assert!(idx.iter().all(|&i| i < max));
        let planes = N_QUANT * N_DERIV;
        let plane_size = table.config.n_rho * table.config.n_temp;
        let distinct_planes: std::collections::HashSet<usize> =
            idx.iter().map(|&i| i / plane_size).collect();
        assert_eq!(distinct_planes.len(), planes);
    }

    #[test]
    fn table_bytes_and_addr() {
        let table = test_table();
        assert_eq!(
            table.bytes(),
            41 * 33 * 12 * 8,
            "coarse table is 41×33×12 doubles"
        );
        assert!(table.base_addr() != 0);
    }

    #[test]
    fn interp_lanes_is_bit_exact_vs_scalar_on_every_backend() {
        let table = test_table();
        let n = 37;
        let (x0, x1) = table.config.log_rho_ye;
        let (y0, y1) = table.config.log_temp;
        // Seeded quasi-random lattice across the whole domain (including
        // both edges via the first/last lanes). n = 37 is prime, so every
        // backend width exercises a non-empty tail.
        let rho_ye: Vec<f64> = (0..n)
            .map(|i| 10f64.powf(x0 + (x1 - x0) * (i as f64 / (n - 1) as f64)))
            .collect();
        let temp: Vec<f64> = (0..n)
            .map(|i| 10f64.powf(y0 + (y1 - y0) * (((i * 17) % n) as f64 / (n - 1) as f64)))
            .collect();
        let mut lanes = vec![ElecPoint::default(); n];
        for &backend in Resolved::all() {
            table
                .interp_lanes(backend, &rho_ye, &temp, &mut lanes)
                .unwrap();
            for i in 0..n {
                let scalar = table.interp(rho_ye[i], temp[i]).unwrap();
                assert_eq!(lanes[i].pres, scalar.pres, "{backend} lane {i} pres");
                assert_eq!(lanes[i].ener, scalar.ener, "{backend} lane {i} ener");
                assert_eq!(lanes[i].entr, scalar.entr, "{backend} lane {i} entr");
                assert_eq!(
                    lanes[i].dlnp_dlnr, scalar.dlnp_dlnr,
                    "{backend} lane {i} dlnp_dlnr"
                );
                assert_eq!(
                    lanes[i].dlnp_dlnt, scalar.dlnp_dlnt,
                    "{backend} lane {i} dlnp_dlnt"
                );
                assert_eq!(
                    lanes[i].dlne_dlnr, scalar.dlne_dlnr,
                    "{backend} lane {i} dlne_dlnr"
                );
                assert_eq!(
                    lanes[i].dlne_dlnt, scalar.dlne_dlnt,
                    "{backend} lane {i} dlne_dlnt"
                );
            }
            // Out-of-domain lane aborts the batch.
            assert!(table
                .interp_lanes(backend, &[1e20], &[1e7], &mut lanes[..1])
                .is_err());
        }
    }

    #[test]
    fn domain_edges_are_inclusive() {
        let table = test_table();
        let cfg = *table.config();
        let lo = table
            .interp(10f64.powf(cfg.log_rho_ye.0), 10f64.powf(cfg.log_temp.0))
            .unwrap();
        assert!(lo.pres > 0.0);
        let hi = table
            .interp(10f64.powf(cfg.log_rho_ye.1), 10f64.powf(cfg.log_temp.1))
            .unwrap();
        assert!(hi.pres > lo.pres);
    }
}

// ---- disk persistence (FLASH's `helm_table.dat` analog) -----------------

impl HelmTable {
    /// Write the table to disk: a length-prefixed JSON header (config +
    /// spacings) followed by the raw little-endian f64 planes. FLASH ships
    /// its Helmholtz table as a data file (`helm_table.dat`) for exactly
    /// this reason — rebuilding from the Fermi–Dirac integrals at every
    /// startup is wasteful.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        #[derive(serde::Serialize)]
        struct Header<'a> {
            format: &'a str,
            config: TableConfig,
        }
        let header = serde_json::to_string(&Header {
            format: "rflash-helm-table-v1",
            config: self.config,
        })
        .map_err(std::io::Error::other)?;
        w.write_all(&(header.len() as u64).to_le_bytes())?;
        w.write_all(header.as_bytes())?;
        let mut buf = Vec::with_capacity(self.data.len() * 8);
        for &v in self.data.iter() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
        w.flush()
    }

    /// Load a table previously written by [`HelmTable::save`], placing the
    /// planes in a buffer backed by `policy`.
    pub fn load(path: &std::path::Path, policy: Policy) -> std::io::Result<HelmTable> {
        use std::io::Read;
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut len_bytes = [0u8; 8];
        r.read_exact(&mut len_bytes)?;
        let header_len = u64::from_le_bytes(len_bytes) as usize;
        if header_len > 1 << 20 {
            return Err(std::io::Error::other("unreasonable header length"));
        }
        let mut header_json = vec![0u8; header_len];
        r.read_exact(&mut header_json)?;
        #[derive(serde::Deserialize)]
        struct Header {
            format: String,
            config: TableConfig,
        }
        let header: Header =
            serde_json::from_slice(&header_json).map_err(std::io::Error::other)?;
        if header.format != "rflash-helm-table-v1" {
            return Err(std::io::Error::other(format!(
                "unknown table format {:?}",
                header.format
            )));
        }
        let config = header.config;
        let n = config.n_rho * config.n_temp * N_QUANT * N_DERIV;
        let mut data =
            PageBuffer::<f64>::zeroed(n, policy).map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut bytes = vec![0u8; n * 8];
        r.read_exact(&mut bytes)?;
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            // analyze::allow(panic): chunks_exact(8) yields exactly 8-byte
            // chunks, so the array conversion cannot fail.
            data[i] = f64::from_le_bytes(chunk.try_into().unwrap());
        }
        let (x0, x1) = config.log_rho_ye;
        let (y0, y1) = config.log_temp;
        Ok(HelmTable {
            config,
            data,
            dx: (x1 - x0) / (config.n_rho - 1) as f64,
            dy: (y1 - y0) / (config.n_temp - 1) as f64,
        })
    }

    /// Load a matching cached table from `path`, or build one and cache it.
    /// A stale cache (different geometry/domain) is rebuilt and overwritten.
    pub fn build_or_load(
        config: TableConfig,
        policy: Policy,
        path: &std::path::Path,
    ) -> Result<HelmTable, EosError> {
        if let Ok(table) = Self::load(path, policy) {
            let c = table.config;
            let same = c.n_rho == config.n_rho
                && c.n_temp == config.n_temp
                && c.log_rho_ye == config.log_rho_ye
                && c.log_temp == config.log_temp;
            if same {
                return Ok(table);
            }
        }
        let table = Self::build(config, policy)?;
        let _ = table.save(path); // cache write failure is not fatal
        Ok(table)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rflash-helm-{}-{name}.dat", std::process::id()))
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let table = HelmTable::build(
            TableConfig {
                n_rho: 12,
                n_temp: 9,
                ..TableConfig::coarse()
            },
            Policy::None,
        )
        .unwrap();
        let path = scratch("roundtrip");
        table.save(&path).unwrap();
        let loaded = HelmTable::load(&path, Policy::None).unwrap();
        assert_eq!(table.data.as_slice(), loaded.data.as_slice());
        assert_eq!(table.dx, loaded.dx);
        // Interpolation agrees exactly.
        let a = table.interp(1e5, 1e8).unwrap();
        let b = loaded.interp(1e5, 1e8).unwrap();
        assert_eq!(a.pres, b.pres);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn build_or_load_uses_and_refreshes_the_cache() {
        let cfg = TableConfig {
            n_rho: 10,
            n_temp: 8,
            ..TableConfig::coarse()
        };
        let path = scratch("cache");
        let _ = std::fs::remove_file(&path);
        let t1 = HelmTable::build_or_load(cfg, Policy::None, &path).unwrap();
        assert!(path.exists(), "cache written");
        let t2 = HelmTable::build_or_load(cfg, Policy::None, &path).unwrap();
        assert_eq!(t1.data.as_slice(), t2.data.as_slice());
        // A different geometry invalidates the cache.
        let other = TableConfig {
            n_rho: 14,
            n_temp: 8,
            ..TableConfig::coarse()
        };
        let t3 = HelmTable::build_or_load(other, Policy::None, &path).unwrap();
        assert_eq!(t3.config.n_rho, 14);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = scratch("garbage");
        std::fs::write(&path, b"\x08\x00\x00\x00\x00\x00\x00\x00garbage!").unwrap();
        assert!(HelmTable::load(&path, Policy::None).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
