//! Physical constants in CGS units (FLASH's unit system).

/// Boltzmann constant, erg/K.
pub const K_B: f64 = 1.380649e-16;
/// Avogadro's number, 1/mol.
pub const N_A: f64 = 6.02214076e23;
/// Radiation constant a = 4σ/c, erg cm⁻³ K⁻⁴.
pub const A_RAD: f64 = 7.565723e-15;
/// Speed of light, cm/s.
pub const C_LIGHT: f64 = 2.99792458e10;
/// Planck constant, erg·s.
pub const H_PLANCK: f64 = 6.62607015e-27;
/// Electron mass, g.
pub const M_E: f64 = 9.1093837015e-28;
/// Electron rest energy m_e c², erg.
pub const ME_C2: f64 = M_E * C_LIGHT * C_LIGHT;
/// Newton's gravitational constant, cm³ g⁻¹ s⁻².
pub const G_NEWTON: f64 = 6.67430e-8;
/// Solar mass, g.
pub const M_SUN: f64 = 1.98892e33;

/// Compton prefactor 8π√2 (m_e c / h)³ — the number density scale of the
/// relativistic electron gas, cm⁻³.
pub fn electron_density_scale() -> f64 {
    let lambda_inv = M_E * C_LIGHT / H_PLANCK; // 1/(Compton wavelength)
    8.0 * std::f64::consts::PI * std::f64::consts::SQRT_2 * lambda_inv.powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_energy_is_511_kev() {
        // 511 keV in erg = 8.187e-7.
        assert!((ME_C2 - 8.187e-7).abs() / 8.187e-7 < 1e-3);
    }

    #[test]
    fn density_scale_magnitude() {
        // 8π√2/λ_C³ with λ_C = 2.426e-10 cm → ≈ 2.49e30 cm⁻³.
        let s = electron_density_scale();
        assert!(s > 2.3e30 && s < 2.7e30, "{s:e}");
    }

    #[test]
    fn radiation_constant_consistency() {
        // a = 8π⁵k⁴/(15 h³c³).
        let pi = std::f64::consts::PI;
        let a = 8.0 * pi.powi(5) * K_B.powi(4) / (15.0 * H_PLANCK.powi(3) * C_LIGHT.powi(3));
        assert!((a - A_RAD).abs() / A_RAD < 1e-5, "{a:e} vs {A_RAD:e}");
    }
}
