//! Exact electron/positron thermodynamics from Fermi–Dirac integrals.
//!
//! Given (ρYₑ, T), charge neutrality fixes the electron degeneracy
//! parameter η through n⁻(η) − n⁺(η) = ρNₐYₑ; pressure, energy, and entropy
//! follow from the generalized FD integrals. This is the physics the
//! Helmholtz table caches — the table module calls into here at build time,
//! and the tests compare interpolated values back against these exact ones.

use crate::consts::{electron_density_scale, K_B, ME_C2, N_A};
use crate::fermi::{fd_diff_set, fd_set, FdSet};
use crate::EosError;

/// Exact state of the electron/positron gas at one (ρYₑ, T) point.
#[derive(Clone, Copy, Debug, Default)]
pub struct ElectronState {
    /// Degeneracy parameter η = μ_kinetic/kT.
    pub eta: f64,
    /// Electron number density, cm⁻³.
    pub n_ele: f64,
    /// Positron number density, cm⁻³.
    pub n_pos: f64,
    /// Pressure, erg/cm³.
    pub pres: f64,
    /// Kinetic energy density (positron rest-mass pairs included), erg/cm³.
    pub ener: f64,
    /// Entropy density, erg/(cm³·K).
    pub entr: f64,
}

/// Relativity parameter β = kT / mₑc².
#[inline]
pub fn beta_of(temp: f64) -> f64 {
    K_B * temp / ME_C2
}

/// Number density of a single species with degeneracy parameter `eta`.
fn species_n(set: &FdSet, beta: f64) -> f64 {
    electron_density_scale() * beta.powf(1.5) * (set.f12 + beta * set.f32)
}

/// dn/dη for the same species.
fn species_dn_deta(set: &FdSet, beta: f64) -> f64 {
    electron_density_scale() * beta.powf(1.5) * (set.df12 + beta * set.df32)
}

/// Pressure of a single species.
fn species_p(set: &FdSet, beta: f64) -> f64 {
    2.0 / 3.0 * electron_density_scale() * ME_C2 * beta.powf(2.5) * (set.f32 + 0.5 * beta * set.f52)
}

/// Kinetic energy density of a single species.
fn species_e(set: &FdSet, beta: f64) -> f64 {
    electron_density_scale() * ME_C2 * beta.powf(2.5) * (set.f32 + beta * set.f52)
}

/// Solve charge neutrality for η given the net electron density
/// `n_net = ρ Nₐ Yₑ` (cm⁻³) and temperature (K).
///
/// Newton iteration with a bisection safeguard; n(η) is strictly monotone.
pub fn solve_eta(n_net: f64, temp: f64) -> Result<f64, EosError> {
    solve_eta_with_guess(n_net, temp, None)
}

/// [`solve_eta`] with a warm-start guess — table builds sweep density
/// monotonically and reuse the previous η to cut Newton iterations.
pub fn solve_eta_with_guess(
    n_net: f64,
    temp: f64,
    guess: Option<f64>,
) -> Result<f64, EosError> {
    if !(n_net.is_finite() && n_net > 0.0) {
        return Err(EosError::BadInput {
            what: "n_net",
            value: n_net,
        });
    }
    if !(temp.is_finite() && temp > 0.0) {
        return Err(EosError::BadInput {
            what: "temp",
            value: temp,
        });
    }
    let beta = beta_of(temp);
    let scale = electron_density_scale() * beta.powf(1.5);

    // Initial guess: the larger of the non-degenerate and degenerate limits.
    let gamma_32 = 0.5 * std::f64::consts::PI.sqrt(); // Γ(3/2)
    let eta_nondeg = (n_net / (scale * gamma_32)).ln();
    let eta_deg = (1.5 * n_net / scale).powf(2.0 / 3.0);
    let mut eta = guess
        .filter(|g| g.is_finite())
        .unwrap_or(if eta_nondeg > 1.0 { eta_deg } else { eta_nondeg });

    // Bracket for the bisection safeguard.
    let (mut lo, mut hi): (f64, f64) = (-740.0, eta_deg.max(10.0) * 4.0 + 100.0);
    let net = |eta: f64| -> (f64, f64) {
        // One stable quadrature for n⁻ − n⁺ (critical in the pair plasma,
        // where the two densities agree to ~14 digits).
        let diff = fd_diff_set(eta, -eta - 2.0 / beta, beta);
        let n = species_n(&diff, beta);
        // fd_diff_set's derivative fields already sum both species
        // (dη⁺/dη = −1 and n⁺ decreases in η⁺, so both terms add).
        let dn = species_dn_deta(&diff, beta);
        (n - n_net, dn)
    };

    let mut residual = f64::INFINITY;
    let mut best = (f64::INFINITY, eta);
    for _ in 0..200 {
        let (f, df) = net(eta);
        residual = f / n_net;
        if residual.abs() < best.0 {
            best = (residual.abs(), eta);
        }
        if residual.abs() < 1e-11 {
            return Ok(eta);
        }
        if f > 0.0 {
            hi = hi.min(eta);
        } else {
            lo = lo.max(eta);
        }
        // Pair-plasma regime: the charge asymmetry can be ~12 orders below
        // the pair density, so the n-residual is ill-conditioned even though
        // η itself (and every thermodynamic quantity) is fully converged.
        // Accept once the bracket has collapsed to machine precision in η.
        if hi - lo < 4.0 * f64::EPSILON * (1.0 + eta.abs()) {
            return Ok(0.5 * (lo + hi));
        }
        let newton = eta - f / df;
        eta = if df > 0.0 && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
    }
    // Accept slightly looser convergence before failing: at extreme
    // degeneracy (eta ~ 1e9) the quadrature's own relative accuracy is the
    // limit, so Newton plateaus around 1e-7.
    if best.0 < 1e-5 {
        Ok(best.1)
    } else {
        Err(EosError::NoConvergence {
            mode: "solve_eta",
            residual,
        })
    }
}

/// Full electron/positron state at (ρYₑ [g/cm³], T \[K\]).
pub fn electron_state(rho_ye: f64, temp: f64) -> Result<ElectronState, EosError> {
    electron_state_with_guess(rho_ye, temp, None)
}

/// [`electron_state`] with an η warm start (see [`solve_eta_with_guess`]).
pub fn electron_state_with_guess(
    rho_ye: f64,
    temp: f64,
    eta_guess: Option<f64>,
) -> Result<ElectronState, EosError> {
    let n_net = rho_ye * N_A;
    let eta = solve_eta_with_guess(n_net, temp, eta_guess)?;
    let beta = beta_of(temp);
    let ele = fd_set(eta, beta);
    let eta_pos = -eta - 2.0 / beta;
    let pos = fd_set(eta_pos, beta);

    let n_ele = species_n(&ele, beta);
    let n_pos = species_n(&pos, beta);
    let pres = species_p(&ele, beta) + species_p(&pos, beta);
    // Positrons carry the pair rest-mass energy 2mₑc² per pair.
    let ener = species_e(&ele, beta) + species_e(&pos, beta) + 2.0 * ME_C2 * n_pos;
    // TS = E + P − μ⁻n⁻ − μ⁺n⁺ with kinetic chemical potentials
    // μ⁻ = ηkT, μ⁺ = η⁺kT (pair rest mass accounted in E).
    let kt = K_B * temp;
    let ts = species_e(&ele, beta) + species_p(&ele, beta) - eta * kt * n_ele
        + species_e(&pos, beta)
        + species_p(&pos, beta)
        - eta_pos * kt * n_pos
        + 2.0 * ME_C2 * n_pos;
    let entr = ts / temp;

    Ok(ElectronState {
        eta,
        n_ele,
        n_pos,
        pres,
        ener,
        entr,
    })
}

/// Chandrasekhar's exact cold (T = 0) electron pressure for a given net
/// electron density — the classical closed form used for validation.
pub fn cold_pressure(n_ele: f64) -> f64 {
    use crate::consts::{C_LIGHT, H_PLANCK, M_E};
    // Fermi momentum parameter x = p_F/(mc):
    // n = (8π/3)(mc/h)³ x³.
    let lam3 = (M_E * C_LIGHT / H_PLANCK).powi(3);
    let x = (3.0 * n_ele / (8.0 * std::f64::consts::PI * lam3)).cbrt();
    let a = std::f64::consts::PI * M_E.powi(4) * C_LIGHT.powi(5) / (3.0 * H_PLANCK.powi(3));
    a * (x * (2.0 * x * x - 3.0) * (1.0 + x * x).sqrt() + 3.0 * x.asinh())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_neutrality_round_trips() {
        for rho_ye in [1e-2, 1.0, 1e3, 1e6, 1e9] {
            for temp in [1e5, 1e7, 1e9] {
                let n_net = rho_ye * N_A;
                let eta = solve_eta(n_net, temp).unwrap();
                let beta = beta_of(temp);
                let ele = fd_set(eta, beta);
                let pos = fd_set(-eta - 2.0 / beta, beta);
                let n = species_n(&ele, beta) - species_n(&pos, beta);
                assert!(
                    (n - n_net).abs() / n_net < 1e-8,
                    "rho_ye={rho_ye:e} T={temp:e}"
                );
            }
        }
    }

    #[test]
    fn nondegenerate_limit_is_ideal_gas() {
        // Low density, warm: P → n k T.
        let (rho_ye, temp) = (10.0, 5e8);
        let st = electron_state(rho_ye, temp).unwrap();
        let ideal = (st.n_ele + st.n_pos) * K_B * temp;
        assert!(
            (st.pres - ideal).abs() / ideal < 2e-2,
            "P={:e} nkT={ideal:e}",
            st.pres
        );
        // Energy per particle between the non-relativistic (3/2)kT and the
        // ultra-relativistic 3kT bounds (β ≈ 0.08 here, slightly warm).
        let e_per = st.ener / (st.n_ele + st.n_pos);
        assert!(e_per > 1.5 * K_B * temp && e_per < 3.0 * K_B * temp, "{e_per:e}");
    }

    #[test]
    fn cold_degenerate_matches_chandrasekhar_nonrel() {
        // ρYe = 10³, T = 10⁵ K: strongly degenerate, x_F ≈ 0.1.
        let rho_ye = 1e3;
        let st = electron_state(rho_ye, 1e5).unwrap();
        let exact = cold_pressure(rho_ye * N_A);
        assert!(
            (st.pres - exact).abs() / exact < 1e-3,
            "P={:e} cold={exact:e}",
            st.pres
        );
        assert!(st.eta > 100.0, "strongly degenerate: eta={}", st.eta);
    }

    #[test]
    fn cold_degenerate_matches_chandrasekhar_rel() {
        // ρYe = 10⁹: relativistic degeneracy, x_F ≈ 10.
        let rho_ye = 1e9;
        let st = electron_state(rho_ye, 1e7).unwrap();
        let exact = cold_pressure(rho_ye * N_A);
        assert!(
            (st.pres - exact).abs() / exact < 1e-3,
            "P={:e} cold={exact:e}",
            st.pres
        );
    }

    #[test]
    fn polytropic_slopes_in_limits() {
        // d ln P / d ln ρ ≈ 5/3 non-relativistic, 4/3 relativistic.
        let slope = |rho_ye: f64| {
            let p1 = electron_state(rho_ye, 1e5).unwrap().pres;
            let p2 = electron_state(rho_ye * 1.1, 1e5).unwrap().pres;
            (p2 / p1).ln() / 1.1f64.ln()
        };
        let nonrel = slope(1e2);
        assert!((nonrel - 5.0 / 3.0).abs() < 0.02, "{nonrel}");
        let rel = slope(1e9);
        assert!((rel - 4.0 / 3.0).abs() < 0.02, "{rel}");
    }

    #[test]
    fn pairs_appear_at_high_temperature() {
        let cool = electron_state(1.0, 1e8).unwrap();
        let hot = electron_state(1.0, 5e9).unwrap();
        assert!(cool.n_pos < 1e-6 * cool.n_ele);
        assert!(
            hot.n_pos > 0.1 * hot.n_ele,
            "pair plasma expected: n+/n- = {}",
            hot.n_pos / hot.n_ele
        );
    }

    #[test]
    fn entropy_positive_and_rising_with_t() {
        let s1 = electron_state(1e3, 1e7).unwrap().entr;
        let s2 = electron_state(1e3, 1e9).unwrap().entr;
        assert!(s1 > 0.0);
        assert!(s2 > s1);
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        assert!(matches!(
            solve_eta(-1.0, 1e7),
            Err(EosError::BadInput { .. })
        ));
        assert!(matches!(
            solve_eta(1e24, f64::NAN),
            Err(EosError::BadInput { .. })
        ));
        assert!(electron_state(0.0, 1e7).is_err());
    }

    #[test]
    fn pressure_monotone_in_density_and_temperature() {
        let mut prev = 0.0;
        for i in 0..8 {
            let rho_ye = 10f64.powi(i);
            let p = electron_state(rho_ye, 1e8).unwrap().pres;
            assert!(p > prev);
            prev = p;
        }
        let p_cold = electron_state(1e5, 1e7).unwrap().pres;
        let p_hot = electron_state(1e5, 5e9).unwrap().pres;
        assert!(p_hot > p_cold);
    }
}
