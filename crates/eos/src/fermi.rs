//! Generalized Fermi–Dirac integrals.
//!
//! The electron/positron thermodynamics needs
//!
//! ```text
//! F_k(η, β) = ∫₀^∞ x^k √(1 + βx/2) / (exp(x − η) + 1) dx
//! ```
//!
//! for k = 1/2, 3/2, 5/2, where η is the degeneracy parameter (kinetic
//! chemical potential over kT) and β = kT/(mₑc²) the relativity parameter.
//! We evaluate by composite Gauss–Legendre quadrature with breakpoints
//! placed around the Fermi surface (x ≈ η), where the integrand's only
//! sharp feature lives; everywhere else it is a smooth near-polynomial that
//! Gauss–Legendre nails. Degenerate η up to ~10⁷ (cold white-dwarf cores)
//! are handled by splitting [0, η−40] into panels — the occupation there is
//! exponentially close to 1 so the integrand is smooth.

use std::sync::OnceLock;

/// Points per quadrature panel. 32 gives ≲1e-12 relative error on every
/// panel of the breakpoint scheme (verified against closed forms in tests).
const GL_POINTS: usize = 32;

/// Gauss–Legendre nodes/weights on [-1, 1], computed once by Newton
/// iteration on the Legendre polynomial.
fn gl_rule() -> &'static (Vec<f64>, Vec<f64>) {
    static RULE: OnceLock<(Vec<f64>, Vec<f64>)> = OnceLock::new();
    RULE.get_or_init(|| gauss_legendre(GL_POINTS))
}

/// Compute an n-point Gauss–Legendre rule on [-1, 1].
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 2);
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-based initial guess for the i-th root.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            // Evaluate P_n(x) and P_n'(x) by the three-term recurrence.
            let mut p0 = 1.0;
            let mut p1 = x;
            for j in 2..=n {
                let jf = j as f64;
                let p2 = ((2.0 * jf - 1.0) * x * p1 - (jf - 1.0) * p0) / jf;
                p0 = p1;
                p1 = p2;
            }
            dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
            let dx = p1 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    (nodes, weights)
}

/// Numerically stable Fermi factor 1/(exp(t) + 1).
#[inline]
fn fermi_factor(t: f64) -> f64 {
    if t > 0.0 {
        let e = (-t).exp();
        e / (1.0 + e)
    } else {
        1.0 / (1.0 + t.exp())
    }
}

/// d/dη of the Fermi factor at t = x − η: exp(t)/(exp(t)+1)² = σ(t)·σ(−t).
#[inline]
fn fermi_factor_deriv(t: f64) -> f64 {
    let f = fermi_factor(t);
    f * (1.0 - f)
}

/// Quadrature breakpoints in u-space (u = √x), adapted to the location of
/// the Fermi surface at u = √η.
fn breakpoints(eta: f64) -> Vec<f64> {
    let mut bp = Vec::with_capacity(20);
    if eta <= 30.0 {
        // Transition (if any) is near the origin; geometric panels suffice.
        let top = eta.max(0.0);
        for x in [0.0, top + 4.0, top + 12.0, top + 30.0, top + 70.0, top + 160.0] {
            bp.push(x.sqrt());
        }
    } else {
        // Smooth degenerate interior [0, √(η−30)] in equal u-panels…
        let interior_end = (eta - 30.0).sqrt();
        let panels = 6;
        for i in 0..=panels {
            bp.push(interior_end * i as f64 / panels as f64);
        }
        // …then fine panels across the Fermi surface and an exponential tail.
        for x in [
            eta - 10.0,
            eta,
            eta + 10.0,
            eta + 30.0,
            eta + 70.0,
            eta + 160.0,
        ] {
            bp.push(x.sqrt());
        }
    }
    bp
}

/// All three generalized FD integrals and their η-derivatives, evaluated in
/// one pass over the quadrature nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FdSet {
    pub f12: f64,
    pub f32: f64,
    pub f52: f64,
    pub df12: f64,
    pub df32: f64,
    pub df52: f64,
}

/// Above this η the Fermi surface is numerically unresolvable in f64
/// (x − η cancels catastrophically) *and* physically irrelevant: finite-T
/// corrections scale as η⁻², below 10⁻¹² here. Switch to the analytic
/// degenerate branch with the first Sommerfeld correction.
const ETA_DEGENERATE: f64 = 1e6;

/// Evaluate F_{1/2}, F_{3/2}, F_{5/2} and ∂/∂η of each at (η, β).
pub fn fd_set(eta: f64, beta: f64) -> FdSet {
    assert!(beta >= 0.0, "relativity parameter must be non-negative");
    if eta > ETA_DEGENERATE {
        return fd_set_degenerate(eta, beta);
    }
    let (nodes, weights) = gl_rule();
    let bp = breakpoints(eta);
    let mut out = FdSet::default();
    // Substituted form: x = u², dx = 2u du, so
    //   F_k = ∫ 2 u^{2k+1} √(1 + βu²/2) / (exp(u² − η) + 1) du
    // — integer powers of u for k = 1/2, 3/2, 5/2, no endpoint singularity.
    for seg in bp.windows(2) {
        let (a, b) = (seg[0], seg[1]);
        if b <= a {
            continue;
        }
        let half = 0.5 * (b - a);
        let mid = 0.5 * (b + a);
        for (&ui, &wi) in nodes.iter().zip(weights.iter()) {
            let u = mid + half * ui;
            let w = wi * half;
            let x = u * u;
            let rel = (1.0 + 0.5 * beta * x).sqrt();
            let t = x - eta;
            let occ = fermi_factor(t);
            let docc = fermi_factor_deriv(t);
            let base = 2.0 * w * u * u * rel; // 2 u^{2k+1} with k=1/2 ⇒ u²
            let x1 = base;
            let x3 = base * x;
            let x5 = x3 * x;
            out.f12 += x1 * occ;
            out.f32 += x3 * occ;
            out.f52 += x5 * occ;
            out.df12 += x1 * docc;
            out.df32 += x3 * docc;
            out.df52 += x5 * docc;
        }
    }
    out
}

/// Difference set F_k(η_a, β) − F_k(η_b, β), with the derivative fields
/// holding F_k'(η_a) **+** F_k'(η_b).
///
/// This exists for the pair-plasma regime: charge neutrality needs
/// n⁻ − n⁺ ∝ [F(η) − F(η⁺)] + β[…], and at kT ≫ mₑc² the two terms agree to
/// ~14 digits — subtracting the *integrals* loses everything, subtracting
/// the *occupancies pointwise inside one quadrature* is stable. The summed
/// derivative is exactly what Newton needs, since η⁺ = −η − 2/β gives
/// d(ΔF)/dη = F'(η_a) + F'(η_b).
pub fn fd_diff_set(eta_a: f64, eta_b: f64, beta: f64) -> FdSet {
    assert!(beta >= 0.0);
    if eta_a > ETA_DEGENERATE {
        // Positron side is doubly-exponentially negligible.
        return fd_set_degenerate(eta_a, beta);
    }
    let (nodes, weights) = gl_rule();
    // Union of both breakpoint sets so each occupancy's feature is resolved.
    let mut bp = breakpoints(eta_a);
    bp.extend(breakpoints(eta_b));
    bp.retain(|u| u.is_finite());
    bp.sort_by(f64::total_cmp);
    bp.dedup();
    let mut out = FdSet::default();
    for seg in bp.windows(2) {
        let (a, b) = (seg[0], seg[1]);
        if b <= a {
            continue;
        }
        let half = 0.5 * (b - a);
        let mid = 0.5 * (b + a);
        for (&ui, &wi) in nodes.iter().zip(weights.iter()) {
            let u = mid + half * ui;
            let w = wi * half;
            let x = u * u;
            let rel = (1.0 + 0.5 * beta * x).sqrt();
            let occ = fermi_factor(x - eta_a) - fermi_factor(x - eta_b);
            let docc = fermi_factor_deriv(x - eta_a) + fermi_factor_deriv(x - eta_b);
            let base = 2.0 * w * u * u * rel;
            let x1 = base;
            let x3 = base * x;
            let x5 = x3 * x;
            out.f12 += x1 * occ;
            out.f32 += x3 * occ;
            out.f52 += x5 * occ;
            out.df12 += x1 * docc;
            out.df32 += x3 * docc;
            out.df52 += x5 * docc;
        }
    }
    out
}

/// Analytic strongly-degenerate limit: unit occupancy up to x = η
/// (integrated by the same panel quadrature, no Fermi factor, hence no
/// cancellation) plus the first Sommerfeld correction
/// (π²/6)·d/dη[η^k √(1+βη/2)]. The η-derivatives are the surface terms
/// η^k √(1+βη/2) themselves.
fn fd_set_degenerate(eta: f64, beta: f64) -> FdSet {
    let (nodes, weights) = gl_rule();
    let mut out = FdSet::default();
    let u_end = eta.sqrt();
    let panels = 12;
    for p in 0..panels {
        let a = u_end * p as f64 / panels as f64;
        let b = u_end * (p + 1) as f64 / panels as f64;
        let half = 0.5 * (b - a);
        let mid = 0.5 * (b + a);
        for (&ui, &wi) in nodes.iter().zip(weights.iter()) {
            let u = mid + half * ui;
            let w = wi * half;
            let x = u * u;
            let rel = (1.0 + 0.5 * beta * x).sqrt();
            let base = 2.0 * w * u * u * rel;
            out.f12 += base;
            out.f32 += base * x;
            out.f52 += base * x * x;
        }
    }
    // Sommerfeld correction and surface derivatives.
    let rel = (1.0 + 0.5 * beta * eta).sqrt();
    let drel = 0.25 * beta / rel;
    let s = std::f64::consts::PI.powi(2) / 6.0;
    // d/dη [η^k rel] = k η^{k-1} rel + η^k drel, k = 1/2, 3/2, 5/2.
    let surf = |k: f64| eta.powf(k) * rel;
    let dsurf = |k: f64| k * eta.powf(k - 1.0) * rel + eta.powf(k) * drel;
    out.f12 += s * dsurf(0.5);
    out.f32 += s * dsurf(1.5);
    out.f52 += s * dsurf(2.5);
    out.df12 = surf(0.5);
    out.df32 = surf(1.5);
    out.df52 = surf(2.5);
    out
}

/// Single integral (k doubled to stay integer: `k2` = 1, 3, or 5).
pub fn fd(k2: u8, eta: f64, beta: f64) -> f64 {
    let set = fd_set(eta, beta);
    match k2 {
        1 => set.f12,
        3 => set.f32,
        5 => set.f52,
        // analyze::allow(panic): k2 is a literal 1/3/5 at every call site;
        // any other value is a caller bug, not runtime data.
        _ => panic!("fd supports k = 1/2, 3/2, 5/2 (k2 = 1, 3, 5)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Riemann zeta at small integer/half-integer arguments via the
    /// Dirichlet eta series (fast-converging alternating sum).
    fn dirichlet_eta(s: f64) -> f64 {
        let mut sum = 0.0;
        for n in 1..200_000 {
            let term = (-1.0f64).powi(n + 1) / (n as f64).powf(s);
            sum += term;
        }
        sum
    }

    fn gamma_fn(x: f64) -> f64 {
        // Lanczos approximation, g=7.
        const G: f64 = 7.0;
        const C: [f64; 9] = [
            0.999_999_999_999_809_9,
            676.5203681218851,
            -1259.1392167224028,
            771.323_428_777_653_1,
            -176.615_029_162_140_6,
            12.507343278686905,
            -0.13857109526572012,
            9.984_369_578_019_572e-6,
            1.5056327351493116e-7,
        ];
        if x < 0.5 {
            std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
        } else {
            let x = x - 1.0;
            let mut a = C[0];
            let t = x + G + 0.5;
            for (i, &c) in C.iter().enumerate().skip(1) {
                a += c / (x + i as f64);
            }
            (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
        }
    }

    #[test]
    fn gl_rule_integrates_polynomials_exactly() {
        let (nodes, weights) = gauss_legendre(8);
        // ∫_{-1}^{1} x^6 dx = 2/7.
        let s: f64 = nodes
            .iter()
            .zip(&weights)
            .map(|(&x, &w)| w * x.powi(6))
            .sum();
        assert!((s - 2.0 / 7.0).abs() < 1e-14);
        // Weights sum to 2.
        let total: f64 = weights.iter().sum();
        assert!((total - 2.0).abs() < 1e-14);
    }

    #[test]
    fn nonrelativistic_eta_zero_matches_eta_function() {
        // F_k(0, 0) = Γ(k+1)·η_D(k+1) where η_D is the Dirichlet eta.
        for (k2, k) in [(1u8, 0.5), (3, 1.5), (5, 2.5)] {
            let expect = gamma_fn(k + 1.0) * dirichlet_eta(k + 1.0);
            let got = fd(k2, 0.0, 0.0);
            assert!(
                (got - expect).abs() / expect < 1e-8,
                "k={k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn nondegenerate_limit_is_boltzmann() {
        // η → −∞: F_k → e^η Γ(k+1).
        let eta = -25.0f64;
        for (k2, k) in [(1u8, 0.5), (3, 1.5), (5, 2.5)] {
            let expect = eta.exp() * gamma_fn(k + 1.0);
            let got = fd(k2, eta, 0.0);
            assert!(
                (got - expect).abs() / expect < 1e-6,
                "k={k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn degenerate_limit_is_polytropic() {
        // η ≫ 1, β = 0: F_k → η^{k+1}/(k+1) + Sommerfeld corrections.
        for eta in [1e3f64, 1e5, 1e7] {
            for (k2, k) in [(1u8, 0.5), (3, 1.5), (5, 2.5)] {
                let lead = eta.powf(k + 1.0) / (k + 1.0);
                // First Sommerfeld correction: (π²/6)·k·η^{k-1}.
                let corr = std::f64::consts::PI.powi(2) / 6.0 * k * eta.powf(k - 1.0);
                let expect = lead + corr;
                let got = fd(k2, eta, 0.0);
                assert!(
                    (got - expect).abs() / expect < 1e-7,
                    "eta={eta:e} k={k}: rel err {}",
                    (got - expect).abs() / expect
                );
            }
        }
    }

    #[test]
    fn relativistic_factor_increases_integrals() {
        let cold = fd_set(10.0, 0.0);
        let hot = fd_set(10.0, 1.0);
        assert!(hot.f12 > cold.f12);
        assert!(hot.f32 > cold.f32);
        assert!(hot.f52 > cold.f52);
    }

    #[test]
    fn ultrarelativistic_degenerate_limit() {
        // β ≫ 1, η ≫ 1: √(1+βx/2) → √(βx/2), so the integrand of F_{3/2}
        // becomes √(β/2)·x² and F_{3/2} ≈ √(β/2)·η³/3.
        let (eta, beta) = (1e4f64, 100.0f64);
        let expect = (beta / 2.0f64).sqrt() * eta.powi(3) / 3.0;
        let got = fd(3, eta, beta);
        assert!(
            (got - expect).abs() / expect < 2e-3,
            "rel err {}",
            (got - expect).abs() / expect
        );
    }

    #[test]
    fn eta_derivative_matches_finite_difference() {
        for eta in [-5.0f64, 0.0, 3.0, 50.0] {
            let h = 1e-5 * eta.abs().max(1.0);
            let plus = fd_set(eta + h, 0.3);
            let minus = fd_set(eta - h, 0.3);
            let mid = fd_set(eta, 0.3);
            for (d, (p, m)) in [
                (mid.df12, (plus.f12, minus.f12)),
                (mid.df32, (plus.f32, minus.f32)),
                (mid.df52, (plus.f52, minus.f52)),
            ] {
                let fd_est = (p - m) / (2.0 * h);
                assert!(
                    (d - fd_est).abs() / fd_est.abs().max(1e-300) < 1e-5,
                    "eta={eta}: {d} vs {fd_est}"
                );
            }
        }
    }

    #[test]
    fn monotone_in_eta() {
        let mut prev = 0.0;
        for i in 0..60 {
            let eta = -20.0 + i as f64 * 2.0;
            let v = fd(1, eta, 0.1);
            assert!(v > prev, "F_1/2 must increase with eta");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "k = 1/2, 3/2, 5/2")]
    fn bad_k_panics() {
        let _ = fd(2, 0.0, 0.0);
    }
}
