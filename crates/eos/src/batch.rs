//! Batched (structure-of-arrays) EOS interface.
//!
//! Real FLASH feeds its Helmholtz routine *vectors* of zones (`eosvector`
//! with `vecLen` lanes), not one zone at a time; the per-zone `Eos::call`
//! path exists for flexibility, but the hot paths — the driver's
//! `Eos_wrapped(MODE_DENS_EI)` pass and the sweep's post-update EOS — hand
//! whole pencils to [`crate::Eos::eos_batch`] through this view.
//!
//! # Contract
//!
//! [`EosBatch`] is a borrowed SoA view over equal-length lanes. Inputs per
//! mode follow [`crate::EosMode`]; `temp` doubles as the inversion guess for
//! `DensEi`/`DensPres`. On success every output lane (`temp`, `pres`,
//! `gamc`, `game`, and `eint` where the mode derives it) holds exactly the
//! value the scalar [`crate::Eos::call`] would have produced for that lane —
//! batching is a layout optimization, never a physics change. Implementations
//! with a vectorized fast path (Helmholtz) keep non-converged lanes in the
//! compacted active set as a masked re-iteration; lanes that exhaust the
//! iteration budget are accepted on the same residual-plateau criterion the
//! scalar routine applies. The [`BatchReport`] says how many lanes converged
//! cleanly (`vector_lanes`), how many were plateau-accepted
//! (`plateau_lanes`), and how occupancy decayed per Newton iteration
//! (`iter_hist`).
//!
//! On `Err` the output lanes are unspecified (the first failing lane aborts
//! the batch, matching the scalar path's per-zone abort).

/// A structure-of-arrays view of one batch of zones.
///
/// All slices must have the same length (debug-asserted by [`lanes`]
/// (EosBatch::lanes)); a zero-length batch is a no-op.
pub struct EosBatch<'a> {
    /// Mass density per lane, g/cm³ (input).
    pub dens: &'a [f64],
    /// Specific internal energy, erg/g (input goal for `DensEi`; output for
    /// `DensTemp`/`DensPres`).
    pub eint: &'a mut [f64],
    /// Temperature, K (inversion guess in; solution out).
    pub temp: &'a mut [f64],
    /// Mean atomic mass per lane (input).
    pub abar: &'a [f64],
    /// Mean nuclear charge per lane (input).
    pub zbar: &'a [f64],
    /// Pressure, erg/cm³ (input goal for `DensPres`; output otherwise).
    pub pres: &'a mut [f64],
    /// First adiabatic index Γ₁ (output).
    pub gamc: &'a mut [f64],
    /// Energy-like gamma Γₑ = 1 + P/(ρe) (output).
    pub game: &'a mut [f64],
}

impl EosBatch<'_> {
    /// Number of lanes in the batch.
    #[inline]
    pub fn lanes(&self) -> usize {
        let n = self.dens.len();
        debug_assert!(
            self.eint.len() == n
                && self.temp.len() == n
                && self.abar.len() == n
                && self.zbar.len() == n
                && self.pres.len() == n
                && self.gamc.len() == n
                && self.game.len() == n,
            "EosBatch lanes must have equal lengths"
        );
        n
    }
}

/// Bins in [`BatchReport::iter_hist`]: bin `i` counts lanes still active
/// entering Newton iteration `i`; the last bin accumulates everything past
/// it.
pub const NEWTON_HIST_BINS: usize = 16;

/// How a batched EOS call was serviced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Total lanes processed.
    pub lanes: u64,
    /// Lanes the vectorized fast path converged cleanly (residual below
    /// the Newton tolerance). The default per-zone implementation
    /// reports 0.
    pub vector_lanes: u64,
    /// Lanes that exhausted the iteration budget and were accepted on the
    /// residual-plateau criterion instead — counted separately so
    /// `occupancy` stays an honest clean-convergence figure.
    pub plateau_lanes: u64,
    /// Active-lane count entering each Newton iteration (masked
    /// re-iteration occupancy decay). All zeros for non-iterating EOS
    /// implementations.
    pub iter_hist: [u64; NEWTON_HIST_BINS],
}

impl BatchReport {
    /// Fraction of lanes the vector path converged cleanly (the
    /// paper-report "batch occupancy"); 0 for an empty batch. Plateau
    /// acceptances are excluded.
    pub fn occupancy(&self) -> f64 {
        if self.lanes == 0 {
            0.0
        } else {
            self.vector_lanes as f64 / self.lanes as f64
        }
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: BatchReport) {
        self.lanes += other.lanes;
        self.vector_lanes += other.vector_lanes;
        self.plateau_lanes += other.plateau_lanes;
        for (bin, count) in other.iter_hist.iter().enumerate() {
            self.iter_hist[bin] += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Eos, EosError, EosMode, GammaLaw};

    fn run_batch(eos: &dyn Eos, mode: EosMode, n: usize) -> (Vec<f64>, Vec<f64>, BatchReport) {
        let dens: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut eint: Vec<f64> = (0..n).map(|i| 1e12 * (1.0 + i as f64)).collect();
        let mut temp = vec![1e6; n];
        let abar = vec![1.0; n];
        let zbar = vec![1.0; n];
        let mut pres = vec![0.0; n];
        let mut gamc = vec![0.0; n];
        let mut game = vec![0.0; n];
        let mut b = EosBatch {
            dens: &dens,
            eint: &mut eint,
            temp: &mut temp,
            abar: &abar,
            zbar: &zbar,
            pres: &mut pres,
            gamc: &mut gamc,
            game: &mut game,
        };
        let report = eos.eos_batch(mode, &mut b).unwrap();
        (pres, temp, report)
    }

    #[test]
    fn default_fallback_matches_scalar_calls() {
        let eos = GammaLaw::new(1.4);
        let n = 7;
        let (pres, temp, report) = run_batch(&eos, EosMode::DensEi, n);
        assert_eq!(report.lanes, n as u64);
        for i in 0..n {
            let mut s = crate::EosState::co_wd(1.0 + i as f64, 1e6);
            s.abar = 1.0;
            s.zbar = 1.0;
            s.eint = 1e12 * (1.0 + i as f64);
            eos.call(EosMode::DensEi, &mut s).unwrap();
            assert_eq!(pres[i], s.pres, "lane {i} pressure");
            assert_eq!(temp[i], s.temp, "lane {i} temperature");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let eos = GammaLaw::new(1.4);
        let (_, _, report) = run_batch(&eos, EosMode::DensEi, 0);
        assert_eq!(report.lanes, 0);
        assert_eq!(report.occupancy(), 0.0);
    }

    #[test]
    fn occupancy_and_merge() {
        let mut a = BatchReport {
            lanes: 8,
            vector_lanes: 6,
            plateau_lanes: 1,
            ..Default::default()
        };
        a.iter_hist[0] = 8;
        a.iter_hist[3] = 2;
        assert!((a.occupancy() - 0.75).abs() < 1e-15);
        let mut b = BatchReport {
            lanes: 2,
            vector_lanes: 2,
            ..Default::default()
        };
        b.iter_hist[0] = 2;
        a.merge(b);
        assert_eq!(a.lanes, 10);
        assert_eq!(a.vector_lanes, 8);
        assert_eq!(a.plateau_lanes, 1);
        assert_eq!(a.iter_hist[0], 10);
        assert_eq!(a.iter_hist[3], 2);
    }

    #[test]
    fn bad_lane_aborts_the_batch() {
        let eos = GammaLaw::new(1.4);
        let dens = [1.0, -1.0];
        let mut eint = [1e12, 1e12];
        let mut temp = [0.0, 0.0];
        let abar = [1.0, 1.0];
        let zbar = [1.0, 1.0];
        let mut pres = [0.0, 0.0];
        let mut gamc = [0.0, 0.0];
        let mut game = [0.0, 0.0];
        let mut b = EosBatch {
            dens: &dens,
            eint: &mut eint,
            temp: &mut temp,
            abar: &abar,
            zbar: &zbar,
            pres: &mut pres,
            gamc: &mut gamc,
            game: &mut game,
        };
        assert!(matches!(
            eos.eos_batch(EosMode::DensEi, &mut b),
            Err(EosError::BadInput { .. })
        ));
    }
}
