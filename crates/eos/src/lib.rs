//! Equations of state for the FLASH reproduction.
//!
//! The paper's "EOS" experiment instruments FLASH's equation-of-state unit
//! while running a 2-d thermonuclear-supernova simulation: for white-dwarf
//! matter that unit is a Helmholtz-style tabulated EOS for the degenerate,
//! partially relativistic electron/positron plasma, plus ideal ions and
//! radiation. Profiling on Ookami found FLASH "spent considerable time in
//! the routines for the EOS" (§II) — it is the table-lookup-heavy, stride-y
//! kernel whose DTLB behaviour huge pages improve most (Table I).
//!
//! This crate implements that unit from scratch:
//!
//! * [`fermi`] — generalized Fermi–Dirac integrals by quadrature;
//! * [`electron`] — exact electron/positron thermodynamics built on them
//!   (chemical-potential solve for charge neutrality);
//! * [`table`] — a tabulated version on a (log ρYₑ, log T) grid with
//!   bicubic Hermite interpolation, stored in a
//!   [`rflash_hugepages::PageBuffer`] so its backing follows the huge-page
//!   policy under study;
//! * [`helmholtz`] — the full EOS (electrons + positrons + ions +
//!   radiation) with the FLASH call modes;
//! * [`gamma`] — the ideal-gas gamma-law EOS used by the Sedov problem.
//!
//! # Call interface
//!
//! The FLASH `Eos_wrapped` interface is mirrored by [`Eos::call`] with
//! [`EosMode`]: `DensTemp` evaluates directly, `DensEi` and `DensPres`
//! invert for temperature with Newton iterations.

pub mod batch;
pub mod consts;
pub mod electron;
pub mod fermi;
pub mod gamma;
pub mod helmholtz;
pub mod table;

pub use batch::{BatchReport, EosBatch};
pub use gamma::GammaLaw;
pub use helmholtz::Helmholtz;
pub use table::{HelmTable, TableConfig};

use serde::{Deserialize, Serialize};

/// Which pair of inputs is authoritative for an EOS call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EosMode {
    /// Density and temperature in; everything else out.
    DensTemp,
    /// Density and specific internal energy in; solve for temperature.
    DensEi,
    /// Density and pressure in; solve for temperature.
    DensPres,
}

/// The per-zone thermodynamic state exchanged with the EOS —
/// FLASH's `eosData` block.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EosState {
    /// Mass density, g/cm³.
    pub dens: f64,
    /// Temperature, K.
    pub temp: f64,
    /// Mean atomic mass (amu per nucleus).
    pub abar: f64,
    /// Mean nuclear charge.
    pub zbar: f64,
    /// Pressure, erg/cm³.
    pub pres: f64,
    /// Specific internal energy, erg/g.
    pub eint: f64,
    /// Specific entropy, erg/(g·K).
    pub entr: f64,
    /// First adiabatic index Γ₁ = ∂lnP/∂lnρ at constant entropy.
    pub gamc: f64,
    /// Energy-like gamma: Γₑ = 1 + P/(ρ·e).
    pub game: f64,
    /// Adiabatic sound speed, cm/s.
    pub cs: f64,
    /// Specific heat at constant volume, erg/(g·K).
    pub cv: f64,
}

impl EosState {
    /// A blank state for carbon/oxygen matter (abar=13.7, zbar=6.9 ≈ 50/50
    /// C/O by mass), the paper's white-dwarf composition.
    pub fn co_wd(dens: f64, temp: f64) -> EosState {
        EosState {
            dens,
            temp,
            abar: 13.714285714285715, // 50/50 C12/O16 by mass
            zbar: 6.857142857142857,
            pres: 0.0,
            eint: 0.0,
            entr: 0.0,
            gamc: 0.0,
            game: 0.0,
            cs: 0.0,
            cv: 0.0,
        }
    }

    /// Electron fraction Yₑ = Z̄/Ā.
    #[inline]
    pub fn ye(&self) -> f64 {
        self.zbar / self.abar
    }

    /// Recompute `game` and `cs` from (pres, eint, gamc); helper shared by
    /// EOS implementations.
    pub(crate) fn finish_derived(&mut self) {
        self.game = 1.0 + self.pres / (self.dens * self.eint).max(f64::MIN_POSITIVE);
        self.cs = (self.gamc * self.pres / self.dens).max(0.0).sqrt();
    }
}

/// Errors from EOS evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EosError {
    /// Inputs outside the validity/table domain.
    OutOfRange {
        what: &'static str,
        value: f64,
        lo: f64,
        hi: f64,
    },
    /// The Newton/bisection inversion failed to converge.
    NoConvergence { mode: &'static str, residual: f64 },
    /// Non-physical input (negative density etc.).
    BadInput { what: &'static str, value: f64 },
    /// Backing-store allocation for a table failed.
    Allocation { what: &'static str, detail: String },
}

impl std::fmt::Display for EosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EosError::OutOfRange {
                what,
                value,
                lo,
                hi,
            } => write!(f, "{what}={value:e} outside [{lo:e}, {hi:e}]"),
            EosError::NoConvergence { mode, residual } => {
                write!(f, "{mode} inversion failed to converge (residual {residual:e})")
            }
            EosError::BadInput { what, value } => write!(f, "bad input {what}={value:e}"),
            EosError::Allocation { what, detail } => {
                write!(f, "allocating {what} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for EosError {}

/// The EOS interface FLASH's physics units call.
pub trait Eos: Send + Sync {
    /// Evaluate/invert the state in place according to `mode`.
    fn call(&self, mode: EosMode, state: &mut EosState) -> Result<(), EosError>;

    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Evaluate/invert a whole batch of zones at once (FLASH's `eosvector`).
    ///
    /// The default implementation is the per-zone fallback guaranteed by the
    /// [`batch`] contract: it loops [`Eos::call`] over the lanes and reports
    /// `vector_lanes: 0`. Implementations with a vectorizable kernel
    /// (notably [`Helmholtz`]) override it; callers may rely on the outputs
    /// being bit-identical to per-zone calls either way.
    fn eos_batch(&self, mode: EosMode, b: &mut EosBatch<'_>) -> Result<BatchReport, EosError> {
        let lanes = b.lanes();
        for l in 0..lanes {
            let mut s = EosState {
                dens: b.dens[l],
                temp: b.temp[l],
                abar: b.abar[l],
                zbar: b.zbar[l],
                pres: b.pres[l],
                eint: b.eint[l],
                entr: 0.0,
                gamc: 0.0,
                game: 0.0,
                cs: 0.0,
                cv: 0.0,
            };
            self.call(mode, &mut s)?;
            b.temp[l] = s.temp;
            b.pres[l] = s.pres;
            b.eint[l] = s.eint;
            b.gamc[l] = s.gamc;
            b.game[l] = s.game;
        }
        Ok(BatchReport {
            lanes: lanes as u64,
            vector_lanes: 0,
            ..Default::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn co_wd_composition() {
        let s = EosState::co_wd(1e9, 1e8);
        // 50/50 C/O: Ye is exactly 0.5.
        assert!((s.ye() - 0.5).abs() < 1e-12);
        assert_eq!(s.dens, 1e9);
    }

    #[test]
    fn finish_derived_sets_game_and_cs() {
        let mut s = EosState::co_wd(1.0, 1.0);
        s.pres = 2.0;
        s.eint = 3.0;
        s.gamc = 1.5;
        s.finish_derived();
        assert!((s.game - (1.0 + 2.0 / 3.0)).abs() < 1e-12);
        assert!((s.cs - (1.5 * 2.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn errors_display() {
        let e = EosError::OutOfRange {
            what: "temp",
            value: 1e14,
            lo: 1e3,
            hi: 1e13,
        };
        assert!(e.to_string().contains("temp"));
        let e = EosError::NoConvergence {
            mode: "DensEi",
            residual: 1e-3,
        };
        assert!(e.to_string().contains("DensEi"));
    }
}
