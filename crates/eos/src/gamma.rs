//! Ideal-gas gamma-law EOS — FLASH's default for pure-hydro test problems
//! like the Sedov explosion (the paper's "3-d Hydro" test).

use crate::consts::{K_B, N_A};
use crate::{BatchReport, Eos, EosBatch, EosError, EosMode, EosState};

/// P = (γ−1) ρ e, with temperature defined through the ideal-gas specific
/// heat c_v = Nₐ k / (Ā (γ−1)).
#[derive(Clone, Copy, Debug)]
pub struct GammaLaw {
    gamma: f64,
}

impl GammaLaw {
    /// # Panics
    /// `gamma` must exceed 1 (otherwise c_v and the sound speed are
    /// undefined).
    pub fn new(gamma: f64) -> GammaLaw {
        assert!(gamma > 1.0, "gamma-law EOS requires gamma > 1");
        GammaLaw { gamma }
    }

    /// The adiabatic index.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    fn cv(&self, abar: f64) -> f64 {
        N_A * K_B / (abar * (self.gamma - 1.0))
    }
}

impl Default for GammaLaw {
    /// The monatomic-gas 5/3 used by the FLASH Sedov setup.
    fn default() -> Self {
        GammaLaw::new(5.0 / 3.0)
    }
}

impl Eos for GammaLaw {
    fn call(&self, mode: EosMode, s: &mut EosState) -> Result<(), EosError> {
        if !(s.dens.is_finite() && s.dens > 0.0) {
            return Err(EosError::BadInput {
                what: "dens",
                value: s.dens,
            });
        }
        let cv = self.cv(s.abar);
        match mode {
            EosMode::DensTemp => {
                if s.temp.is_nan() || s.temp <= 0.0 {
                    return Err(EosError::BadInput {
                        what: "temp",
                        value: s.temp,
                    });
                }
                s.eint = cv * s.temp;
            }
            EosMode::DensEi => {
                if s.eint.is_nan() || s.eint <= 0.0 {
                    return Err(EosError::BadInput {
                        what: "eint",
                        value: s.eint,
                    });
                }
                s.temp = s.eint / cv;
            }
            EosMode::DensPres => {
                if s.pres.is_nan() || s.pres <= 0.0 {
                    return Err(EosError::BadInput {
                        what: "pres",
                        value: s.pres,
                    });
                }
                s.eint = s.pres / ((self.gamma - 1.0) * s.dens);
                s.temp = s.eint / cv;
            }
        }
        s.pres = (self.gamma - 1.0) * s.dens * s.eint;
        s.cv = cv;
        s.gamc = self.gamma;
        s.entr = cv * (s.temp.max(f64::MIN_POSITIVE).ln()
            - (self.gamma - 1.0) * s.dens.ln());
        s.finish_derived();
        Ok(())
    }

    fn name(&self) -> &'static str {
        "gamma-law"
    }

    /// Branch-light lane loops. Entropy is not an [`EosBatch`] output, so
    /// the two `ln` calls of the scalar path are skipped; every output lane
    /// is bit-identical to `call` (same expressions, same order).
    fn eos_batch(&self, mode: EosMode, b: &mut EosBatch<'_>) -> Result<BatchReport, EosError> {
        let lanes = b.lanes();
        for l in 0..lanes {
            let dens = b.dens[l];
            if !(dens.is_finite() && dens > 0.0) {
                return Err(EosError::BadInput {
                    what: "dens",
                    value: dens,
                });
            }
            match mode {
                EosMode::DensTemp => {
                    if b.temp[l].is_nan() || b.temp[l] <= 0.0 {
                        return Err(EosError::BadInput {
                            what: "temp",
                            value: b.temp[l],
                        });
                    }
                }
                EosMode::DensEi => {
                    if b.eint[l].is_nan() || b.eint[l] <= 0.0 {
                        return Err(EosError::BadInput {
                            what: "eint",
                            value: b.eint[l],
                        });
                    }
                }
                EosMode::DensPres => {
                    if b.pres[l].is_nan() || b.pres[l] <= 0.0 {
                        return Err(EosError::BadInput {
                            what: "pres",
                            value: b.pres[l],
                        });
                    }
                }
            }
        }
        let gm1 = self.gamma - 1.0;
        match mode {
            EosMode::DensTemp => {
                for l in 0..lanes {
                    b.eint[l] = self.cv(b.abar[l]) * b.temp[l];
                }
            }
            EosMode::DensEi => {
                for l in 0..lanes {
                    b.temp[l] = b.eint[l] / self.cv(b.abar[l]);
                }
            }
            EosMode::DensPres => {
                for l in 0..lanes {
                    b.eint[l] = b.pres[l] / (gm1 * b.dens[l]);
                    b.temp[l] = b.eint[l] / self.cv(b.abar[l]);
                }
            }
        }
        for l in 0..lanes {
            b.pres[l] = gm1 * b.dens[l] * b.eint[l];
            b.gamc[l] = self.gamma;
            b.game[l] = 1.0 + b.pres[l] / (b.dens[l] * b.eint[l]).max(f64::MIN_POSITIVE);
        }
        Ok(BatchReport {
            lanes: lanes as u64,
            vector_lanes: lanes as u64,
            ..Default::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> EosState {
        let mut s = EosState::co_wd(1.0, 0.0);
        s.abar = 1.0;
        s.zbar = 1.0;
        s
    }

    #[test]
    fn dens_temp_gives_ideal_gas_pressure() {
        let eos = GammaLaw::default();
        let mut s = state();
        s.temp = 1e6;
        eos.call(EosMode::DensTemp, &mut s).unwrap();
        let expect = s.dens * N_A * K_B * s.temp / s.abar;
        assert!((s.pres - expect).abs() / expect < 1e-12);
        assert!((s.game - eos.gamma()).abs() < 1e-12);
        assert!(s.cs > 0.0);
    }

    #[test]
    fn modes_round_trip() {
        let eos = GammaLaw::new(1.4);
        let mut s = state();
        s.temp = 3e7;
        eos.call(EosMode::DensTemp, &mut s).unwrap();
        let (p0, e0, t0) = (s.pres, s.eint, s.temp);

        // Perturb temp, recover it from energy.
        s.temp = 0.0;
        eos.call(EosMode::DensEi, &mut s).unwrap();
        assert!((s.temp - t0).abs() / t0 < 1e-12);

        // Recover from pressure.
        s.temp = 0.0;
        s.eint = 0.0;
        s.pres = p0;
        eos.call(EosMode::DensPres, &mut s).unwrap();
        assert!((s.eint - e0).abs() / e0 < 1e-12);
        assert!((s.temp - t0).abs() / t0 < 1e-12);
    }

    #[test]
    fn sound_speed_formula() {
        let eos = GammaLaw::default();
        let mut s = state();
        s.dens = 2.0;
        s.temp = 1e6;
        eos.call(EosMode::DensTemp, &mut s).unwrap();
        let expect = (eos.gamma() * s.pres / s.dens).sqrt();
        assert!((s.cs - expect).abs() / expect < 1e-14);
    }

    #[test]
    fn entropy_increases_with_temperature() {
        let eos = GammaLaw::default();
        let mut a = state();
        a.temp = 1e6;
        eos.call(EosMode::DensTemp, &mut a).unwrap();
        let mut b = state();
        b.temp = 1e7;
        eos.call(EosMode::DensTemp, &mut b).unwrap();
        assert!(b.entr > a.entr);
    }

    #[test]
    fn bad_inputs_rejected() {
        let eos = GammaLaw::default();
        let mut s = state();
        s.dens = -1.0;
        assert!(eos.call(EosMode::DensTemp, &mut s).is_err());
        let mut s = state();
        s.temp = 0.0;
        assert!(eos.call(EosMode::DensTemp, &mut s).is_err());
        let mut s = state();
        s.eint = -5.0;
        assert!(eos.call(EosMode::DensEi, &mut s).is_err());
    }

    #[test]
    #[should_panic(expected = "gamma > 1")]
    fn gamma_must_exceed_one() {
        let _ = GammaLaw::new(1.0);
    }

    #[test]
    fn batched_lanes_are_bit_exact_vs_scalar() {
        let eos = GammaLaw::new(1.4);
        for mode in [EosMode::DensTemp, EosMode::DensEi, EosMode::DensPres] {
            let n = 9;
            let dens: Vec<f64> = (0..n).map(|i| 0.5 + 0.37 * i as f64).collect();
            let mut eint: Vec<f64> = (0..n).map(|i| 1e12 * (1.0 + 0.11 * i as f64)).collect();
            let mut temp: Vec<f64> = (0..n).map(|i| 1e6 * (1.0 + 0.07 * i as f64)).collect();
            let abar: Vec<f64> = (0..n).map(|i| 1.0 + 0.2 * i as f64).collect();
            let zbar = vec![1.0; n];
            let mut pres: Vec<f64> = (0..n).map(|i| 1e11 * (1.0 + 0.13 * i as f64)).collect();
            let mut gamc = vec![0.0; n];
            let mut game = vec![0.0; n];

            let mut scalar = Vec::new();
            for l in 0..n {
                let mut s = state();
                s.dens = dens[l];
                s.temp = temp[l];
                s.abar = abar[l];
                s.eint = eint[l];
                s.pres = pres[l];
                eos.call(mode, &mut s).unwrap();
                scalar.push(s);
            }

            let mut b = EosBatch {
                dens: &dens,
                eint: &mut eint,
                temp: &mut temp,
                abar: &abar,
                zbar: &zbar,
                pres: &mut pres,
                gamc: &mut gamc,
                game: &mut game,
            };
            let report = eos.eos_batch(mode, &mut b).unwrap();
            assert_eq!(report.vector_lanes, n as u64, "{mode:?}");
            for l in 0..n {
                assert_eq!(temp[l], scalar[l].temp, "{mode:?} lane {l} temp");
                assert_eq!(eint[l], scalar[l].eint, "{mode:?} lane {l} eint");
                assert_eq!(pres[l], scalar[l].pres, "{mode:?} lane {l} pres");
                assert_eq!(gamc[l], scalar[l].gamc, "{mode:?} lane {l} gamc");
                assert_eq!(game[l], scalar[l].game, "{mode:?} lane {l} game");
            }
        }
    }
}
