//! Ideal-gas gamma-law EOS — FLASH's default for pure-hydro test problems
//! like the Sedov explosion (the paper's "3-d Hydro" test).

use crate::consts::{K_B, N_A};
use crate::{Eos, EosError, EosMode, EosState};

/// P = (γ−1) ρ e, with temperature defined through the ideal-gas specific
/// heat c_v = Nₐ k / (Ā (γ−1)).
#[derive(Clone, Copy, Debug)]
pub struct GammaLaw {
    gamma: f64,
}

impl GammaLaw {
    /// # Panics
    /// `gamma` must exceed 1 (otherwise c_v and the sound speed are
    /// undefined).
    pub fn new(gamma: f64) -> GammaLaw {
        assert!(gamma > 1.0, "gamma-law EOS requires gamma > 1");
        GammaLaw { gamma }
    }

    /// The adiabatic index.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    fn cv(&self, abar: f64) -> f64 {
        N_A * K_B / (abar * (self.gamma - 1.0))
    }
}

impl Default for GammaLaw {
    /// The monatomic-gas 5/3 used by the FLASH Sedov setup.
    fn default() -> Self {
        GammaLaw::new(5.0 / 3.0)
    }
}

impl Eos for GammaLaw {
    fn call(&self, mode: EosMode, s: &mut EosState) -> Result<(), EosError> {
        if !(s.dens.is_finite() && s.dens > 0.0) {
            return Err(EosError::BadInput {
                what: "dens",
                value: s.dens,
            });
        }
        let cv = self.cv(s.abar);
        match mode {
            EosMode::DensTemp => {
                if s.temp.is_nan() || s.temp <= 0.0 {
                    return Err(EosError::BadInput {
                        what: "temp",
                        value: s.temp,
                    });
                }
                s.eint = cv * s.temp;
            }
            EosMode::DensEi => {
                if s.eint.is_nan() || s.eint <= 0.0 {
                    return Err(EosError::BadInput {
                        what: "eint",
                        value: s.eint,
                    });
                }
                s.temp = s.eint / cv;
            }
            EosMode::DensPres => {
                if s.pres.is_nan() || s.pres <= 0.0 {
                    return Err(EosError::BadInput {
                        what: "pres",
                        value: s.pres,
                    });
                }
                s.eint = s.pres / ((self.gamma - 1.0) * s.dens);
                s.temp = s.eint / cv;
            }
        }
        s.pres = (self.gamma - 1.0) * s.dens * s.eint;
        s.cv = cv;
        s.gamc = self.gamma;
        s.entr = cv * (s.temp.max(f64::MIN_POSITIVE).ln()
            - (self.gamma - 1.0) * s.dens.ln());
        s.finish_derived();
        Ok(())
    }

    fn name(&self) -> &'static str {
        "gamma-law"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> EosState {
        let mut s = EosState::co_wd(1.0, 0.0);
        s.abar = 1.0;
        s.zbar = 1.0;
        s
    }

    #[test]
    fn dens_temp_gives_ideal_gas_pressure() {
        let eos = GammaLaw::default();
        let mut s = state();
        s.temp = 1e6;
        eos.call(EosMode::DensTemp, &mut s).unwrap();
        let expect = s.dens * N_A * K_B * s.temp / s.abar;
        assert!((s.pres - expect).abs() / expect < 1e-12);
        assert!((s.game - eos.gamma()).abs() < 1e-12);
        assert!(s.cs > 0.0);
    }

    #[test]
    fn modes_round_trip() {
        let eos = GammaLaw::new(1.4);
        let mut s = state();
        s.temp = 3e7;
        eos.call(EosMode::DensTemp, &mut s).unwrap();
        let (p0, e0, t0) = (s.pres, s.eint, s.temp);

        // Perturb temp, recover it from energy.
        s.temp = 0.0;
        eos.call(EosMode::DensEi, &mut s).unwrap();
        assert!((s.temp - t0).abs() / t0 < 1e-12);

        // Recover from pressure.
        s.temp = 0.0;
        s.eint = 0.0;
        s.pres = p0;
        eos.call(EosMode::DensPres, &mut s).unwrap();
        assert!((s.eint - e0).abs() / e0 < 1e-12);
        assert!((s.temp - t0).abs() / t0 < 1e-12);
    }

    #[test]
    fn sound_speed_formula() {
        let eos = GammaLaw::default();
        let mut s = state();
        s.dens = 2.0;
        s.temp = 1e6;
        eos.call(EosMode::DensTemp, &mut s).unwrap();
        let expect = (eos.gamma() * s.pres / s.dens).sqrt();
        assert!((s.cs - expect).abs() / expect < 1e-14);
    }

    #[test]
    fn entropy_increases_with_temperature() {
        let eos = GammaLaw::default();
        let mut a = state();
        a.temp = 1e6;
        eos.call(EosMode::DensTemp, &mut a).unwrap();
        let mut b = state();
        b.temp = 1e7;
        eos.call(EosMode::DensTemp, &mut b).unwrap();
        assert!(b.entr > a.entr);
    }

    #[test]
    fn bad_inputs_rejected() {
        let eos = GammaLaw::default();
        let mut s = state();
        s.dens = -1.0;
        assert!(eos.call(EosMode::DensTemp, &mut s).is_err());
        let mut s = state();
        s.temp = 0.0;
        assert!(eos.call(EosMode::DensTemp, &mut s).is_err());
        let mut s = state();
        s.eint = -5.0;
        assert!(eos.call(EosMode::DensEi, &mut s).is_err());
    }

    #[test]
    #[should_panic(expected = "gamma > 1")]
    fn gamma_must_exceed_one() {
        let _ = GammaLaw::new(1.0);
    }
}
