//! E6: the `unk` layout ablation — the paper's §I.C motivation. DTLB misses
//! (modeled) and real sweep time for the FLASH layout (`VarFirst`,
//! var-interleaved) versus SoA (`VarLast`), under base and huge frames.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rflash_hugepages::Policy;
use rflash_mesh::{Layout, UnkStorage};
use rflash_tlbsim::{FrameSizing, Tlb, TlbConfig};

const NXB: usize = 16;
const BLOCKS: usize = 128;

fn sweep_var_real(unk: &mut UnkStorage, var: usize) -> f64 {
    // Real memory traffic: read one variable over every interior zone of
    // every block (the paper's strided pattern).
    let mut acc = 0.0;
    for blk in 0..BLOCKS {
        for k in unk.interior_k() {
            for j in unk.interior() {
                for i in unk.interior() {
                    acc += unk.get(var, i, j, k, blk);
                }
            }
        }
    }
    acc
}

fn bench_layout_real_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("unk_layout_sweep_time");
    group.throughput(criterion::Throughput::Elements(
        (BLOCKS * NXB * NXB * NXB) as u64,
    ));
    for layout in [Layout::VarFirst, Layout::VarLast] {
        for policy in [Policy::None, Policy::HugeTlbFs(rflash_hugepages::PageSize::Huge2M)] {
            let mut unk = UnkStorage::new(3, NXB, 4, 11, BLOCKS, layout, policy);
            let name = format!("{layout:?}/{policy}");
            group.bench_function(BenchmarkId::new("dens_sweep", name), |b| {
                b.iter(|| black_box(sweep_var_real(&mut unk, 0)))
            });
        }
    }
    group.finish();
}

fn bench_layout_modeled_misses(c: &mut Criterion) {
    let mut group = c.benchmark_group("unk_layout_modeled_dtlb");
    group.sample_size(10);
    for layout in [Layout::VarFirst, Layout::VarLast] {
        for (fname, sizing) in [
            ("base", FrameSizing::Base),
            ("huge2M", FrameSizing::huge(2 << 20)),
        ] {
            let unk = UnkStorage::new(3, NXB, 4, 11, BLOCKS, layout, Policy::None);
            let geom = unk.geom();
            group.bench_function(BenchmarkId::new(fname, format!("{layout:?}")), |b| {
                b.iter(|| {
                    let mut tlb = Tlb::new(TlbConfig::a64fx_like());
                    tlb.map_region(unk.base_addr(), unk.bytes(), sizing);
                    for blk in 0..BLOCKS {
                        for k in unk.interior_k() {
                            for j in unk.interior() {
                                geom.pencil_pattern(0, 0, j, k, blk).replay(&mut tlb);
                            }
                        }
                    }
                    black_box(tlb.stats().walks)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_layout_real_time, bench_layout_modeled_misses);
criterion_main!(benches);
