//! E7: TLB-model microbenchmarks — the mechanism behind Figure 1.
//!
//! `tlb_reach_crossover` sweeps the working set across the A64FX-like TLB
//! reach for base and 2 MiB frames: the miss-count crossover explains both
//! paper ratios (EOS footprint ≈ huge reach ⇒ ratio ≈ 0; the paper's
//! multi-GB 3-d hydro footprint ≫ huge reach ⇒ ratio ≈ 0.3).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rflash_tlbsim::{FrameSizing, Tlb, TlbConfig};

fn strided_walk(tlb: &mut Tlb, base: usize, len: usize, stride: usize) -> u64 {
    let mut addr = base;
    while addr < base + len {
        tlb.touch(addr);
        addr += stride;
    }
    tlb.stats().walks
}

fn bench_reach_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_reach_crossover");
    group.sample_size(10);
    for mib in [1usize, 4, 16, 64] {
        let len = mib << 20;
        for (label, sizing) in [
            ("base", FrameSizing::Base),
            ("huge2M", FrameSizing::huge(2 << 20)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{mib}MiB")),
                &len,
                |b, &len| {
                    b.iter(|| {
                        let mut tlb = Tlb::new(TlbConfig::a64fx_like());
                        tlb.map_region(0, len, sizing);
                        strided_walk(&mut tlb, 0, len, 88); // warm
                        black_box(strided_walk(&mut tlb, 0, len, 88))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_touch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_touch_throughput");
    group.throughput(criterion::Throughput::Elements(1 << 16));
    group.bench_function("sequential_64k_touches", |b| {
        let mut tlb = Tlb::new(TlbConfig::a64fx_like());
        tlb.map_region(0, 1 << 30, FrameSizing::Base);
        b.iter(|| {
            for i in 0..(1usize << 16) {
                tlb.touch(black_box(i * 64));
            }
        })
    });
    group.bench_function("random_64k_touches", |b| {
        let mut tlb = Tlb::new(TlbConfig::a64fx_like());
        tlb.map_region(0, 1 << 30, FrameSizing::Base);
        let mut state = 0x243F6A8885A308D3u64;
        b.iter(|| {
            for _ in 0..(1 << 16) {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                tlb.touch(black_box((state as usize) & ((1 << 30) - 1)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reach_crossover, bench_touch_throughput);
criterion_main!(benches);
