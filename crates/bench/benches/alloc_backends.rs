//! E5 (timed side): allocation-backend comparison on *real* memory — the
//! fault-in cost and a page-granular strided read under each policy. The
//! kernel-verification side lives in the `backend_matrix` binary.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rflash_hugepages::{MmapRegion, PageSize, Policy};

fn bench_fault_in(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_fault_in_128MiB");
    group.sample_size(10);
    for policy in [
        Policy::None,
        Policy::Thp,
        Policy::HugeTlbFs(PageSize::Huge2M),
    ] {
        group.bench_function(BenchmarkId::from_parameter(policy), |b| {
            b.iter(|| {
                let mut r = MmapRegion::new(128 << 20, policy).unwrap();
                black_box(r.fault_in())
            })
        });
    }
    group.finish();
}

fn bench_page_strided_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_strided_read_128MiB");
    for policy in [
        Policy::None,
        Policy::Thp,
        Policy::HugeTlbFs(PageSize::Huge2M),
    ] {
        let mut r = MmapRegion::new(128 << 20, policy).unwrap();
        r.fault_in();
        group.bench_function(BenchmarkId::from_parameter(policy), |b| {
            let s = r.as_slice();
            b.iter(|| {
                let mut acc = 0u8;
                // One read per 4 KiB page + offset to dodge the prefetcher:
                // pure TLB exercise, the paper's phenomenon on real silicon.
                let mut i = 0;
                while i < s.len() {
                    acc = acc.wrapping_add(s[i]);
                    i += 4096 + 64;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_in, bench_page_strided_read);
criterion_main!(benches);
