//! E8: EOS kernel cost — the paper's Arm MAP observation that "FLASH spent
//! considerable time in the routines for the EOS". Compares per-zone costs
//! of the gamma-law and Helmholtz EOS (table lookup + Newton inversion) and
//! the exact Fermi–Dirac solve the table caches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rflash_eos::{electron, Eos, EosMode, EosState, GammaLaw, Helmholtz, TableConfig};
use rflash_hugepages::Policy;

fn states(n: usize) -> Vec<EosState> {
    // A spread of supernova-like conditions (deterministic).
    (0..n)
        .map(|i| {
            let f = i as f64 / n as f64;
            EosState::co_wd(10f64.powf(4.0 + 5.0 * f), 10f64.powf(7.0 + 2.0 * f))
        })
        .collect()
}

fn bench_eos(c: &mut Criterion) {
    let helm = Helmholtz::build(TableConfig::default(), Policy::None).unwrap();
    let gamma = GammaLaw::new(5.0 / 3.0);
    let mut group = c.benchmark_group("eos_per_zone");
    group.throughput(criterion::Throughput::Elements(256));

    group.bench_function("gamma_dens_temp", |b| {
        let mut zs = states(256);
        b.iter(|| {
            for s in zs.iter_mut() {
                gamma.call(EosMode::DensTemp, black_box(s)).unwrap();
            }
        })
    });
    group.bench_function("helmholtz_dens_temp", |b| {
        let mut zs = states(256);
        b.iter(|| {
            for s in zs.iter_mut() {
                helm.call(EosMode::DensTemp, black_box(s)).unwrap();
            }
        })
    });
    group.bench_function("helmholtz_dens_ei_newton", |b| {
        let mut zs = states(256);
        for s in zs.iter_mut() {
            helm.call(EosMode::DensTemp, s).unwrap();
        }
        b.iter(|| {
            for s in zs.iter_mut() {
                s.temp *= 1.5; // stale guess, forces Newton work
                helm.call(EosMode::DensEi, black_box(s)).unwrap();
            }
        })
    });
    group.bench_function("exact_fermi_dirac_solve", |b| {
        b.iter(|| {
            black_box(electron::electron_state(black_box(1e7), black_box(1e8)).unwrap());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_eos);
criterion_main!(benches);
