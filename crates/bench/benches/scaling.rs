//! Rank-pool scaling microbenchmark: full time steps on a fixed 2-d Sedov
//! mesh at nranks ∈ {1, 2, 4, 8}. Regridding is disabled so every rank
//! count steps the identical block list and the cached partition is built
//! exactly once — the measurement isolates the executor, not the AMR.
//!
//! On a single hardware core the simulated ranks time-slice and the curve
//! is flat (or slightly worse from dispatch overhead); on a multi-core
//! host the same binary shows the pool's speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rflash_core::setups::sedov::SedovSetup;
use rflash_core::RuntimeParams;
use rflash_hugepages::Policy;

fn bench_step_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_scaling");
    group.sample_size(10);
    for nranks in [1usize, 2, 4, 8] {
        let setup = SedovSetup {
            ndim: 2,
            nxb: 16,
            max_refine: 3,
            max_blocks: 1024,
            ..SedovSetup::default()
        };
        let mut sim = setup.build(RuntimeParams {
            policy: Policy::None,
            nranks,
            regrid_every: 0,
            pattern_every: 0,
            gather_every: 0,
            ..RuntimeParams::with_mesh(setup.mesh_config())
        });
        // Warm the pool, the cached partition, and the shock profile.
        sim.evolve(2);
        group.bench_function(BenchmarkId::from_parameter(format!("nranks_{nranks}")), |b| {
            b.iter(|| sim.step())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step_scaling);
criterion_main!(benches);
