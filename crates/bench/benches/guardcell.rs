//! Mesh-operation microbenchmarks: guard-cell fill and refinement — the
//! PARAMESH overheads that frame the per-step cost around the instrumented
//! regions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rflash_hugepages::Policy;
use rflash_mesh::guardcell::fill_guardcells;
use rflash_mesh::tree::{Mark, MeshConfig};
use rflash_mesh::{vars, Domain};
use std::collections::HashMap;

fn refined_domain(levels: u8) -> Domain {
    let mut cfg = MeshConfig::test_2d();
    cfg.nxb = 16;
    cfg.max_blocks = 4096;
    // Headroom above the pre-refined depth: the refine/derefine cycle
    // bench pushes one block a level deeper.
    cfg.max_refine = levels + 1;
    let mut d = Domain::new(cfg, Policy::None);
    for _ in 0..levels {
        let marks: HashMap<_, _> = d
            .tree
            .leaves()
            .into_iter()
            .map(|id| (id, Mark::Refine))
            .collect();
        d.tree.adapt(&mut d.unk, &marks);
    }
    // Fill with smooth data.
    for id in d.tree.leaves() {
        for j in d.unk.interior() {
            for i in d.unk.interior() {
                let x = d.tree.cell_center(id, i, j, 0);
                d.unk
                    .set(vars::DENS, i, j, 0, id.idx(), 1.0 + x[0] + 2.0 * x[1]);
            }
        }
    }
    d
}

fn bench_guardcell_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("guardcell_fill");
    group.sample_size(20);
    for levels in [2u8, 3] {
        let mut d = refined_domain(levels);
        let leaves = d.tree.leaves().len();
        group.bench_function(BenchmarkId::from_parameter(format!("{leaves}_leaves")), |b| {
            b.iter(|| fill_guardcells(black_box(&d.tree), &mut d.unk))
        });
    }
    group.finish();
}

fn bench_refine_derefine_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine_derefine");
    group.sample_size(20);
    group.bench_function("one_block_cycle", |b| {
        let mut d = refined_domain(1);
        let target = d.tree.leaves()[0];
        b.iter(|| {
            let children = d.tree.refine_block(target, &mut d.unk);
            black_box(&children);
            d.tree.derefine_block(target, &mut d.unk);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_guardcell_fill, bench_refine_derefine_cycle);
criterion_main!(benches);
