//! Exercise the step guardian end to end and *assert* its contract, for
//! CI's guardian fault-matrix job.
//!
//! The fault plan comes from `RFLASH_FAULTS` (see `rflash-hugepages`), so a
//! fresh process per (site, retry-budget) cell keeps the per-site call
//! counters deterministic. Three modes:
//!
//! * `--require-recovery` — the run must complete, with ≥ 1 recorded
//!   rollback or retry whenever a fault plan is active, and the final state
//!   must be bit-identical to a fault-free reference run (the retry ladder
//!   re-attempts transient corruption at the *same* dt, so recovery is
//!   exact, not merely plausible).
//! * `--require-abort` — the run must fail with a typed `StepError`, after
//!   writing an emergency checkpoint that verifies via `read_checkpoint`.
//! * `--overhead` — no faults: time the clean path with the guardian on
//!   vs. off and append the ratio to `BENCH_guardian.json` (EXPERIMENTS.md
//!   E14 tracks the <2% target on the 3-d Sedov workload).
//!
//! Exit codes: 0 = contract held, 1 = contract violated, 2 = usage error.
//! This binary never panics on a guardian failure — panicking on the exact
//! path whose job is not to panic would be self-defeating.

use std::time::Instant;

use rflash_core::checkpoint::read_checkpoint;
use rflash_core::setups::sedov::SedovSetup;
use rflash_core::{CheckpointSeries, GuardianConfig, RuntimeParams, Simulation};
use rflash_hugepages::faults::FaultPlan;
use rflash_hugepages::Policy;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct GuardianRecord {
    git_rev: String,
    host: String,
    steps: u64,
    s_guarded: f64,
    s_unguarded: f64,
    /// (guarded − unguarded) / unguarded; the E14 target is < 0.02.
    overhead: f64,
}

fn sedov_sim(retries: u32) -> Simulation {
    let setup = SedovSetup {
        ndim: 3,
        nxb: 8,
        max_refine: 2,
        max_blocks: 256,
        ..SedovSetup::default()
    };
    setup.build(RuntimeParams {
        policy: Policy::None,
        pattern_every: 0,
        gather_every: 0,
        use_hw: false,
        nranks: 2,
        guardian: GuardianConfig {
            max_retries: retries,
            ..GuardianConfig::default()
        },
        ..RuntimeParams::with_mesh(setup.mesh_config())
    })
}

/// Bit pattern of every interior zone of every variable — the "identical
/// final state" witness.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for id in sim.domain.tree.leaves() {
        for v in 0..sim.domain.unk.nvar() {
            for k in sim.domain.unk.interior_k() {
                for j in sim.domain.unk.interior() {
                    for i in sim.domain.unk.interior() {
                        bits.push(sim.domain.unk.get(v, i, j, k, id.idx()).to_bits());
                    }
                }
            }
        }
    }
    bits
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rflash-guardian-drill-{}-{tag}", std::process::id()))
}

fn require_recovery(retries: u32, steps: u64) -> i32 {
    let faults_active = std::env::var("RFLASH_FAULTS").is_ok_and(|v| !v.trim().is_empty());
    let mut sim = sedov_sim(retries);
    for n in 0..steps {
        match sim.try_step() {
            Ok(_) => {}
            Err(e) => {
                eprintln!("FAIL: step {n} aborted where recovery was required: {e}");
                println!("{}", sim.guardian_stats);
                return 1;
            }
        }
    }
    println!("{}", sim.guardian_stats);
    let g = &sim.guardian_stats;
    if faults_active && g.rollbacks == 0 && g.retries == 0 {
        eprintln!("FAIL: fault plan active but the guardian never intervened");
        return 1;
    }
    if g.validations < steps {
        eprintln!(
            "FAIL: {} validation scans for {steps} steps — the guardian skipped steps",
            g.validations
        );
        return 1;
    }

    // Reference: identical run with the env fault plan shadowed by an
    // empty TLS plan (thread-locals take precedence over RFLASH_FAULTS).
    let reference_bits = {
        let _quiet = FaultPlan::new(0).activate();
        let mut r = sedov_sim(retries);
        for n in 0..steps {
            if let Err(e) = r.try_step() {
                eprintln!("FAIL: fault-free reference run died at step {n}: {e}");
                return 1;
            }
        }
        if !r.guardian_stats.clean() {
            eprintln!("FAIL: guardian intervened on the fault-free reference run");
            return 1;
        }
        state_bits(&r)
    };
    if state_bits(&sim) != reference_bits {
        eprintln!("FAIL: recovered state differs from the fault-free run");
        return 1;
    }
    println!(
        "OK: {steps} steps, {} rollback(s), {} retry(ies), final state bit-identical to fault-free",
        g.rollbacks, g.retries
    );
    0
}

fn require_abort(retries: u32, steps: u64) -> i32 {
    let dir = scratch_dir("abort");
    let _ = std::fs::remove_dir_all(&dir);
    let series = CheckpointSeries::new(&dir, "emergency");
    let mut sim = sedov_sim(retries);
    sim.emergency_series = Some(series);
    let mut failure = None;
    for _ in 0..steps {
        match sim.try_step() {
            Ok(_) => {}
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    println!("{}", sim.guardian_stats);
    let Some(err) = failure else {
        eprintln!("FAIL: run completed where a typed abort was required");
        let _ = std::fs::remove_dir_all(&dir);
        return 1;
    };
    println!("typed error: {err}");
    if sim.guardian_stats.aborts == 0 {
        eprintln!("FAIL: step errored but GuardianStats recorded no abort");
        let _ = std::fs::remove_dir_all(&dir);
        return 1;
    }
    let ckpt = match &err {
        rflash_core::StepError::BadDt {
            emergency_checkpoint,
            ..
        }
        | rflash_core::StepError::Unphysical {
            emergency_checkpoint,
            ..
        } => emergency_checkpoint.clone(),
        rflash_core::StepError::Checkpoint(_) => None,
    };
    let Some(path) = ckpt else {
        eprintln!("FAIL: abort carried no emergency checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
        return 1;
    };
    match read_checkpoint(&path) {
        Ok(state) => {
            if state.step != sim.step {
                eprintln!(
                    "FAIL: emergency checkpoint at step {} but the simulation committed {}",
                    state.step, sim.step
                );
                let _ = std::fs::remove_dir_all(&dir);
                return 1;
            }
            println!(
                "OK: typed abort, readable emergency checkpoint of committed step {} at {}",
                state.step,
                path.display()
            );
            let _ = std::fs::remove_dir_all(&dir);
            0
        }
        Err(e) => {
            eprintln!("FAIL: emergency checkpoint unreadable: {e}");
            let _ = std::fs::remove_dir_all(&dir);
            1
        }
    }
}

fn overhead(steps: u64) -> i32 {
    // Shadow any env fault plan: overhead is a clean-path number.
    let _quiet = FaultPlan::new(0).activate();

    // Warm-up run so allocators and the rank pool are paid for outside
    // the timed region.
    let mut warm = sedov_sim(2);
    warm.evolve(3);

    let mut on = sedov_sim(2);
    let t = Instant::now();
    on.evolve(steps);
    let s_guarded = t.elapsed().as_secs_f64();

    let mut off = sedov_sim(2);
    off.params.guardian.enabled = false;
    let t = Instant::now();
    off.evolve(steps);
    let s_unguarded = t.elapsed().as_secs_f64();

    if state_bits(&on) != state_bits(&off) {
        eprintln!("FAIL: guardian on/off runs diverged on the clean path");
        return 1;
    }

    let overhead = (s_guarded - s_unguarded) / s_unguarded;
    println!(
        "guardian on: {s_guarded:.3} s, off: {s_unguarded:.3} s over {steps} steps -> overhead {:.2}%",
        overhead * 100.0
    );
    println!(
        "  guardian timer: {:.3} s (shadow capture + validation scans)",
        on.timers.seconds("guardian")
    );

    let rec = GuardianRecord {
        git_rev: std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .unwrap_or_default(),
        host: std::env::var("HOSTNAME").unwrap_or_default(),
        steps,
        s_guarded,
        s_unguarded,
        overhead,
    };
    let path = "BENCH_guardian.json";
    let mut records: Vec<serde_json::Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    match serde_json::to_value(&rec) {
        Ok(v) => records.push(v),
        Err(e) => {
            eprintln!("FAIL: cannot serialize record: {e}");
            return 1;
        }
    }
    match serde_json::to_string_pretty(&records) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("FAIL: cannot write {path}: {e}");
                return 1;
            }
        }
        Err(e) => {
            eprintln!("FAIL: cannot serialize records: {e}");
            return 1;
        }
    }
    println!("appended to {path}");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut retries: u32 = 2;
    let mut steps: u64 = 8;
    let mut mode: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--retries" => {
                retries = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("usage: --retries <N>");
                        std::process::exit(2);
                    }
                }
            }
            "--steps" => {
                steps = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("usage: --steps <N>");
                        std::process::exit(2);
                    }
                }
            }
            "--require-recovery" => mode = Some("recovery"),
            "--require-abort" => mode = Some("abort"),
            "--overhead" => mode = Some("overhead"),
            other => {
                eprintln!(
                    "unknown argument {other}; expected --retries N, --steps N, \
                     --require-recovery, --require-abort, or --overhead"
                );
                std::process::exit(2);
            }
        }
    }
    let code = match mode {
        Some("recovery") => require_recovery(retries, steps),
        Some("abort") => require_abort(retries, steps),
        Some("overhead") => overhead(steps.max(20)),
        _ => {
            eprintln!("pick a mode: --require-recovery, --require-abort, or --overhead");
            2
        }
    };
    std::process::exit(code);
}
