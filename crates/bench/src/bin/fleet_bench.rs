//! Measure what fleet fault recovery *costs*, for CI's fleet-drill job.
//!
//! Three smoke-scale supervised runs of the same scenario:
//!
//! * clean — no faults; the fleet baseline.
//! * kill — `worker-kill=nth:2` on the last rank; detection is immediate
//!   (EOF on the pipe), so `s_kill − s_clean` is respawn + replay: the
//!   restart latency.
//! * silent — `heartbeat-drop=nth:2`; the worker stays alive but mute, so
//!   recovery must wait out the heartbeat deadline and the probe ladder.
//!   `s_silent − s_kill` isolates the detection latency.
//!
//! Every run must land on the committed golden digest — a benchmark of a
//! recovery that produced the wrong answer is worse than no benchmark.
//! Results append to `BENCH_fleet.json` (run from the repo root).
//!
//! Exit codes: 0 = recorded, 1 = contract violated, 2 = usage error.

use std::path::{Path, PathBuf};
use std::time::Instant;

use rflash_core::registry::load_golden;
use rflash_core::{run_fleet, FleetConfig, FleetReport};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct FleetRecord {
    git_rev: String,
    host: String,
    scenario: String,
    steps: u64,
    workers: usize,
    /// Clean supervised run (spawn + step loop + digest barrier).
    s_clean: f64,
    /// With one worker killed at a step boundary (EOF detection).
    s_kill: f64,
    /// With one worker silenced at a step boundary (timeout detection).
    s_silent: f64,
    /// `(s_kill − s_clean) / s_clean` — respawn + replay, as a fraction.
    recovery_overhead: f64,
    /// `s_kill − s_clean` in seconds — the restart latency.
    restart_latency_s: f64,
    /// `s_silent − s_kill` in seconds — heartbeat + probe-ladder cost.
    detect_latency_s: f64,
    /// Counters from the kill run (respawns, rollbacks, frames, bytes…).
    kill_counters: serde_json::Value,
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rflash-fleet-bench-{}-{tag}", std::process::id()))
}

fn config(worker_bin: &Path, scenario: &str, steps: u64, workers: usize, tag: &str) -> FleetConfig {
    let dir = scratch(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = FleetConfig::new(worker_bin.to_path_buf(), scenario, steps, dir);
    cfg.workers = workers;
    cfg.checkpoint_every = 1;
    cfg.heartbeat_ms = 20;
    cfg.heartbeat_timeout_ms = 400;
    cfg.max_wall_ms = 300_000;
    cfg
}

fn timed(cfg: FleetConfig, what: &str, golden_crc: u32) -> Result<(f64, FleetReport), String> {
    let dir = cfg.series_dir.clone();
    let t = Instant::now();
    let report = run_fleet(cfg).map_err(|e| format!("{what} run failed: {e}"))?;
    let s = t.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    if report.digest.crc != golden_crc {
        return Err(format!(
            "{what} run diverged from golden: {:08x} != {golden_crc:08x}",
            report.digest.crc
        ));
    }
    Ok((s, report))
}

fn bench(worker_bin: PathBuf, scenario: &str, steps: u64, workers: usize) -> i32 {
    let golden = match load_golden(&PathBuf::from("golden"), scenario) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("FAIL: no golden record for {scenario}: {e}");
            return 1;
        }
    };

    // Warm-up: pay first-exec costs (binary page-in, allocator) outside
    // the timed region.
    if let Err(e) = timed(
        config(&worker_bin, scenario, steps, workers, "warm"),
        "warm-up",
        golden.digest.crc,
    ) {
        eprintln!("FAIL: {e}");
        return 1;
    }

    let (s_clean, clean) = match timed(
        config(&worker_bin, scenario, steps, workers, "clean"),
        "clean",
        golden.digest.crc,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return 1;
        }
    };
    if clean.rollbacks != 0 {
        eprintln!("FAIL: clean run rolled back {} time(s)", clean.rollbacks);
        return 1;
    }

    let victim = workers - 1;
    let mut kill_cfg = config(&worker_bin, scenario, steps, workers, "kill");
    kill_cfg.worker_faults = vec![(victim, "worker-kill=nth:2".into())];
    let (s_kill, kill) = match timed(kill_cfg, "kill", golden.digest.crc) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return 1;
        }
    };
    if kill.counters.respawns == 0 {
        eprintln!("FAIL: kill run never respawned — the fault did not fire");
        return 1;
    }

    let mut silent_cfg = config(&worker_bin, scenario, steps, workers, "silent");
    silent_cfg.worker_faults = vec![(victim, "heartbeat-drop=nth:2".into())];
    let (s_silent, silent) = match timed(silent_cfg, "silent", golden.digest.crc) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return 1;
        }
    };
    if silent.counters.heartbeat_misses == 0 {
        eprintln!("FAIL: silent run never missed a heartbeat — the fault did not fire");
        return 1;
    }

    let restart_latency_s = s_kill - s_clean;
    let detect_latency_s = s_silent - s_kill;
    let recovery_overhead = restart_latency_s / s_clean;
    println!(
        "{scenario} x{workers}, {steps} steps: clean {s_clean:.3} s, \
         kill {s_kill:.3} s, silent {s_silent:.3} s"
    );
    println!(
        "  restart latency {restart_latency_s:.3} s ({:.1}% of clean), \
         detection latency {detect_latency_s:.3} s",
        recovery_overhead * 100.0
    );

    let rec = FleetRecord {
        git_rev: std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .unwrap_or_default(),
        host: std::env::var("HOSTNAME").unwrap_or_default(),
        scenario: scenario.to_string(),
        steps,
        workers,
        s_clean,
        s_kill,
        s_silent,
        recovery_overhead,
        restart_latency_s,
        detect_latency_s,
        kill_counters: match serde_json::to_value(&kill.counters) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL: cannot serialize counters: {e}");
                return 1;
            }
        },
    };
    let path = "BENCH_fleet.json";
    let mut records: Vec<serde_json::Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    match serde_json::to_value(&rec) {
        Ok(v) => records.push(v),
        Err(e) => {
            eprintln!("FAIL: cannot serialize record: {e}");
            return 1;
        }
    }
    match serde_json::to_string_pretty(&records) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("FAIL: cannot write {path}: {e}");
                return 1;
            }
        }
        Err(e) => {
            eprintln!("FAIL: cannot serialize records: {e}");
            return 1;
        }
    }
    println!("appended to {path}");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario = "sedov".to_string();
    let mut steps: u64 = 3;
    let mut workers: usize = 2;
    let mut worker_bin: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" => match it.next() {
                Some(v) => scenario = v.clone(),
                None => {
                    eprintln!("usage: --scenario <name>");
                    std::process::exit(2);
                }
            },
            "--steps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => steps = n,
                None => {
                    eprintln!("usage: --steps <N>");
                    std::process::exit(2);
                }
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 2 => workers = n,
                _ => {
                    eprintln!("usage: --workers <N >= 2>");
                    std::process::exit(2);
                }
            },
            "--worker-bin" => match it.next() {
                Some(v) => worker_bin = Some(PathBuf::from(v)),
                None => {
                    eprintln!("usage: --worker-bin <path to rflash>");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other}; expected --scenario NAME, --steps N, \
                     --workers N, or --worker-bin PATH"
                );
                std::process::exit(2);
            }
        }
    }
    // Default: the `rflash` binary sitting next to this one in target/.
    let worker_bin = worker_bin.unwrap_or_else(|| {
        std::env::current_exe()
            .map(|p| p.with_file_name("rflash"))
            .unwrap_or_else(|_| PathBuf::from("target/release/rflash"))
    });
    if !worker_bin.is_file() {
        eprintln!(
            "worker binary {} not found; build it first (cargo build --release) \
             or pass --worker-bin",
            worker_bin.display()
        );
        std::process::exit(2);
    }
    std::process::exit(bench(worker_bin, &scenario, steps, workers));
}
