//! The paper's §II profiling step, reproduced: "our MAP study indicated
//! that FLASH spent considerable time in the routines for the EOS" — run
//! the supernova workload and print the per-unit timer breakdown, plus the
//! same for the Sedov workload (where hydro dominates instead).

use rflash_bench::RunScale;
use rflash_core::setups::sedov::SedovSetup;
use rflash_core::setups::supernova::SupernovaSetup;
use rflash_core::RuntimeParams;
use rflash_hugepages::Policy;

fn rank_report(loads: &[rflash_perfmon::RankLoad]) {
    if loads.is_empty() {
        println!("  (serial run: rank pool never engaged)");
        return;
    }
    println!("  rank pool: {} dispatches", loads[0].dispatches);
    for l in loads {
        println!(
            "    rank {:<2} busy {:>7.3} s  idle {:>7.3} s",
            l.rank, l.busy_s, l.idle_s
        );
    }
    println!(
        "  -> imbalance (max/mean busy): {:.2}, idle fraction: {:.0}%",
        rflash_perfmon::imbalance(loads),
        rflash_perfmon::idle_fraction(loads) * 100.0
    );
}

/// Pencil/batch counters: how much cell traffic moved through the SoA
/// gather/scatter path and what fraction of batched-EOS lanes stayed
/// vectorized (Helmholtz lanes that fail to converge fall back to the
/// scalar Newton and lower the occupancy).
fn batch_report(sim: &mut rflash_core::Simulation) {
    let hydro = *sim.hydro_session.stats_mut();
    let eos = *sim.eos_session.stats_mut();
    let s = hydro + eos;
    println!(
        "  pencil gather/scatter: {:.1}M / {:.1}M cells",
        s.gather_cells as f64 / 1e6,
        s.scatter_cells as f64 / 1e6
    );
    println!(
        "  batched EOS: {:.1}M lanes, occupancy {:.3}",
        s.batch_lanes as f64 / 1e6,
        s.batch_occupancy()
    );
}

fn breakdown(name: &str, timers: &rflash_perfmon::Timers) {
    let labels = ["hydro", "eos", "flame", "gravity", "regrid", "dt"];
    let total: f64 = labels.iter().map(|l| timers.seconds(l)).sum();
    println!("\n{name}: unit share of step time (total {total:.2} s)");
    for l in labels {
        let s = timers.seconds(l);
        if s == 0.0 {
            continue;
        }
        let pct = s / total * 100.0;
        println!("  {l:<8} {s:>8.2} s  {pct:>5.1}%  |{}", "#".repeat(pct.round() as usize / 2));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::from_args(&args);
    let steps = if scale.steps == 0 { 25 } else { scale.steps };
    let alloc_baseline = rflash_perfmon::AllocSummary::capture();

    let setup = SupernovaSetup {
        max_refine: scale.max_refine,
        max_blocks: scale.max_blocks,
        coarse_table: scale.coarse_table,
        ..SupernovaSetup::default()
    };
    let mut sim = setup.build(RuntimeParams {
        policy: Policy::None,
        pattern_every: 0,
        gather_every: 0,
        nranks: 2,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    });
    sim.evolve(steps);
    breakdown("2-d supernova (the paper's EOS-dominated case)", &sim.timers);
    let eos_share = sim.timers.seconds("eos")
        / (sim.timers.seconds("eos") + sim.timers.seconds("hydro")).max(1e-12);
    println!("  -> EOS fraction of (hydro+eos): {:.0}%", eos_share * 100.0);
    batch_report(&mut sim);
    rank_report(&sim.rank_loads());

    let setup = SedovSetup {
        ndim: 3,
        nxb: 8,
        max_refine: scale.max_refine,
        max_blocks: scale.max_blocks,
        ..SedovSetup::default()
    };
    let mut sim = setup.build(RuntimeParams {
        policy: Policy::None,
        pattern_every: 0,
        gather_every: 0,
        nranks: 2,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    });
    sim.evolve(steps.min(30));
    breakdown("3-d Sedov (hydro-dominated)", &sim.timers);
    batch_report(&mut sim);
    rank_report(&sim.rank_loads());

    // Guardian interventions: a run that rolled back, halved dt, or fell
    // back to the scalar engine is not comparable to a clean run, and the
    // table says so explicitly.
    println!("\n{}", sim.guardian_stats);

    // Fallback/retry counters from the allocation degradation chain: a run
    // whose huge pages silently failed to engage shows up here, not just in
    // the DTLB numbers it skews.
    println!("\n{}", rflash_perfmon::AllocSummary::since(&alloc_baseline));
}
