//! The paper's §II profiling step, reproduced: "our MAP study indicated
//! that FLASH spent considerable time in the routines for the EOS" — run
//! the supernova workload and print the per-unit timer breakdown, plus the
//! same for the Sedov workload (where hydro dominates instead).

use rflash_bench::RunScale;
use rflash_core::setups::sedov::SedovSetup;
use rflash_core::setups::supernova::SupernovaSetup;
use rflash_core::RuntimeParams;
use rflash_hugepages::Policy;

fn rank_report(loads: &[rflash_perfmon::RankLoad]) {
    if loads.is_empty() {
        println!("  (serial run: rank pool never engaged)");
        return;
    }
    println!("  rank pool: {} dispatches", loads[0].dispatches);
    for l in loads {
        println!(
            "    rank {:<2} busy {:>7.3} s  idle {:>7.3} s",
            l.rank, l.busy_s, l.idle_s
        );
    }
    println!(
        "  -> imbalance (max/mean busy): {:.2}, idle fraction: {:.0}%",
        rflash_perfmon::imbalance(loads),
        rflash_perfmon::idle_fraction(loads) * 100.0
    );
}

/// Pencil/batch counters: how much cell traffic moved through the SoA
/// gather/scatter path, what fraction of lane-kernel zones ran in
/// full-width SIMD chunks vs. the scalar-lane tail, and how the batched
/// Helmholtz Newton's active-lane occupancy decayed per iteration
/// (plateau-accepted lanes are counted apart from clean convergences).
fn batch_report(sim: &mut rflash_core::Simulation) {
    let hydro = *sim.hydro_session.stats_mut();
    let eos = *sim.eos_session.stats_mut();
    let s = hydro + eos;
    println!(
        "  pencil gather/scatter: {:.1}M / {:.1}M cells",
        s.gather_cells as f64 / 1e6,
        s.scatter_cells as f64 / 1e6
    );
    println!(
        "  simd lane kernels: {:.1}M chunk zones + {:.1}M tail zones, mask occupancy {:.3}",
        s.simd_chunk_lanes as f64 / 1e6,
        s.simd_tail_lanes as f64 / 1e6,
        s.simd_occupancy()
    );
    println!(
        "  batched EOS: {:.1}M lanes, occupancy {:.3} ({} plateau-accepted)",
        s.batch_lanes as f64 / 1e6,
        s.batch_occupancy(),
        s.batch_plateau_lanes
    );
    // Active lanes entering each Newton iteration of the masked
    // re-iteration — the decay profile is the vector-efficiency story.
    let total: u64 = s.newton_iter_hist.iter().sum();
    if total > 0 {
        let start = s.newton_iter_hist[0].max(1) as f64;
        print!("  newton active-lane decay:");
        for (i, &n) in s.newton_iter_hist.iter().enumerate() {
            if n == 0 {
                break;
            }
            print!(" {i}:{:.2}", n as f64 / start);
        }
        println!();
    }
}

fn breakdown(name: &str, sim: &rflash_core::Simulation) {
    let g = &sim.graph_report;
    let rows: Vec<(&str, f64)> = if g.executions > 0 {
        // The task graph interleaves the phases freely, so the unit
        // timers never tick — the per-task ledger is the breakdown
        // (summed across ranks; flame/gravity still run on the driver
        // thread and keep their timers).
        vec![
            ("guardcell", g.guardcell_ns as f64 / 1e9),
            ("hydro", g.sweep_ns as f64 / 1e9),
            ("eos", g.eos_ns as f64 / 1e9),
            ("dt", g.dt_ns as f64 / 1e9),
            ("guardian", g.guardian_ns as f64 / 1e9),
            ("flame", sim.timers.seconds("flame")),
            ("gravity", sim.timers.seconds("gravity")),
            ("regrid", sim.timers.seconds("regrid")),
        ]
    } else {
        ["guardcell", "hydro", "eos", "flame", "gravity", "regrid", "dt"]
            .iter()
            .map(|l| (*l, sim.timers.seconds(l)))
            .collect()
    };
    let total: f64 = rows.iter().map(|(_, s)| s).sum();
    println!("\n{name}: unit share of step time (total {total:.2} s)");
    for (l, s) in rows {
        if s == 0.0 {
            continue;
        }
        let pct = s / total * 100.0;
        println!("  {l:<9} {s:>8.2} s  {pct:>5.1}%  |{}", "#".repeat(pct.round() as usize / 2));
    }
}

/// Task-graph scheduler counters: what each rank executed, how much it
/// stole off other ranks' deques, and how much exchange time was hidden
/// under compute.
fn graph_report(sim: &rflash_core::Simulation) {
    let g = &sim.graph_report;
    if g.executions == 0 {
        println!("  (task graph never engaged: barrier scheduler or serial run)");
        return;
    }
    println!(
        "  task graph: {} executions, {} steals, overlap ratio {:.2}",
        g.executions,
        g.total_steals(),
        g.overlap_ratio()
    );
    for (rank, r) in g.per_rank.iter().enumerate() {
        println!(
            "    rank {:<2} tasks {:>7}  steals {:>6}  busy {:>7.3} s  idle {:>7.3} s",
            rank,
            r.tasks,
            r.steals,
            r.busy_ns as f64 / 1e9,
            r.idle_ns as f64 / 1e9
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::from_args(&args);
    let steps = if scale.steps == 0 { 25 } else { scale.steps };
    let alloc_baseline = rflash_perfmon::AllocSummary::capture();

    // Name the vector backend up front — every number below was produced
    // with it, and an RFLASH_SIMD override should be visible in the log.
    println!(
        "{}",
        rflash_simd::dispatch_report(rflash_simd::Backend::default())
    );

    let setup = SupernovaSetup {
        max_refine: scale.max_refine,
        max_blocks: scale.max_blocks,
        coarse_table: scale.coarse_table,
        ..SupernovaSetup::default()
    };
    let mut sim = setup.build(RuntimeParams {
        policy: Policy::None,
        pattern_every: 0,
        gather_every: 0,
        nranks: 2,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    });
    sim.evolve(steps);
    breakdown("2-d supernova (the paper's EOS-dominated case)", &sim);
    let (eos_s, hydro_s) = if sim.graph_report.executions > 0 {
        (
            sim.graph_report.eos_ns as f64 / 1e9,
            sim.graph_report.sweep_ns as f64 / 1e9,
        )
    } else {
        (sim.timers.seconds("eos"), sim.timers.seconds("hydro"))
    };
    let eos_share = eos_s / (eos_s + hydro_s).max(1e-12);
    println!("  -> EOS fraction of (hydro+eos): {:.0}%", eos_share * 100.0);
    batch_report(&mut sim);
    rank_report(&sim.rank_loads());
    graph_report(&sim);

    let setup = SedovSetup {
        ndim: 3,
        nxb: 8,
        max_refine: scale.max_refine,
        max_blocks: scale.max_blocks,
        ..SedovSetup::default()
    };
    let mut sim = setup.build(RuntimeParams {
        policy: Policy::None,
        pattern_every: 0,
        gather_every: 0,
        nranks: 2,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    });
    // Drive the Sedov run step by step under a retention-bounded
    // checkpoint series, so the report also shows what the `keep_last`
    // policy actually did to the on-disk footprint.
    let ckpt_dir =
        std::env::temp_dir().join(format!("rflash-profile-series-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let series = rflash_core::CheckpointSeries::new(&ckpt_dir, "profile").keep_last(4);
    let sedov_steps = steps.min(30);
    let mut ckpt_written = 0u64;
    for _ in 0..sedov_steps {
        sim.evolve(1);
        match series.write(&sim) {
            Ok(_) => ckpt_written += 1,
            Err(e) => {
                println!("  checkpoint series write failed: {e}");
                break;
            }
        }
    }
    breakdown("3-d Sedov (hydro-dominated)", &sim);
    batch_report(&mut sim);
    rank_report(&sim.rank_loads());
    graph_report(&sim);
    let retained = series.scan().map(|v| v.len()).unwrap_or(0);
    println!(
        "\ncheckpoint retention: {ckpt_written} written, {retained} retained \
         (keep_last 4), {} pruned",
        series.pruned_count()
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // Guardian interventions: a run that rolled back, halved dt, or fell
    // back to the scalar engine is not comparable to a clean run, and the
    // table says so explicitly.
    println!("\n{}", sim.guardian_stats);

    // Fallback/retry counters from the allocation degradation chain: a run
    // whose huge pages silently failed to engage shows up here, not just in
    // the DTLB numbers it skews.
    println!("\n{}", rflash_perfmon::AllocSummary::since(&alloc_baseline));
}
