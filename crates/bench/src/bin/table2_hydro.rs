//! E2 / Table II: the "3-d Hydro" problem — Sedov explosion with the
//! hydrodynamics routines instrumented, with and without huge pages.
//!
//! Usage: `table2_hydro [--paper | --smoke] [--out results_hydro.json]`

use rflash_bench::{run_hydro_experiment, RunScale};
use rflash_hugepages::probe_system;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::from_args(&args);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results_hydro.json".into());

    println!("host huge-page configuration:\n{}", probe_system());
    println!(
        "{}",
        rflash_bench::prepare_hugetlb_pool(scale.max_blocks * 11 * 16 * 16 * 16 * 8 + (8 << 20))
    );

    let policies = rflash_bench::default_policies();
    let exp = run_hydro_experiment(&policies, scale);
    for run in &exp.runs {
        println!(
            "policy={:<10} leaves={:<5} unk={:>6.1} MiB backing: {}",
            run.policy,
            run.leaf_blocks,
            run.unk_bytes as f64 / (1 << 20) as f64,
            run.unk_backing
        );
        println!("    {} (saw huge pages: {})", run.meminfo_watch, run.meminfo_saw_huge);
    }
    if let Some(report) = exp.ratio_report() {
        println!("\n{report}");
        println!(
            "paper (Table II): DTLB ratio 0.324, time ratio 1.00; here: DTLB ratio {:.3}, time ratio {:.3}",
            report.dtlb_ratio(),
            report.ratios()[1]
        );
    }
    exp.save(&out).expect("write results JSON");
    println!("wrote {out}");
}
