//! E3 / Figure 1: the ratio bar chart (with HPs / without HPs) over the six
//! measures for both experiments. Reads the JSON written by `table1_eos`
//! and `table2_hydro` (running them first if the files are missing).

use rflash_bench::{figure1_text, run_eos_experiment, run_hydro_experiment, Experiment, RunScale};


fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::from_args(&args);

    let eos = Experiment::load("results_eos.json").unwrap_or_else(|_| {
        eprintln!("results_eos.json missing; running E1 now…");
        let e = run_eos_experiment(&rflash_bench::default_policies(), scale);
        let _ = e.save("results_eos.json");
        e
    });
    let hydro = Experiment::load("results_hydro.json").unwrap_or_else(|_| {
        eprintln!("results_hydro.json missing; running E2 now…");
        let e = run_hydro_experiment(&rflash_bench::default_policies(), scale);
        let _ = e.save("results_hydro.json");
        e
    });

    let (Some(er), Some(hr)) = (eos.ratio_report(), hydro.ratio_report()) else {
        eprintln!("experiments lack both policies; rerun table1_eos/table2_hydro");
        std::process::exit(1);
    };
    println!("{}", figure1_text(&er, &hr));
}
