//! Record steps/sec against simulated rank count → `BENCH_scaling.json`.
//!
//! Two workloads, matching the paper's two instrumented cases: the 2-d
//! supernova (EOS-dominated) and the 3-d Sedov (hydro-dominated), each run
//! at nranks ∈ {1, 4} over the persistent rank pool. The JSON also carries
//! the pool's imbalance and idle-fraction counters so a flat curve can be
//! told apart from a skewed partition.

use std::time::Instant;

use rflash_bench::RunScale;
use rflash_core::setups::sedov::SedovSetup;
use rflash_core::setups::supernova::SupernovaSetup;
use rflash_core::{RuntimeParams, Simulation};
use rflash_hugepages::Policy;
use rflash_perfmon::{idle_fraction, imbalance};
use serde::Serialize;

#[derive(Serialize)]
struct ScalingPoint {
    config: String,
    nranks: usize,
    steps: u64,
    seconds: f64,
    steps_per_sec: f64,
    /// max/mean busy time over the pool's ranks (1.0 = perfectly even).
    imbalance: f64,
    /// Fraction of pool time spent waiting at dispatch barriers.
    idle_fraction: f64,
    hardware_threads: usize,
}

fn measure(config: &str, mut sim: Simulation, nranks: usize, steps: u64) -> ScalingPoint {
    // Warm the pool, the cached partition, and the table caches outside
    // the timed window.
    sim.evolve(2);
    let t0 = Instant::now();
    sim.evolve(steps);
    let seconds = t0.elapsed().as_secs_f64();
    let loads = sim.rank_loads();
    ScalingPoint {
        config: config.to_string(),
        nranks,
        steps,
        seconds,
        steps_per_sec: steps as f64 / seconds.max(1e-12),
        imbalance: imbalance(&loads),
        idle_fraction: idle_fraction(&loads),
        hardware_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::from_args(&args);
    let steps = if scale.steps == 0 { 20 } else { scale.steps };

    let mut points = Vec::new();
    for nranks in [1usize, 4] {
        let setup = SupernovaSetup {
            max_refine: scale.max_refine,
            max_blocks: scale.max_blocks,
            coarse_table: scale.coarse_table,
            ..SupernovaSetup::default()
        };
        let sim = setup.build(RuntimeParams {
            policy: Policy::None,
            nranks,
            pattern_every: 0,
            gather_every: 0,
            ..RuntimeParams::with_mesh(setup.mesh_config())
        });
        let p = measure("supernova_2d_eos", sim, nranks, steps);
        println!(
            "{:<18} nranks={}  {:.2} steps/s  imbalance {:.2}  idle {:.0}%",
            p.config,
            p.nranks,
            p.steps_per_sec,
            p.imbalance,
            p.idle_fraction * 100.0
        );
        points.push(p);
    }

    for nranks in [1usize, 4] {
        let setup = SedovSetup {
            ndim: 3,
            nxb: 8,
            max_refine: scale.max_refine,
            max_blocks: scale.max_blocks,
            ..SedovSetup::default()
        };
        let sim = setup.build(RuntimeParams {
            policy: Policy::None,
            nranks,
            pattern_every: 0,
            gather_every: 0,
            ..RuntimeParams::with_mesh(setup.mesh_config())
        });
        let p = measure("sedov_3d_hydro", sim, nranks, steps.min(30));
        println!(
            "{:<18} nranks={}  {:.2} steps/s  imbalance {:.2}  idle {:.0}%",
            p.config,
            p.nranks,
            p.steps_per_sec,
            p.imbalance,
            p.idle_fraction * 100.0
        );
        points.push(p);
    }

    let json = serde_json::to_string_pretty(&points).expect("serialize scaling points");
    std::fs::write("BENCH_scaling.json", json).expect("write BENCH_scaling.json");
    println!("-> BENCH_scaling.json");
}
