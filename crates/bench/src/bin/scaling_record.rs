//! Record steps/sec against simulated rank count → `BENCH_scaling.json`.
//!
//! Two workloads, matching the paper's two instrumented cases: the 2-d
//! supernova (EOS-dominated) and the 3-d Sedov (hydro-dominated), each run
//! at nranks ∈ {1, 4} over the persistent rank pool — under BOTH step
//! schedulers, the pool-wide-barrier loop and the per-block task graph.
//! Every point carries the pool's imbalance and idle-fraction counters, a
//! per-phase wall-time breakdown (guardcell / sweep / eos / dt / guardian),
//! and the graph's steal and overlap counters, so a flat curve can be told
//! apart from a skewed partition and a barrier wall from a genuine
//! compute ceiling.
//!
//! `--enforce-overlap` turns the headline claim into a hard gate: at
//! nranks = 4 the task-graph's idle fraction must sit strictly below the
//! barrier's on the same workload, or the process exits non-zero. CI runs
//! this on the smoke scale.

use std::time::Instant;

use rflash_bench::RunScale;
use rflash_core::setups::sedov::SedovSetup;
use rflash_core::setups::supernova::SupernovaSetup;
use rflash_core::{RuntimeParams, Simulation, StepScheduler};
use rflash_hugepages::Policy;
use rflash_perfmon::{idle_fraction, imbalance};
use serde::Serialize;

/// Where the step's wall time went, in seconds. Under the barrier these
/// come from the FLASH-style named timers; under the task graph the phases
/// interleave freely, so they come from the graph's per-task ledger
/// (summed across ranks — overlapping work counts once per rank).
#[derive(Serialize, Default)]
struct PhaseBreakdown {
    guardcell_s: f64,
    sweep_s: f64,
    eos_s: f64,
    dt_s: f64,
    guardian_s: f64,
}

#[derive(Serialize)]
struct ScalingPoint {
    config: String,
    scheduler: String,
    nranks: usize,
    steps: u64,
    seconds: f64,
    steps_per_sec: f64,
    /// max/mean busy time over the pool's ranks (1.0 = perfectly even).
    imbalance: f64,
    /// Fraction of pool time spent waiting — at dispatch barriers under
    /// the barrier scheduler, on empty deques under the task graph.
    idle_fraction: f64,
    /// Tasks executed by a rank other than their owner (task graph only).
    steals: u64,
    /// Fraction of exchange (pack/unpack/restrict) time during which some
    /// other rank was running compute (task graph only).
    overlap_ratio: f64,
    phases: PhaseBreakdown,
    hardware_threads: usize,
}

fn measure(
    config: &str,
    scheduler: StepScheduler,
    mut sim: Simulation,
    nranks: usize,
    steps: u64,
) -> ScalingPoint {
    // Warm the pool, the cached partition/plan, and the table caches
    // outside the timed window.
    sim.evolve(2);
    let t0 = Instant::now();
    sim.evolve(steps);
    let seconds = t0.elapsed().as_secs_f64();
    let loads = sim.rank_loads();
    let graphed = scheduler == StepScheduler::TaskGraph && nranks > 1;
    let phases = if graphed {
        let g = &sim.graph_report;
        PhaseBreakdown {
            guardcell_s: g.guardcell_ns as f64 / 1e9,
            sweep_s: g.sweep_ns as f64 / 1e9,
            eos_s: g.eos_ns as f64 / 1e9,
            dt_s: g.dt_ns as f64 / 1e9,
            guardian_s: g.guardian_ns as f64 / 1e9,
        }
    } else {
        PhaseBreakdown {
            guardcell_s: sim.timers.seconds("guardcell"),
            sweep_s: sim.timers.seconds("hydro"),
            eos_s: sim.timers.seconds("eos"),
            dt_s: sim.timers.seconds("dt"),
            guardian_s: sim.timers.seconds("guardian"),
        }
    };
    ScalingPoint {
        config: config.to_string(),
        scheduler: match scheduler {
            StepScheduler::Barrier => "barrier".into(),
            StepScheduler::TaskGraph => "task_graph".into(),
        },
        nranks,
        steps,
        seconds,
        steps_per_sec: steps as f64 / seconds.max(1e-12),
        imbalance: imbalance(&loads),
        idle_fraction: idle_fraction(&loads),
        steals: if graphed {
            sim.graph_report.total_steals()
        } else {
            0
        },
        overlap_ratio: if graphed {
            sim.graph_report.overlap_ratio()
        } else {
            0.0
        },
        phases,
        hardware_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

fn print_point(p: &ScalingPoint) {
    println!(
        "{:<18} {:<10} nranks={}  {:.2} steps/s  imbalance {:.2}  idle {:.0}%  steals {}  overlap {:.2}",
        p.config,
        p.scheduler,
        p.nranks,
        p.steps_per_sec,
        p.imbalance,
        p.idle_fraction * 100.0,
        p.steals,
        p.overlap_ratio
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::from_args(&args);
    let enforce = args.iter().any(|a| a == "--enforce-overlap");
    let steps = if scale.steps == 0 { 20 } else { scale.steps };

    let schedulers = [StepScheduler::Barrier, StepScheduler::TaskGraph];
    let mut points = Vec::new();
    for scheduler in schedulers {
        for nranks in [1usize, 4] {
            let setup = SupernovaSetup {
                max_refine: scale.max_refine,
                max_blocks: scale.max_blocks,
                coarse_table: scale.coarse_table,
                ..SupernovaSetup::default()
            };
            let sim = setup.build(RuntimeParams {
                policy: Policy::None,
                nranks,
                pattern_every: 0,
                gather_every: 0,
                step_scheduler: scheduler,
                ..RuntimeParams::with_mesh(setup.mesh_config())
            });
            let p = measure("supernova_2d_eos", scheduler, sim, nranks, steps);
            print_point(&p);
            points.push(p);
        }
    }

    for scheduler in schedulers {
        for nranks in [1usize, 4] {
            let setup = SedovSetup {
                ndim: 3,
                nxb: 8,
                max_refine: scale.max_refine,
                max_blocks: scale.max_blocks,
                ..SedovSetup::default()
            };
            let sim = setup.build(RuntimeParams {
                policy: Policy::None,
                nranks,
                pattern_every: 0,
                gather_every: 0,
                step_scheduler: scheduler,
                ..RuntimeParams::with_mesh(setup.mesh_config())
            });
            let p = measure("sedov_3d_hydro", scheduler, sim, nranks, steps.min(30));
            print_point(&p);
            points.push(p);
        }
    }

    let json = serde_json::to_string_pretty(&points).expect("serialize scaling points");
    std::fs::write("BENCH_scaling.json", json).expect("write BENCH_scaling.json");
    println!("-> BENCH_scaling.json");

    // The overlap gate: per workload, the task-graph's 4-rank idle
    // fraction strictly below the barrier's. Reported always; fatal only
    // under --enforce-overlap.
    let mut ok = true;
    for config in ["supernova_2d_eos", "sedov_3d_hydro"] {
        let find = |sched: &str| {
            points
                .iter()
                .find(|p| p.config == config && p.scheduler == sched && p.nranks == 4)
                .expect("both schedulers ran at nranks=4")
        };
        let barrier = find("barrier");
        let graph = find("task_graph");
        let passed = graph.idle_fraction < barrier.idle_fraction;
        println!(
            "overlap gate [{config}]: idle {:.1}% (graph) vs {:.1}% (barrier) -> {}",
            graph.idle_fraction * 100.0,
            barrier.idle_fraction * 100.0,
            if passed { "ok" } else { "FAIL" }
        );
        ok &= passed;
    }
    if enforce && !ok {
        eprintln!("--enforce-overlap: the task graph did not cut idle time below the barrier's");
        std::process::exit(1);
    }
}
