//! Run every registered scenario across the full determinism matrix and
//! reconcile the digests against the committed golden corpus →
//! `BENCH_scenarios.json`.
//!
//! Each scenario runs at smoke scale in all eight cells of
//! `SweepEngine::{Scalar, Pencil}` × `StepScheduler::{Barrier, TaskGraph}`
//! × `nranks ∈ {1, 4}`. The repo's determinism invariants say every cell
//! must produce one digest; this bin checks that first, then compares the
//! digest against `golden/<scenario>.ron`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rflash-bench --bin scenario_matrix            # verify
//! cargo run --release -p rflash-bench --bin scenario_matrix -- --bless # rewrite golden/
//! cargo run --release -p rflash-bench --bin scenario_matrix -- --golden-dir path/to/corpus
//! ```
//!
//! `--bless` only rewrites a record after the internal eight-cell
//! consistency check passes — a matrix that disagrees with itself is a bug,
//! never a new golden.

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use rflash_core::registry::{self, load_golden, store_golden, GoldenRecord, StateDigest};
use rflash_core::StepScheduler;
use rflash_hydro::SweepEngine;

/// One matrix cell's outcome, serialized into `BENCH_scenarios.json`.
#[derive(Serialize)]
struct CellRecord {
    scenario: String,
    engine: String,
    scheduler: String,
    nranks: usize,
    steps: u64,
    crc: String,
    leaves: u64,
    cells: u64,
    wall_ms: f64,
}

/// Per-scenario verdict after the whole matrix ran.
#[derive(Serialize)]
struct ScenarioRecord {
    scenario: String,
    consistent: bool,
    golden_status: String,
    crc: String,
    cells: Vec<CellRecord>,
}

fn main() {
    let mut bless = false;
    let mut golden_dir = PathBuf::from("golden");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--golden-dir" => {
                golden_dir = PathBuf::from(
                    args.next().expect("--golden-dir needs a path argument"),
                );
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: scenario_matrix [--bless] [--golden-dir DIR]");
                std::process::exit(2);
            }
        }
    }

    let mut records = Vec::new();
    let mut ok = true;

    for spec in registry::builtin() {
        let name = spec.name.clone();
        println!("== {name}: {}", spec.title);
        let mut cells = Vec::new();
        let mut reference: Option<StateDigest> = None;
        let mut consistent = true;

        for engine in [SweepEngine::Scalar, SweepEngine::Pencil] {
            for scheduler in [StepScheduler::Barrier, StepScheduler::TaskGraph] {
                for nranks in [1usize, 4] {
                    let start = Instant::now();
                    let sim = registry::run_smoke(&spec, nranks, engine, scheduler)
                        .unwrap_or_else(|e| panic!("{name}: smoke run failed: {e}"));
                    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                    let digest = StateDigest::of(&sim);
                    println!(
                        "   {engine:?}/{scheduler:?} nranks={nranks}: {digest} ({wall_ms:.0} ms)"
                    );
                    match reference {
                        None => reference = Some(digest),
                        Some(r) if digest != r => {
                            consistent = false;
                            eprintln!(
                                "   !! matrix cell diverged from its siblings: \
                                 {engine:?}/{scheduler:?} nranks={nranks}"
                            );
                        }
                        Some(_) => {}
                    }
                    cells.push(CellRecord {
                        scenario: name.clone(),
                        engine: format!("{engine:?}").to_lowercase(),
                        scheduler: match scheduler {
                            StepScheduler::Barrier => "barrier".into(),
                            StepScheduler::TaskGraph => "task_graph".into(),
                        },
                        nranks,
                        steps: spec.smoke.steps,
                        crc: format!("crc32:{:08x}", digest.crc),
                        leaves: digest.leaves,
                        cells: digest.cells,
                        wall_ms,
                    });
                }
            }
        }

        let digest = reference.expect("at least one cell ran");
        let golden_status = if !consistent {
            ok = false;
            "inconsistent-matrix".to_string()
        } else if bless {
            let record = GoldenRecord {
                scenario: name.clone(),
                steps: spec.smoke.steps,
                digest,
            };
            let path = store_golden(&golden_dir, &record)
                .unwrap_or_else(|e| panic!("{name}: bless failed: {e}"));
            println!("   blessed -> {}", path.display());
            "blessed".to_string()
        } else {
            match load_golden(&golden_dir, &name) {
                Ok(golden) if golden.digest == digest && golden.steps == spec.smoke.steps => {
                    println!("   golden: match");
                    "match".to_string()
                }
                Ok(golden) => {
                    ok = false;
                    eprintln!(
                        "   !! golden mismatch: got {digest}, committed {}",
                        golden.digest
                    );
                    "mismatch".to_string()
                }
                Err(e) => {
                    ok = false;
                    eprintln!("   !! no golden: {e}");
                    "missing".to_string()
                }
            }
        };

        records.push(ScenarioRecord {
            scenario: name,
            consistent,
            golden_status,
            crc: format!("crc32:{:08x}", digest.crc),
            cells,
        });
    }

    let json = serde_json::to_string_pretty(&records).expect("serialize scenario records");
    std::fs::write("BENCH_scenarios.json", json).expect("write BENCH_scenarios.json");
    println!("-> BENCH_scenarios.json");

    if !ok {
        eprintln!("scenario matrix FAILED: see the cells above");
        std::process::exit(1);
    }
}
