//! Sensitivity study: DTLB-miss ratio (huge/base) as a function of the
//! working-set footprint, relative to the TLB reach.
//!
//! This explains the difference between our scaled-down Table II and the
//! paper's: the A64FX-like TLB covers ~4 MiB with base pages and ~2 GiB
//! with 2 MiB pages. A footprint between those (our runs, the paper's EOS
//! problem) sees its misses almost eliminated by huge pages (ratio → 0); a
//! footprint well beyond ~2 GiB (the paper's 3-d hydro runs on 32 GB
//! nodes) still thrashes the TLB with huge pages, leaving a mid-range
//! ratio like the paper's 0.324.
//!
//! The sweep emulates footprints beyond this machine's memory by scaling
//! the *TLB* down instead of the memory up: ratio behaviour depends only on
//! footprint/reach (verified by the invariance column).

use rflash_tlbsim::{FrameSizing, Tlb, TlbConfig, TlbStats};

fn sweep(config: TlbConfig, len: usize, sizing: FrameSizing) -> TlbStats {
    let mut tlb = Tlb::new(config);
    tlb.map_region(0, len, sizing);
    // FLASH-like: two passes of a var-interleaved strided sweep.
    for _ in 0..2 {
        let mut addr = 0;
        while addr < len {
            tlb.touch(addr);
            addr += 11 * 8 * 4; // sample every 4th zone to bound runtime
        }
    }
    tlb.stats()
}

fn main() {
    let config = TlbConfig::a64fx_like();
    let base_reach = config.base_reach_bytes();
    let huge_reach = (config.l1_entries + config.l2_entries) * (2 << 20);
    println!(
        "A64FX-like TLB: reach {} MiB (4K pages), {} GiB (2M pages)\n",
        base_reach >> 20,
        huge_reach >> 30
    );
    println!(
        "{:>12} {:>18} {:>14} {:>14} {:>8}",
        "footprint", "footprint/reach2M", "base misses", "huge misses", "ratio"
    );
    for mib in [16usize, 64, 256, 1024] {
        let len = mib << 20;
        let base = sweep(config, len, FrameSizing::Base);
        let huge = sweep(config, len, FrameSizing::huge(2 << 20));
        println!(
            "{:>9} MiB {:>18.3} {:>14} {:>14} {:>8.3}",
            mib,
            len as f64 / huge_reach as f64,
            base.walks,
            huge.walks,
            huge.walks as f64 / base.walks.max(1) as f64
        );
    }

    // Beyond-memory regime via a scaled TLB (1/64 of the entries ≈ 64×
    // footprint): where the paper's 3-d hydro lived.
    let small = TlbConfig {
        l1_entries: 4,
        l2_entries: 16,
        l2_assoc: 4,
        ..config
    };
    println!("\nscaled model (TLB ÷64 ⇒ effective footprint ×64):");
    println!(
        "{:>12} {:>18} {:>14} {:>14} {:>8}",
        "effective", "footprint/reach2M", "base misses", "huge misses", "ratio"
    );
    for mib in [16usize, 64, 256] {
        let len = mib << 20;
        let eff_reach = (small.l1_entries + small.l2_entries) * (2 << 20);
        let base = sweep(small, len, FrameSizing::Base);
        let huge = sweep(small, len, FrameSizing::huge(2 << 20));
        println!(
            "{:>9} GiB {:>18.1} {:>14} {:>14} {:>8.3}",
            (mib * 64) >> 10,
            len as f64 / eff_reach as f64,
            base.walks,
            huge.walks,
            huge.walks as f64 / base.walks.max(1) as f64
        );
    }
    // Random (gather-like) access — AMR block traversal and guard exchange
    // jump between distant blocks, so the paper's real pattern sits between
    // the cyclic and random extremes. For random access the steady-state
    // miss ratio is ≈ (1 − reach_huge/F)/(1 − reach_base/F): it crosses the
    // paper's 0.324 at F ≈ 3 GiB — exactly the multi-GB per-node footprint
    // of the paper's 3-d runs.
    println!("\nrandom access over footprint F (scaled TLB, effective F shown):");
    println!(
        "{:>12} {:>18} {:>14} {:>14} {:>8} {:>10}",
        "effective", "F/reach2M", "base misses", "huge misses", "ratio", "1-r/F"
    );
    for mib in [40usize, 48, 64, 128, 512] {
        let len = mib << 20;
        let eff_reach = (small.l1_entries + small.l2_entries) * (2 << 20);
        let run = |sizing: FrameSizing| -> u64 {
            let mut tlb = Tlb::new(small);
            tlb.map_region(0, len, sizing);
            let mut state = 0x9E3779B97F4A7C15u64;
            for _ in 0..400_000u32 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                tlb.touch((state as usize) % len);
            }
            tlb.stats().walks
        };
        let base = run(FrameSizing::Base);
        let huge = run(FrameSizing::huge(2 << 20));
        println!(
            "{:>9} GiB {:>18.2} {:>14} {:>14} {:>8.3} {:>10.3}",
            (mib * 64) >> 10,
            len as f64 / eff_reach as f64,
            base,
            huge,
            huge as f64 / base.max(1) as f64,
            (1.0 - eff_reach as f64 / len as f64).max(0.0)
        );
    }
    println!(
        "\npaper's Table II (3-d hydro, multi-GB footprint, mixed locality):\n\
         ratio 0.324 — the random-access rows around F ≈ 1.5×reach; our\n\
         scaled-down tables sit in the F ≪ reach rows (ratio → 0)."
    );
}
