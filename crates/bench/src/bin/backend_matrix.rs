//! E5: the §II/§IV "compiler matrix" analog. The paper's observable was
//! which toolchain's binaries actually engaged huge pages (GNU: never,
//! Cray: never, Fujitsu: by default). Our analog: the same binary under
//! each allocation backend, with the kernel's own verdict (smaps) on
//! whether huge pages engaged, plus the runtime of a fixed workload.

use std::time::Instant;

use rflash_hugepages::{probe_system, PageBuffer, Policy};

fn workload(buf: &mut PageBuffer<f64>) -> f64 {
    // A FLASH-like strided pass: 11 interleaved "variables", touch one.
    let nvar = 11;
    let n = buf.len();
    let mut acc = 0.0;
    for rep in 0..4 {
        let mut i = rep % nvar;
        while i < n {
            acc += buf[i];
            buf[i] = acc * 1e-300;
            i += nvar * 16;
        }
    }
    acc
}

fn main() {
    println!("host huge-page configuration:\n{}", probe_system());
    println!(
        "\n{:<16} {:<10} {:>9} {:>12} {:<30}",
        "backend", "verified", "huge %", "runtime", "note"
    );

    let len = 64 * 1024 * 1024; // 512 MiB of f64
    for policy in [
        Policy::None,
        Policy::Thp,
        Policy::HugeTlbFs(rflash_hugepages::PageSize::Huge2M),
    ] {
        let mut buf = PageBuffer::<f64>::zeroed(len, policy).expect("allocation");
        let t0 = Instant::now();
        let acc = workload(&mut buf);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        let report = buf.backing_report();
        let note = report
            .fell_back
            .clone()
            .map(|why| format!("FELL BACK: {why}"))
            .unwrap_or_else(|| report.requested.clone());
        println!(
            "{:<16} {:<10} {:>8.1}% {:>10.3} s  {:<30}",
            policy.to_string(),
            report.verified_huge(),
            report.huge_fraction * 100.0,
            dt,
            note
        );
        // The full degradation chain, when anything happened on it.
        for step in &report.degradation {
            println!("{:<16}   chain: {step}", "");
        }
    }
    println!(
        "\nallocation chain totals: {}",
        rflash_hugepages::alloc_stats()
    );
    println!(
        "\npaper analog: GNU/Cray binaries = backends that never verify huge;\n\
         Fujitsu = the backend where huge pages engage by default."
    );
}
