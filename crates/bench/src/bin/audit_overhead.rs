//! Measure the race-audit ledger's per-step cost (EXPERIMENTS.md E15).
//!
//! The audit is compiled in under `debug_assertions` or the `race-audit`
//! feature; within such a build, [`rflash_mesh::audit::set_runtime_enabled`]
//! is a kill switch that leaves every instrumentation call in place but
//! makes it return before touching the thread-local ledger. Timing the same
//! task-graph workload with the switch on vs. off therefore isolates
//! exactly what the audit adds: per-access recording, the per-task ledger
//! harvest, and the post-run coverage + happens-before replay.
//!
//! Run it in a build where the ledger exists:
//!
//! ```text
//! cargo run --release --features race-audit -p rflash-bench --bin audit_overhead
//! ```
//!
//! Both runs use the canonical pool schedule; bit-identity between them is
//! asserted (the toggle must observe, never perturb). Appends to
//! `BENCH_audit.json`. Exit codes: 0 = measured (or skipped: audit not
//! compiled in), 1 = contract violated.

use std::time::Instant;

use rflash_core::setups::sedov::SedovSetup;
use rflash_core::{RuntimeParams, Simulation, StepScheduler};
use rflash_hugepages::faults::FaultPlan;
use rflash_hugepages::Policy;
use rflash_mesh::audit;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct AuditRecord {
    git_rev: String,
    host: String,
    steps: u64,
    s_audited: f64,
    s_muted: f64,
    /// (audited − muted) / muted on the same compiled-in binary.
    overhead: f64,
}

fn sedov_sim() -> Simulation {
    let setup = SedovSetup {
        ndim: 3,
        nxb: 8,
        max_refine: 2,
        max_blocks: 256,
        ..SedovSetup::default()
    };
    setup.build(RuntimeParams {
        policy: Policy::None,
        pattern_every: 0,
        gather_every: 0,
        use_hw: false,
        nranks: 2,
        step_scheduler: StepScheduler::TaskGraph,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    })
}

/// Interior bits of every leaf, the bit-identity witness.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = vec![sim.step, sim.time.to_bits()];
    for id in sim.domain.tree.leaves() {
        for v in 0..sim.domain.unk.nvar() {
            for k in sim.domain.unk.interior_k() {
                for j in sim.domain.unk.interior() {
                    for i in sim.domain.unk.interior() {
                        bits.push(sim.domain.unk.get(v, i, j, k, id.idx()).to_bits());
                    }
                }
            }
        }
    }
    bits
}

fn timed_run(steps: u64, record: bool) -> (f64, Vec<u64>) {
    audit::set_runtime_enabled(record);
    let mut sim = sedov_sim();
    let t0 = Instant::now();
    sim.evolve(steps);
    let s = t0.elapsed().as_secs_f64();
    audit::set_runtime_enabled(true);
    (s, state_bits(&sim))
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let steps: u64 = std::env::args()
        .skip_while(|a| a != "--steps")
        .nth(1)
        .map(|s| s.parse().expect("--steps N"))
        .unwrap_or(20);
    let _quiet = FaultPlan::new(0).activate();

    if !audit::COMPILED {
        println!(
            "audit not compiled into this build — rebuild with \
             `--features race-audit` (or a debug profile) to measure; \
             nothing to record."
        );
        return 0;
    }

    println!("race-audit ledger overhead: 3-d Sedov, {steps} steps, task-graph scheduler");
    // Alternate the two modes and keep the best of each: the first run on
    // a cold container pays allocator/page-fault warmup that would
    // otherwise be billed to whichever mode ran first.
    let (mut s_audited, mut s_muted) = (f64::INFINITY, f64::INFINITY);
    let (mut bits_on, mut bits_off) = (Vec::new(), Vec::new());
    for _ in 0..2 {
        let (s, b) = timed_run(steps, true);
        s_audited = s_audited.min(s);
        bits_on = b;
        let (s, b) = timed_run(steps, false);
        s_muted = s_muted.min(s);
        bits_off = b;
    }
    if bits_on != bits_off {
        eprintln!("FAIL: the audit toggle changed the physics (state bits differ)");
        return 1;
    }
    let overhead = (s_audited - s_muted) / s_muted;
    println!("  audited: {s_audited:.3} s   muted: {s_muted:.3} s   overhead: {:+.1} %", overhead * 100.0);
    println!("  bit-identity between the two runs: OK");

    let rec = AuditRecord {
        git_rev: std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .unwrap_or_default(),
        host: std::env::var("HOSTNAME").unwrap_or_default(),
        steps,
        s_audited,
        s_muted,
        overhead,
    };
    let path = "BENCH_audit.json";
    let mut records: Vec<serde_json::Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    match serde_json::to_value(&rec) {
        Ok(v) => records.push(v),
        Err(e) => {
            eprintln!("FAIL: cannot serialize record: {e}");
            return 1;
        }
    }
    match serde_json::to_string_pretty(&records) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("FAIL: cannot write {path}: {e}");
                return 1;
            }
        }
        Err(e) => {
            eprintln!("FAIL: cannot serialize records: {e}");
            return 1;
        }
    }
    println!("appended to {path}");
    0
}
