//! E1 / Table I: the "EOS" problem — 2-d supernova deflagration with the
//! EOS routines instrumented, run with and without huge pages.
//!
//! Usage: `table1_eos [--paper | --smoke] [--out results_eos.json]`

use rflash_bench::{run_eos_experiment, RunScale};
use rflash_hugepages::probe_system;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::from_args(&args);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results_eos.json".into());

    println!("host huge-page configuration:\n{}", probe_system());
    println!(
        "{}",
        rflash_bench::prepare_hugetlb_pool(scale.max_blocks * 11 * 24 * 24 * 8 + (8 << 20))
    );

    // The paper's backend sweep: none (the -Knolargepage analog), THP (which
    // may silently fail to engage — the GNU/Cray mystery), and explicit
    // hugetlbfs pages (the Fujitsu path).
    let policies = rflash_bench::default_policies();
    let exp = run_eos_experiment(&policies, scale);
    for run in &exp.runs {
        println!(
            "policy={:<10} leaves={:<5} unk={:>6.1} MiB backing: {}",
            run.policy,
            run.leaf_blocks,
            run.unk_bytes as f64 / (1 << 20) as f64,
            run.unk_backing
        );
        println!("    {} (saw huge pages: {})", run.meminfo_watch, run.meminfo_saw_huge);
    }
    if let Some(report) = exp.ratio_report() {
        println!("\n{report}");
        println!(
            "paper (Table I): DTLB ratio 0.047, time ratio 0.94; here: DTLB ratio {:.3}, time ratio {:.3}",
            report.dtlb_ratio(),
            report.ratios()[1]
        );
    }
    exp.save(&out).expect("write results JSON");
    println!("wrote {out}");
}
