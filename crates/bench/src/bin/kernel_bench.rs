//! Scalar vs. pencil-batched sweep engine, plus batched-Helmholtz lane
//! occupancy → appends one record to `BENCH_kernels.json`.
//!
//! The two engines are bit-identical (proven by the hydro parity tests), so
//! the only thing this bin measures is the per-zone cost of the inner
//! loops: gather-once SoA lanes vs. per-cell strided index arithmetic. The
//! workload is the paper's hydro-dominated case — a seeded 3-d Sedov grid —
//! swept in all three directions with the EOS folded into the sweep
//! (`SweepEos::Batch`), exactly the traffic Table II instruments. A
//! separate micro-benchmark runs the batched Helmholtz `DensEi` inversion
//! over a seeded density/temperature grid and reports what fraction of
//! lanes stayed on the vectorized path (`batch_occupancy`); lanes that
//! refuse to converge fall back to the scalar Newton and lower it.
//!
//! Usage: `kernel_bench [--smoke | --paper]` (default: quick). `--smoke`
//! shrinks the grid and round count for CI; the speedup ratio is printed,
//! not asserted, so a loaded CI box cannot fail the build.

use std::time::Instant;

use rflash_bench::RunScale;
use rflash_core::setups::sedov::SedovSetup;
use rflash_core::{RuntimeParams, Simulation};
use rflash_eos::{Eos, EosBatch, EosMode, Helmholtz, TableConfig};
use rflash_hugepages::Policy;
use rflash_hydro::{compute_dt_parallel, sweep_direction, SweepConfig, SweepEngine, SweepEos, NFLUX};
use rflash_mesh::flux::FluxRegister;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct KernelRecord {
    git_rev: String,
    host: String,
    smoke: bool,
    rounds: u64,
    zones_per_round: u64,
    ns_per_zone_scalar: f64,
    ns_per_zone_batched: f64,
    /// scalar / batched per-zone time (>1 means the pencil engine wins).
    speedup: f64,
    /// Vectorized-lane fraction of the batched Helmholtz DensEi inversion.
    batch_occupancy: f64,
}

fn sedov_sim(scale: &RunScale) -> Simulation {
    let setup = SedovSetup {
        ndim: 3,
        nxb: 8,
        max_refine: scale.max_refine,
        max_blocks: scale.max_blocks,
        ..SedovSetup::default()
    };
    setup.build(RuntimeParams {
        policy: Policy::None,
        pattern_every: 0,
        gather_every: 0,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    })
}

/// Time `rounds` full (x, y, z) sweep triples with the sweep-integrated
/// EOS. Returns (ns per zone, zones per round). A fresh deterministic
/// Sedov grid per engine plus bit-identical engines means both timings
/// walk exactly the same states and dt sequence.
fn time_engine(scale: &RunScale, engine: SweepEngine, rounds: u64) -> (f64, u64) {
    let mut sim = sedov_sim(scale);
    let ndim = sim.domain.tree.config().ndim;
    let cfg = SweepConfig {
        engine,
        pattern_every: 0,
        ..SweepConfig::default()
    };
    let mut reg = FluxRegister::new(
        ndim,
        sim.domain.tree.config().nxb,
        NFLUX,
        sim.domain.tree.config().max_blocks,
    );
    let sweep_eos = SweepEos::Batch {
        eos: sim.eos.as_dyn(),
        abar: sim.comp.abar,
        zbar: sim.comp.zbar,
    };

    let mut run_round = |domain: &mut rflash_mesh::Domain, timed: bool| -> u64 {
        let dt = compute_dt_parallel(domain, 0.3, 1);
        let mut zones = 0;
        for dir in 0..ndim {
            for probe in sweep_direction(domain, &sweep_eos, dir, dt, &mut reg, &cfg) {
                zones += probe.stats.zones;
            }
        }
        let _ = timed;
        zones
    };

    // Warm-up: first epoch builds the pencil scratch arenas and faults in
    // every page of unk; steady state is what the record should show.
    run_round(&mut sim.domain, false);

    let t0 = Instant::now();
    let mut zones = 0u64;
    for _ in 0..rounds {
        zones += run_round(&mut sim.domain, true);
    }
    let ns = t0.elapsed().as_nanos() as f64;
    (ns / zones.max(1) as f64, zones / rounds.max(1))
}

/// Batched Helmholtz DensEi inversion over a seeded (ρ, T) grid spanning
/// the table. Returns the vectorized-lane fraction.
fn helmholtz_occupancy(lanes: usize) -> f64 {
    let h = Helmholtz::build(TableConfig::coarse(), Policy::None).expect("coarse Helmholtz table");
    let abar = vec![13.714285714285715; lanes];
    let zbar = vec![6.857142857142857; lanes];
    let mut dens = vec![0.0; lanes];
    let mut temp = vec![0.0; lanes];
    for i in 0..lanes {
        let f = i as f64 / lanes as f64;
        dens[i] = 10f64.powf(-1.0 + 8.0 * f); // 1e-1 .. 1e7 g/cc
        temp[i] = 10f64.powf(6.0 + 3.0 * ((7 * i + 3) % lanes) as f64 / lanes as f64);
    }
    let mut eint = vec![0.0; lanes];
    let mut pres = vec![0.0; lanes];
    let mut gamc = vec![0.0; lanes];
    let mut game = vec![0.0; lanes];
    // Forward pass at the seeded temperatures fixes consistent energies...
    let mut fwd = EosBatch {
        dens: &dens,
        eint: &mut eint,
        temp: &mut temp,
        abar: &abar,
        zbar: &zbar,
        pres: &mut pres,
        gamc: &mut gamc,
        game: &mut game,
    };
    h.eos_batch(EosMode::DensTemp, &mut fwd)
        .expect("forward DensTemp pass");
    // ...then the inversion starts from a deliberately poor guess so the
    // Newton lanes do real work before converging (or falling back).
    for t in temp.iter_mut() {
        *t *= 3.0;
    }
    let mut inv = EosBatch {
        dens: &dens,
        eint: &mut eint,
        temp: &mut temp,
        abar: &abar,
        zbar: &zbar,
        pres: &mut pres,
        gamc: &mut gamc,
        game: &mut game,
    };
    let report = h
        .eos_batch(EosMode::DensEi, &mut inv)
        .expect("batched DensEi inversion");
    report.vector_lanes as f64 / report.lanes.max(1) as f64
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn hostname() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = RunScale::from_args(&args);
    let rounds = if scale.steps == 0 { 10 } else { scale.steps };

    let (ns_scalar, zones_per_round) = time_engine(&scale, SweepEngine::Scalar, rounds);
    let (ns_batched, _) = time_engine(&scale, SweepEngine::Pencil, rounds);
    let occupancy = helmholtz_occupancy(if smoke { 512 } else { 4096 });

    let rec = KernelRecord {
        git_rev: git_rev(),
        host: hostname(),
        smoke,
        rounds,
        zones_per_round,
        ns_per_zone_scalar: ns_scalar,
        ns_per_zone_batched: ns_batched,
        speedup: ns_scalar / ns_batched.max(1e-12),
        batch_occupancy: occupancy,
    };
    println!(
        "sedov_3d sweep+eos: scalar {:.1} ns/zone, pencil {:.1} ns/zone ({:.2}x), \
         helmholtz batch occupancy {:.3}",
        rec.ns_per_zone_scalar, rec.ns_per_zone_batched, rec.speedup, rec.batch_occupancy
    );

    // Append to the history file so regressions are visible across revs.
    let path = "BENCH_kernels.json";
    let mut records: Vec<serde_json::Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    records.push(serde_json::to_value(&rec).expect("serialize kernel record"));
    let json = serde_json::to_string_pretty(&records).expect("serialize kernel records");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("-> {path} ({} records)", records.len());
}
