//! Scalar vs. auto vs. explicit-SIMD sweep engine matrix, plus the batched
//! Helmholtz inversion per lane backend → appends one record to
//! `BENCH_kernels.json`.
//!
//! Three tiers, all bit-identical (proven by the hydro parity tests):
//!
//! * **scalar** — the per-zone AoS reference engine (`SweepEngine::Scalar`):
//!   strided index arithmetic and `[f64; 8]` rows per cell.
//! * **auto** — the pencil SoA engine on the 1-wide portable lane
//!   (`Resolved::Scalar`): gather-once lanes, but vectorization is left
//!   entirely to the compiler.
//! * **explicit** — the same pencil engine on each wider backend
//!   (`v2`/`v4` portable, `sse2`/`avx2` intrinsics where the CPU has
//!   them): the explicit lane kernels this crate exists to measure.
//!
//! The workload is the paper's hydro-dominated case — a seeded 3-d Sedov
//! grid — swept in all three directions with the EOS folded into the sweep
//! (`SweepEos::Batch`), exactly the traffic Table II instruments. A
//! separate micro-benchmark runs the batched Helmholtz `DensEi` inversion
//! (masked re-iteration Newton) once per backend and reports ns/lane plus
//! the vectorized-lane fraction (`batch_occupancy`; plateau-accepted lanes
//! are excluded from it).
//!
//! Usage: `kernel_bench [--smoke | --paper] [--enforce-explicit]`.
//! `--smoke` shrinks the grid and round count for CI. `--enforce-explicit`
//! exits non-zero when the best explicit backend is more than 10% slower
//! than the auto tier — the regression gate for the explicit kernels
//! (an uninlined `#[target_feature]` boundary shows up as a 3x+ cliff,
//! far outside the tolerance), while 5–10% scheduling noise on a loaded
//! CI box cannot fail the build. The scalar-vs-pencil ratio stays
//! print-only.

use std::time::Instant;

use rflash_bench::RunScale;
use rflash_core::setups::sedov::SedovSetup;
use rflash_core::{RuntimeParams, Simulation};
use rflash_eos::{Eos, EosBatch, EosMode, Helmholtz, TableConfig};
use rflash_hugepages::Policy;
use rflash_hydro::{compute_dt_parallel, sweep_direction, SweepConfig, SweepEngine, SweepEos, NFLUX};
use rflash_mesh::flux::FluxRegister;
use rflash_simd::Resolved;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct KernelRecord {
    git_rev: String,
    host: String,
    smoke: bool,
    rounds: u64,
    zones_per_round: u64,
    /// What `Backend::Native` resolved to on this host.
    simd_resolved: String,
    /// Per-zone AoS reference engine.
    ns_per_zone_scalar: f64,
    /// Pencil SoA engine, 1-wide lanes (compiler autovectorization only).
    ns_per_zone_auto: f64,
    /// Pencil SoA engine on the native explicit backend (field name kept
    /// from the pre-matrix records so the history stays comparable).
    ns_per_zone_batched: f64,
    /// Pencil engine ns/zone per explicit backend (v2/v4/sse2/avx2).
    explicit_ns_per_zone: Vec<(String, f64)>,
    /// Fastest explicit backend in `explicit_ns_per_zone`.
    best_explicit: String,
    /// scalar / native-explicit per-zone time (>1: the pencil engine wins).
    speedup: f64,
    /// auto / best-explicit per-zone time (>1: explicit SIMD beats
    /// autovectorization) — the `--enforce-explicit` gate.
    explicit_vs_auto: f64,
    /// Vectorized-lane fraction of the batched Helmholtz DensEi inversion
    /// (plateau-accepted lanes excluded).
    batch_occupancy: f64,
    /// Batched Helmholtz DensEi inversion ns/lane per backend.
    helmholtz_ns_per_lane: Vec<(String, f64)>,
}

fn sedov_sim(scale: &RunScale) -> Simulation {
    let setup = SedovSetup {
        ndim: 3,
        nxb: 8,
        max_refine: scale.max_refine,
        max_blocks: scale.max_blocks,
        ..SedovSetup::default()
    };
    setup.build(RuntimeParams {
        policy: Policy::None,
        pattern_every: 0,
        gather_every: 0,
        ..RuntimeParams::with_mesh(setup.mesh_config())
    })
}

/// Time `rounds` full (x, y, z) sweep triples with the sweep-integrated
/// EOS on one (engine, backend) combination. Returns (ns per zone, zones
/// per round). A fresh deterministic Sedov grid per combination plus
/// bit-identical engines means every timing walks exactly the same states
/// and dt sequence.
fn time_engine(scale: &RunScale, engine: SweepEngine, simd: Resolved, rounds: u64) -> (f64, u64) {
    let mut sim = sedov_sim(scale);
    let ndim = sim.domain.tree.config().ndim;
    let cfg = SweepConfig {
        engine,
        simd,
        pattern_every: 0,
        ..SweepConfig::default()
    };
    let mut reg = FluxRegister::new(
        ndim,
        sim.domain.tree.config().nxb,
        NFLUX,
        sim.domain.tree.config().max_blocks,
    );
    let sweep_eos = SweepEos::Batch {
        eos: sim.eos.as_dyn(),
        abar: sim.comp.abar,
        zbar: sim.comp.zbar,
    };

    let mut run_round = |domain: &mut rflash_mesh::Domain| -> u64 {
        let dt = compute_dt_parallel(domain, 0.3, 1);
        let mut zones = 0;
        for dir in 0..ndim {
            for probe in sweep_direction(domain, &sweep_eos, dir, dt, &mut reg, &cfg) {
                zones += probe.stats.zones;
            }
        }
        zones
    };

    // Warm-up: first epoch builds the pencil scratch arenas and faults in
    // every page of unk; steady state is what the record should show.
    run_round(&mut sim.domain);

    let t0 = Instant::now();
    let mut zones = 0u64;
    for _ in 0..rounds {
        zones += run_round(&mut sim.domain);
    }
    let ns = t0.elapsed().as_nanos() as f64;
    (ns / zones.max(1) as f64, zones / rounds.max(1))
}

/// Batched Helmholtz DensEi inversion over a seeded (ρ, T) grid spanning
/// the table, once per lane backend. Returns (ns/lane per backend,
/// vectorized-lane fraction).
fn helmholtz_bench(lanes: usize, rounds: u32) -> (Vec<(String, f64)>, f64) {
    let mut h =
        Helmholtz::build(TableConfig::coarse(), Policy::None).expect("coarse Helmholtz table");
    let abar = vec![13.714285714285715; lanes];
    let zbar = vec![6.857142857142857; lanes];
    let mut dens = vec![0.0; lanes];
    let mut temp = vec![0.0; lanes];
    for i in 0..lanes {
        let f = i as f64 / lanes as f64;
        dens[i] = 10f64.powf(-1.0 + 8.0 * f); // 1e-1 .. 1e7 g/cc
        temp[i] = 10f64.powf(6.0 + 3.0 * ((7 * i + 3) % lanes) as f64 / lanes as f64);
    }
    let mut eint = vec![0.0; lanes];
    let mut pres = vec![0.0; lanes];
    let mut gamc = vec![0.0; lanes];
    let mut game = vec![0.0; lanes];
    // Forward pass at the seeded temperatures fixes consistent energies...
    let mut fwd = EosBatch {
        dens: &dens,
        eint: &mut eint,
        temp: &mut temp,
        abar: &abar,
        zbar: &zbar,
        pres: &mut pres,
        gamc: &mut gamc,
        game: &mut game,
    };
    h.eos_batch(EosMode::DensTemp, &mut fwd)
        .expect("forward DensTemp pass");
    // ...then every inversion starts from the same deliberately poor guess
    // so the Newton lanes do real work before converging.
    let guess: Vec<f64> = temp.iter().map(|t| t * 3.0).collect();

    let mut per_backend = Vec::new();
    let mut occupancy = 0.0;
    for &b in Resolved::all() {
        h.set_simd(b);
        let mut last_ns = 0.0;
        // One warm-up iteration, then the timed rounds.
        for round in 0..=rounds {
            temp.copy_from_slice(&guess);
            let mut inv = EosBatch {
                dens: &dens,
                eint: &mut eint,
                temp: &mut temp,
                abar: &abar,
                zbar: &zbar,
                pres: &mut pres,
                gamc: &mut gamc,
                game: &mut game,
            };
            let t0 = Instant::now();
            let report = h
                .eos_batch(EosMode::DensEi, &mut inv)
                .expect("batched DensEi inversion");
            if round > 0 {
                last_ns += t0.elapsed().as_nanos() as f64;
            }
            occupancy = report.vector_lanes as f64 / report.lanes.max(1) as f64;
        }
        per_backend.push((
            b.name().to_string(),
            last_ns / (lanes as f64 * f64::from(rounds.max(1))),
        ));
    }
    (per_backend, occupancy)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn hostname() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce-explicit");
    let scale = RunScale::from_args(&args);
    let rounds = if scale.steps == 0 { 10 } else { scale.steps };
    let native = rflash_simd::resolve(rflash_simd::Backend::Native);

    let (ns_scalar, zones_per_round) =
        time_engine(&scale, SweepEngine::Scalar, native, rounds);
    let (ns_auto, _) = time_engine(&scale, SweepEngine::Pencil, Resolved::Scalar, rounds);
    let mut explicit: Vec<(String, f64)> = Vec::new();
    for &b in Resolved::all() {
        if b == Resolved::Scalar {
            continue; // that's the auto tier
        }
        let (ns, _) = time_engine(&scale, SweepEngine::Pencil, b, rounds);
        explicit.push((b.name().to_string(), ns));
    }
    let ns_native = explicit
        .iter()
        .find(|(n, _)| n == native.name())
        .map(|&(_, ns)| ns)
        .unwrap_or(ns_auto);
    let (best_name, best_ns) = explicit
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(n, ns)| (n.clone(), *ns))
        .unwrap_or_else(|| ("auto".to_string(), ns_auto));
    let (helm_ns, occupancy) = helmholtz_bench(
        if smoke { 512 } else { 4096 },
        if smoke { 4 } else { 16 },
    );

    let rec = KernelRecord {
        git_rev: git_rev(),
        host: hostname(),
        smoke,
        rounds,
        zones_per_round,
        simd_resolved: native.name().to_string(),
        ns_per_zone_scalar: ns_scalar,
        ns_per_zone_auto: ns_auto,
        ns_per_zone_batched: ns_native,
        explicit_ns_per_zone: explicit.clone(),
        best_explicit: best_name.clone(),
        speedup: ns_scalar / ns_native.max(1e-12),
        explicit_vs_auto: ns_auto / best_ns.max(1e-12),
        batch_occupancy: occupancy,
        helmholtz_ns_per_lane: helm_ns.clone(),
    };
    println!("sedov_3d sweep+eos (native = {}):", rec.simd_resolved);
    println!("  scalar engine   {:>9.1} ns/zone", rec.ns_per_zone_scalar);
    println!(
        "  pencil auto     {:>9.1} ns/zone  ({:.2}x vs scalar)",
        rec.ns_per_zone_auto,
        rec.ns_per_zone_scalar / rec.ns_per_zone_auto.max(1e-12)
    );
    for (name, ns) in &explicit {
        println!(
            "  pencil {name:<8} {:>9.1} ns/zone  ({:.2}x vs auto)",
            ns,
            rec.ns_per_zone_auto / ns.max(1e-12)
        );
    }
    println!(
        "  -> best explicit: {} ({:.2}x vs auto); helmholtz occupancy {:.3}",
        best_name, rec.explicit_vs_auto, rec.batch_occupancy
    );
    for (name, ns) in &helm_ns {
        println!("  helmholtz DensEi {name:<8} {ns:>7.1} ns/lane");
    }

    // Append to the history file so regressions are visible across revs.
    let path = "BENCH_kernels.json";
    let mut records: Vec<serde_json::Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    records.push(serde_json::to_value(&rec).expect("serialize kernel record"));
    let json = serde_json::to_string_pretty(&records).expect("serialize kernel records");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("-> {path} ({} records)", records.len());

    if enforce && rec.explicit_vs_auto < 0.9 {
        eprintln!(
            "FAIL: best explicit backend {} ({best_ns:.1} ns/zone) is >10% slower than \
             the auto tier ({:.1} ns/zone)",
            best_name, rec.ns_per_zone_auto
        );
        std::process::exit(1);
    }
}
