//! Shared harness for regenerating the paper's tables and figures.
//!
//! Experiment index (see `DESIGN.md` §4):
//!
//! * **E1 / Table I** — `table1_eos`: 2-d supernova, EOS region instrumented,
//!   with vs. without huge pages.
//! * **E2 / Table II** — `table2_hydro`: 3-d Sedov, hydro region
//!   instrumented, with vs. without huge pages.
//! * **E3 / Figure 1** — `figure1_ratios`: ratio bar chart from E1+E2 JSON.
//! * **E5 / §II analog** — `backend_matrix`: which allocation backends
//!   actually achieve huge pages (the GNU/Cray/Fujitsu observable).
//!
//! Scale: the paper ran on 32 GB A64FX nodes; defaults here are laptop-
//! scale but keep the working set far beyond the TLB reach (~4 MiB) so the
//! DTLB phenomenon is preserved. `--paper` raises resolution and step
//! counts toward the paper's 50-step supernova / 200-step Sedov runs.

use rflash_core::setups::sedov::SedovSetup;
use rflash_core::setups::supernova::SupernovaSetup;
use rflash_core::{RuntimeParams, Simulation};
use rflash_hugepages::Policy;
use rflash_perfmon::{Measures, RatioReport};
use serde::{Deserialize, Serialize};

/// How large to run an experiment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RunScale {
    pub steps: u64,
    pub max_refine: u8,
    pub max_blocks: usize,
    /// Use the coarse Helmholtz table (tests/smoke only).
    pub coarse_table: bool,
}

impl RunScale {
    /// Fast default: minutes on one laptop core, working set ≫ TLB reach.
    pub fn quick() -> RunScale {
        RunScale {
            steps: 10,
            max_refine: 2,
            max_blocks: 1024,
            coarse_table: false,
        }
    }

    /// The paper's step counts (50 EOS / 200 Hydro) and deeper refinement.
    pub fn paper() -> RunScale {
        RunScale {
            steps: 0, // filled per experiment
            max_refine: 3,
            max_blocks: 4096,
            coarse_table: false,
        }
    }

    /// Tiny smoke scale for integration tests.
    pub fn smoke() -> RunScale {
        RunScale {
            steps: 2,
            max_refine: 1,
            max_blocks: 256,
            coarse_table: true,
        }
    }

    /// Parse `--paper` / `--smoke` from argv (default quick).
    pub fn from_args(args: &[String]) -> RunScale {
        if args.iter().any(|a| a == "--paper") {
            RunScale::paper()
        } else if args.iter().any(|a| a == "--smoke") {
            RunScale::smoke()
        } else {
            RunScale::quick()
        }
    }
}

/// One experiment result for one policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyRun {
    pub policy: String,
    pub measures: Measures,
    /// smaps-verified backing of the unk container.
    pub unk_backing: String,
    pub unk_verified_huge: bool,
    /// The paper's §III protocol: /proc/meminfo sampled during the run.
    #[serde(default)]
    pub meminfo_watch: String,
    #[serde(default)]
    pub meminfo_saw_huge: bool,
    pub leaf_blocks: usize,
    pub unk_bytes: usize,
    pub hw_counters: bool,
}

/// A full with/without-HP experiment (one paper table).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Experiment {
    pub name: String,
    pub scale: RunScale,
    pub runs: Vec<PolicyRun>,
}

impl Experiment {
    /// Build the paper-style two-column report from the `none` and the
    /// first verified-huge run (preferring `thp`).
    pub fn ratio_report(&self) -> Option<RatioReport> {
        let without = self.runs.iter().find(|r| r.policy == "none")?;
        let with = self
            .runs
            .iter()
            .find(|r| r.policy != "none" && r.unk_verified_huge)
            .or_else(|| self.runs.iter().find(|r| r.policy != "none"))?;
        Some(RatioReport {
            name: self.name.clone(),
            without_hp: without.measures,
            with_hp: with.measures,
        })
    }

    /// Write the experiment as pretty JSON.
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_string_pretty(self).unwrap())
    }

    /// Read an experiment JSON written by [`Experiment::save`].
    pub fn load(path: &str) -> std::io::Result<Experiment> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| std::io::Error::other(e.to_string()))
    }
}

fn runtime_params(policy: Policy, mesh: rflash_mesh::MeshConfig) -> RuntimeParams {
    RuntimeParams {
        policy,
        // Sampled instrumentation keeps overhead similar across policies.
        pattern_every: 4,
        gather_every: 4,
        tlb_sample_every: 2,
        ..RuntimeParams::with_mesh(mesh)
    }
}

fn policy_run(
    sim: &Simulation,
    policy: Policy,
    measures: Measures,
    watch: rflash_hugepages::WatchSummary,
) -> PolicyRun {
    let backing = sim.domain.unk.backing_report();
    PolicyRun {
        policy: policy.to_string(),
        measures,
        unk_backing: backing.to_string(),
        unk_verified_huge: backing.verified_huge(),
        meminfo_watch: watch.to_string(),
        meminfo_saw_huge: watch.saw_huge_pages(),
        leaf_blocks: sim.domain.tree.leaves().len(),
        unk_bytes: sim.domain.unk.bytes(),
        hw_counters: measures.hw_backend,
    }
}

/// The paper's policy sweep. On hosts where THP silently fails to engage
/// (this includes some virtualized kernels — and, in spirit, the paper's
/// GNU/Cray toolchains), the hugetlbfs run provides the verified-huge
/// column; `prepare_hugetlb_pool` mirrors the paper's node configuration.
pub fn default_policies() -> Vec<Policy> {
    vec![
        Policy::None,
        Policy::Thp,
        Policy::HugeTlbFs(rflash_hugepages::PageSize::Huge2M),
    ]
}

/// Best-effort pool sizing for a run needing ~`bytes` of huge allocations
/// (the paper's `hugeadm --pool-pages-min` node modification). Returns a
/// human-readable outcome for the report.
pub fn prepare_hugetlb_pool(bytes: usize) -> String {
    match rflash_hugepages::probe::ensure_pool_for(bytes) {
        Ok(pages) => format!("2M pool: {pages} pages"),
        Err(e) => format!("2M pool unavailable ({e}); hugetlbfs runs will fall back"),
    }
}

/// E1: the paper's "EOS" test — 2-d supernova deflagration, EOS region
/// instrumented (50 steps at paper scale).
pub fn run_eos_experiment(policies: &[Policy], scale: RunScale) -> Experiment {
    let steps = if scale.steps == 0 { 50 } else { scale.steps };
    let mut runs = Vec::new();
    for &policy in policies {
        let setup = SupernovaSetup {
            max_refine: scale.max_refine,
            max_blocks: scale.max_blocks,
            coarse_table: scale.coarse_table,
            ..SupernovaSetup::default()
        };
        let params = runtime_params(policy, setup.mesh_config());
        let mut sim = setup.build(params);
        // §III protocol: watch /proc/meminfo while the instrumented code runs.
        let watch = rflash_hugepages::MemInfoWatch::start(std::time::Duration::from_millis(100));
        sim.evolve(steps);
        let watch = watch.stop();
        let measures = sim.eos_measures();
        runs.push(policy_run(&sim, policy, measures, watch));
    }
    Experiment {
        name: "EOS".into(),
        scale: RunScale { steps, ..scale },
        runs,
    }
}

/// E2: the paper's "3-d Hydro" test — Sedov explosion, hydro region
/// instrumented (200 steps at paper scale).
pub fn run_hydro_experiment(policies: &[Policy], scale: RunScale) -> Experiment {
    let steps = if scale.steps == 0 { 200 } else { scale.steps };
    let mut runs = Vec::new();
    for &policy in policies {
        let setup = SedovSetup {
            ndim: 3,
            nxb: 8,
            max_refine: scale.max_refine,
            max_blocks: scale.max_blocks,
            ..SedovSetup::default()
        };
        let params = runtime_params(policy, setup.mesh_config());
        let mut sim = setup.build(params);
        // §III protocol: watch /proc/meminfo while the instrumented code runs.
        let watch = rflash_hugepages::MemInfoWatch::start(std::time::Duration::from_millis(100));
        sim.evolve(steps);
        let watch = watch.stop();
        let measures = sim.hydro_measures();
        runs.push(policy_run(&sim, policy, measures, watch));
    }
    Experiment {
        name: "3-d Hydro".into(),
        scale: RunScale { steps, ..scale },
        runs,
    }
}

/// Render Figure 1's data: the per-measure ratios for both experiments.
pub fn figure1_text(eos: &RatioReport, hydro: &RatioReport) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 1: ratios of performance measures, with HPs / without HPs\n\
         (paper: all near 1 except DTLB misses at 0.047 [EOS] / 0.324 [Hydro])\n\n",
    );
    let eos_r = eos.ratios();
    let hyd_r = hydro.ratios();
    out.push_str(&format!(
        "{:<30} {:>10} {:>10}\n",
        "measure", "EOS", "3-d Hydro"
    ));
    for (i, label) in Measures::ROW_LABELS.iter().enumerate() {
        out.push_str(&format!(
            "{:<30} {:>10.3} {:>10.3}  ",
            label, eos_r[i], hyd_r[i]
        ));
        // ASCII bar chart, 1.0 == 40 columns.
        let bar = |v: f64| "#".repeat((v.clamp(0.0, 1.5) * 40.0).round() as usize);
        out.push_str(&format!("|{}\n{:<52} |{}\n", bar(eos_r[i]), "", bar(hyd_r[i])));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_eos_experiment_end_to_end() {
        let exp = run_eos_experiment(&[Policy::None, Policy::Thp], RunScale::smoke());
        assert_eq!(exp.runs.len(), 2);
        let report = exp.ratio_report().expect("both policies present");
        // The with-HP run must not have *more* modeled misses.
        assert!(
            report.with_hp.dtlb_misses <= report.without_hp.dtlb_misses,
            "with={} without={}",
            report.with_hp.dtlb_misses,
            report.without_hp.dtlb_misses
        );
        assert!(report.without_hp.time_s > 0.0);
        let text = report.to_string();
        assert!(text.contains("EOS"));
    }

    #[test]
    fn experiment_json_round_trip() {
        let exp = run_eos_experiment(&[Policy::None], RunScale::smoke());
        let path = std::env::temp_dir().join(format!("rflash-exp-{}.json", std::process::id()));
        exp.save(path.to_str().unwrap()).unwrap();
        let back = Experiment::load(path.to_str().unwrap()).unwrap();
        assert_eq!(back.name, "EOS");
        assert_eq!(back.runs.len(), 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn scale_from_args() {
        let s = RunScale::from_args(&["--paper".to_string()]);
        assert_eq!(s.steps, 0);
        let s = RunScale::from_args(&[]);
        assert_eq!(s.steps, 10);
        let s = RunScale::from_args(&["--smoke".to_string()]);
        assert!(s.coarse_table);
    }
}

#[cfg(test)]
mod report_selection_tests {
    use super::*;

    fn run(policy: &str, verified: bool, dtlb: f64) -> PolicyRun {
        PolicyRun {
            policy: policy.into(),
            measures: Measures {
                cycles: 1e9,
                time_s: 1.0,
                vec_ops_per_cycle: 0.1,
                mem_gb_per_s: 1.0,
                dtlb_miss_per_s: dtlb,
                total_time_s: 1.0,
                dtlb_misses: dtlb as u64,
                hw_backend: false,
                hw_dtlb_miss_per_s: None,
                stall_fraction: 0.0,
            },
            unk_backing: "test".into(),
            unk_verified_huge: verified,
            meminfo_watch: String::new(),
            meminfo_saw_huge: verified,
            leaf_blocks: 1,
            unk_bytes: 1,
            hw_counters: false,
        }
    }

    #[test]
    fn ratio_report_prefers_the_verified_huge_run() {
        // The GNU/Cray lesson: a THP run that did NOT verify must not be
        // presented as the "with huge pages" column when a verified
        // hugetlbfs run exists.
        let exp = Experiment {
            name: "EOS".into(),
            scale: RunScale::smoke(),
            runs: vec![
                run("none", false, 1000.0),
                run("thp", false, 990.0),         // silently not huge
                run("hugetlbfs:2M", true, 50.0),  // verified
            ],
        };
        let report = exp.ratio_report().unwrap();
        assert_eq!(report.with_hp.dtlb_miss_per_s, 50.0);
        assert!((report.dtlb_ratio() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ratio_report_falls_back_to_unverified_when_nothing_verifies() {
        let exp = Experiment {
            name: "EOS".into(),
            scale: RunScale::smoke(),
            runs: vec![run("none", false, 1000.0), run("thp", false, 1000.0)],
        };
        let report = exp.ratio_report().unwrap();
        assert_eq!(report.with_hp.dtlb_miss_per_s, 1000.0);
        assert!((report.dtlb_ratio() - 1.0).abs() < 1e-12, "honest: no gain");
    }

    #[test]
    fn ratio_report_requires_a_baseline() {
        let exp = Experiment {
            name: "EOS".into(),
            scale: RunScale::smoke(),
            runs: vec![run("thp", true, 10.0)],
        };
        assert!(exp.ratio_report().is_none());
    }
}
