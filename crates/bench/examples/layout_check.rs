//! E6 companion: one-shot modeled DTLB miss counts for the `unk` layout
//! ablation (see `benches/layout_ablation.rs` for the timed version).
//! Sweeps one variable over 128 3-d blocks twice, exactly the §I.C access.

use rflash_hugepages::Policy;
use rflash_mesh::{Layout, UnkStorage};
use rflash_tlbsim::{FrameSizing, Tlb, TlbConfig};

fn main() {
    for layout in [Layout::VarFirst, Layout::VarLast] {
        for (name, sizing) in [("base", FrameSizing::Base), ("huge", FrameSizing::huge(2 << 20))] {
            let unk = UnkStorage::new(3, 16, 4, 11, 128, layout, Policy::None);
            let geom = unk.geom();
            let mut tlb = Tlb::new(TlbConfig::a64fx_like());
            tlb.map_region(unk.base_addr(), unk.bytes(), sizing);
            for _rep in 0..2 {
                for blk in 0..128 {
                    for k in unk.interior_k() {
                        for j in unk.interior() {
                            geom.pencil_pattern(0, 0, j, k, blk).replay(&mut tlb);
                        }
                    }
                }
            }
            println!("{layout:?}/{name}: walks={} accesses={}", tlb.stats().walks, tlb.stats().accesses);
        }
    }
}
