//! Persistent rank-pool executor.
//!
//! FLASH creates its MPI ranks once at startup and reuses them for every
//! operation of every time step. The previous implementation instead spawned
//! a fresh scoped thread per parallel section — per sweep, per EOS pass, per
//! flame advance — paying thread-creation latency hundreds of times per
//! step. [`RankPool`] reproduces the MPI structure: `nranks` long-lived
//! worker threads created once per simulation, receiving work over per-rank
//! channels and reporting completion on a shared channel. The calling thread
//! blocks until every rank has finished, which is exactly the barrier
//! semantics of a bulk-synchronous MPI code.
//!
//! The pool also keeps the load-imbalance ledger: per-rank busy time (inside
//! dispatched closures) and idle time (waiting at the implicit barrier for
//! slower ranks), surfaced through `rflash-perfmon` in `profile_report`.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A job message for one worker.
enum Job {
    /// Run the shared closure with this worker's rank index. The reference
    /// is only valid until the worker reports completion — see
    /// [`RankPool::run`] for why the `'static` is a lie we can afford.
    Run(&'static (dyn Fn(usize) + Sync)),
    Shutdown,
}

/// Completion report from one rank: its index plus `Ok` or the payload of a
/// panic inside the closure. Carrying the rank lets the dispatch barrier
/// assert the exactly-once join protocol in debug builds.
type Done = (usize, std::thread::Result<()>);

struct Worker {
    tx: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// Cumulative per-rank execution counters, monotonic over the pool's life.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankCounters {
    /// Nanoseconds this rank spent executing dispatched closures.
    pub busy_ns: u64,
    /// Nanoseconds this rank spent waiting at the dispatch barrier while
    /// slower ranks were still busy (dispatch wall time minus own busy time).
    pub idle_ns: u64,
}

/// `nranks` long-lived worker threads with barrier-style dispatch.
pub struct RankPool {
    workers: Vec<Worker>,
    done_rx: Receiver<Done>,
    busy: Vec<Arc<AtomicU64>>,
    idle_ns: Vec<u64>,
    dispatches: u64,
    wall_ns: u64,
}

impl RankPool {
    /// Spawn `nranks` workers. They persist until the pool is dropped.
    pub fn new(nranks: usize) -> RankPool {
        assert!(nranks > 0, "a rank pool needs at least one rank");
        let (done_tx, done_rx) = channel();
        let mut workers = Vec::with_capacity(nranks);
        let mut busy = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let (tx, rx) = channel();
            let counter = Arc::new(AtomicU64::new(0));
            let worker_counter = Arc::clone(&counter);
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .spawn(move || worker_loop(rank, rx, done, worker_counter))
                // analyze::allow(panic): thread-spawn failure at pool
                // construction is unrecoverable resource exhaustion — the
                // simulation cannot start, let alone continue.
                .expect("spawning rank worker");
            workers.push(Worker {
                tx,
                handle: Some(handle),
            });
            busy.push(counter);
        }
        RankPool {
            workers,
            done_rx,
            busy,
            idle_ns: vec![0; nranks],
            dispatches: 0,
            wall_ns: 0,
        }
    }

    /// Pool width (the requested rank count, independent of leaf count).
    pub fn nranks(&self) -> usize {
        self.workers.len()
    }

    /// Dispatch `f(rank)` to every worker and block until all complete —
    /// the bulk-synchronous step of the simulated MPI program. If any rank
    /// panicked, the first payload is re-raised on the caller after every
    /// rank has reported in.
    ///
    /// Soundness of the `'static` transmute: the borrow handed to each
    /// worker is used only inside that worker's `catch_unwind`, and this
    /// function does not return — not even by unwinding — until every
    /// worker has sent its completion message, which is strictly after its
    /// last use of the borrow. `f` therefore outlives every use.
    pub fn run(&mut self, f: &(dyn Fn(usize) + Sync)) {
        let nranks = self.workers.len();
        let busy_before: Vec<u64> = self
            .busy
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let t0 = Instant::now();
        // SAFETY: lifetime erasure only; see the doc comment above.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        for w in &self.workers {
            // analyze::allow(panic): a worker's receiver only drops on
            // Shutdown or pool drop; a hung-up channel mid-dispatch means a
            // rank died outside the protocol and the pool cannot continue.
            w.tx.send(Job::Run(f_static)).expect("rank worker hung up");
        }
        // Debug-build protocol ledger: every dispatched rank joins exactly
        // once per dispatch.
        #[cfg(debug_assertions)]
        let mut joined = vec![false; nranks];
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..nranks {
            // analyze::allow(panic): every worker sends exactly one report
            // per dispatch before blocking on its next job, so the channel
            // cannot disconnect before nranks reports arrive.
            let (_rank, result) = self.done_rx.recv().expect("rank worker hung up");
            #[cfg(debug_assertions)]
            {
                debug_assert!(
                    _rank < nranks && !joined[_rank],
                    "rank {_rank} joined twice in one dispatch"
                );
                joined[_rank] = true;
            }
            match result {
                Ok(()) => {}
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                joined.iter().all(|&j| j),
                "dispatch barrier released with unjoined ranks"
            );
            debug_assert!(
                self.done_rx.try_recv().is_err(),
                "stray completion report after the dispatch barrier"
            );
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        self.dispatches += 1;
        for (rank, before) in busy_before.iter().enumerate() {
            let used = self.busy[rank].load(Ordering::Relaxed) - before;
            self.idle_ns[rank] += wall_ns.saturating_sub(used);
        }
        // Dispatch epilogue (the counter rollup above, ledger checks): the
        // workers are already parked waiting for the next job, so this is
        // idle time for every rank. Accounting it keeps the invariant
        // busy + idle ≈ wall per dispatch, instead of quietly dropping the
        // epilogue — which understates idle_fraction for short dispatches.
        let total_ns = t0.elapsed().as_nanos() as u64;
        let epilogue_ns = total_ns - wall_ns;
        for idle in &mut self.idle_ns {
            *idle += epilogue_ns;
        }
        self.wall_ns += total_ns;
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    }

    /// Completed dispatches since the pool was created.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Cumulative dispatch wall time (including epilogues), the reference
    /// value for the `busy + idle ≈ wall` ledger invariant.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Charge main-thread overhead between dispatches (e.g. the partition
    /// epoch refresh after a regrid) to every rank's idle ledger: the
    /// workers exist and wait while the caller prepares their next job.
    pub fn account_idle(&mut self, ns: u64) {
        for idle in &mut self.idle_ns {
            *idle += ns;
        }
        self.wall_ns += ns;
    }

    /// Move `ns[rank]` nanoseconds from each rank's busy ledger to its idle
    /// ledger. The task-graph runner executes its whole scheduling loop
    /// inside one dispatch — the pool counts all of it as busy — and then
    /// reclassifies the time its workers measurably spent waiting for
    /// runnable tasks (spin/steal misses) through this.
    pub fn reattribute_idle(&mut self, ns: &[u64]) {
        for (rank, &moved) in ns.iter().enumerate().take(self.workers.len()) {
            self.busy[rank].fetch_sub(moved, Ordering::Relaxed);
            self.idle_ns[rank] += moved;
        }
    }

    /// Cumulative per-rank busy/idle counters.
    pub fn counters(&self) -> Vec<RankCounters> {
        self.busy
            .iter()
            .zip(&self.idle_ns)
            .map(|(busy, &idle_ns)| RankCounters {
                busy_ns: busy.load(Ordering::Relaxed),
                idle_ns,
            })
            .collect()
    }
}

fn worker_loop(rank: usize, rx: Receiver<Job>, done: Sender<Done>, busy: Arc<AtomicU64>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Run(f) => {
                let t0 = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| f(rank)));
                busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                // The completion message is the lifetime fence for `f`:
                // nothing after this send may touch the borrow.
                if done.send((rank, result)).is_err() {
                    return;
                }
            }
            Job::Shutdown => return,
        }
    }
}

impl Drop for RankPool {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Job::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Per-rank output slots for pool dispatches. Each rank writes only the slot
/// at its own index during a dispatch, so plain `UnsafeCell`s suffice — no
/// locking on the hot path and no false sharing through a mutex.
pub struct PerRank<T>(Vec<UnsafeCell<T>>);

// SAFETY: access is partitioned by rank index (one thread per slot at a
// time), which is exactly the contract `slot` demands of its callers.
unsafe impl<T: Send> Sync for PerRank<T> {}

impl<T> PerRank<T> {
    /// `n` slots, each built by `init`.
    pub fn new(n: usize, mut init: impl FnMut() -> T) -> PerRank<T> {
        PerRank((0..n).map(|_| UnsafeCell::new(init())).collect())
    }

    /// Wrap existing values (e.g. reusable staging buffers) as rank slots.
    pub fn from_vec(values: Vec<T>) -> PerRank<T> {
        PerRank(values.into_iter().map(UnsafeCell::new).collect())
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff there are no slots.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Exclusive access to one rank's slot.
    ///
    /// # Safety
    /// Each index must be accessed by at most one thread at a time; during a
    /// pool dispatch that means rank `r` touches only `slot(r)`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot(&self, rank: usize) -> &mut T {
        &mut *self.0[rank].get()
    }

    /// Recover the slot values in rank order.
    pub fn into_inner(self) -> Vec<T> {
        self.0.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_rank_runs_exactly_once_per_dispatch() {
        let mut pool = RankPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..3 {
            pool.run(&|rank| {
                hits[rank].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 3);
        }
        assert_eq!(pool.dispatches(), 3);
    }

    #[test]
    fn per_rank_slots_collect_in_rank_order() {
        let mut pool = RankPool::new(3);
        let out: PerRank<usize> = PerRank::new(3, || 0);
        pool.run(&|rank| {
            // SAFETY: each rank writes only its own slot.
            *unsafe { out.slot(rank) } = rank * 10;
        });
        assert_eq!(out.into_inner(), vec![0, 10, 20]);
    }

    #[test]
    fn counters_accumulate_across_dispatches() {
        let mut pool = RankPool::new(2);
        pool.run(&|_| {
            std::hint::black_box((0..10_000).sum::<u64>());
        });
        pool.run(&|_| {});
        let counters = pool.counters();
        assert_eq!(counters.len(), 2);
        // Busy time is recorded even for trivially short closures (the
        // Instant pair brackets the call), so the ledger is never empty.
        assert!(counters.iter().all(|c| c.busy_ns > 0));
    }

    #[test]
    fn busy_plus_idle_tracks_dispatch_wall() {
        let mut pool = RankPool::new(3);
        for round in 0..4 {
            pool.run(&|rank| {
                // Deliberately skewed work so idle time is nonzero.
                if rank == round % 3 {
                    std::thread::sleep(std::time::Duration::from_millis(8));
                }
            });
        }
        let wall = pool.wall_ns();
        assert!(wall > 0);
        for (rank, c) in pool.counters().iter().enumerate() {
            let ledger = c.busy_ns + c.idle_ns;
            // The ledger invariant: per rank, busy + idle equals the
            // cumulative dispatch wall (epilogue included) up to clock
            // skew between the worker and dispatcher Instants.
            let skew = wall / 20 + 2_000_000;
            assert!(
                ledger + skew > wall && ledger < wall + skew,
                "rank {rank}: busy+idle = {ledger} vs wall = {wall}"
            );
        }
    }

    #[test]
    fn account_and_reattribute_idle_move_ledger_entries() {
        let mut pool = RankPool::new(2);
        pool.run(&|_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        let before = pool.counters();
        pool.account_idle(1_000);
        let after = pool.counters();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(a.idle_ns, b.idle_ns + 1_000);
            assert_eq!(a.busy_ns, b.busy_ns);
        }
        // Reattribution conserves busy + idle while shifting the split.
        pool.reattribute_idle(&[500, 700]);
        let shifted = pool.counters();
        for ((a, s), moved) in after.iter().zip(&shifted).zip([500u64, 700]) {
            assert_eq!(s.busy_ns, a.busy_ns - moved);
            assert_eq!(s.idle_ns, a.idle_ns + moved);
        }
    }

    #[test]
    fn panics_propagate_and_pool_survives() {
        let mut pool = RankPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|rank| {
                if rank == 1 {
                    panic!("rank 1 died");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool is still functional: the panic was caught in the worker.
        let ran = AtomicUsize::new(0);
        pool.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }
}
