//! Solution-variable indices into the `unk` container.
//!
//! FLASH addresses `unk(ivar, …)` with named integer indices (DENS_VAR,
//! PRES_VAR, …). The paper's supernova application carries hydrodynamic
//! state, thermodynamic cache variables, and the flame progress variable.

/// Mass density, g/cm³.
pub const DENS: usize = 0;
/// x-velocity, cm/s.
pub const VELX: usize = 1;
/// y-velocity, cm/s.
pub const VELY: usize = 2;
/// z-velocity, cm/s.
pub const VELZ: usize = 3;
/// Pressure, erg/cm³.
pub const PRES: usize = 4;
/// Specific total energy (internal + kinetic), erg/g.
pub const ENER: usize = 5;
/// Temperature, K.
pub const TEMP: usize = 6;
/// Specific internal energy, erg/g.
pub const EINT: usize = 7;
/// First adiabatic index Γ₁ (EOS cache).
pub const GAMC: usize = 8;
/// Energy gamma Γₑ = 1 + P/(ρe) (EOS cache).
pub const GAME: usize = 9;
/// Flame progress variable φ ∈ [0, 1].
pub const FLAM: usize = 10;

/// Number of solution variables.
pub const NVAR: usize = 11;

/// Human-readable names, index-aligned with the constants.
pub const VAR_NAMES: [&str; NVAR] = [
    "dens", "velx", "vely", "velz", "pres", "ener", "temp", "eint", "gamc", "game", "flam",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_align_with_indices() {
        assert_eq!(VAR_NAMES[DENS], "dens");
        assert_eq!(VAR_NAMES[FLAM], "flam");
        assert_eq!(VAR_NAMES.len(), NVAR);
    }
}
