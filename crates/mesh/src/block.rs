//! Block identity and tree keys.

use serde::{Deserialize, Serialize};

/// Slot index into the block pool (PARAMESH's block number).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    #[inline]
    /// The slot index as a usize (for array indexing).
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Logical position of a block in the tree: refinement level plus integer
/// coordinates at that level (block `(ix, iy, iz)` covers
/// `[ix/2^… ]`-style fractions of the domain).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MortonKey {
    /// Refinement level; 0 = root blocks.
    pub level: u8,
    pub ix: u32,
    pub iy: u32,
    pub iz: u32,
}

impl MortonKey {
    /// Parent key (level−1). Root keys return `None`.
    pub fn parent(self) -> Option<MortonKey> {
        if self.level == 0 {
            None
        } else {
            Some(MortonKey {
                level: self.level - 1,
                ix: self.ix / 2,
                iy: self.iy / 2,
                iz: self.iz / 2,
            })
        }
    }

    /// The `child`-th child key (0..2^ndim, bit 0 = x, bit 1 = y, bit 2 = z).
    pub fn child(self, child: usize, ndim: usize) -> MortonKey {
        debug_assert!(child < (1 << ndim));
        MortonKey {
            level: self.level + 1,
            ix: self.ix * 2 + (child & 1) as u32,
            iy: self.iy * 2 + ((child >> 1) & 1) as u32,
            iz: self.iz * 2 + ((child >> 2) & 1) as u32,
        }
    }

    /// Which child of its parent this key is.
    pub fn child_index(self) -> usize {
        ((self.ix & 1) + 2 * (self.iy & 1) + 4 * (self.iz & 1)) as usize
    }

    /// Neighbor key at the same level, offset by (dx, dy, dz) blocks.
    /// Returns `None` on underflow (domain edge handled by the caller with
    /// the root-block counts).
    pub fn neighbor(self, d: [i32; 3]) -> Option<MortonKey> {
        let ix = self.ix.checked_add_signed(d[0])?;
        let iy = self.iy.checked_add_signed(d[1])?;
        let iz = self.iz.checked_add_signed(d[2])?;
        Some(MortonKey {
            level: self.level,
            ix,
            iy,
            iz,
        })
    }

    /// Morton (Z-order) code at a fixed normalization level, used to sort
    /// leaves along the space-filling curve for load balancing — the same
    /// ordering PARAMESH uses to distribute blocks over MPI ranks.
    pub fn morton_code(self, max_level: u8) -> u128 {
        debug_assert!(self.level <= max_level);
        let shift = (max_level - self.level) as u32;
        let (x, y, z) = (
            (self.ix << shift) as u128,
            (self.iy << shift) as u128,
            (self.iz << shift) as u128,
        );
        let mut code: u128 = 0;
        for bit in 0..32 {
            code |= ((x >> bit) & 1) << (3 * bit)
                | ((y >> bit) & 1) << (3 * bit + 1)
                | ((z >> bit) & 1) << (3 * bit + 2);
        }
        code
    }
}

/// Lifecycle state of a block slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// Unused pool slot.
    Free,
    /// A leaf block carrying live solution data.
    Leaf,
    /// An interior node whose data is the restriction of its children.
    Parent,
}

/// Per-block metadata (PARAMESH's `lrefine`, `parent`, `child`, bounding
/// boxes, …).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockMeta {
    pub key: MortonKey,
    pub state: BlockState,
    pub parent: Option<BlockId>,
    /// Children in child-index order; `None` for leaves.
    pub children: Option<[BlockId; 8]>,
    /// Number of valid children (2^ndim).
    pub n_children: u8,
}

impl BlockMeta {
    /// An empty pool slot.
    pub fn free() -> BlockMeta {
        BlockMeta {
            key: MortonKey {
                level: 0,
                ix: 0,
                iy: 0,
                iz: 0,
            },
            state: BlockState::Free,
            parent: None,
            children: None,
            n_children: 0,
        }
    }

    /// Is this block a leaf carrying live solution data?
    pub fn is_leaf(&self) -> bool {
        self.state == BlockState::Leaf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_round_trip() {
        let root = MortonKey {
            level: 0,
            ix: 0,
            iy: 0,
            iz: 0,
        };
        for ndim in [2usize, 3] {
            for c in 0..(1 << ndim) {
                let child = root.child(c, ndim);
                assert_eq!(child.parent(), Some(root));
                assert_eq!(child.child_index(), c);
                assert_eq!(child.level, 1);
            }
        }
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn neighbor_arithmetic() {
        let k = MortonKey {
            level: 2,
            ix: 1,
            iy: 2,
            iz: 0,
        };
        let n = k.neighbor([1, -1, 0]).unwrap();
        assert_eq!((n.ix, n.iy, n.iz), (2, 1, 0));
        assert!(k.neighbor([0, 0, -1]).is_none(), "underflow is None");
    }

    #[test]
    fn morton_orders_along_curve() {
        // At one level, codes must be unique and respect Z-ordering of the
        // first quadrant split.
        let keys: Vec<MortonKey> = (0..4)
            .flat_map(|y| {
                (0..4).map(move |x| MortonKey {
                    level: 2,
                    ix: x,
                    iy: y,
                    iz: 0,
                })
            })
            .collect();
        let mut codes: Vec<u128> = keys.iter().map(|k| k.morton_code(2)).collect();
        let unique: std::collections::HashSet<u128> = codes.iter().copied().collect();
        assert_eq!(unique.len(), 16);
        codes.sort_unstable();
        // The first four codes along the curve are the 2×2 lower-left quad.
        let first: Vec<u128> = keys
            .iter()
            .filter(|k| k.ix < 2 && k.iy < 2)
            .map(|k| k.morton_code(2))
            .collect();
        assert!(first.iter().all(|c| codes[..4].contains(c)));
    }

    #[test]
    fn coarse_block_and_descendants_share_curve_segment() {
        // A parent's Morton code equals its first child's code at the
        // normalization level — contiguous curve segments per subtree.
        let parent = MortonKey {
            level: 1,
            ix: 1,
            iy: 1,
            iz: 0,
        };
        let c0 = parent.child(0, 2);
        assert_eq!(parent.morton_code(4), c0.morton_code(4));
        let c3 = parent.child(3, 2);
        assert!(c3.morton_code(4) > parent.morton_code(4));
    }
}
