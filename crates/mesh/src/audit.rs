//! Dynamic access ledger for task-graph race auditing.
//!
//! The task-graph scheduler (DESIGN.md §13) is bit-identical to the barrier
//! path *only if* the hand-written `note_read`/`note_write` declarations in
//! the plan builder exactly cover what each task body actually touches —
//! one omitted declaration is a silent, schedule-dependent data race that a
//! parity test can miss on any given interleaving. This module turns that
//! assumption into a machine-checked invariant (DESIGN.md §14): the
//! instrumented accessors ([`crate::unk::UnkCells`], [`crate::flux::FluxCells`],
//! [`crate::taskgraph::SyncSlots`]) record every (resource, read|write) a
//! task body performs into a thread-local per-task ledger, and
//! [`crate::taskgraph::TaskGraph::execute`] cross-checks the recorded
//! accesses against the declared happens-before relation after every run.
//!
//! The layer is compiled in under `debug_assertions` or the `race-audit`
//! feature and compiles to nothing otherwise ([`COMPILED`] is `false`, every
//! entry point is an empty inline function). A process-wide runtime switch
//! ([`set_runtime_enabled`]) lets a compiled-in binary measure the ledger's
//! overhead without rebuilding.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};

/// `true` when the audit layer is compiled in (debug builds, or any build
/// with the `race-audit` feature).
#[cfg(any(debug_assertions, feature = "race-audit"))]
pub const COMPILED: bool = true;
/// `true` when the audit layer is compiled in (debug builds, or any build
/// with the `race-audit` feature).
#[cfg(not(any(debug_assertions, feature = "race-audit")))]
pub const COMPILED: bool = false;

static RUNTIME_ON: AtomicBool = AtomicBool::new(true);

/// Turn the compiled-in ledger on or off at runtime (process-wide). The
/// audit-overhead bench uses this to time the clean path with and without
/// recording in a single binary; it has no effect when [`COMPILED`] is
/// `false`.
pub fn set_runtime_enabled(on: bool) {
    RUNTIME_ON.store(on, Ordering::Relaxed);
}

/// Whether accesses are being recorded right now.
#[inline]
pub fn enabled() -> bool {
    COMPILED && RUNTIME_ON.load(Ordering::Relaxed)
}

/// Access mode of one recorded or declared access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Read,
    Write,
}

/// One (resource, mode) access, recorded by an instrumented accessor or
/// declared to the graph builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    pub res: u32,
    pub mode: Mode,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static LEDGER: RefCell<Vec<Access>> = const { RefCell::new(Vec::new()) };
}

/// Open this thread's ledger for one task body. Called by the graph
/// executors around each task; accesses recorded outside a task are
/// dropped.
#[inline]
pub fn task_begin() {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| a.set(true));
    LEDGER.with(|l| l.borrow_mut().clear());
}

/// Close this thread's ledger and return the task's recorded accesses.
#[inline]
pub fn task_end() -> Vec<Access> {
    if !enabled() {
        return Vec::new();
    }
    ACTIVE.with(|a| a.set(false));
    LEDGER.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

/// Record a shared read of `res` by the current task.
#[inline]
pub fn rec_read(res: usize) {
    record(res, Mode::Read);
}

/// Record an exclusive write of `res` by the current task.
#[inline]
pub fn rec_write(res: usize) {
    record(res, Mode::Write);
}

/// Serializes tests that record accesses or toggle the runtime switch —
/// both are process-wide, so concurrent test threads would interfere.
#[doc(hidden)]
pub fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
    M.lock().unwrap_or_else(|e| e.into_inner())
}

#[inline]
fn record(res: usize, mode: Mode) {
    if !enabled() || !ACTIVE.with(|a| a.get()) {
        return;
    }
    let res = res as u32;
    LEDGER.with(|l| {
        let mut ledger = l.borrow_mut();
        // Dedup by linear scan: task bodies touch a handful of resources,
        // so this stays cheaper than hashing. A write subsumes a read.
        for a in ledger.iter_mut() {
            if a.res == res {
                if mode == Mode::Write {
                    a.mode = Mode::Write;
                }
                return;
            }
        }
        ledger.push(Access { res, mode });
    });
}

/// The step graph's resource-id layout, shared between the plan builder
/// (which declares accesses against it) and the instrumented accessors
/// (which record against it). `4·max_blocks + 1` resources: per-block
/// interior, guard band, guard-stage buffer, and flux-register rows, plus
/// one cell for the reduced dt.
#[derive(Clone, Copy, Debug)]
pub struct ResourceMap {
    pub max_blocks: usize,
}

impl ResourceMap {
    /// Block `blk`'s interior zones.
    #[inline]
    pub fn interior(&self, blk: usize) -> usize {
        blk
    }

    /// Block `blk`'s guard band.
    #[inline]
    pub fn guards(&self, blk: usize) -> usize {
        self.max_blocks + blk
    }

    /// Block `blk`'s staged guard-exchange buffer.
    #[inline]
    pub fn stage(&self, blk: usize) -> usize {
        2 * self.max_blocks + blk
    }

    /// Block `blk`'s flux-register rows.
    #[inline]
    pub fn fluxrow(&self, blk: usize) -> usize {
        3 * self.max_blocks + blk
    }

    /// The reduced-dt cell.
    #[inline]
    pub fn dt(&self) -> usize {
        4 * self.max_blocks
    }

    /// Total number of resources.
    #[inline]
    pub fn count(&self) -> usize {
        4 * self.max_blocks + 1
    }

    /// Human-readable name of resource `res`, for audit failure messages.
    pub fn describe(&self, res: usize) -> String {
        if res == self.dt() {
            return "dt".to_string();
        }
        let (family, blk) = match res / self.max_blocks {
            0 => ("interior", res),
            1 => ("guards", res - self.max_blocks),
            2 => ("stage", res - 2 * self.max_blocks),
            _ => ("fluxrow", res - 3 * self.max_blocks),
        };
        format!("{family}(block {blk})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_records_dedups_and_upgrades() {
        if !COMPILED {
            return;
        }
        let _g = test_guard();
        task_begin();
        rec_read(3);
        rec_read(3); // duplicate read collapses
        rec_write(7);
        rec_read(7); // read after write is subsumed
        rec_read(5);
        rec_write(5); // write upgrades the earlier read
        let accs = task_end();
        assert_eq!(
            accs,
            vec![
                Access { res: 3, mode: Mode::Read },
                Access { res: 7, mode: Mode::Write },
                Access { res: 5, mode: Mode::Write },
            ]
        );
        // Outside a task nothing records.
        rec_write(9);
        task_begin();
        assert_eq!(task_end(), Vec::new());
    }

    #[test]
    fn runtime_switch_gates_recording() {
        if !COMPILED {
            return;
        }
        let _g = test_guard();
        set_runtime_enabled(false);
        assert!(!enabled());
        task_begin();
        rec_read(1);
        set_runtime_enabled(true);
        assert!(enabled());
        // Recording resumes only with a fresh task window.
        task_begin();
        rec_read(2);
        let accs = task_end();
        assert_eq!(accs, vec![Access { res: 2, mode: Mode::Read }]);
    }

    #[test]
    fn resource_map_layout_and_names() {
        let m = ResourceMap { max_blocks: 10 };
        assert_eq!(m.interior(3), 3);
        assert_eq!(m.guards(3), 13);
        assert_eq!(m.stage(3), 23);
        assert_eq!(m.fluxrow(3), 33);
        assert_eq!(m.dt(), 40);
        assert_eq!(m.count(), 41);
        assert_eq!(m.describe(3), "interior(block 3)");
        assert_eq!(m.describe(13), "guards(block 3)");
        assert_eq!(m.describe(23), "stage(block 3)");
        assert_eq!(m.describe(33), "fluxrow(block 3)");
        assert_eq!(m.describe(40), "dt");
    }
}
