//! Per-block dependency-graph execution with work stealing.
//!
//! The bulk-synchronous step loop dispatches the rank pool once per phase —
//! guard fill, sweep, EOS, dt scan — and every dispatch is a full barrier:
//! the fastest rank waits for the slowest, per phase, so load imbalance
//! converts directly into idle time. The HPX/Kokkos stellar-merger codes
//! (arXiv 2210.06439, 2304.11002) replace that structure with futurized
//! per-block task graphs over the octree; this module is the same idea on
//! the persistent [`RankPool`]: one pool dispatch executes an entire
//! dependency graph, each block's work becomes runnable the moment its own
//! inputs are ready, and per-rank deques with stealing soak up whatever
//! imbalance the cost-weighted Morton partition left behind.
//!
//! Determinism is preserved by construction, not by scheduling: tasks may
//! run in any order consistent with the edges, so the graph *builder* must
//! encode every ordering that matters. [`GraphBuilder`] does this with
//! resource versioning — each shared resource (a block slab, a staging
//! buffer, a flux row) tracks its last writer and the readers since; a new
//! reader depends on the last writer, and a new writer depends on the last
//! writer *and* every reader since (the classic RAW/WAR/WAW rule). Declaring
//! task accesses in the serial barrier-path order therefore reproduces the
//! serial data flow exactly, and any schedule the runner picks computes
//! bit-identical results. Order-sensitive reductions (the CFL minimum, the
//! guardian verdict) are folded by dedicated tasks in Morton order over
//! per-block slots, never in completion order.

use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::executor::{PerRank, RankPool};

/// Index of a task inside one graph.
pub type TaskId = u32;

/// Scheduling class of a task kind, for the overlap ledger: `Exchange`
/// covers guard-cell pack/unpack and restriction (the "communication"
/// phases), `Compute` covers the sweeps. The overlap ratio — compute time
/// spent while at least one exchange task was in flight — is the direct
/// measure of what the barrier loop structurally could not do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskClass {
    Exchange,
    Compute,
    Other,
}

/// Builds a task graph: tasks tagged with a kind (caller-defined small
/// integer) and an owning rank, edges added either explicitly or derived
/// from resource access declarations.
pub struct GraphBuilder {
    kinds: Vec<u8>,
    owners: Vec<u32>,
    deps: Vec<u32>,
    dependents: Vec<Vec<TaskId>>,
    edge_set: HashSet<u64>,
    last_writer: Vec<Option<TaskId>>,
    readers: Vec<Vec<TaskId>>,
}

impl GraphBuilder {
    /// A builder tracking `num_resources` shared resources.
    pub fn new(num_resources: usize) -> GraphBuilder {
        GraphBuilder {
            kinds: Vec::new(),
            owners: Vec::new(),
            deps: Vec::new(),
            dependents: Vec::new(),
            edge_set: HashSet::new(),
            last_writer: vec![None; num_resources],
            readers: vec![Vec::new(); num_resources],
        }
    }

    /// Add a task; returns its id. Tasks must be declared in the canonical
    /// (serial barrier-path) order for resource edges to be meaningful.
    pub fn add_task(&mut self, kind: u8, owner: usize) -> TaskId {
        let id = self.kinds.len() as TaskId;
        self.kinds.push(kind);
        self.owners.push(owner as u32);
        self.deps.push(0);
        self.dependents.push(Vec::new());
        id
    }

    /// Add an explicit edge `from → to` (deduplicated; self-edges ignored).
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) {
        if from == to {
            return;
        }
        debug_assert!(from < to, "edges must point forward in declaration order");
        if self.edge_set.insert(((from as u64) << 32) | to as u64) {
            self.dependents[from as usize].push(to);
            self.deps[to as usize] += 1;
        }
    }

    /// Declare that `task` reads `res`: orders it after the resource's last
    /// writer (RAW).
    pub fn note_read(&mut self, res: usize, task: TaskId) {
        if let Some(w) = self.last_writer[res] {
            self.add_edge(w, task);
        }
        self.readers[res].push(task);
    }

    /// Declare that `task` writes `res`: orders it after the last writer
    /// (WAW) and after every reader since (WAR), then becomes the new
    /// version. A writer may also read the same resource — exclusive access
    /// subsumes shared.
    pub fn note_write(&mut self, res: usize, task: TaskId) {
        if let Some(w) = self.last_writer[res] {
            self.add_edge(w, task);
        }
        for r in std::mem::take(&mut self.readers[res]) {
            self.add_edge(r, task);
        }
        self.last_writer[res] = Some(task);
    }

    /// Freeze into an executable graph.
    pub fn build(self) -> TaskGraph {
        let roots = (0..self.kinds.len() as TaskId)
            .filter(|&t| self.deps[t as usize] == 0)
            .collect();
        TaskGraph {
            kinds: self.kinds,
            owners: self.owners,
            deps: self.deps,
            dependents: self.dependents,
            roots,
        }
    }
}

/// An immutable task graph, executable any number of times.
pub struct TaskGraph {
    kinds: Vec<u8>,
    owners: Vec<u32>,
    deps: Vec<u32>,
    dependents: Vec<Vec<TaskId>>,
    roots: Vec<TaskId>,
}

/// Per-rank counters from one or more graph executions.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphRankStats {
    /// Tasks this rank executed (its own and stolen ones).
    pub tasks: u64,
    /// Tasks this rank stole from another rank's deque.
    pub steals: u64,
    /// Nanoseconds inside task bodies.
    pub busy_ns: u64,
    /// Nanoseconds spent looking for runnable work (spin + steal misses).
    pub idle_ns: u64,
}

/// Aggregate statistics of one graph execution.
#[derive(Clone, Debug, Default)]
pub struct GraphStats {
    pub per_rank: Vec<GraphRankStats>,
    /// Busy nanoseconds per task kind (indexed by the builder's kind tags).
    pub kind_busy_ns: Vec<u64>,
    /// Compute-class nanoseconds spent while ≥1 exchange task was in flight.
    pub overlap_ns: u64,
    /// Total compute-class nanoseconds (the overlap denominator).
    pub compute_ns: u64,
}

/// Per-rank scratch local to one execution.
struct LocalStats {
    stats: GraphRankStats,
    kind_busy_ns: Vec<u64>,
    overlap_ns: u64,
    compute_ns: u64,
}

impl TaskGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` iff the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Prerequisite count of `task` (for tests and diagnostics).
    pub fn dep_count(&self, task: TaskId) -> u32 {
        self.deps[task as usize]
    }

    /// Execute the graph on `pool` in a single dispatch. `classes[kind]`
    /// assigns each kind tag its scheduling class (missing entries are
    /// `Other`); `body(rank, task)` runs one task on the calling rank's
    /// thread.
    ///
    /// Ready tasks go to their *owner's* deque (the Morton partition decides
    /// placement); a rank with an empty deque steals from the back of its
    /// neighbors' deques. Time spent failing to find work is measured per
    /// rank and reclassified from the pool's busy ledger to its idle ledger,
    /// so `idle_fraction` stays comparable with the barrier path.
    pub fn execute(
        &self,
        pool: &mut RankPool,
        classes: &[TaskClass],
        body: &(dyn Fn(usize, TaskId) + Sync),
    ) -> GraphStats {
        let nranks = pool.nranks();
        let ntasks = self.kinds.len();
        let mut stats = GraphStats {
            per_rank: vec![GraphRankStats::default(); nranks],
            kind_busy_ns: vec![0; classes.len().max(1)],
            overlap_ns: 0,
            compute_ns: 0,
        };
        if ntasks == 0 {
            return stats;
        }

        let pending: Vec<AtomicU32> = self.deps.iter().map(|&d| AtomicU32::new(d)).collect();
        let remaining = AtomicUsize::new(ntasks);
        let exchange_inflight = AtomicU32::new(0);
        let panicked = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let deques: Vec<Mutex<std::collections::VecDeque<TaskId>>> = (0..nranks)
            .map(|_| Mutex::new(std::collections::VecDeque::new()))
            .collect();
        // Seed the roots, in declaration order, onto their owners' deques.
        for &t in &self.roots {
            let owner = (self.owners[t as usize] as usize).min(nranks - 1);
            // analyze::allow(panic): a poisoned deque mutex means a worker
            // already panicked while holding it; the payload is re-raised
            // below, this unwind is collateral on a dead execution.
            deques[owner].lock().expect("deque lock").push_back(t);
        }

        let out: PerRank<LocalStats> = PerRank::new(nranks, || LocalStats {
            stats: GraphRankStats::default(),
            kind_busy_ns: vec![0; classes.len().max(1)],
            overlap_ns: 0,
            compute_ns: 0,
        });

        pool.run(&|rank| {
            let t_loop = Instant::now();
            // SAFETY: each rank touches only its own stats slot.
            let local = unsafe { out.slot(rank) };
            let mut busy_ns = 0u64;
            let mut misses = 0u32;
            loop {
                if panicked.load(Ordering::Acquire) {
                    break;
                }
                // Own deque first (FIFO keeps the canonical order the
                // builder seeded), then steal from the back of others'.
                let mut grabbed: Option<(TaskId, bool)> = None;
                // analyze::allow(panic): see the seeding loop — poisoned
                // deque locks only follow a worker panic, which aborts the
                // execution anyway.
                if let Some(t) = deques[rank].lock().expect("deque lock").pop_front() {
                    grabbed = Some((t, false));
                } else {
                    for i in 1..nranks {
                        let victim = (rank + i) % nranks;
                        // analyze::allow(panic): as above.
                        let stolen = deques[victim].lock().expect("deque lock").pop_back();
                        if let Some(t) = stolen {
                            grabbed = Some((t, true));
                            break;
                        }
                    }
                }
                let Some((task, stolen)) = grabbed else {
                    if remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    misses += 1;
                    if misses < 64 {
                        std::thread::yield_now();
                    } else {
                        // Long dry spell (e.g. more ranks than hardware
                        // threads): back off exponentially so spinning
                        // ranks don't starve the ones holding real work —
                        // a thief waking every 20 µs on an oversubscribed
                        // core is itself the bottleneck.
                        let exp = (misses - 64).min(5);
                        std::thread::sleep(std::time::Duration::from_micros(20 << exp));
                    }
                    continue;
                };
                misses = 0;
                if stolen {
                    local.stats.steals += 1;
                }
                let kind = self.kinds[task as usize] as usize;
                let class = classes.get(kind).copied().unwrap_or(TaskClass::Other);
                if class == TaskClass::Exchange {
                    exchange_inflight.fetch_add(1, Ordering::AcqRel);
                }
                let overlapped_at_start = class == TaskClass::Compute
                    && exchange_inflight.load(Ordering::Acquire) > 0;
                let t0 = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| body(rank, task)));
                let dt = t0.elapsed().as_nanos() as u64;
                // An exchange in flight at either end of a compute task
                // means the two intervals intersected (only an exchange
                // strictly inside the task escapes both probes).
                let overlapped = overlapped_at_start
                    || (class == TaskClass::Compute
                        && exchange_inflight.load(Ordering::Acquire) > 0);
                if class == TaskClass::Exchange {
                    exchange_inflight.fetch_sub(1, Ordering::AcqRel);
                }
                busy_ns += dt;
                local.stats.tasks += 1;
                if let Some(slot) = local.kind_busy_ns.get_mut(kind) {
                    *slot += dt;
                }
                if class == TaskClass::Compute {
                    local.compute_ns += dt;
                    if overlapped {
                        local.overlap_ns += dt;
                    }
                }
                match result {
                    Ok(()) => {}
                    Err(payload) => {
                        // analyze::allow(panic): lock poisoning here is the
                        // same collateral-unwind case as above.
                        let mut slot = panic_payload.lock().expect("panic slot");
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        drop(slot);
                        panicked.store(true, Ordering::Release);
                        break;
                    }
                }
                // Release newly-ready dependents onto their owners' deques.
                // The AcqRel RMW chain on `pending` makes every predecessor's
                // writes visible to the task that observes the count hit 0.
                for &d in &self.dependents[task as usize] {
                    if pending[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                        let owner = (self.owners[d as usize] as usize).min(nranks - 1);
                        // analyze::allow(panic): as above.
                        deques[owner].lock().expect("deque lock").push_back(d);
                    }
                }
                remaining.fetch_sub(1, Ordering::AcqRel);
            }
            local.stats.busy_ns = busy_ns;
            let wall = t_loop.elapsed().as_nanos() as u64;
            local.stats.idle_ns = wall.saturating_sub(busy_ns);
        });

        // Scheduler-internal wait time was counted as busy by the pool
        // (the whole loop ran inside one dispatched closure); move it to
        // the idle ledger so idle_fraction means the same thing in both
        // scheduler modes.
        let locals = out.into_inner();
        let idle: Vec<u64> = locals.iter().map(|l| l.stats.idle_ns).collect();
        pool.reattribute_idle(&idle);
        for (rank, l) in locals.into_iter().enumerate() {
            stats.per_rank[rank] = l.stats;
            for (k, ns) in l.kind_busy_ns.into_iter().enumerate() {
                stats.kind_busy_ns[k] += ns;
            }
            stats.overlap_ns += l.overlap_ns;
            stats.compute_ns += l.compute_ns;
        }
        if panicked.load(Ordering::Acquire) {
            // analyze::allow(panic): propagating the task's own panic.
            let slot = panic_payload.lock().expect("panic slot").take();
            // analyze::allow(panic): the flag is only set with a payload.
            let payload = slot.expect("panicked flag set without payload");
            resume_unwind(payload);
        }
        debug_assert_eq!(remaining.load(Ordering::Acquire), 0);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn record_order(graph: &TaskGraph, nranks: usize) -> Vec<TaskId> {
        let mut pool = RankPool::new(nranks);
        let order = Mutex::new(Vec::new());
        graph.execute(&mut pool, &[], &|_, t| {
            order.lock().unwrap().push(t);
        });
        order.into_inner().unwrap()
    }

    #[test]
    fn resource_versioning_generates_raw_war_waw_edges() {
        let mut b = GraphBuilder::new(1);
        let w0 = b.add_task(0, 0);
        let r1 = b.add_task(0, 0);
        let r2 = b.add_task(0, 0);
        let w1 = b.add_task(0, 0);
        b.note_write(0, w0);
        b.note_read(0, r1); // RAW: w0 → r1
        b.note_read(0, r2); // RAW: w0 → r2
        b.note_write(0, w1); // WAW: w0 → w1, WAR: r1 → w1, r2 → w1
        let g = b.build();
        assert_eq!(g.dep_count(w0), 0);
        assert_eq!(g.dep_count(r1), 1);
        assert_eq!(g.dep_count(r2), 1);
        assert_eq!(g.dep_count(w1), 3);
        // Any schedule must run w0 first and w1 last.
        for nranks in [1, 3] {
            let order = record_order(&g, nranks);
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], w0);
            assert_eq!(order[3], w1);
        }
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut b = GraphBuilder::new(2);
        let w = b.add_task(0, 0);
        let r = b.add_task(0, 0);
        // One task writing two resources read by the same successor must
        // produce a single dependency, or the count double-decrements.
        b.note_write(0, w);
        b.note_write(1, w);
        b.note_read(0, r);
        b.note_read(1, r);
        b.add_edge(w, r);
        let g = b.build();
        assert_eq!(g.dep_count(r), 1);
        assert_eq!(record_order(&g, 2), vec![w, r]);
    }

    #[test]
    fn diamond_runs_every_task_once_in_topological_order() {
        let mut b = GraphBuilder::new(0);
        let top = b.add_task(0, 0);
        let left = b.add_task(0, 0);
        let right = b.add_task(0, 1);
        let bottom = b.add_task(0, 1);
        b.add_edge(top, left);
        b.add_edge(top, right);
        b.add_edge(left, bottom);
        b.add_edge(right, bottom);
        let g = b.build();
        for nranks in [1, 2, 4] {
            let order = record_order(&g, nranks);
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], top);
            assert_eq!(order[3], bottom);
        }
    }

    #[test]
    fn work_stealing_rebalances_a_skewed_partition() {
        // Every task owned by rank 0, long enough bodies that rank 1 cannot
        // miss every steal window.
        let mut b = GraphBuilder::new(0);
        for _ in 0..32 {
            b.add_task(0, 0);
        }
        let g = b.build();
        let mut pool = RankPool::new(2);
        let ran = AtomicU64::new(0);
        let stats = g.execute(&mut pool, &[], &|_, _| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 32);
        assert!(
            stats.per_rank[1].steals > 0,
            "an idle rank next to a 64 ms backlog must steal: {stats:?}"
        );
        let total_tasks: u64 = stats.per_rank.iter().map(|r| r.tasks).sum();
        assert_eq!(total_tasks, 32);
    }

    #[test]
    fn overlap_ledger_counts_compute_during_exchange() {
        // Kind 0 = exchange, kind 1 = compute; a barrier inside both bodies
        // forces the two intervals to intersect even on one hardware
        // thread, and the exchange outlives the compute task so the
        // task-end probe must see it in flight.
        let mut b = GraphBuilder::new(0);
        b.add_task(0, 0);
        b.add_task(1, 1);
        let g = b.build();
        let mut pool = RankPool::new(2);
        let gate = std::sync::Barrier::new(2);
        let stats = g.execute(
            &mut pool,
            &[TaskClass::Exchange, TaskClass::Compute],
            &|_, t| {
                gate.wait();
                if t == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            },
        );
        assert!(stats.kind_busy_ns[0] >= 15_000_000);
        assert!(stats.compute_ns > 0);
        // The compute task overlapped the in-flight exchange.
        assert!(stats.overlap_ns > 0, "{stats:?}");
        assert_eq!(stats.overlap_ns, stats.compute_ns);
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let mut b = GraphBuilder::new(0);
        let a = b.add_task(0, 0);
        let bad = b.add_task(0, 0);
        b.add_edge(a, bad);
        let g = b.build();
        let mut pool = RankPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            g.execute(&mut pool, &[], &|_, t| {
                if t == bad {
                    panic!("task died");
                }
            });
        }));
        assert!(caught.is_err());
        let ran = AtomicU64::new(0);
        pool.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn graph_idle_is_reattributed_to_the_pool_ledger() {
        let mut b = GraphBuilder::new(0);
        // A serial chain: one rank runs both tasks (either may steal), the
        // other spins/sleeps in the scheduler loop the whole time.
        let t0 = b.add_task(0, 0);
        let t1 = b.add_task(0, 0);
        b.add_edge(t0, t1);
        let g = b.build();
        let mut pool = RankPool::new(2);
        let before = pool.counters();
        let stats = g.execute(&mut pool, &[], &|_, _| {
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
        let after = pool.counters();
        // After reattribution, each rank's pool busy delta matches the
        // task-body time the graph measured for it (scheduler wait was
        // moved to idle), and pool idle covers the graph-measured idle.
        for r in 0..2 {
            let busy_delta = after[r].busy_ns.saturating_sub(before[r].busy_ns);
            let idle_delta = after[r].idle_ns.saturating_sub(before[r].idle_ns);
            let graph_busy = stats.per_rank[r].busy_ns;
            let diff = busy_delta.abs_diff(graph_busy);
            assert!(
                diff < 2_000_000,
                "rank {r}: pool busy delta {busy_delta} vs graph busy {graph_busy}: {stats:?}"
            );
            assert!(
                idle_delta + 2_000_000 >= stats.per_rank[r].idle_ns,
                "rank {r}: pool idle delta {idle_delta} < graph idle {}",
                stats.per_rank[r].idle_ns
            );
        }
        // The whole 20 ms chain ran on exactly one rank.
        let total_busy: u64 = (0..2)
            .map(|r| after[r].busy_ns - before[r].busy_ns)
            .sum();
        assert!(total_busy >= 18_000_000, "{after:?}");
    }
}
