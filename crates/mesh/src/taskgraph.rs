//! Per-block dependency-graph execution with work stealing.
//!
//! The bulk-synchronous step loop dispatches the rank pool once per phase —
//! guard fill, sweep, EOS, dt scan — and every dispatch is a full barrier:
//! the fastest rank waits for the slowest, per phase, so load imbalance
//! converts directly into idle time. The HPX/Kokkos stellar-merger codes
//! (arXiv 2210.06439, 2304.11002) replace that structure with futurized
//! per-block task graphs over the octree; this module is the same idea on
//! the persistent [`RankPool`]: one pool dispatch executes an entire
//! dependency graph, each block's work becomes runnable the moment its own
//! inputs are ready, and per-rank deques with stealing soak up whatever
//! imbalance the cost-weighted Morton partition left behind.
//!
//! Determinism is preserved by construction, not by scheduling: tasks may
//! run in any order consistent with the edges, so the graph *builder* must
//! encode every ordering that matters. [`GraphBuilder`] does this with
//! resource versioning — each shared resource (a block slab, a staging
//! buffer, a flux row) tracks its last writer and the readers since; a new
//! reader depends on the last writer, and a new writer depends on the last
//! writer *and* every reader since (the classic RAW/WAR/WAW rule). Declaring
//! task accesses in the serial barrier-path order therefore reproduces the
//! serial data flow exactly, and any schedule the runner picks computes
//! bit-identical results. Order-sensitive reductions (the CFL minimum, the
//! guardian verdict) are folded by dedicated tasks in Morton order over
//! per-block slots, never in completion order.

//!
//! Each execution is audited when the access ledger is compiled in (debug
//! builds or the `race-audit` feature, [`crate::audit`]): instrumented
//! accessors record what every task body actually touched, and
//! [`TaskGraph::execute`] cross-checks the recording against the declared
//! accesses — every actual access must be declared by its task, and every
//! conflicting pair of actual accesses must be ordered by the declared
//! edges (a FastTrack-style vector-clock check specialized to the
//! resource-version model: task ids are a topological order, so a replay in
//! id order with per-resource last-writer/readers-since state plus ancestor
//! bitsets decides happens-before exactly). [`TaskGraph::execute_adversarial`]
//! additionally runs the graph single-threaded in a seeded random
//! edge-consistent topological order, so undeclared dependencies surface as
//! bit-level divergence even on a single-core host.

use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::audit::{self, Access, Mode};
use crate::executor::{PerRank, RankPool};

/// Index of a task inside one graph.
pub type TaskId = u32;

/// Scheduling class of a task kind, for the overlap ledger: `Exchange`
/// covers guard-cell pack/unpack and restriction (the "communication"
/// phases), `Compute` covers the sweeps. The overlap ratio — compute time
/// spent while at least one exchange task was in flight — is the direct
/// measure of what the barrier loop structurally could not do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskClass {
    Exchange,
    Compute,
    Other,
}

/// Builds a task graph: tasks tagged with a kind (caller-defined small
/// integer) and an owning rank, edges added either explicitly or derived
/// from resource access declarations.
pub struct GraphBuilder {
    kinds: Vec<u8>,
    owners: Vec<u32>,
    deps: Vec<u32>,
    dependents: Vec<Vec<TaskId>>,
    edge_set: HashSet<u64>,
    last_writer: Vec<Option<TaskId>>,
    readers: Vec<Vec<TaskId>>,
    /// Declared accesses per task, retained for the race audit (empty in
    /// builds without the audit layer).
    decl: Vec<Vec<Access>>,
}

impl GraphBuilder {
    /// A builder tracking `num_resources` shared resources.
    pub fn new(num_resources: usize) -> GraphBuilder {
        GraphBuilder {
            kinds: Vec::new(),
            owners: Vec::new(),
            deps: Vec::new(),
            dependents: Vec::new(),
            edge_set: HashSet::new(),
            last_writer: vec![None; num_resources],
            readers: vec![Vec::new(); num_resources],
            decl: Vec::new(),
        }
    }

    /// Add a task; returns its id. Tasks must be declared in the canonical
    /// (serial barrier-path) order for resource edges to be meaningful.
    pub fn add_task(&mut self, kind: u8, owner: usize) -> TaskId {
        let id = self.kinds.len() as TaskId;
        self.kinds.push(kind);
        self.owners.push(owner as u32);
        self.deps.push(0);
        self.dependents.push(Vec::new());
        if audit::COMPILED {
            self.decl.push(Vec::new());
        }
        id
    }

    /// Add an explicit edge `from → to` (deduplicated; self-edges ignored).
    ///
    /// Edges must point forward in declaration order — task ids double as a
    /// topological order, which the executors and the race audit both rely
    /// on. A backward edge would silently corrupt the dependency counts in
    /// release builds if this were only a `debug_assert`, so it is a real
    /// assertion.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) {
        if from == to {
            return;
        }
        assert!(
            from < to,
            "edges must point forward in declaration order ({from} -> {to})"
        );
        if self.edge_set.insert(((from as u64) << 32) | to as u64) {
            self.dependents[from as usize].push(to);
            self.deps[to as usize] += 1;
        }
    }

    /// Declare that `task` reads `res`: orders it after the resource's last
    /// writer (RAW).
    pub fn note_read(&mut self, res: usize, task: TaskId) {
        if let Some(w) = self.last_writer[res] {
            self.add_edge(w, task);
        }
        self.readers[res].push(task);
        if audit::COMPILED {
            self.decl[task as usize].push(Access {
                res: res as u32,
                mode: Mode::Read,
            });
        }
    }

    /// Declare that `task` writes `res`: orders it after the last writer
    /// (WAW) and after every reader since (WAR), then becomes the new
    /// version. A writer may also read the same resource — exclusive access
    /// subsumes shared.
    pub fn note_write(&mut self, res: usize, task: TaskId) {
        if let Some(w) = self.last_writer[res] {
            self.add_edge(w, task);
        }
        for r in std::mem::take(&mut self.readers[res]) {
            self.add_edge(r, task);
        }
        self.last_writer[res] = Some(task);
        if audit::COMPILED {
            self.decl[task as usize].push(Access {
                res: res as u32,
                mode: Mode::Write,
            });
        }
    }

    /// Freeze into an executable graph. When the audit layer is compiled
    /// in, this also flattens the edge relation into per-task ancestor
    /// bitsets (ids are topological, so one forward pass suffices) — the
    /// happens-before oracle the post-execution race check queries.
    pub fn build(self) -> TaskGraph {
        let n = self.kinds.len();
        let roots = (0..n as TaskId)
            .filter(|&t| self.deps[t as usize] == 0)
            .collect();
        let anc_words = if audit::COMPILED { n.div_ceil(64) } else { 0 };
        let mut anc = vec![0u64; n * anc_words];
        if audit::COMPILED {
            for t in 0..n {
                for &dep in &self.dependents[t] {
                    let d = dep as usize;
                    // add_edge guarantees t < d, so row t is final and
                    // disjoint from row d.
                    let (lo, hi) = anc.split_at_mut(d * anc_words);
                    let src = &lo[t * anc_words..(t + 1) * anc_words];
                    let dst = &mut hi[..anc_words];
                    for (dw, sw) in dst.iter_mut().zip(src) {
                        *dw |= sw;
                    }
                    dst[t / 64] |= 1u64 << (t % 64);
                }
            }
        }
        TaskGraph {
            kinds: self.kinds,
            owners: self.owners,
            deps: self.deps,
            dependents: self.dependents,
            roots,
            decl: self.decl,
            anc,
            anc_words,
            audit_label: None,
            audit_res: None,
        }
    }
}

/// An immutable task graph, executable any number of times.
pub struct TaskGraph {
    kinds: Vec<u8>,
    owners: Vec<u32>,
    deps: Vec<u32>,
    dependents: Vec<Vec<TaskId>>,
    roots: Vec<TaskId>,
    /// Declared accesses per task (audit builds only).
    decl: Vec<Vec<Access>>,
    /// Flattened ancestor bitsets: task `p` happens-before task `t` iff bit
    /// `p` of row `t` is set (audit builds only).
    anc: Vec<u64>,
    anc_words: usize,
    /// Audit-failure pretty-printers, supplied by the plan owner.
    audit_label: Option<Box<dyn Fn(TaskId) -> String + Send + Sync>>,
    audit_res: Option<Box<dyn Fn(usize) -> String + Send + Sync>>,
}

/// Per-rank counters from one or more graph executions.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphRankStats {
    /// Tasks this rank executed (its own and stolen ones).
    pub tasks: u64,
    /// Tasks this rank stole from another rank's deque.
    pub steals: u64,
    /// Nanoseconds inside task bodies.
    pub busy_ns: u64,
    /// Nanoseconds spent looking for runnable work (spin + steal misses).
    pub idle_ns: u64,
}

/// Aggregate statistics of one graph execution.
#[derive(Clone, Debug, Default)]
pub struct GraphStats {
    pub per_rank: Vec<GraphRankStats>,
    /// Busy nanoseconds per task kind (indexed by the builder's kind tags).
    pub kind_busy_ns: Vec<u64>,
    /// Compute-class nanoseconds spent while ≥1 exchange task was in flight.
    pub overlap_ns: u64,
    /// Total compute-class nanoseconds (the overlap denominator).
    pub compute_ns: u64,
}

/// Per-rank scratch local to one execution.
struct LocalStats {
    stats: GraphRankStats,
    kind_busy_ns: Vec<u64>,
    overlap_ns: u64,
    compute_ns: u64,
    /// Recorded (task, accesses) pairs, audit builds only.
    ledger: Vec<(TaskId, Vec<Access>)>,
}

impl TaskGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` iff the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Prerequisite count of `task` (for tests and diagnostics).
    pub fn dep_count(&self, task: TaskId) -> u32 {
        self.deps[task as usize]
    }

    /// The zero-indegree tasks, in declaration order.
    pub fn roots(&self) -> &[TaskId] {
        &self.roots
    }

    /// Direct successors of `task`, in edge-insertion order.
    pub fn successors(&self, task: TaskId) -> &[TaskId] {
        &self.dependents[task as usize]
    }

    /// Install pretty-printers for audit-failure messages: `label` renders
    /// a task (kind, block, direction), `res` renders a resource id. Purely
    /// diagnostic — the check itself is independent of them.
    pub fn set_audit_context(
        &mut self,
        label: impl Fn(TaskId) -> String + Send + Sync + 'static,
        res: impl Fn(usize) -> String + Send + Sync + 'static,
    ) {
        self.audit_label = Some(Box::new(label));
        self.audit_res = Some(Box::new(res));
    }

    /// Does `from` happen-before `to` under the declared edges? (Audit
    /// builds only; `false` otherwise.)
    #[inline]
    fn reachable(&self, from: TaskId, to: TaskId) -> bool {
        let (f, t) = (from as usize, to as usize);
        self.anc_words > 0 && self.anc[t * self.anc_words + f / 64] & (1u64 << (f % 64)) != 0
    }

    fn describe_task(&self, t: TaskId) -> String {
        match &self.audit_label {
            Some(f) => f(t),
            None => format!("task {t} (kind {})", self.kinds[t as usize]),
        }
    }

    fn describe_res(&self, r: usize) -> String {
        match &self.audit_res {
            Some(f) => f(r),
            None => format!("resource {r}"),
        }
    }

    /// Cross-check one execution's recorded accesses against the declared
    /// happens-before relation. Two independent gates:
    ///
    /// 1. **Coverage** — every access a task body recorded must have been
    ///    declared by that task (a read is covered by a declared read or
    ///    write; a write needs a declared write). This is what catches a
    ///    dropped `note_read`/`note_write` even when other declarations
    ///    happen to keep the schedule transitively safe.
    /// 2. **Ordering** — a FastTrack-style replay of the recorded accesses
    ///    in task-id order (a topological order by construction): per
    ///    resource, track the last actual writer and the readers since;
    ///    every conflicting pair must be ordered by the declared edges.
    ///    This catches accesses that are declared somewhere but by the
    ///    wrong task.
    ///
    /// Panics with a `race-audit:` message naming the task and resource on
    /// any violation.
    fn audit_check(&self, actual: &[Vec<Access>]) {
        if !audit::COMPILED {
            return;
        }
        let mut violations: Vec<String> = Vec::new();
        for (ti, accs) in actual.iter().enumerate() {
            let decl = &self.decl[ti];
            for a in accs {
                let covered = match a.mode {
                    Mode::Read => decl.iter().any(|d| d.res == a.res),
                    Mode::Write => decl
                        .iter()
                        .any(|d| d.res == a.res && d.mode == Mode::Write),
                };
                if !covered {
                    violations.push(format!(
                        "undeclared {:?} of {} by {}",
                        a.mode,
                        self.describe_res(a.res as usize),
                        self.describe_task(ti as TaskId)
                    ));
                }
            }
        }
        // (last actual writer, actual readers since) per resource.
        let mut state: HashMap<u32, (Option<TaskId>, Vec<TaskId>)> = HashMap::new();
        for (ti, accs) in actual.iter().enumerate() {
            let t = ti as TaskId;
            for a in accs {
                let entry = state.entry(a.res).or_default();
                let mut require = |prev: TaskId, what: &str| {
                    if !self.reachable(prev, t) {
                        violations.push(format!(
                            "unordered {what} of {}: {} does not happen-before {}",
                            self.describe_res(a.res as usize),
                            self.describe_task(prev),
                            self.describe_task(t)
                        ));
                    }
                };
                match a.mode {
                    Mode::Read => {
                        if let Some(w) = entry.0 {
                            require(w, "read-after-write");
                        }
                        entry.1.push(t);
                    }
                    Mode::Write => {
                        if let Some(w) = entry.0 {
                            require(w, "write-after-write");
                        }
                        for &r in &entry.1 {
                            require(r, "write-after-read");
                        }
                        entry.0 = Some(t);
                        entry.1.clear();
                    }
                }
            }
        }
        let total = violations.len();
        violations.truncate(8);
        assert!(
            total == 0,
            "race-audit: {total} declared-vs-actual violation(s):\n  {}",
            violations.join("\n  ")
        );
    }

    /// Execute the graph on `pool` in a single dispatch. `classes[kind]`
    /// assigns each kind tag its scheduling class (missing entries are
    /// `Other`); `body(rank, task)` runs one task on the calling rank's
    /// thread.
    ///
    /// Ready tasks go to their *owner's* deque (the Morton partition decides
    /// placement); a rank with an empty deque steals from the back of its
    /// neighbors' deques. Time spent failing to find work is measured per
    /// rank and reclassified from the pool's busy ledger to its idle ledger,
    /// so `idle_fraction` stays comparable with the barrier path.
    pub fn execute(
        &self,
        pool: &mut RankPool,
        classes: &[TaskClass],
        body: &(dyn Fn(usize, TaskId) + Sync),
    ) -> GraphStats {
        let nranks = pool.nranks();
        let ntasks = self.kinds.len();
        let mut stats = GraphStats {
            per_rank: vec![GraphRankStats::default(); nranks],
            kind_busy_ns: vec![0; classes.len().max(1)],
            overlap_ns: 0,
            compute_ns: 0,
        };
        if ntasks == 0 {
            return stats;
        }

        let pending: Vec<AtomicU32> = self.deps.iter().map(|&d| AtomicU32::new(d)).collect();
        let remaining = AtomicUsize::new(ntasks);
        let exchange_inflight = AtomicU32::new(0);
        let panicked = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let deques: Vec<Mutex<std::collections::VecDeque<TaskId>>> = (0..nranks)
            .map(|_| Mutex::new(std::collections::VecDeque::new()))
            .collect();
        // Seed the roots, in declaration order, onto their owners' deques.
        for &t in &self.roots {
            let owner = (self.owners[t as usize] as usize).min(nranks - 1);
            // analyze::allow(panic): a poisoned deque mutex means a worker
            // already panicked while holding it; the payload is re-raised
            // below, this unwind is collateral on a dead execution.
            deques[owner].lock().expect("deque lock").push_back(t);
        }

        let audit_on = audit::enabled();
        let out: PerRank<LocalStats> = PerRank::new(nranks, || LocalStats {
            stats: GraphRankStats::default(),
            kind_busy_ns: vec![0; classes.len().max(1)],
            overlap_ns: 0,
            compute_ns: 0,
            ledger: Vec::new(),
        });

        pool.run(&|rank| {
            let t_loop = Instant::now();
            // SAFETY: each rank touches only its own stats slot.
            let local = unsafe { out.slot(rank) };
            let mut busy_ns = 0u64;
            let mut misses = 0u32;
            loop {
                if panicked.load(Ordering::Acquire) {
                    break;
                }
                // Own deque first (FIFO keeps the canonical order the
                // builder seeded), then steal from the back of others'.
                let mut grabbed: Option<(TaskId, bool)> = None;
                // analyze::allow(panic): see the seeding loop — poisoned
                // deque locks only follow a worker panic, which aborts the
                // execution anyway.
                //
                // The pop is bound to a `let` BEFORE the `if let` so the
                // own-deque guard drops here: under edition 2021 an
                // `if let` scrutinee temporary lives through the `else`
                // block, and holding our own deque while locking a
                // victim's deadlocks two ranks stealing from each other.
                let own = deques[rank].lock().expect("deque lock").pop_front();
                if let Some(t) = own {
                    grabbed = Some((t, false));
                } else {
                    for i in 1..nranks {
                        let victim = (rank + i) % nranks;
                        // analyze::allow(panic): as above.
                        let stolen = deques[victim].lock().expect("deque lock").pop_back();
                        if let Some(t) = stolen {
                            grabbed = Some((t, true));
                            break;
                        }
                    }
                }
                let Some((task, stolen)) = grabbed else {
                    if remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    misses += 1;
                    if misses < 64 {
                        std::thread::yield_now();
                    } else {
                        // Long dry spell (e.g. more ranks than hardware
                        // threads): back off exponentially so spinning
                        // ranks don't starve the ones holding real work —
                        // a thief waking every 20 µs on an oversubscribed
                        // core is itself the bottleneck.
                        let exp = (misses - 64).min(5);
                        std::thread::sleep(std::time::Duration::from_micros(20 << exp));
                    }
                    continue;
                };
                misses = 0;
                if stolen {
                    local.stats.steals += 1;
                }
                let kind = self.kinds[task as usize] as usize;
                let class = classes.get(kind).copied().unwrap_or(TaskClass::Other);
                if class == TaskClass::Exchange {
                    exchange_inflight.fetch_add(1, Ordering::AcqRel);
                }
                let overlapped_at_start = class == TaskClass::Compute
                    && exchange_inflight.load(Ordering::Acquire) > 0;
                let t0 = Instant::now();
                if audit_on {
                    audit::task_begin();
                }
                let result = catch_unwind(AssertUnwindSafe(|| body(rank, task)));
                if audit_on {
                    let accesses = audit::task_end();
                    if result.is_ok() {
                        local.ledger.push((task, accesses));
                    }
                }
                let dt = t0.elapsed().as_nanos() as u64;
                // An exchange in flight at either end of a compute task
                // means the two intervals intersected (only an exchange
                // strictly inside the task escapes both probes).
                let overlapped = overlapped_at_start
                    || (class == TaskClass::Compute
                        && exchange_inflight.load(Ordering::Acquire) > 0);
                if class == TaskClass::Exchange {
                    exchange_inflight.fetch_sub(1, Ordering::AcqRel);
                }
                busy_ns += dt;
                local.stats.tasks += 1;
                if let Some(slot) = local.kind_busy_ns.get_mut(kind) {
                    *slot += dt;
                }
                if class == TaskClass::Compute {
                    local.compute_ns += dt;
                    if overlapped {
                        local.overlap_ns += dt;
                    }
                }
                match result {
                    Ok(()) => {}
                    Err(payload) => {
                        // analyze::allow(panic): lock poisoning here is the
                        // same collateral-unwind case as above.
                        let mut slot = panic_payload.lock().expect("panic slot");
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        drop(slot);
                        panicked.store(true, Ordering::Release);
                        break;
                    }
                }
                // Release newly-ready dependents onto their owners' deques.
                // The AcqRel RMW chain on `pending` makes every predecessor's
                // writes visible to the task that observes the count hit 0.
                for &d in &self.dependents[task as usize] {
                    if pending[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                        let owner = (self.owners[d as usize] as usize).min(nranks - 1);
                        // analyze::allow(panic): as above.
                        deques[owner].lock().expect("deque lock").push_back(d);
                    }
                }
                remaining.fetch_sub(1, Ordering::AcqRel);
            }
            local.stats.busy_ns = busy_ns;
            let wall = t_loop.elapsed().as_nanos() as u64;
            local.stats.idle_ns = wall.saturating_sub(busy_ns);
        });

        // Scheduler-internal wait time was counted as busy by the pool
        // (the whole loop ran inside one dispatched closure); move it to
        // the idle ledger so idle_fraction means the same thing in both
        // scheduler modes.
        let locals = out.into_inner();
        let idle: Vec<u64> = locals.iter().map(|l| l.stats.idle_ns).collect();
        pool.reattribute_idle(&idle);
        let mut actual: Vec<Vec<Access>> = if audit_on {
            vec![Vec::new(); ntasks]
        } else {
            Vec::new()
        };
        for (rank, l) in locals.into_iter().enumerate() {
            stats.per_rank[rank] = l.stats;
            for (k, ns) in l.kind_busy_ns.into_iter().enumerate() {
                stats.kind_busy_ns[k] += ns;
            }
            stats.overlap_ns += l.overlap_ns;
            stats.compute_ns += l.compute_ns;
            for (task, accesses) in l.ledger {
                actual[task as usize] = accesses;
            }
        }
        if panicked.load(Ordering::Acquire) {
            // analyze::allow(panic): propagating the task's own panic.
            let slot = panic_payload.lock().expect("panic slot").take();
            // analyze::allow(panic): the flag is only set with a payload.
            let payload = slot.expect("panicked flag set without payload");
            resume_unwind(payload);
        }
        debug_assert_eq!(remaining.load(Ordering::Acquire), 0);
        if audit_on {
            self.audit_check(&actual);
        }
        stats
    }

    /// Execute the graph single-threaded on the calling thread, in a seeded
    /// random edge-consistent topological order — the adversarial
    /// deterministic scheduler. Same audit as [`TaskGraph::execute`]; the
    /// caller asserts bit-identity of the resulting state against the
    /// canonical order, which shakes out undeclared dependencies without
    /// needing a multi-core host (and without real data races while doing
    /// so). `body` always runs as rank 0.
    pub fn execute_adversarial(
        &self,
        classes: &[TaskClass],
        seed: u64,
        body: &(dyn Fn(usize, TaskId) + Sync),
    ) -> GraphStats {
        let ntasks = self.kinds.len();
        let mut stats = GraphStats {
            per_rank: vec![GraphRankStats::default(); 1],
            kind_busy_ns: vec![0; classes.len().max(1)],
            overlap_ns: 0,
            compute_ns: 0,
        };
        if ntasks == 0 {
            return stats;
        }
        let audit_on = audit::enabled();
        let mut actual: Vec<Vec<Access>> = if audit_on {
            vec![Vec::new(); ntasks]
        } else {
            Vec::new()
        };
        let mut pending: Vec<u32> = self.deps.clone();
        let mut ready: Vec<TaskId> = self.roots.clone();
        // xorshift64 over a non-zero state: deterministic for a given seed.
        let mut rng = seed | 1;
        let mut ran = 0usize;
        while !ready.is_empty() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let pick = (rng as usize) % ready.len();
            let task = ready.swap_remove(pick);
            if audit_on {
                audit::task_begin();
            }
            let t0 = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| body(0, task)));
            let dt = t0.elapsed().as_nanos() as u64;
            if audit_on {
                // Keep the panicked task's partial ledger too — the accesses
                // it recorded before unwinding are exactly the evidence.
                actual[task as usize] = audit::task_end();
            }
            if let Err(payload) = result {
                // A body panic here is often the *symptom* of an undeclared
                // dependency: the adversarial order legally ran the task
                // against stale or unwritten inputs. Audit the partial
                // execution first so the failure names the race, and only
                // re-raise the body's own panic if the ledger is clean.
                if audit_on {
                    self.audit_check(&actual);
                }
                resume_unwind(payload);
            }
            let kind = self.kinds[task as usize] as usize;
            stats.per_rank[0].tasks += 1;
            stats.per_rank[0].busy_ns += dt;
            if let Some(slot) = stats.kind_busy_ns.get_mut(kind) {
                *slot += dt;
            }
            if classes.get(kind).copied().unwrap_or(TaskClass::Other) == TaskClass::Compute {
                stats.compute_ns += dt;
            }
            for &d in &self.dependents[task as usize] {
                pending[d as usize] -= 1;
                if pending[d as usize] == 0 {
                    ready.push(d);
                }
            }
            ran += 1;
        }
        assert!(
            ran == ntasks,
            "adversarial schedule stalled after {ran}/{ntasks} tasks"
        );
        if audit_on {
            self.audit_check(&actual);
        }
        stats
    }
}

/// Maps a [`SyncSlots`] index to the graph resource it materializes, so
/// slot accesses land in the audit ledger: `Fixed` slots all alias one
/// resource (e.g. the dt cell), `PerIndex(base)` slots map index `i` to
/// resource `base + i` (e.g. per-block stage buffers), and `Unmapped` slots
/// are ordered by explicit edges only (per-leaf reduction inputs) and
/// record nothing.
#[derive(Clone, Copy, Debug)]
pub enum SlotRes {
    Unmapped,
    Fixed(usize),
    PerIndex(usize),
}

/// Fixed-size slot array written by graph tasks. Soundness is delegated to
/// the graph's edges: a slot is only touched by the task(s) the plan
/// assigns to it, with writers ordered around readers. Accesses through
/// [`SyncSlots::read_slot`]/[`SyncSlots::write_slot`] are recorded in the
/// audit ledger per the [`SlotRes`] mapping.
pub struct SyncSlots<T> {
    slots: Vec<UnsafeCell<T>>,
    res: SlotRes,
}

// SAFETY: access discipline (one task at a time per slot, ordered by graph
// edges) is documented on `read_slot`/`write_slot` and upheld by the plan
// builder.
unsafe impl<T: Send> Sync for SyncSlots<T> {}

impl<T> SyncSlots<T> {
    /// `n` slots initialized by `init`, audited under the `res` mapping.
    pub fn new(n: usize, res: SlotRes, mut init: impl FnMut() -> T) -> SyncSlots<T> {
        SyncSlots {
            slots: (0..n).map(|_| UnsafeCell::new(init())).collect(),
            res,
        }
    }

    #[inline]
    fn record(&self, i: usize, write: bool) {
        let r = match self.res {
            SlotRes::Unmapped => return,
            SlotRes::Fixed(r) => r,
            SlotRes::PerIndex(base) => base + i,
        };
        if write {
            audit::rec_write(r);
        } else {
            audit::rec_read(r);
        }
    }

    /// Shared view of slot `i`.
    ///
    /// # Safety
    /// No concurrently running task may write slot `i`: the caller's task
    /// must be ordered (by graph edges) after every writer of the slot and
    /// before the next one.
    #[inline]
    pub unsafe fn read_slot(&self, i: usize) -> &T {
        self.record(i, false);
        &*self.slots[i].get()
    }

    /// Exclusive view of slot `i`, aliasing `&mut`.
    ///
    /// # Safety
    /// The caller must be the only task touching slot `i` right now —
    /// i.e. graph edges order every other accessor before or after it.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn write_slot(&self, i: usize) -> &mut T {
        self.record(i, true);
        &mut *self.slots[i].get()
    }

    /// Unwrap into the slot values.
    pub fn into_inner(self) -> Vec<T> {
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn record_order(graph: &TaskGraph, nranks: usize) -> Vec<TaskId> {
        let mut pool = RankPool::new(nranks);
        let order = Mutex::new(Vec::new());
        graph.execute(&mut pool, &[], &|_, t| {
            order.lock().unwrap().push(t);
        });
        order.into_inner().unwrap()
    }

    #[test]
    fn resource_versioning_generates_raw_war_waw_edges() {
        let mut b = GraphBuilder::new(1);
        let w0 = b.add_task(0, 0);
        let r1 = b.add_task(0, 0);
        let r2 = b.add_task(0, 0);
        let w1 = b.add_task(0, 0);
        b.note_write(0, w0);
        b.note_read(0, r1); // RAW: w0 → r1
        b.note_read(0, r2); // RAW: w0 → r2
        b.note_write(0, w1); // WAW: w0 → w1, WAR: r1 → w1, r2 → w1
        let g = b.build();
        assert_eq!(g.dep_count(w0), 0);
        assert_eq!(g.dep_count(r1), 1);
        assert_eq!(g.dep_count(r2), 1);
        assert_eq!(g.dep_count(w1), 3);
        // Any schedule must run w0 first and w1 last.
        for nranks in [1, 3] {
            let order = record_order(&g, nranks);
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], w0);
            assert_eq!(order[3], w1);
        }
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut b = GraphBuilder::new(2);
        let w = b.add_task(0, 0);
        let r = b.add_task(0, 0);
        // One task writing two resources read by the same successor must
        // produce a single dependency, or the count double-decrements.
        b.note_write(0, w);
        b.note_write(1, w);
        b.note_read(0, r);
        b.note_read(1, r);
        b.add_edge(w, r);
        let g = b.build();
        assert_eq!(g.dep_count(r), 1);
        assert_eq!(record_order(&g, 2), vec![w, r]);
    }

    #[test]
    fn diamond_runs_every_task_once_in_topological_order() {
        let mut b = GraphBuilder::new(0);
        let top = b.add_task(0, 0);
        let left = b.add_task(0, 0);
        let right = b.add_task(0, 1);
        let bottom = b.add_task(0, 1);
        b.add_edge(top, left);
        b.add_edge(top, right);
        b.add_edge(left, bottom);
        b.add_edge(right, bottom);
        let g = b.build();
        for nranks in [1, 2, 4] {
            let order = record_order(&g, nranks);
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], top);
            assert_eq!(order[3], bottom);
        }
    }

    #[test]
    fn work_stealing_rebalances_a_skewed_partition() {
        // Every task owned by rank 0, long enough bodies that rank 1 cannot
        // miss every steal window.
        let mut b = GraphBuilder::new(0);
        for _ in 0..32 {
            b.add_task(0, 0);
        }
        let g = b.build();
        let mut pool = RankPool::new(2);
        let ran = AtomicU64::new(0);
        let stats = g.execute(&mut pool, &[], &|_, _| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 32);
        assert!(
            stats.per_rank[1].steals > 0,
            "an idle rank next to a 64 ms backlog must steal: {stats:?}"
        );
        let total_tasks: u64 = stats.per_rank.iter().map(|r| r.tasks).sum();
        assert_eq!(total_tasks, 32);
    }

    #[test]
    fn overlap_ledger_counts_compute_during_exchange() {
        // Kind 0 = exchange, kind 1 = compute; a barrier inside both bodies
        // forces the two intervals to intersect even on one hardware
        // thread, and the exchange outlives the compute task so the
        // task-end probe must see it in flight.
        let mut b = GraphBuilder::new(0);
        b.add_task(0, 0);
        b.add_task(1, 1);
        let g = b.build();
        let mut pool = RankPool::new(2);
        let gate = std::sync::Barrier::new(2);
        let stats = g.execute(
            &mut pool,
            &[TaskClass::Exchange, TaskClass::Compute],
            &|_, t| {
                gate.wait();
                if t == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            },
        );
        assert!(stats.kind_busy_ns[0] >= 15_000_000);
        assert!(stats.compute_ns > 0);
        // The compute task overlapped the in-flight exchange.
        assert!(stats.overlap_ns > 0, "{stats:?}");
        assert_eq!(stats.overlap_ns, stats.compute_ns);
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let mut b = GraphBuilder::new(0);
        let a = b.add_task(0, 0);
        let bad = b.add_task(0, 0);
        b.add_edge(a, bad);
        let g = b.build();
        let mut pool = RankPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            g.execute(&mut pool, &[], &|_, t| {
                if t == bad {
                    panic!("task died");
                }
            });
        }));
        assert!(caught.is_err());
        let ran = AtomicU64::new(0);
        pool.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn graph_idle_is_reattributed_to_the_pool_ledger() {
        let mut b = GraphBuilder::new(0);
        // A serial chain: one rank runs both tasks (either may steal), the
        // other spins/sleeps in the scheduler loop the whole time.
        let t0 = b.add_task(0, 0);
        let t1 = b.add_task(0, 0);
        b.add_edge(t0, t1);
        let g = b.build();
        let mut pool = RankPool::new(2);
        let before = pool.counters();
        let stats = g.execute(&mut pool, &[], &|_, _| {
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
        let after = pool.counters();
        // After reattribution, each rank's pool busy delta matches the
        // task-body time the graph measured for it (scheduler wait was
        // moved to idle), and pool idle covers the graph-measured idle.
        for r in 0..2 {
            let busy_delta = after[r].busy_ns.saturating_sub(before[r].busy_ns);
            let idle_delta = after[r].idle_ns.saturating_sub(before[r].idle_ns);
            let graph_busy = stats.per_rank[r].busy_ns;
            let diff = busy_delta.abs_diff(graph_busy);
            assert!(
                diff < 2_000_000,
                "rank {r}: pool busy delta {busy_delta} vs graph busy {graph_busy}: {stats:?}"
            );
            assert!(
                idle_delta + 2_000_000 >= stats.per_rank[r].idle_ns,
                "rank {r}: pool idle delta {idle_delta} < graph idle {}",
                stats.per_rank[r].idle_ns
            );
        }
        // The whole 20 ms chain ran on exactly one rank.
        let total_busy: u64 = (0..2)
            .map(|r| after[r].busy_ns - before[r].busy_ns)
            .sum();
        assert!(total_busy >= 18_000_000, "{after:?}");
    }

    #[test]
    fn backward_edges_are_rejected_in_every_build() {
        let mut b = GraphBuilder::new(0);
        let t0 = b.add_task(0, 0);
        let t1 = b.add_task(0, 0);
        let caught = catch_unwind(AssertUnwindSafe(move || b.add_edge(t1, t0)));
        assert!(caught.is_err(), "backward edge must be a hard error");
    }

    #[allow(dead_code)] // only reached in audit-compiled (debug) test builds
    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .unwrap_or_default(),
        }
    }

    #[test]
    fn audit_flags_an_undeclared_write() {
        if !audit::COMPILED {
            return;
        }
        let _g = audit::test_guard();
        let mut b = GraphBuilder::new(2);
        let w = b.add_task(0, 0);
        let r = b.add_task(1, 0);
        b.note_write(0, w);
        b.note_read(0, r);
        let g = b.build();
        let mut pool = RankPool::new(1);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            g.execute(&mut pool, &[], &|_, t| {
                if t == w {
                    audit::rec_write(0);
                } else {
                    // Declared a read of 0; actually also writes resource 1.
                    audit::rec_read(0);
                    audit::rec_write(1);
                }
            });
        }));
        let msg = panic_message(caught.expect_err("undeclared write must fail the audit"));
        assert!(msg.contains("race-audit"), "{msg}");
        assert!(msg.contains("undeclared Write"), "{msg}");
    }

    #[test]
    fn audit_flags_a_read_declared_only_as_weaker_than_actual() {
        if !audit::COMPILED {
            return;
        }
        let _g = audit::test_guard();
        let mut b = GraphBuilder::new(1);
        let r = b.add_task(0, 0);
        b.note_read(0, r);
        let g = b.build();
        let mut pool = RankPool::new(1);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            g.execute(&mut pool, &[], &|_, _| {
                // Declared read, actual write: must be flagged.
                audit::rec_write(0);
            });
        }));
        let msg = panic_message(caught.expect_err("read-declared write must fail"));
        assert!(msg.contains("race-audit"), "{msg}");
    }

    #[test]
    fn audit_accepts_a_fully_declared_execution() {
        if !audit::COMPILED {
            return;
        }
        let _g = audit::test_guard();
        let mut b = GraphBuilder::new(2);
        let w = b.add_task(0, 0);
        let r1 = b.add_task(1, 0);
        let r2 = b.add_task(1, 1);
        let w2 = b.add_task(2, 1);
        b.note_write(0, w);
        b.note_read(0, r1);
        b.note_read(0, r2);
        b.note_write(0, w2);
        b.note_write(1, w2);
        let g = b.build();
        let mut pool = RankPool::new(2);
        g.execute(&mut pool, &[], &|_, t| {
            if t == w {
                audit::rec_write(0);
            } else if t == w2 {
                audit::rec_write(0);
                audit::rec_write(1);
            } else {
                audit::rec_read(0);
            }
        });
    }

    #[test]
    fn adversarial_runs_every_task_once_respecting_edges() {
        let mut b = GraphBuilder::new(1);
        // A fan of independent pairs hanging off one root: plenty of
        // schedule freedom, but each pair is ordered.
        let root = b.add_task(0, 0);
        b.note_write(0, root);
        let mut pairs = Vec::new();
        for _ in 0..6 {
            let a = b.add_task(0, 0);
            let c = b.add_task(0, 0);
            b.add_edge(root, a);
            b.add_edge(a, c);
            pairs.push((a, c));
        }
        let g = b.build();
        let mut orders = Vec::new();
        for seed in [1u64, 2, 99] {
            let order = Mutex::new(Vec::new());
            let stats = g.execute_adversarial(&[], seed, &|rank, t| {
                assert_eq!(rank, 0);
                order.lock().unwrap().push(t);
            });
            let order = order.into_inner().unwrap();
            assert_eq!(order.len(), g.len());
            assert_eq!(stats.per_rank[0].tasks as usize, g.len());
            let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
            assert_eq!(order[0], root);
            for &(a, c) in &pairs {
                assert!(pos(a) < pos(c), "edge {a}->{c} violated: {order:?}");
            }
            // Same seed replays the same order.
            let again = Mutex::new(Vec::new());
            g.execute_adversarial(&[], seed, &|_, t| {
                again.lock().unwrap().push(t);
            });
            assert_eq!(*again.into_inner().unwrap(), order);
            orders.push(order);
        }
        // Different seeds explore different orders (13 tasks, 6 free pairs:
        // collision odds are negligible).
        assert!(orders[0] != orders[1] || orders[1] != orders[2], "{orders:?}");
    }

    #[test]
    fn sync_slots_record_against_their_resource_mapping() {
        if !audit::COMPILED {
            return;
        }
        let _g = audit::test_guard();
        let fixed: SyncSlots<f64> = SyncSlots::new(2, SlotRes::Fixed(7), || 0.0);
        let per: SyncSlots<u32> = SyncSlots::new(3, SlotRes::PerIndex(10), || 0);
        let unmapped: SyncSlots<u8> = SyncSlots::new(1, SlotRes::Unmapped, || 0);
        audit::task_begin();
        // SAFETY: single-threaded test, no concurrent slot access.
        unsafe {
            *fixed.write_slot(1) = 2.5;
            let _ = *per.read_slot(2);
            *unmapped.write_slot(0) = 1;
        }
        let accs = audit::task_end();
        assert_eq!(
            accs,
            vec![
                Access { res: 7, mode: Mode::Write },
                Access { res: 12, mode: Mode::Read },
            ]
        );
        assert_eq!(fixed.into_inner(), vec![0.0, 2.5]);
    }
}
