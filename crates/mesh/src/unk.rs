//! The `unk` solution container.
//!
//! FLASH/PARAMESH stores every variable of every zone of every block in one
//! dynamically allocated Fortran array
//! `unk(nvar, il_bnd:iu_bnd, jl_bnd:ju_bnd, kl_bnd:ku_bnd, maxblocks)`.
//! Fortran's column-major order makes `nvar` the fastest-varying index: a
//! kernel sweeping one variable over one block strides by `nvar × 8` bytes
//! per zone, and block-to-block hops are megabytes apart. The paper singles
//! this stride structure out as the motivation for huge pages (§I.C).
//!
//! [`UnkStorage`] reproduces the container in one policy-backed allocation
//! and exposes the same index order as [`Layout::VarFirst`] (the FLASH
//! layout), plus [`Layout::VarLast`] (structure-of-arrays within a block)
//! for the layout-ablation experiment E6.

use crate::audit::{self, ResourceMap};
use rflash_hugepages::{BackingReport, PageBuffer, Policy};
use rflash_tlbsim::AccessPattern;
use serde::{Deserialize, Serialize};

/// Which part of a block slab an instrumented [`UnkCells`] access claims.
/// The claim is what lands in the race-audit ledger, so it must be honest:
/// a kernel given `Interior` must not touch guard zones (and vice versa) —
/// the `graph_confinement` analyzer rule keeps raw slab access out of the
/// task bodies so every access carries a claim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// The `nxb^ndim` interior zones.
    Interior,
    /// The guard band around the interior.
    Guards,
    /// The whole slab (interior + guards).
    Full,
}

/// Index order within a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// FLASH order: `var` fastest, then i, j, k; block slowest.
    /// One variable's zones are `nvar × 8` bytes apart.
    VarFirst,
    /// SoA order: i fastest, then j, k, then var; block slowest.
    /// One variable's zones are contiguous.
    VarLast,
}

/// The solution container: `max_blocks` fixed-size blocks in one mapping.
pub struct UnkStorage {
    layout: Layout,
    nvar: usize,
    ndim: usize,
    nxb: usize,
    nguard: usize,
    ni: usize,
    nj: usize,
    nk: usize,
    per_block: usize,
    max_blocks: usize,
    buf: PageBuffer<f64>,
}

impl UnkStorage {
    /// Allocate the container. `nxb` is zones per side (FLASH: 16),
    /// `nguard` guard cells per side (FLASH: 4 for PPM).
    pub fn new(
        ndim: usize,
        nxb: usize,
        nguard: usize,
        nvar: usize,
        max_blocks: usize,
        layout: Layout,
        policy: Policy,
    ) -> UnkStorage {
        assert!(ndim == 2 || ndim == 3, "FLASH runs 1–3D; we support 2D/3D");
        assert!(nxb > 0 && nvar > 0 && max_blocks > 0);
        assert!(nguard >= 1, "PPM needs guard cells");
        let ni = nxb + 2 * nguard;
        let nj = nxb + 2 * nguard;
        let nk = if ndim == 3 { nxb + 2 * nguard } else { 1 };
        let per_block = nvar * ni * nj * nk;
        let buf = PageBuffer::<f64>::zeroed(per_block * max_blocks, policy)
            .expect("unk allocation failed");
        UnkStorage {
            layout,
            nvar,
            ndim,
            nxb,
            nguard,
            ni,
            nj,
            nk,
            per_block,
            max_blocks,
            buf,
        }
    }

    // ---- geometry of the container ------------------------------------

    #[inline]
    /// Number of solution variables.
    pub fn nvar(&self) -> usize {
        self.nvar
    }
    #[inline]
    /// Dimensionality (2 or 3).
    pub fn ndim(&self) -> usize {
        self.ndim
    }
    #[inline]
    /// Zones per block side.
    pub fn nxb(&self) -> usize {
        self.nxb
    }
    #[inline]
    /// Guard cells per side.
    pub fn nguard(&self) -> usize {
        self.nguard
    }
    /// Padded extent in i (= j; k is 1 in 2-d).
    #[inline]
    pub fn padded(&self) -> (usize, usize, usize) {
        (self.ni, self.nj, self.nk)
    }
    /// Interior index range along i or j (k in 3-d): `nguard..nguard+nxb`.
    #[inline]
    pub fn interior(&self) -> std::ops::Range<usize> {
        self.nguard..self.nguard + self.nxb
    }
    /// Interior range along k: the full `0..1` in 2-d.
    #[inline]
    pub fn interior_k(&self) -> std::ops::Range<usize> {
        if self.ndim == 3 {
            self.interior()
        } else {
            0..1
        }
    }
    #[inline]
    /// Block-pool capacity (PARAMESH's `maxblocks`).
    pub fn max_blocks(&self) -> usize {
        self.max_blocks
    }
    /// The huge-page policy the container was allocated under, so sibling
    /// allocations (scratch arenas, shadow snapshots) can ride the same
    /// backing and degradation chain.
    #[inline]
    pub fn policy(&self) -> Policy {
        self.buf.policy()
    }
    /// Doubles per block slab.
    #[inline]
    pub fn per_block(&self) -> usize {
        self.per_block
    }
    #[inline]
    /// The storage order in use.
    pub fn layout(&self) -> Layout {
        self.layout
    }
    /// Total container size in bytes — FLASH's "unk is big" number.
    pub fn bytes(&self) -> usize {
        self.buf.len() * 8
    }
    /// Base virtual address for TLB-model registration.
    pub fn base_addr(&self) -> usize {
        self.buf.base_addr()
    }
    /// Kernel-verified backing of the container.
    pub fn backing_report(&self) -> BackingReport {
        self.buf.backing_report()
    }

    // ---- indexing ------------------------------------------------------

    /// Flat element index of `(var, i, j, k, blk)`; `i/j/k` are padded
    /// coordinates (guards included), `k` must be 0 in 2-d.
    #[inline]
    pub fn idx(&self, var: usize, i: usize, j: usize, k: usize, blk: usize) -> usize {
        debug_assert!(var < self.nvar, "unk var {var} out of range (nvar {})", self.nvar);
        debug_assert!(i < self.ni, "unk i {i} out of padded range (ni {})", self.ni);
        debug_assert!(j < self.nj, "unk j {j} out of padded range (nj {})", self.nj);
        debug_assert!(k < self.nk, "unk k {k} out of padded range (nk {})", self.nk);
        debug_assert!(
            blk < self.max_blocks,
            "unk block {blk} out of pool range (max_blocks {})",
            self.max_blocks
        );
        let cell = i + self.ni * (j + self.nj * k);
        blk * self.per_block
            + match self.layout {
                Layout::VarFirst => var + self.nvar * cell,
                Layout::VarLast => cell + self.ni * self.nj * self.nk * var,
            }
    }

    #[inline]
    /// Read one element (padded coordinates, guards included).
    pub fn get(&self, var: usize, i: usize, j: usize, k: usize, blk: usize) -> f64 {
        self.buf[self.idx(var, i, j, k, blk)]
    }

    #[inline]
    /// Write one element (padded coordinates, guards included).
    pub fn set(&mut self, var: usize, i: usize, j: usize, k: usize, blk: usize, v: f64) {
        let idx = self.idx(var, i, j, k, blk);
        self.buf[idx] = v;
    }

    /// Byte address of an element (trace generation).
    #[inline]
    pub fn addr(&self, var: usize, i: usize, j: usize, k: usize, blk: usize) -> usize {
        self.base_addr() + 8 * self.idx(var, i, j, k, blk)
    }

    /// Byte stride between consecutive zones of the same variable along i.
    #[inline]
    pub fn zone_stride(&self) -> usize {
        match self.layout {
            Layout::VarFirst => 8 * self.nvar,
            Layout::VarLast => 8,
        }
    }

    // ---- slabs ----------------------------------------------------------

    /// One block's contiguous slab.
    pub fn block_slab(&self, blk: usize) -> &[f64] {
        debug_assert!(
            blk < self.max_blocks,
            "slab request for block {blk} beyond pool (max_blocks {})",
            self.max_blocks
        );
        &self.buf.as_slice()[blk * self.per_block..(blk + 1) * self.per_block]
    }

    /// One block's contiguous slab, mutable.
    pub fn block_slab_mut(&mut self, blk: usize) -> &mut [f64] {
        debug_assert!(
            blk < self.max_blocks,
            "slab request for block {blk} beyond pool (max_blocks {})",
            self.max_blocks
        );
        &mut self.buf.as_mut_slice()[blk * self.per_block..(blk + 1) * self.per_block]
    }

    /// Doubles in one block's *interior* (`nvar × nxb^ndim`) — the payload
    /// size of a packed interior slab on the fleet wire (DESIGN.md §17).
    pub fn interior_len(&self) -> usize {
        let per_dim = if self.ndim == 3 {
            self.nxb * self.nxb * self.nxb
        } else {
            self.nxb * self.nxb
        };
        self.nvar * per_dim
    }

    /// Pack one block's interior zones (guards excluded) into `out`, in
    /// the fixed `(var, k, j, i)` walk every consumer of the wire format
    /// uses. This is the cross-process half of the two-phase guardcell
    /// exchange: interiors travel, guards are refilled locally from the
    /// received authoritative interiors.
    pub fn pack_interior_into(&self, blk: usize, out: &mut Vec<f64>) {
        let slab = self.block_slab(blk);
        for v in 0..self.nvar {
            for k in self.interior_k() {
                for j in self.interior() {
                    for i in self.interior() {
                        out.push(slab[self.slab_idx(v, i, j, k)]);
                    }
                }
            }
        }
    }

    /// Inverse of [`pack_interior_into`]: overwrite one block's interior
    /// zones from a packed run of [`interior_len`](Self::interior_len)
    /// doubles. Guard zones are untouched — the next local guardcell fill
    /// recomputes them from the now-authoritative interiors.
    ///
    /// Returns `false` (leaving the slab untouched) when `data` has the
    /// wrong length — a framing bug must not scribble a partial interior.
    pub fn unpack_interior(&mut self, blk: usize, data: &[f64]) -> bool {
        if data.len() != self.interior_len() {
            return false;
        }
        let (nvar, ir, kr) = (self.nvar, self.interior(), self.interior_k());
        let geom = self.geom();
        let slab = self.block_slab_mut(blk);
        let mut n = 0;
        for v in 0..nvar {
            for k in kr.clone() {
                for j in ir.clone() {
                    for i in ir.clone() {
                        slab[geom.slab_idx(v, i, j, k)] = data[n];
                        n += 1;
                    }
                }
            }
        }
        true
    }

    /// Disjoint mutable slabs for every block slot — the safe foundation
    /// for thread-parallel block updates.
    pub fn slabs_mut(&mut self) -> std::slice::ChunksMut<'_, f64> {
        let per = self.per_block;
        self.buf.as_mut_slice().chunks_mut(per)
    }

    /// Raw base pointer of the whole container, for the executor's
    /// per-rank slab handout. Callers must uphold the same disjointness
    /// the safe [`UnkStorage::slabs_mut`] enforces: each block slab is
    /// touched by at most one rank during a dispatch.
    pub(crate) fn base_ptr_mut(&mut self) -> *mut f64 {
        self.buf.as_mut_slice().as_mut_ptr()
    }

    /// Raw per-block slab handout for task-graph execution. The mutable
    /// borrow taken here ends when the view is dropped conceptually, but
    /// the view itself is `Copy`; safety rests entirely on the graph's
    /// read/write edges serializing all conflicting slab access.
    pub fn cells(&mut self) -> UnkCells {
        UnkCells {
            per_block: self.per_block,
            max_blocks: self.max_blocks,
            ptr: self.base_ptr_mut(),
        }
    }

    /// Flat index of `(var, i, j, k)` *within* a block slab, matching
    /// [`UnkStorage::idx`] minus the block offset. Kernels operating on a
    /// slab from [`UnkStorage::slabs_mut`] use this.
    #[inline]
    pub fn slab_idx(&self, var: usize, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(var < self.nvar, "slab var {var} out of range (nvar {})", self.nvar);
        debug_assert!(i < self.ni, "slab i {i} out of padded range (ni {})", self.ni);
        debug_assert!(j < self.nj, "slab j {j} out of padded range (nj {})", self.nj);
        debug_assert!(k < self.nk, "slab k {k} out of padded range (nk {})", self.nk);
        let cell = i + self.ni * (j + self.nj * k);
        match self.layout {
            Layout::VarFirst => var + self.nvar * cell,
            Layout::VarLast => cell + self.ni * self.nj * self.nk * var,
        }
    }

    /// Copyable geometry handle for pattern generation inside parallel
    /// closures (where `self` is mutably split into slabs).
    pub fn geom(&self) -> UnkGeom {
        UnkGeom {
            layout: self.layout,
            nvar: self.nvar,
            ndim: self.ndim,
            nxb: self.nxb,
            nguard: self.nguard,
            ni: self.ni,
            nj: self.nj,
            nk: self.nk,
            per_block: self.per_block,
            base_addr: self.base_addr(),
        }
    }

    // ---- access-pattern generation ---------------------------------------

    /// The access pattern of sweeping one variable along an interior i-row
    /// `(j, k)` of block `blk` — the paper's motivating stride.
    pub fn row_pattern(&self, var: usize, j: usize, k: usize, blk: usize) -> AccessPattern {
        AccessPattern::Strided {
            base: self.addr(var, self.nguard, j, k, blk),
            stride: self.zone_stride(),
            count: self.nxb,
            elem: 8,
        }
    }

    /// All row patterns for sweeping a set of variables over the interior
    /// of a block, in loop order (k outer, j middle, var inner — the order
    /// a FLASH kernel touches them).
    pub fn block_sweep_patterns(&self, vars: &[usize], blk: usize, out: &mut Vec<AccessPattern>) {
        for k in self.interior_k() {
            for j in self.interior() {
                for &var in vars {
                    out.push(self.row_pattern(var, j, k, blk));
                }
            }
        }
    }
}

/// Copyable geometry of an [`UnkStorage`]: index arithmetic and access
/// pattern generation without borrowing the storage itself.
#[derive(Clone, Copy, Debug)]
pub struct UnkGeom {
    pub layout: Layout,
    pub nvar: usize,
    pub ndim: usize,
    pub nxb: usize,
    pub nguard: usize,
    pub ni: usize,
    pub nj: usize,
    pub nk: usize,
    pub per_block: usize,
    pub base_addr: usize,
}

impl UnkGeom {
    /// Flat element index within a block slab (matches
    /// [`UnkStorage::slab_idx`]).
    #[inline]
    pub fn slab_idx(&self, var: usize, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(var < self.nvar, "geom var {var} out of range (nvar {})", self.nvar);
        debug_assert!(i < self.ni, "geom i {i} out of padded range (ni {})", self.ni);
        debug_assert!(j < self.nj, "geom j {j} out of padded range (nj {})", self.nj);
        debug_assert!(k < self.nk, "geom k {k} out of padded range (nk {})", self.nk);
        let cell = i + self.ni * (j + self.nj * k);
        match self.layout {
            Layout::VarFirst => var + self.nvar * cell,
            Layout::VarLast => cell + self.ni * self.nj * self.nk * var,
        }
    }

    /// Byte address of `(var, i, j, k, blk)`.
    #[inline]
    pub fn addr(&self, var: usize, i: usize, j: usize, k: usize, blk: usize) -> usize {
        self.base_addr + 8 * (blk * self.per_block + self.slab_idx(var, i, j, k))
    }

    /// Element byte stride along direction `dir` for one variable.
    #[inline]
    pub fn dir_stride(&self, dir: usize) -> usize {
        let cells = match dir {
            0 => 1,
            1 => self.ni,
            2 => self.ni * self.nj,
            _ => panic!("dir < 3"),
        };
        8 * match self.layout {
            Layout::VarFirst => self.nvar * cells,
            Layout::VarLast => cells,
        }
    }

    /// Number of cells in a full padded pencil along `dir`.
    #[inline]
    pub fn pencil_len(&self, dir: usize) -> usize {
        match dir {
            0 => self.ni,
            1 => self.nj,
            2 => self.nk,
            _ => panic!("dir < 3"),
        }
    }

    /// Slab element index of pencil position 0 and the element stride
    /// between consecutive pencil cells. Transverse coordinates follow the
    /// [`UnkGeom::pencil_pattern`] convention.
    #[inline]
    fn pencil_base_stride(&self, var: usize, dir: usize, t1: usize, t2: usize) -> (usize, usize) {
        let (i0, j0, k0) = match dir {
            0 => (0, t1, t2),
            1 => (t1, 0, t2),
            2 => (t1, t2, 0),
            _ => panic!("dir < 3"),
        };
        (self.slab_idx(var, i0, j0, k0), self.dir_stride(dir) / 8)
    }

    /// Copy one variable's full padded pencil (guard cells included) out of
    /// a block slab into a contiguous lane — the SoA copy-in of the pencil
    /// sweep engine. The per-cell index arithmetic happens once here, not
    /// inside the physics loops.
    #[inline]
    pub fn gather_pencil(
        &self,
        slab: &[f64],
        var: usize,
        dir: usize,
        t1: usize,
        t2: usize,
        lane: &mut [f64],
    ) {
        debug_assert_eq!(lane.len(), self.pencil_len(dir), "lane sized to the padded pencil");
        let (base, stride) = self.pencil_base_stride(var, dir, t1, t2);
        for (p, v) in lane.iter_mut().enumerate() {
            *v = slab[base + p * stride];
        }
    }

    /// Write `lane[range]` back to the matching pencil positions of one
    /// variable — the one-pass SoA copy-out (interior cells only; guard
    /// cells are owned by the exchange).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_pencil(
        &self,
        slab: &mut [f64],
        var: usize,
        dir: usize,
        t1: usize,
        t2: usize,
        range: core::ops::Range<usize>,
        lane: &[f64],
    ) {
        debug_assert!(
            range.end <= lane.len() && range.end <= self.pencil_len(dir),
            "scatter range in bounds"
        );
        let (base, stride) = self.pencil_base_stride(var, dir, t1, t2);
        for (p, &v) in lane.iter().enumerate().take(range.end).skip(range.start) {
            slab[base + p * stride] = v;
        }
    }

    /// The access pattern of sweeping one variable along a full padded
    /// pencil in direction `dir` at transverse coordinates (t1, t2):
    /// dir 0 → (i varies; j=t1, k=t2), dir 1 → (j varies; i=t1, k=t2),
    /// dir 2 → (k varies; i=t1, j=t2).
    pub fn pencil_pattern(
        &self,
        var: usize,
        dir: usize,
        t1: usize,
        t2: usize,
        blk: usize,
    ) -> rflash_tlbsim::AccessPattern {
        let (i0, j0, k0, count) = match dir {
            0 => (0, t1, t2, self.ni),
            1 => (t1, 0, t2, self.nj),
            2 => (t1, t2, 0, self.nk),
            _ => panic!("dir < 3"),
        };
        rflash_tlbsim::AccessPattern::Strided {
            base: self.addr(var, i0, j0, k0, blk),
            stride: self.dir_stride(dir),
            count,
            elem: 8,
        }
    }
}

/// Raw, copyable view of every block slab, for kernels executed as graph
/// tasks. Unlike the rank-partitioned handout in `Domain`, a task graph has
/// no static block-to-thread assignment — any rank may touch any slab — so
/// exclusivity cannot be expressed with `&mut` partitioning. Instead the
/// graph builder's read/write edges serialize every pair of conflicting
/// accesses, and the accessors below make the obligation explicit.
#[derive(Clone, Copy)]
pub struct UnkCells {
    ptr: *mut f64,
    per_block: usize,
    max_blocks: usize,
}

// SAFETY: the pointer spans a plain-f64 region owned by the `UnkStorage`
// this view was taken from; cross-thread access discipline is the graph
// edges' responsibility, documented on the accessors.
unsafe impl Send for UnkCells {}
// SAFETY: as above.
unsafe impl Sync for UnkCells {}

impl UnkCells {
    /// Shared view of block `blk`'s slab.
    ///
    /// # Safety
    /// No concurrently running task may hold a mutable reference to the
    /// same slab: the caller's task must be ordered (by graph edges) after
    /// every writer of `blk` and before the next one.
    #[inline]
    pub unsafe fn slab(&self, blk: usize) -> &[f64] {
        debug_assert!(blk < self.max_blocks);
        std::slice::from_raw_parts(self.ptr.add(blk * self.per_block), self.per_block)
    }

    /// Exclusive view of block `blk`'s slab.
    ///
    /// # Safety
    /// The caller's task must be the only task touching `blk` while it
    /// runs: graph edges must order it after every prior reader and writer
    /// of `blk` and before every later one.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slab_mut(&self, blk: usize) -> &mut [f64] {
        debug_assert!(blk < self.max_blocks);
        std::slice::from_raw_parts_mut(self.ptr.add(blk * self.per_block), self.per_block)
    }

    #[inline]
    fn rmap(&self) -> ResourceMap {
        ResourceMap {
            max_blocks: self.max_blocks,
        }
    }

    #[inline]
    fn rec(&self, blk: usize, region: Region, write: bool) {
        let m = self.rmap();
        let one = |res: usize| {
            if write {
                audit::rec_write(res);
            } else {
                audit::rec_read(res);
            }
        };
        match region {
            Region::Interior => one(m.interior(blk)),
            Region::Guards => one(m.guards(blk)),
            Region::Full => {
                one(m.interior(blk));
                one(m.guards(blk));
            }
        }
    }

    /// Shared view of block `blk`'s slab, claiming to read only `claims`.
    /// The claim is recorded in the race-audit ledger; the caller must not
    /// touch zones outside the claimed region.
    ///
    /// # Safety
    /// As for [`UnkCells::slab`]: no concurrently running task may hold a
    /// mutable reference to the claimed region of this slab — the caller's
    /// task must be ordered (by graph edges) after every writer of it and
    /// before the next one.
    #[inline]
    pub unsafe fn read_slab(&self, blk: usize, claims: Region) -> &[f64] {
        self.rec(blk, claims, false);
        self.slab(blk)
    }

    /// Exclusive view of block `blk`'s slab, claiming to write only
    /// `writes` (and additionally read `reads`, if given). The claims are
    /// recorded in the race-audit ledger; the caller must not touch zones
    /// outside the claimed regions.
    ///
    /// # Safety
    /// As for [`UnkCells::slab_mut`]: the caller's task must be the only
    /// task touching the claimed regions while it runs — graph edges must
    /// order it after every prior reader and writer of them and before
    /// every later one.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn write_slab(&self, blk: usize, writes: Region, reads: Option<Region>) -> &mut [f64] {
        self.rec(blk, writes, true);
        if let Some(r) = reads {
            self.rec(blk, r, false);
        }
        self.slab_mut(blk)
    }

    /// Read-modify-write one zone of block `blk`, classifying it as
    /// interior or guard from `geom` so the recorded claim is exact (the
    /// fault-injection task uses this to corrupt single cells).
    ///
    /// # Safety
    /// As for [`UnkCells::slab_mut`], restricted to the one zone touched.
    #[allow(clippy::too_many_arguments)] // one zone address is five indices
    pub unsafe fn update_cell(
        &self,
        geom: &UnkGeom,
        blk: usize,
        var: usize,
        i: usize,
        j: usize,
        k: usize,
        f: impl FnOnce(f64) -> f64,
    ) {
        let ir = geom.nguard..geom.nguard + geom.nxb;
        let interior =
            ir.contains(&i) && ir.contains(&j) && (geom.ndim < 3 || ir.contains(&k));
        let region = if interior {
            Region::Interior
        } else {
            Region::Guards
        };
        self.rec(blk, region, true);
        let slab = self.slab_mut(blk);
        let idx = geom.slab_idx(var, i, j, k);
        slab[idx] = f(slab[idx]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(layout: Layout) -> UnkStorage {
        UnkStorage::new(2, 8, 2, 4, 3, layout, Policy::None)
    }

    #[test]
    fn sizes_2d() {
        let u = mk(Layout::VarFirst);
        assert_eq!(u.padded(), (12, 12, 1));
        assert_eq!(u.per_block(), 4 * 12 * 12);
        assert_eq!(u.bytes(), 4 * 12 * 12 * 3 * 8);
        assert_eq!(u.interior(), 2..10);
        assert_eq!(u.interior_k(), 0..1);
    }

    #[test]
    fn sizes_3d() {
        let u = UnkStorage::new(3, 16, 4, 11, 2, Layout::VarFirst, Policy::None);
        assert_eq!(u.padded(), (24, 24, 24));
        assert_eq!(u.per_block(), 11 * 24 * 24 * 24);
        assert_eq!(u.interior_k(), 4..20);
    }

    #[test]
    fn pencil_gather_scatter_round_trips_all_layouts_and_dirs() {
        for layout in [Layout::VarFirst, Layout::VarLast] {
            let mut u = UnkStorage::new(3, 4, 2, 3, 2, layout, Policy::None);
            let g = u.geom();
            let (ni, nj, nk) = u.padded();
            // Seed every element with a unique value.
            for var in 0..3 {
                for k in 0..nk {
                    for j in 0..nj {
                        for i in 0..ni {
                            let v = (var * 1000 + i * 100 + j * 10 + k) as f64;
                            u.set(var, i, j, k, 1, v);
                        }
                    }
                }
            }
            for dir in 0..3 {
                let n = g.pencil_len(dir);
                let mut lane = vec![0.0; n];
                let (t1, t2) = (3, 2);
                g.gather_pencil(u.block_slab(1), 2, dir, t1, t2, &mut lane);
                // Lane contents match per-cell reads.
                for (p, &got) in lane.iter().enumerate() {
                    let (i, j, k) = match dir {
                        0 => (p, t1, t2),
                        1 => (t1, p, t2),
                        _ => (t1, t2, p),
                    };
                    assert_eq!(got, u.get(2, i, j, k, 1), "{layout:?} dir {dir} p {p}");
                }
                // Scatter a transformed interior back; guard cells untouched.
                let ng = g.nguard;
                let hi = ng + g.nxb;
                let doubled: Vec<f64> = lane.iter().map(|&v| 2.0 * v).collect();
                g.scatter_pencil(u.block_slab_mut(1), 2, dir, t1, t2, ng..hi, &doubled);
                for (p, &orig) in lane.iter().enumerate() {
                    let (i, j, k) = match dir {
                        0 => (p, t1, t2),
                        1 => (t1, p, t2),
                        _ => (t1, t2, p),
                    };
                    let want = if (ng..hi).contains(&p) { 2.0 * orig } else { orig };
                    assert_eq!(u.get(2, i, j, k, 1), want, "{layout:?} dir {dir} p {p}");
                }
                // Restore for the next direction.
                g.scatter_pencil(u.block_slab_mut(1), 2, dir, t1, t2, 0..n, &lane);
            }
        }
    }

    #[test]
    fn varfirst_strides_match_flash() {
        let u = mk(Layout::VarFirst);
        // Consecutive vars in the same zone are adjacent.
        assert_eq!(u.idx(1, 5, 5, 0, 0) - u.idx(0, 5, 5, 0, 0), 1);
        // Same var, consecutive i: stride nvar.
        assert_eq!(u.idx(0, 6, 5, 0, 0) - u.idx(0, 5, 5, 0, 0), 4);
        assert_eq!(u.zone_stride(), 32);
        // Block stride is the full slab.
        assert_eq!(u.idx(0, 0, 0, 0, 1) - u.idx(0, 0, 0, 0, 0), u.per_block());
    }

    #[test]
    fn varlast_strides_are_contiguous() {
        let u = mk(Layout::VarLast);
        assert_eq!(u.idx(0, 6, 5, 0, 0) - u.idx(0, 5, 5, 0, 0), 1);
        assert_eq!(u.zone_stride(), 8);
        // Var plane stride within a block.
        assert_eq!(u.idx(1, 5, 5, 0, 0) - u.idx(0, 5, 5, 0, 0), 12 * 12);
    }

    #[test]
    fn get_set_round_trip_all_layouts() {
        for layout in [Layout::VarFirst, Layout::VarLast] {
            let mut u = mk(layout);
            u.set(2, 3, 4, 0, 1, 7.5);
            assert_eq!(u.get(2, 3, 4, 0, 1), 7.5);
            assert_eq!(u.get(2, 3, 4, 0, 0), 0.0, "other blocks untouched");
            // Via slab view.
            let slab = u.block_slab(1);
            assert_eq!(slab[u.slab_idx(2, 3, 4, 0)], 7.5);
        }
    }

    #[test]
    fn slabs_are_disjoint_and_cover() {
        let mut u = mk(Layout::VarFirst);
        let per = u.per_block();
        let mut count = 0;
        for (b, slab) in u.slabs_mut().enumerate() {
            assert_eq!(slab.len(), per);
            slab[0] = b as f64;
            count += 1;
        }
        assert_eq!(count, 3);
        for b in 0..3 {
            assert_eq!(u.block_slab(b)[0], b as f64);
        }
    }

    #[test]
    fn row_pattern_describes_the_flash_stride() {
        let u = mk(Layout::VarFirst);
        match u.row_pattern(1, 5, 0, 2) {
            AccessPattern::Strided {
                base,
                stride,
                count,
                elem,
            } => {
                assert_eq!(base, u.addr(1, 2, 5, 0, 2));
                assert_eq!(stride, 32);
                assert_eq!(count, 8);
                assert_eq!(elem, 8);
            }
            other => panic!("unexpected pattern {other:?}"),
        }
    }

    #[test]
    fn block_sweep_emits_rows_in_loop_order() {
        let u = mk(Layout::VarFirst);
        let mut pats = Vec::new();
        u.block_sweep_patterns(&[0, 3], 0, &mut pats);
        // 8 interior rows × 2 vars.
        assert_eq!(pats.len(), 16);
    }

    #[test]
    fn addr_is_byte_scaled() {
        let u = mk(Layout::VarFirst);
        assert_eq!(u.addr(0, 3, 4, 0, 0) - u.base_addr(), 8 * u.idx(0, 3, 4, 0, 0));
    }

    #[test]
    fn geom_matches_storage() {
        for layout in [Layout::VarFirst, Layout::VarLast] {
            let u = mk(layout);
            let g = u.geom();
            assert_eq!(g.slab_idx(2, 3, 4, 0), u.slab_idx(2, 3, 4, 0));
            assert_eq!(g.addr(1, 2, 3, 0, 2), u.addr(1, 2, 3, 0, 2));
            assert_eq!(g.dir_stride(0), u.zone_stride());
        }
    }

    #[test]
    fn pencil_patterns_by_direction() {
        let u = UnkStorage::new(3, 4, 2, 5, 2, Layout::VarFirst, Policy::None);
        let g = u.geom();
        // dir 1 (j) stride: nvar * ni doubles.
        match g.pencil_pattern(0, 1, 3, 2, 1) {
            rflash_tlbsim::AccessPattern::Strided { stride, count, base, .. } => {
                assert_eq!(stride, 8 * 5 * 8);
                assert_eq!(count, 8);
                assert_eq!(base, u.addr(0, 3, 0, 2, 1));
            }
            _ => unreachable!(),
        }
        // dir 2 (k) stride: nvar * ni * nj doubles.
        match g.pencil_pattern(1, 2, 1, 2, 0) {
            rflash_tlbsim::AccessPattern::Strided { stride, .. } => {
                assert_eq!(stride, 8 * 5 * 64);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic]
    fn ndim_1_unsupported() {
        let _ = UnkStorage::new(1, 8, 2, 4, 1, Layout::VarFirst, Policy::None);
    }

    #[test]
    fn interior_pack_unpack_round_trips() {
        for layout in [Layout::VarFirst, Layout::VarLast] {
            let mut u = mk(layout);
            // Stamp unique values everywhere (guards included) in block 1.
            for (n, x) in u.block_slab_mut(1).iter_mut().enumerate() {
                *x = n as f64 + 0.25;
            }
            let mut packed = Vec::new();
            u.pack_interior_into(1, &mut packed);
            assert_eq!(packed.len(), u.interior_len());

            // A foreign interior overwrites block 2's interior bit-for-bit
            // while leaving its guard zones alone.
            for x in u.block_slab_mut(2).iter_mut() {
                *x = -1.0;
            }
            assert!(u.unpack_interior(2, &packed));
            let mut back = Vec::new();
            u.pack_interior_into(2, &mut back);
            assert_eq!(packed, back);
            let g = u.geom();
            let guard = u.block_slab(2)[g.slab_idx(0, 0, 0, 0)];
            assert_eq!(guard.to_bits(), (-1.0f64).to_bits());

            // Wrong-length payloads are rejected without touching the slab.
            assert!(!u.unpack_interior(2, &packed[1..]));
            let mut still = Vec::new();
            u.pack_interior_into(2, &mut still);
            assert_eq!(packed, still);
        }
    }

    // Debug-build invariant checks: out-of-range indices must trip the
    // descriptive assertions rather than silently aliasing a neighbouring
    // zone. Release builds skip both the checks and these tests.
    #[cfg(debug_assertions)]
    mod debug_bounds {
        use super::*;

        #[test]
        #[should_panic(expected = "out of range")]
        fn idx_rejects_var_overflow() {
            let u = mk(Layout::VarFirst);
            let _ = u.idx(4, 0, 0, 0, 0);
        }

        #[test]
        #[should_panic(expected = "out of padded range")]
        fn idx_rejects_k_in_2d() {
            let u = mk(Layout::VarFirst);
            let _ = u.idx(0, 0, 0, 1, 0);
        }

        #[test]
        #[should_panic(expected = "out of pool range")]
        fn idx_rejects_block_overflow() {
            let u = mk(Layout::VarFirst);
            let _ = u.idx(0, 0, 0, 0, 3);
        }

        #[test]
        #[should_panic(expected = "beyond pool")]
        fn block_slab_rejects_overflow() {
            let u = mk(Layout::VarFirst);
            let _ = u.block_slab(3);
        }

        #[test]
        #[should_panic(expected = "out of padded range")]
        fn geom_slab_idx_rejects_i_overflow() {
            let g = mk(Layout::VarLast).geom();
            let _ = g.slab_idx(0, 12, 0, 0);
        }
    }
}
