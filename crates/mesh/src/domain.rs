//! Rank decomposition and parallel block updates.
//!
//! FLASH distributes blocks over MPI ranks along the Morton space-filling
//! curve; within a time step every rank sweeps its own blocks
//! independently (guard cells were exchanged beforehand). We reproduce the
//! same structure with threads: leaves are split into contiguous
//! Morton-curve segments and each simulated rank updates its blocks on its
//! own thread. Disjointness is by construction — every block's data is a
//! contiguous slab of `unk`, and each slab is handed to exactly one rank.

use rflash_perfmon::Probe;

use crate::block::BlockId;
use crate::tree::{MeshConfig, Tree};
use crate::unk::UnkStorage;

use rflash_hugepages::Policy;

/// Tree + solution container, the pair every solver operates on.
pub struct Domain {
    pub tree: Tree,
    pub unk: UnkStorage,
}

impl Domain {
    /// Build the tree and its matching `unk` container under `policy`.
    pub fn new(config: MeshConfig, policy: Policy) -> Domain {
        let tree = Tree::new(config);
        let unk = tree.make_unk(policy);
        Domain { tree, unk }
    }

    /// Split the leaves into `nranks` contiguous Morton-curve segments with
    /// balanced counts (PARAMESH's work distribution).
    pub fn rank_partition(&self, nranks: usize) -> Vec<Vec<BlockId>> {
        assert!(nranks > 0);
        let leaves = self.tree.leaves();
        let n = leaves.len();
        let mut parts = vec![Vec::new(); nranks];
        for (i, id) in leaves.into_iter().enumerate() {
            // Balanced contiguous split: rank r gets [r·n/R, (r+1)·n/R).
            let r = i * nranks / n.max(1);
            parts[r.min(nranks - 1)].push(id);
        }
        parts
    }

    /// Update every leaf in parallel over `nranks` simulated ranks.
    ///
    /// The closure receives the tree, the block id, that block's mutable
    /// slab, and the rank-local [`Probe`] for instrumentation. Returns the
    /// probes in rank order for the driver to absorb (deterministically —
    /// rank order, not completion order).
    pub fn par_leaf_update<F>(&mut self, nranks: usize, f: F) -> Vec<Probe>
    where
        F: Fn(&Tree, BlockId, &mut [f64], &mut Probe) + Sync,
    {
        let (probes, _units) = self.par_leaf_map(nranks, |tree, id, slab, probe| {
            f(tree, id, slab, probe);
        });
        probes
    }

    /// Like [`Domain::par_leaf_update`] but collecting a per-block result
    /// (e.g. boundary fluxes for the conservation fix-up). Results come back
    /// in Morton order regardless of rank scheduling.
    pub fn par_leaf_map<R, F>(&mut self, nranks: usize, f: F) -> (Vec<Probe>, Vec<(BlockId, R)>)
    where
        R: Send,
        F: Fn(&Tree, BlockId, &mut [f64], &mut Probe) -> R + Sync,
    {
        let parts = self.rank_partition(nranks);
        let tree = &self.tree;

        // Hand out each block's slab exactly once.
        let mut slabs: Vec<Option<&mut [f64]>> = Vec::new();
        {
            let mut it = self.unk.slabs_mut();
            for _ in 0..tree.config().max_blocks {
                slabs.push(it.next());
            }
        }
        let mut rank_work: Vec<Vec<(BlockId, &mut [f64])>> = Vec::with_capacity(nranks);
        for part in &parts {
            let mut work = Vec::with_capacity(part.len());
            for &id in part {
                let slab = slabs[id.idx()]
                    .take()
                    .expect("each block is assigned to exactly one rank");
                work.push((id, slab));
            }
            rank_work.push(work);
        }
        if nranks == 1 {
            // Fast path: no thread spawn.
            let mut probe = Probe::new();
            let mut results = Vec::new();
            for (id, slab) in rank_work.pop().unwrap() {
                let r = f(tree, id, slab, &mut probe);
                results.push((id, r));
            }
            return (vec![probe], results);
        }

        let per_rank = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for work in rank_work {
                let fref = &f;
                handles.push(scope.spawn(move |_| {
                    let mut probe = Probe::new();
                    let mut results = Vec::with_capacity(work.len());
                    for (id, slab) in work {
                        let r = fref(tree, id, slab, &mut probe);
                        results.push((id, r));
                    }
                    (probe, results)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect::<Vec<(Probe, Vec<(BlockId, R)>)>>()
        })
        .expect("crossbeam scope failed");

        let mut probes = Vec::with_capacity(nranks);
        let mut results = Vec::new();
        for (probe, mut rs) in per_rank {
            probes.push(probe);
            results.append(&mut rs);
        }
        (probes, results)
    }

    /// Total interior zones over all leaves.
    pub fn total_zones(&self) -> usize {
        let cfg = self.tree.config();
        let per = cfg.nxb.pow(cfg.ndim as u32);
        self.tree.leaves().len() * per
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MeshConfig;
    use crate::vars::DENS;

    fn refined_domain() -> Domain {
        let mut d = Domain::new(MeshConfig::test_2d(), Policy::None);
        let root = d.tree.leaves()[0];
        let children = d.tree.refine_block(root, &mut d.unk);
        d.tree.refine_block(children[0], &mut d.unk);
        d // 3 level-1 leaves + 4 level-2 leaves
    }

    #[test]
    fn partition_covers_all_leaves_contiguously() {
        let d = refined_domain();
        let parts = d.rank_partition(3);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, d.tree.leaves().len());
        // Counts are balanced within 1.
        let (min, max) = (
            parts.iter().map(Vec::len).min().unwrap(),
            parts.iter().map(Vec::len).max().unwrap(),
        );
        assert!(max - min <= 1, "{parts:?}");
        // Concatenation preserves Morton order.
        let cat: Vec<BlockId> = parts.into_iter().flatten().collect();
        assert_eq!(cat, d.tree.leaves());
    }

    #[test]
    fn more_ranks_than_leaves_is_fine() {
        let d = Domain::new(MeshConfig::test_2d(), Policy::None);
        let parts = d.rank_partition(4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn par_update_touches_each_leaf_once() {
        let mut d = refined_domain();
        let g = d.tree.config().nguard;
        let idx = d.unk.slab_idx(DENS, g, g, 0);
        for nranks in [1, 2, 4] {
            // Increment a marker cell in every leaf.
            let probes = d.par_leaf_update(nranks, |_tree, _id, slab, probe| {
                slab[idx] += 1.0;
                probe.stats.zones += 1;
            });
            assert_eq!(probes.len(), nranks);
            let zones: u64 = probes.iter().map(|p| p.stats.zones).sum();
            assert_eq!(zones as usize, d.tree.leaves().len());
        }
        // Every leaf got exactly 3 increments (one per nranks round).
        for id in d.tree.leaves() {
            assert_eq!(d.unk.get(DENS, g, g, 0, id.idx()), 3.0);
        }
    }

    #[test]
    fn par_update_results_are_rank_deterministic() {
        let mut d = refined_domain();
        let probes = d.par_leaf_update(2, |tree, id, _slab, probe| {
            probe.stats.fp_ops += tree.block(id).key.level as u64;
        });
        let again = d.par_leaf_update(2, |tree, id, _slab, probe| {
            probe.stats.fp_ops += tree.block(id).key.level as u64;
        });
        let a: Vec<u64> = probes.iter().map(|p| p.stats.fp_ops).collect();
        let b: Vec<u64> = again.iter().map(|p| p.stats.fp_ops).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn total_zones_counts_interiors() {
        let d = refined_domain();
        assert_eq!(d.total_zones(), 7 * 64);
    }
}
