//! Rank decomposition and parallel block updates.
//!
//! FLASH distributes blocks over MPI ranks along the Morton space-filling
//! curve; within a time step every rank sweeps its own blocks
//! independently (guard cells were exchanged beforehand). We reproduce the
//! same structure with a persistent pool of rank threads ([`RankPool`]):
//! leaves are split into contiguous Morton-curve segments, cost-weighted by
//! interior zone count, and each simulated rank updates its blocks on its
//! own long-lived thread. Disjointness is by construction — every block's
//! data is a contiguous slab of `unk`, and each slab is handed to exactly
//! one rank.
//!
//! The partition is cached on the tree's topology [`Tree::epoch`] and only
//! rebuilt after a regrid, so the steady-state per-call cost of a parallel
//! section is one channel message per rank — no thread spawns, no handout
//! vector allocation.

use rflash_perfmon::{Probe, RankLoad};

use crate::block::{BlockId, BlockState};
use crate::executor::{PerRank, RankPool};
use crate::guardcell;
use crate::tree::{MeshConfig, Neighbor, Tree};
use crate::unk::UnkStorage;

use rflash_hugepages::Policy;

/// One staged guard-exchange write: destination block, flat offset within
/// its slab, value. The destination is always a block the packing rank
/// owns, so the unpack phase writes rank-disjoint slabs.
type Staged = (u32, u32, f64);

/// A cached work distribution for one (tree epoch, nranks) pair.
struct RankPlan {
    /// Tree topology revision this plan was built at.
    epoch: u64,
    /// Requested rank count (the pool width it pairs with).
    nranks: usize,
    /// Ranks that actually receive leaves: `min(nranks, leaves)`.
    eff_ranks: usize,
    /// `parts[r]` — contiguous Morton segment of leaves owned by rank `r`.
    /// Always `nranks` entries; trailing ones are empty when there are
    /// fewer leaves than ranks.
    parts: Vec<Vec<BlockId>>,
    /// `level_active[l][r]` — active (leaf + parent) blocks at tree level
    /// `l` whose guard fill rank `r` performs.
    level_active: Vec<Vec<Vec<BlockId>>>,
    /// `level_parents[l][r]` — parent blocks at level `l` whose child
    /// restriction rank `r` performs.
    level_parents: Vec<Vec<Vec<BlockId>>>,
}

/// Executor state carried by the [`Domain`]: the persistent rank pool, the
/// cached work distribution, and reusable staging buffers for the
/// two-phase guard exchange.
#[derive(Default)]
struct Exec {
    pool: Option<RankPool>,
    plan: Option<RankPlan>,
    stage: Vec<Vec<Staged>>,
}

impl Exec {
    /// Make pool, plan, and staging buffers current for (`tree`, `nranks`).
    fn ensure(&mut self, tree: &Tree, nranks: usize) {
        let plan_stale = match &self.plan {
            Some(p) => p.epoch != tree.epoch() || p.nranks != nranks,
            None => true,
        };
        if plan_stale {
            let t0 = std::time::Instant::now();
            self.plan = Some(build_plan(tree, nranks));
            // The partition epoch refresh runs on the dispatching thread
            // while every worker waits: charge it to the idle ledger so it
            // doesn't vanish from the busy+idle ≈ wall invariant.
            if let Some(pool) = &mut self.pool {
                if pool.nranks() == nranks {
                    pool.account_idle(t0.elapsed().as_nanos() as u64);
                }
            }
        }
        let pool_stale = match &self.pool {
            Some(p) => p.nranks() != nranks,
            None => true,
        };
        if nranks > 1 && pool_stale {
            self.pool = Some(RankPool::new(nranks));
        }
        if self.stage.len() != nranks {
            self.stage.resize_with(nranks, Vec::new);
        }
    }
}

/// Cost-weighted contiguous Morton split: a leaf's cost is its interior
/// zone count, and rank cuts fall where the cumulative cost crosses
/// multiples of `total/eff`. With today's uniform block sizes this
/// degenerates to the classic balanced `r = i·R/n` split (counts within
/// one of each other); the cut logic is written against per-leaf costs so
/// non-uniform weights (e.g. per-block kernel masks) rebalance for free.
fn partition_by_cost(tree: &Tree, nranks: usize) -> Vec<Vec<BlockId>> {
    let leaves = tree.leaves();
    let mut parts = vec![Vec::new(); nranks];
    if leaves.is_empty() {
        // Degenerate mesh (no leaves): nothing to distribute.
        return parts;
    }
    let eff = nranks.min(leaves.len());
    let cfg = tree.config();
    let cost_of = |_id: BlockId| -> u64 { cfg.nxb.pow(cfg.ndim as u32) as u64 };
    let total: u64 = leaves.iter().map(|&id| cost_of(id)).sum();
    let mut cum = 0u64;
    for id in leaves {
        let r = ((cum * eff as u64) / total.max(1)) as usize;
        parts[r.min(eff - 1)].push(id);
        cum += cost_of(id);
    }
    parts
}

/// Split `list` into `nranks` contiguous count-balanced chunks, using at
/// most `min(nranks, len)` of them.
fn split_contiguous(list: &[BlockId], nranks: usize) -> Vec<Vec<BlockId>> {
    let mut out = vec![Vec::new(); nranks];
    if list.is_empty() {
        return out;
    }
    let eff = nranks.min(list.len());
    for (i, &id) in list.iter().enumerate() {
        out[(i * eff / list.len()).min(eff - 1)].push(id);
    }
    out
}

fn build_plan(tree: &Tree, nranks: usize) -> RankPlan {
    let parts = partition_by_cost(tree, nranks);
    let eff_ranks = parts.iter().filter(|p| !p.is_empty()).count();

    // Per-level block lists for the guard exchange, BlockId-ascending within
    // each level (the same order the serial fill's stable sort produces).
    let mut act: Vec<Vec<BlockId>> = Vec::new();
    let mut par: Vec<Vec<BlockId>> = Vec::new();
    for raw in 0..tree.config().max_blocks as u32 {
        let id = BlockId(raw);
        let meta = tree.block(id);
        if meta.state == BlockState::Free {
            continue;
        }
        let lvl = meta.key.level as usize;
        if lvl >= act.len() {
            act.resize_with(lvl + 1, Vec::new);
            par.resize_with(lvl + 1, Vec::new);
        }
        act[lvl].push(id);
        if meta.state == BlockState::Parent {
            par[lvl].push(id);
        }
    }
    RankPlan {
        epoch: tree.epoch(),
        nranks,
        eff_ranks,
        level_active: act.iter().map(|l| split_contiguous(l, nranks)).collect(),
        level_parents: par.iter().map(|l| split_contiguous(l, nranks)).collect(),
        parts,
    }
}

/// Raw handout of `unk`'s per-block slabs for the worker ranks. Each block
/// id appears in exactly one rank's work list (the partition invariant), so
/// the slabs materialized through this are disjoint — the raw-pointer
/// analog of [`UnkStorage::slabs_mut`], minus the per-call `Vec` handout
/// the scoped-thread implementation rebuilt on every parallel section.
#[derive(Clone, Copy)]
struct RawSlabs {
    ptr: *mut f64,
    per_block: usize,
}

// SAFETY: the pointer spans a plain-f64 region; callers uphold the
// one-rank-per-block discipline documented on `slab`.
unsafe impl Send for RawSlabs {}
unsafe impl Sync for RawSlabs {}

impl RawSlabs {
    fn of(unk: &mut UnkStorage) -> RawSlabs {
        RawSlabs {
            per_block: unk.per_block(),
            ptr: unk.base_ptr_mut(),
        }
    }

    /// Block `blk`'s slab.
    ///
    /// # Safety
    /// During one pool dispatch, `blk` must be touched by exactly one rank,
    /// and no `&UnkStorage` reads of the same storage may be live.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slab(&self, blk: usize) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.ptr.add(blk * self.per_block), self.per_block)
    }
}

/// Tree + solution container, the pair every solver operates on.
pub struct Domain {
    pub tree: Tree,
    pub unk: UnkStorage,
    exec: Exec,
}

impl Domain {
    /// Build the tree and its matching `unk` container under `policy`.
    pub fn new(config: MeshConfig, policy: Policy) -> Domain {
        let tree = Tree::new(config);
        let unk = tree.make_unk(policy);
        Domain {
            tree,
            unk,
            exec: Exec::default(),
        }
    }

    /// Split the leaves into `nranks` contiguous Morton-curve segments with
    /// cost-balanced zone counts (PARAMESH's work distribution).
    pub fn rank_partition(&self, nranks: usize) -> Vec<Vec<BlockId>> {
        assert!(nranks > 0);
        partition_by_cost(&self.tree, nranks)
    }

    /// The cached cost-weighted partition (building it if stale) — the
    /// block-ownership map task-graph builders seed their deques from.
    pub fn leaf_partition(&mut self, nranks: usize) -> Vec<Vec<BlockId>> {
        assert!(nranks > 0);
        let Domain { tree, unk: _, exec } = self;
        exec.ensure(tree, nranks);
        exec.plan.as_ref().expect("plan ensured").parts.clone()
    }

    /// Borrow the persistent rank pool together with the tree and storage,
    /// for executing an externally-built task graph in one dispatch.
    /// Requires `nranks > 1` (a one-rank "graph" is just the serial path).
    pub fn pool_for_graph(&mut self, nranks: usize) -> (&mut RankPool, &Tree, &mut UnkStorage) {
        assert!(nranks > 1, "task-graph execution needs a real pool");
        let Domain { tree, unk, exec } = self;
        exec.ensure(tree, nranks);
        let pool = exec.pool.as_mut().expect("pool ensured for nranks > 1");
        (pool, tree, unk)
    }

    /// Update every leaf in parallel over `nranks` simulated ranks.
    ///
    /// The closure receives the tree, the block id, that block's mutable
    /// slab, and the rank-local [`Probe`] for instrumentation. Returns the
    /// probes in rank order for the driver to absorb (deterministically —
    /// rank order, not completion order).
    pub fn par_leaf_update<F>(&mut self, nranks: usize, f: F) -> Vec<Probe>
    where
        F: Fn(&Tree, BlockId, &mut [f64], &mut Probe) + Sync,
    {
        let (probes, _units) = self.par_leaf_map(nranks, |tree, id, slab, probe| {
            f(tree, id, slab, probe);
        });
        probes
    }

    /// Like [`Domain::par_leaf_update`] but collecting a per-block result
    /// (e.g. boundary fluxes for the conservation fix-up). Results come back
    /// in Morton order regardless of rank scheduling.
    pub fn par_leaf_map<R, F>(&mut self, nranks: usize, f: F) -> (Vec<Probe>, Vec<(BlockId, R)>)
    where
        R: Send,
        F: Fn(&Tree, BlockId, &mut [f64], &mut Probe) -> R + Sync,
    {
        assert!(nranks > 0);
        let Domain { tree, unk, exec } = self;
        exec.ensure(tree, nranks);
        let plan = exec.plan.as_ref().expect("plan ensured");

        if nranks == 1 || plan.eff_ranks <= 1 {
            // Serial fast path: no dispatch, same Morton visit order.
            let mut probe = Probe::new();
            let mut results = Vec::new();
            for part in &plan.parts {
                for &id in part {
                    let r = f(tree, id, unk.block_slab_mut(id.idx()), &mut probe);
                    results.push((id, r));
                }
            }
            let mut probes = vec![probe];
            probes.resize_with(nranks, Probe::new);
            return (probes, results);
        }

        let pool = exec.pool.as_mut().expect("pool ensured for nranks > 1");
        let slabs = RawSlabs::of(unk);
        let out: PerRank<(Probe, Vec<(BlockId, R)>)> =
            PerRank::new(nranks, || (Probe::new(), Vec::new()));
        let parts = &plan.parts;
        let tree_ref: &Tree = tree;
        pool.run(&|rank| {
            // SAFETY: each rank writes only its own output slot and the
            // slabs of its own Morton segment (disjoint by the partition).
            let (probe, results) = unsafe { out.slot(rank) };
            results.reserve(parts[rank].len());
            for &id in &parts[rank] {
                // SAFETY: `id` is in this rank's Morton segment only.
                let slab = unsafe { slabs.slab(id.idx()) };
                let r = f(tree_ref, id, slab, probe);
                results.push((id, r));
            }
        });

        let mut probes = Vec::with_capacity(nranks);
        let mut results = Vec::new();
        for (probe, mut rs) in out.into_inner() {
            probes.push(probe);
            results.append(&mut rs);
        }
        (probes, results)
    }

    /// Exact parallel min-reduction over the leaves (the CFL time-step
    /// scan). Each rank reduces its Morton segment; the caller reduces
    /// across ranks. `min` is associative and commutative, so the result is
    /// bit-identical to a serial scan for any rank count.
    pub fn par_leaf_min<F>(&mut self, nranks: usize, f: F) -> f64
    where
        F: Fn(&Tree, &UnkStorage, BlockId) -> f64 + Sync,
    {
        assert!(nranks > 0);
        let Domain { tree, unk, exec } = self;
        exec.ensure(tree, nranks);
        let plan = exec.plan.as_ref().expect("plan ensured");

        if nranks == 1 || plan.eff_ranks <= 1 {
            let mut m = f64::INFINITY;
            for part in &plan.parts {
                for &id in part {
                    m = m.min(f(tree, unk, id));
                }
            }
            return m;
        }

        let pool = exec.pool.as_mut().expect("pool ensured for nranks > 1");
        let out: PerRank<f64> = PerRank::new(nranks, || f64::INFINITY);
        let parts = &plan.parts;
        let tree_ref: &Tree = tree;
        let unk_ref: &UnkStorage = unk;
        pool.run(&|rank| {
            // SAFETY: each rank writes only its own slot; `unk` is only read.
            let m = unsafe { out.slot(rank) };
            for &id in &parts[rank] {
                *m = m.min(f(tree_ref, unk_ref, id));
            }
        });
        out.into_inner().into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Parallel guard-cell exchange over the persistent rank pool.
    ///
    /// Every refinement level is processed with two pool dispatches. In
    /// phase 1 ("pack") each rank reads the shared `unk` immutably and
    /// stages `(block, offset, value)` writes for the blocks it owns —
    /// parent restrictions on the downward pass, then same-level copies and
    /// fine–coarse prolongations on the upward pass. The dispatch return is
    /// the barrier. In phase 2 ("unpack") each rank applies its staged
    /// values to its own blocks' slabs and then runs the physical boundary
    /// conditions for those blocks. All phase-2 writes land in rank-owned
    /// slabs, and no kernel reads another same-level block's guard cells,
    /// so the result is bit-identical to the serial
    /// [`guardcell::fill_guardcells`] — the parity tests assert exactness.
    pub fn fill_guardcells(&mut self, nranks: usize) {
        assert!(nranks > 0);
        let Domain { tree, unk, exec } = self;
        exec.ensure(tree, nranks);
        let Exec { pool, plan, stage } = exec;
        let plan = plan.as_ref().expect("plan ensured");

        if nranks == 1 || plan.eff_ranks <= 1 {
            guardcell::fill_guardcells(tree, unk);
            return;
        }
        let pool = pool.as_mut().expect("pool ensured for nranks > 1");

        // Reusable per-rank staging buffers, handed out as rank slots for
        // the duration of the exchange (capacity persists across calls).
        let stage_cells = PerRank::from_vec(std::mem::take(stage));
        let geom = unk.geom();
        let dirs = tree.config().neighbor_dirs();

        // Downward pass: restrict child interiors into parents, deepest
        // parent level first, two dispatches per level.
        for lvl in (0..plan.level_parents.len()).rev() {
            let per_rank = &plan.level_parents[lvl];
            if per_rank.iter().all(|v| v.is_empty()) {
                continue;
            }
            {
                let unk_ref: &UnkStorage = unk;
                pool.run(&|rank| {
                    // SAFETY: rank-private staging slot; `unk` is only read.
                    let buf = unsafe { stage_cells.slot(rank) };
                    for &pid in &per_rank[rank] {
                        let meta = tree.block(pid);
                        let children = meta.children.expect("parent has children");
                        for (c, &cid) in
                            children.iter().enumerate().take(meta.n_children as usize)
                        {
                            guardcell::pack_restrict(
                                &geom,
                                unk_ref.block_slab(cid.idx()),
                                c,
                                &mut |off, v| {
                                    buf.push((pid.0, off as u32, v));
                                },
                            );
                        }
                    }
                });
            }
            {
                let slabs = RawSlabs::of(unk);
                pool.run(&|rank| {
                    // SAFETY: every staged destination is a parent this rank
                    // packed for — blocks no other rank touches this level.
                    let buf = unsafe { stage_cells.slot(rank) };
                    for &(blk, off, v) in buf.iter() {
                        // SAFETY: `blk` is a parent only this rank staged.
                        let slab = unsafe { slabs.slab(blk as usize) };
                        slab[off as usize] = v;
                    }
                    buf.clear();
                });
            }
        }

        // Upward pass: fill guards coarse level → fine level so
        // prolongation sources are always current.
        for lvl in 0..plan.level_active.len() {
            let per_rank = &plan.level_active[lvl];
            if per_rank.iter().all(|v| v.is_empty()) {
                continue;
            }
            {
                let unk_ref: &UnkStorage = unk;
                pool.run(&|rank| {
                    // SAFETY: rank-private staging slot; `unk` is only read.
                    let buf = unsafe { stage_cells.slot(rank) };
                    for &id in &per_rank[rank] {
                        for &d in &dirs {
                            match tree.neighbor(id, d) {
                                Neighbor::Same(nid) => guardcell::pack_copy_same(
                                    &geom,
                                    unk_ref.block_slab(nid.idx()),
                                    d,
                                    &mut |off, v| buf.push((id.0, off as u32, v)),
                                ),
                                Neighbor::Coarser(nid) => guardcell::pack_prolong(
                                    &geom,
                                    tree.block(id).key,
                                    unk_ref.block_slab(nid.idx()),
                                    d,
                                    &mut |off, v| buf.push((id.0, off as u32, v)),
                                ),
                                Neighbor::Boundary => {}
                            }
                        }
                    }
                });
            }
            {
                let slabs = RawSlabs::of(unk);
                pool.run(&|rank| {
                    // SAFETY: staged destinations and boundary fills touch
                    // only this rank's blocks at this level.
                    let buf = unsafe { stage_cells.slot(rank) };
                    for &(blk, off, v) in buf.iter() {
                        // SAFETY: `blk` is a block only this rank staged.
                        let slab = unsafe { slabs.slab(blk as usize) };
                        slab[off as usize] = v;
                    }
                    buf.clear();
                    for &id in &per_rank[rank] {
                        for &d in &dirs {
                            if tree.neighbor(id, d) == Neighbor::Boundary {
                                // SAFETY: `id` is owned by this rank at this
                                // level; boundary fill writes only its slab.
                                let slab = unsafe { slabs.slab(id.idx()) };
                                guardcell::fill_boundary_slab(tree, &geom, id, d, slab);
                            }
                        }
                    }
                });
            }
        }

        *stage = stage_cells.into_inner();
    }

    /// Cumulative per-rank load counters from the persistent pool. Empty
    /// when every parallel section so far took the serial path.
    pub fn rank_loads(&self) -> Vec<RankLoad> {
        match &self.exec.pool {
            Some(pool) => pool
                .counters()
                .iter()
                .enumerate()
                .map(|(rank, c)| RankLoad {
                    rank,
                    busy_s: c.busy_ns as f64 * 1e-9,
                    idle_s: c.idle_ns as f64 * 1e-9,
                    dispatches: pool.dispatches(),
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Total interior zones over all leaves.
    pub fn total_zones(&self) -> usize {
        let cfg = self.tree.config();
        let per = cfg.nxb.pow(cfg.ndim as u32);
        self.tree.leaves().len() * per
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MeshConfig;
    use crate::vars::DENS;

    fn refined_domain() -> Domain {
        let mut d = Domain::new(MeshConfig::test_2d(), Policy::None);
        let root = d.tree.leaves()[0];
        let children = d.tree.refine_block(root, &mut d.unk);
        d.tree.refine_block(children[0], &mut d.unk);
        d // 3 level-1 leaves + 4 level-2 leaves
    }

    #[test]
    fn partition_covers_all_leaves_contiguously() {
        let d = refined_domain();
        let parts = d.rank_partition(3);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, d.tree.leaves().len());
        // Counts are balanced within 1 (uniform costs today).
        let (min, max) = (
            parts.iter().map(Vec::len).min().unwrap(),
            parts.iter().map(Vec::len).max().unwrap(),
        );
        assert!(max - min <= 1, "{parts:?}");
        // Concatenation preserves Morton order.
        let cat: Vec<BlockId> = parts.into_iter().flatten().collect();
        assert_eq!(cat, d.tree.leaves());
    }

    #[test]
    fn more_ranks_than_leaves_is_fine() {
        let d = Domain::new(MeshConfig::test_2d(), Policy::None);
        let parts = d.rank_partition(4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn par_update_touches_each_leaf_once() {
        let mut d = refined_domain();
        let g = d.tree.config().nguard;
        let idx = d.unk.slab_idx(DENS, g, g, 0);
        for nranks in [1, 2, 4] {
            // Increment a marker cell in every leaf.
            let probes = d.par_leaf_update(nranks, |_tree, _id, slab, probe| {
                slab[idx] += 1.0;
                probe.stats.zones += 1;
            });
            assert_eq!(probes.len(), nranks);
            let zones: u64 = probes.iter().map(|p| p.stats.zones).sum();
            assert_eq!(zones as usize, d.tree.leaves().len());
        }
        // Every leaf got exactly 3 increments (one per nranks round).
        for id in d.tree.leaves() {
            assert_eq!(d.unk.get(DENS, g, g, 0, id.idx()), 3.0);
        }
    }

    #[test]
    fn par_update_results_are_rank_deterministic() {
        let mut d = refined_domain();
        let probes = d.par_leaf_update(2, |tree, id, _slab, probe| {
            probe.stats.fp_ops += tree.block(id).key.level as u64;
        });
        let again = d.par_leaf_update(2, |tree, id, _slab, probe| {
            probe.stats.fp_ops += tree.block(id).key.level as u64;
        });
        let a: Vec<u64> = probes.iter().map(|p| p.stats.fp_ops).collect();
        let b: Vec<u64> = again.iter().map(|p| p.stats.fp_ops).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn excess_ranks_get_empty_segments_and_padded_probes() {
        let mut d = refined_domain(); // 7 leaves
        let probes = d.par_leaf_update(9, |_tree, _id, _slab, probe| {
            probe.stats.zones += 1;
        });
        assert_eq!(probes.len(), 9);
        let zones: u64 = probes.iter().map(|p| p.stats.zones).sum();
        assert_eq!(zones, 7);
    }

    #[test]
    fn pool_and_partition_persist_across_calls() {
        let mut d = refined_domain();
        d.par_leaf_update(2, |_, _, _, _| {});
        d.par_leaf_update(2, |_, _, _, _| {});
        let loads = d.rank_loads();
        assert_eq!(loads.len(), 2);
        // One pool served both calls: the dispatch counter accumulated.
        assert_eq!(loads[0].dispatches, 2);
        // And the plan was built exactly once (same epoch, same nranks).
        assert_eq!(d.exec.plan.as_ref().unwrap().epoch, d.tree.epoch());
    }

    #[test]
    fn adapt_invalidates_cached_partition() {
        let mut d = refined_domain();
        d.par_leaf_update(2, |_, _, _, _| {});
        let epoch_before = d.exec.plan.as_ref().unwrap().epoch;
        let leaves_before = d.tree.leaves().len();

        // A regrid (here: direct refine) bumps the tree epoch…
        let coarse_leaf = *d.tree.leaves().last().unwrap();
        d.tree.refine_block(coarse_leaf, &mut d.unk);
        assert!(d.tree.epoch() > epoch_before);

        // …so the next parallel call rebuilds the plan over the new leaves.
        let probes = d.par_leaf_update(2, |_tree, _id, _slab, probe| {
            probe.stats.zones += 1;
        });
        let plan = d.exec.plan.as_ref().unwrap();
        assert_eq!(plan.epoch, d.tree.epoch());
        let covered: usize = plan.parts.iter().map(Vec::len).sum();
        assert_eq!(covered, d.tree.leaves().len());
        assert!(d.tree.leaves().len() > leaves_before);
        let zones: u64 = probes.iter().map(|p| p.stats.zones).sum();
        assert_eq!(zones as usize, d.tree.leaves().len());
    }

    #[test]
    fn par_leaf_min_matches_serial_scan() {
        let mut d = refined_domain();
        let g = d.tree.config().nguard;
        for (n, id) in d.tree.leaves().into_iter().enumerate() {
            d.unk.set(DENS, g, g, 0, id.idx(), 10.0 - n as f64);
        }
        let serial = d.par_leaf_min(1, |tree, unk, id| {
            let _ = tree;
            unk.get(DENS, g, g, 0, id.idx())
        });
        for nranks in [2, 4, 7] {
            let par = d.par_leaf_min(nranks, |tree, unk, id| {
                let _ = tree;
                unk.get(DENS, g, g, 0, id.idx())
            });
            assert_eq!(par.to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn total_zones_counts_interiors() {
        let d = refined_domain();
        assert_eq!(d.total_zones(), 7 * 64);
    }
}
