//! Mesh geometries.
//!
//! FLASH's 2-d supernova simulations run in cylindrical (r, z) coordinates;
//! the Sedov test runs Cartesian. Volumes and face areas feed the
//! finite-volume update and the conserved-quantity accounting.

use serde::{Deserialize, Serialize};

/// Supported coordinate systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Geometry {
    /// Cartesian (x, y[, z]).
    #[default]
    Cartesian,
    /// Axisymmetric cylindrical (r, z) — 2-d only. Coordinate 0 is radius.
    CylindricalRZ,
}

impl Geometry {
    /// Cell volume for a cell spanning `[lo, hi]` per axis (unused axes in
    /// 2-d get an implicit unit extent; cylindrical includes the 2π).
    pub fn cell_volume(self, lo: [f64; 3], hi: [f64; 3], ndim: usize) -> f64 {
        match self {
            Geometry::Cartesian => {
                let mut v = 1.0;
                for d in 0..ndim {
                    v *= hi[d] - lo[d];
                }
                v
            }
            Geometry::CylindricalRZ => {
                assert_eq!(ndim, 2, "cylindrical r-z is 2-d");
                std::f64::consts::PI * (hi[0] * hi[0] - lo[0] * lo[0]) * (hi[1] - lo[1])
            }
        }
    }

    /// Face area of the `dir`-normal face at coordinate `at` spanning the
    /// transverse extents of the cell.
    pub fn face_area(self, dir: usize, at: f64, lo: [f64; 3], hi: [f64; 3], ndim: usize) -> f64 {
        match self {
            Geometry::Cartesian => {
                let mut a = 1.0;
                for d in 0..ndim {
                    if d != dir {
                        a *= hi[d] - lo[d];
                    }
                }
                a
            }
            Geometry::CylindricalRZ => {
                assert_eq!(ndim, 2);
                match dir {
                    // r-face: cylinder shell of radius `at`, height Δz.
                    0 => 2.0 * std::f64::consts::PI * at * (hi[1] - lo[1]),
                    // z-face: annulus.
                    1 => std::f64::consts::PI * (hi[0] * hi[0] - lo[0] * lo[0]),
                    _ => panic!("cylindrical r-z has two directions"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_volumes() {
        let g = Geometry::Cartesian;
        let v2 = g.cell_volume([0.0, 0.0, 0.0], [2.0, 3.0, 100.0], 2);
        assert_eq!(v2, 6.0);
        let v3 = g.cell_volume([0.0; 3], [2.0, 3.0, 4.0], 3);
        assert_eq!(v3, 24.0);
        assert_eq!(g.face_area(0, 0.0, [0.0; 3], [2.0, 3.0, 4.0], 3), 12.0);
    }

    #[test]
    fn cylindrical_shell_volume() {
        let g = Geometry::CylindricalRZ;
        // Full cylinder of radius 2, height 3: π·4·3.
        let v = g.cell_volume([0.0, 0.0, 0.0], [2.0, 3.0, 0.0], 2);
        assert!((v - std::f64::consts::PI * 12.0).abs() < 1e-12);
        // Shell area at r=2, Δz=3: 2π·2·3.
        let a = g.face_area(0, 2.0, [1.0, 0.0, 0.0], [2.0, 3.0, 0.0], 2);
        assert!((a - 12.0 * std::f64::consts::PI).abs() < 1e-12);
        // Annulus between r=1 and 2.
        let a = g.face_area(1, 0.0, [1.0, 0.0, 0.0], [2.0, 3.0, 0.0], 2);
        assert!((a - 3.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn cylindrical_volume_sums_to_disk() {
        // Sum of shell volumes over a radial partition = full cylinder.
        let g = Geometry::CylindricalRZ;
        let mut total = 0.0;
        for i in 0..10 {
            let r0 = i as f64 * 0.1;
            total += g.cell_volume([r0, 0.0, 0.0], [r0 + 0.1, 1.0, 0.0], 2);
        }
        assert!((total - std::f64::consts::PI).abs() < 1e-12);
    }
}
