//! Guard-cell filling, restriction, and prolongation.
//!
//! PARAMESH's `amr_guardcell` fills every block's guard layers from
//! same-level neighbors (direct copy), finer neighbors (restriction — via
//! the neighbor's parent node, which holds restricted data), coarser
//! neighbors (monotone linear prolongation), and the physical boundary
//! conditions. Fill order is coarse → fine so prolongation sources are
//! always current.
//!
//! The exchange kernels are written in pack/apply form: `pack_restrict`,
//! `pack_copy_same`, and `pack_prolong` read the source data immutably and
//! emit `(destination slab offset, value)` pairs through a sink. The serial
//! [`fill_guardcells`] stages those pairs into a scratch vector and applies
//! them block by block; the parallel exchange in `Domain::fill_guardcells`
//! stages them into per-rank buffers between two pool barriers. Both paths
//! run the *same* arithmetic in the same order per destination block, which
//! is what makes the parallel fill bit-identical to the serial one.

use crate::block::{BlockId, BlockState, MortonKey};
use crate::tree::{BoundaryCondition, Neighbor, Tree};
use crate::unk::{Region, UnkCells, UnkGeom, UnkStorage};
use crate::vars::{VELX, VELY, VELZ};

/// minmod slope limiter.
#[inline]
fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Prolongate the parent's interior into child `c`'s interior
/// (conservative, minmod-limited linear; one-sided slopes at the parent's
/// interior edges so stale parent guards are never read).
pub fn prolong_interior(
    tree: &Tree,
    unk: &mut UnkStorage,
    parent: BlockId,
    child: BlockId,
    c: usize,
) {
    let cfg = tree.config();
    let ng = cfg.nguard;
    let nxb = cfg.nxb;
    let half = nxb / 2;
    let (ox, oy, oz) = (c & 1, (c >> 1) & 1, (c >> 2) & 1);
    let pb = parent.idx();
    let cb = child.idx();

    // Limited slope of var at parent interior cell (pi, pj, pk) along axis,
    // using one-sided differences at the interior edge.
    let slope = |unk: &UnkStorage, var: usize, p: [usize; 3], axis: usize| -> f64 {
        let lo = ng;
        let hi = ng + nxb - 1;
        let at = |q: [usize; 3]| unk.get(var, q[0], q[1], q[2], pb);
        let mut m = p;
        let mut pl = p;
        if p[axis] == lo {
            m[axis] += 1;
            let d = at(m) - at(p);
            return d;
        }
        if p[axis] == hi {
            pl[axis] -= 1;
            return at(p) - at(pl);
        }
        m[axis] += 1;
        pl[axis] -= 1;
        minmod(at(m) - at(p), at(p) - at(pl))
    };

    let kr = unk.interior_k().collect::<Vec<_>>();
    for var in 0..cfg.nvar {
        for &k in &kr {
            for j in unk.interior() {
                for i in unk.interior() {
                    let (fi, fj) = (i - ng, j - ng);
                    let fk = if cfg.ndim == 3 { k - ng } else { 0 };
                    let p = [
                        ng + ox * half + fi / 2,
                        ng + oy * half + fj / 2,
                        if cfg.ndim == 3 { ng + oz * half + fk / 2 } else { 0 },
                    ];
                    let base = unk.get(var, p[0], p[1], p[2], pb);
                    let mut v = base;
                    let fracs = [fi & 1, fj & 1, fk & 1];
                    for (axis, &frac) in fracs.iter().enumerate().take(cfg.ndim) {
                        let s = slope(unk, var, p, axis);
                        let off = if frac == 0 { -0.25 } else { 0.25 };
                        v += s * off;
                    }
                    unk.set(var, i, j, k, cb, v);
                }
            }
        }
    }
}

/// Emit the restriction of child `c`'s interior (its slab, passed
/// directly) into the corresponding quadrant/octant of the parent:
/// `sink(offset_in_parent_slab, value)`. Reads only the child slab, so
/// every restriction at one tree level can run concurrently.
pub(crate) fn pack_restrict(
    geom: &UnkGeom,
    child: &[f64],
    c: usize,
    sink: &mut dyn FnMut(usize, f64),
) {
    let ng = geom.nguard;
    let nxb = geom.nxb;
    let half = nxb / 2;
    let (ox, oy, oz) = (c & 1, (c >> 1) & 1, (c >> 2) & 1);
    let kcells = if geom.ndim == 3 { half } else { 1 };
    let weight = 1.0 / (1 << geom.ndim) as f64;

    for var in 0..geom.nvar {
        for pk in 0..kcells {
            for pj in 0..half {
                for pi in 0..half {
                    let mut sum = 0.0;
                    let kk = if geom.ndim == 3 { 2 } else { 1 };
                    for dk in 0..kk {
                        for dj in 0..2 {
                            for di in 0..2 {
                                let ci = ng + 2 * pi + di;
                                let cj = ng + 2 * pj + dj;
                                let ck = if geom.ndim == 3 { ng + 2 * pk + dk } else { 0 };
                                sum += child[geom.slab_idx(var, ci, cj, ck)];
                            }
                        }
                    }
                    let p = [
                        ng + ox * half + pi,
                        ng + oy * half + pj,
                        if geom.ndim == 3 { ng + oz * half + pk } else { 0 },
                    ];
                    sink(geom.slab_idx(var, p[0], p[1], p[2]), sum * weight);
                }
            }
        }
    }
}

/// Restrict child `c`'s interior into the corresponding quadrant/octant of
/// the parent's interior (plain averaging — conservative for cell means).
pub fn restrict_interior(
    tree: &Tree,
    unk: &mut UnkStorage,
    child: BlockId,
    parent: BlockId,
    c: usize,
) {
    let _ = tree;
    let mut staged: Vec<(usize, f64)> = Vec::new();
    let geom = unk.geom();
    pack_restrict(&geom, unk.block_slab(child.idx()), c, &mut |off, v| {
        staged.push((off, v))
    });
    let slab = unk.block_slab_mut(parent.idx());
    for (off, v) in staged {
        slab[off] = v;
    }
}

/// Per-axis destination range of the guard region in direction `d`.
fn guard_range(ng: usize, nxb: usize, da: i32, axis_is_k_in_2d: bool) -> std::ops::Range<usize> {
    if axis_is_k_in_2d {
        return 0..1;
    }
    match da {
        -1 => 0..ng,
        0 => ng..ng + nxb,
        1 => ng + nxb..2 * ng + nxb,
        _ => unreachable!(),
    }
}

/// Fill every active block's guard cells. Restriction of leaf data into
/// parent nodes happens first so same-level copies from "virtual" coarse
/// data work; then blocks are filled coarse → fine.
///
/// This is the serial reference path (and the `nranks == 1` path of
/// `Domain::fill_guardcells`); it shares its pack kernels with the parallel
/// two-phase exchange, so the two produce bit-identical results.
pub fn fill_guardcells(tree: &Tree, unk: &mut UnkStorage) {
    let mut staged: Vec<(usize, f64)> = Vec::new();

    // 1. Restrict into parents, deepest parents first.
    let mut parents: Vec<BlockId> = (0..unk.max_blocks() as u32)
        .map(BlockId)
        .filter(|id| tree.block(*id).state == BlockState::Parent)
        .collect();
    parents.sort_by_key(|id| std::cmp::Reverse(tree.block(*id).key.level));
    for pid in parents {
        restrict_into_parent(tree, unk, pid, &mut staged);
    }

    // 2. Fill guards, coarse levels first.
    let mut active: Vec<BlockId> = (0..unk.max_blocks() as u32)
        .map(BlockId)
        .filter(|id| tree.block(*id).state != BlockState::Free)
        .collect();
    active.sort_by_key(|id| tree.block(*id).key.level);

    let geom = unk.geom();
    let dirs = tree.config().neighbor_dirs();
    for &id in &active {
        // Non-boundary directions first; boundary fills may read guards the
        // neighbor copies produced (e.g. corners at a wall).
        staged.clear();
        for &d in &dirs {
            match tree.neighbor(id, d) {
                Neighbor::Same(nid) => {
                    pack_copy_same(&geom, unk.block_slab(nid.idx()), d, &mut |off, v| {
                        staged.push((off, v))
                    })
                }
                Neighbor::Coarser(nid) => pack_prolong(
                    &geom,
                    tree.block(id).key,
                    unk.block_slab(nid.idx()),
                    d,
                    &mut |off, v| staged.push((off, v)),
                ),
                Neighbor::Boundary => {}
            }
        }
        let slab = unk.block_slab_mut(id.idx());
        for &(off, v) in &staged {
            slab[off] = v;
        }
        for &d in &dirs {
            if tree.neighbor(id, d) == Neighbor::Boundary {
                fill_boundary_slab(tree, &geom, id, d, slab);
            }
        }
    }
}

/// Restrict all of `pid`'s children into it, using `staged` as scratch.
pub(crate) fn restrict_into_parent(
    tree: &Tree,
    unk: &mut UnkStorage,
    pid: BlockId,
    staged: &mut Vec<(usize, f64)>,
) {
    staged.clear();
    let meta = tree.block(pid);
    let Some(children) = meta.children else {
        return; // leaf: nothing to restrict
    };
    let geom = unk.geom();
    for (c, &cid) in children.iter().enumerate().take(meta.n_children as usize) {
        pack_restrict(&geom, unk.block_slab(cid.idx()), c, &mut |off, v| {
            staged.push((off, v))
        });
    }
    let slab = unk.block_slab_mut(pid.idx());
    for &(off, v) in staged.iter() {
        slab[off] = v;
    }
}

/// Restrict all of `pid`'s children into its interior through a raw
/// [`UnkCells`] view — the task-graph form of [`restrict_into_parent`].
/// Runs the same kernels in the same child order, so the values written are
/// bit-identical to the serial downward pass.
///
/// # Safety
/// The caller's task must have exclusive access to `pid`'s slab and shared
/// access to every child slab for the duration of the call (i.e. graph
/// edges order it after all child writers and around all other `pid`
/// access).
pub unsafe fn restrict_parent_cells(
    tree: &Tree,
    geom: &UnkGeom,
    cells: &UnkCells,
    pid: BlockId,
    staged: &mut Vec<(usize, f64)>,
) {
    staged.clear();
    let meta = tree.block(pid);
    let Some(children) = meta.children else {
        return;
    };
    for (c, &cid) in children.iter().enumerate().take(meta.n_children as usize) {
        // SAFETY: shared child access is the caller's contract;
        // pack_restrict samples only the child's interior.
        let child = unsafe { cells.read_slab(cid.idx(), Region::Interior) };
        pack_restrict(geom, child, c, &mut |off, v| staged.push((off, v)));
    }
    // SAFETY: exclusive parent access is the caller's contract; restriction
    // lands only in the parent's interior.
    let slab = unsafe { cells.write_slab(pid.idx(), Region::Interior, None) };
    for &(off, v) in staged.iter() {
        slab[off] = v;
    }
}

/// Pack every neighbor-sourced guard value of block `id` into `staged` as
/// `(own-slab offset, value)` pairs, reading neighbor slabs through a raw
/// [`UnkCells`] view. Directions are visited in `dirs` order — the same
/// order the serial fill uses — so the staged sequence (and therefore the
/// last-write-wins result of unpacking) is identical to the serial path.
///
/// # Safety
/// The caller's task must have shared access to every neighbor slab of
/// `id`: graph edges must order it after the relevant restriction /
/// coarse-fill writers and outside any concurrent writer of those slabs.
pub unsafe fn pack_block_cells(
    tree: &Tree,
    geom: &UnkGeom,
    cells: &UnkCells,
    id: BlockId,
    dirs: &[[i32; 3]],
    staged: &mut Vec<(usize, f64)>,
) {
    staged.clear();
    for &d in dirs {
        match tree.neighbor(id, d) {
            Neighbor::Same(nid) => {
                // SAFETY: shared neighbor access is the caller's contract;
                // a same-level copy reads only the source interior.
                let src = unsafe { cells.read_slab(nid.idx(), Region::Interior) };
                pack_copy_same(geom, src, d, &mut |off, v| staged.push((off, v)));
            }
            Neighbor::Coarser(nid) => {
                // SAFETY: as above; prolongation also samples the coarse
                // neighbor's guards, so the claim is the full slab.
                let src = unsafe { cells.read_slab(nid.idx(), Region::Full) };
                pack_prolong(geom, tree.block(id).key, src, d, &mut |off, v| {
                    staged.push((off, v))
                });
            }
            Neighbor::Boundary => {}
        }
    }
}

/// Apply a staged guard pack to block `id`'s own slab and then run the
/// physical boundary conditions, in `dirs` order — the unpack half of
/// [`pack_block_cells`], writing exactly what the serial fill writes.
///
/// # Safety
/// The caller's task must have exclusive access to `id`'s slab (graph
/// edges order it after the matching pack and around every other access).
pub unsafe fn unpack_block_cells(
    tree: &Tree,
    geom: &UnkGeom,
    cells: &UnkCells,
    id: BlockId,
    dirs: &[[i32; 3]],
    staged: &[(usize, f64)],
) {
    // SAFETY: exclusive own-slab access is the caller's contract; the
    // staged pairs and boundary fills write only guards, reading the
    // interior for the physical boundary mirrors.
    let slab = unsafe { cells.write_slab(id.idx(), Region::Guards, Some(Region::Interior)) };
    for &(off, v) in staged {
        slab[off] = v;
    }
    for &d in dirs {
        if tree.neighbor(id, d) == Neighbor::Boundary {
            fill_boundary_slab(tree, geom, id, d, slab);
        }
    }
}

/// Emit the guard region of the destination block in direction `d` copied
/// from the same-level source block's slab (interior shifted by one
/// block): `sink(offset_in_dst_slab, value)`. Reads only `src`'s interior.
pub(crate) fn pack_copy_same(
    geom: &UnkGeom,
    src: &[f64],
    d: [i32; 3],
    sink: &mut dyn FnMut(usize, f64),
) {
    let nxb = geom.nxb as i64;
    let ri = guard_range(geom.nguard, geom.nxb, d[0], false);
    let rj = guard_range(geom.nguard, geom.nxb, d[1], false);
    let rk = guard_range(geom.nguard, geom.nxb, d[2], geom.ndim == 2);
    for var in 0..geom.nvar {
        for k in rk.clone() {
            let sk = if geom.ndim == 3 {
                (k as i64 - d[2] as i64 * nxb) as usize
            } else {
                0
            };
            for j in rj.clone() {
                let sj = (j as i64 - d[1] as i64 * nxb) as usize;
                for i in ri.clone() {
                    let si = (i as i64 - d[0] as i64 * nxb) as usize;
                    sink(geom.slab_idx(var, i, j, k), src[geom.slab_idx(var, si, sj, sk)]);
                }
            }
        }
    }
}

/// Emit the prolongated guard region of the fine destination block (whose
/// Morton key is `key`) in direction `d` from its coarser neighbor's slab:
/// `sink(offset_in_dst_slab, value)`. Reads only `src` (one level coarser —
/// already fully filled when the exchange proceeds coarse → fine).
pub(crate) fn pack_prolong(
    geom: &UnkGeom,
    key: MortonKey,
    src: &[f64],
    d: [i32; 3],
    sink: &mut dyn FnMut(usize, f64),
) {
    let ng = geom.nguard as i64;
    let nxb = geom.nxb as i64;
    let halves = [
        (key.ix & 1) as i64,
        (key.iy & 1) as i64,
        (key.iz & 1) as i64,
    ];
    let ri = guard_range(geom.nguard, geom.nxb, d[0], false);
    let rj = guard_range(geom.nguard, geom.nxb, d[1], false);
    let rk = guard_range(geom.nguard, geom.nxb, d[2], geom.ndim == 2);

    // Map a destination padded index to (source padded index, ±¼ offset).
    // The coarse source block's offset from the fine block's parent along
    // each axis follows from key arithmetic — for diagonal directions it
    // can be 0 even when d[axis] ≠ 0 (the guard region stays inside the
    // parent's column on that axis).
    let coords = [key.ix as i64, key.iy as i64, key.iz as i64];
    let padded_i = geom.ni;
    let ndim = geom.ndim;
    let map = move |axis: usize, idx: usize| -> (usize, f64) {
        if axis >= ndim {
            return (0, 0.0);
        }
        let f = idx as i64 - ng; // offset from fine block start
        let fp = halves[axis] * nxb + f; // in parent-block cell units
        let cp = fp.div_euclid(2); // coarse cell relative to parent start
        let r = fp.rem_euclid(2);
        let ia = coords[axis];
        let e = (ia + d[axis] as i64).div_euclid(2) - ia.div_euclid(2);
        let local = cp - e * nxb + ng;
        debug_assert!(
            local >= 1 && (local as usize) < padded_i - 1,
            "coarse source out of range: local={local}"
        );
        (local as usize, if r == 0 { -0.25 } else { 0.25 })
    };

    let slope = |var: usize, s: [usize; 3], axis: usize| -> f64 {
        let mut hi = s;
        let mut lo = s;
        hi[axis] += 1;
        lo[axis] -= 1;
        let vh = src[geom.slab_idx(var, hi[0], hi[1], hi[2])];
        let v0 = src[geom.slab_idx(var, s[0], s[1], s[2])];
        let vl = src[geom.slab_idx(var, lo[0], lo[1], lo[2])];
        minmod(vh - v0, v0 - vl)
    };

    for var in 0..geom.nvar {
        for k in rk.clone() {
            let (sk, ok) = map(2, k);
            for j in rj.clone() {
                let (sj, oj) = map(1, j);
                for i in ri.clone() {
                    let (si, oi) = map(0, i);
                    let s = [si, sj, sk];
                    let mut v = src[geom.slab_idx(var, si, sj, sk)];
                    let offs = [oi, oj, ok];
                    for (axis, &off) in offs.iter().enumerate().take(geom.ndim) {
                        v += slope(var, s, axis) * off;
                    }
                    sink(geom.slab_idx(var, i, j, k), v);
                }
            }
        }
    }
}

/// Apply the physical boundary condition to the guard region of `id` in
/// direction `d` (some axes of which may point at real neighbors; those are
/// handled by per-axis clamping into already-filled guard data). Operates on
/// the block's own slab only, so each rank can run it for the blocks it owns
/// once its staged neighbor data has been applied.
pub(crate) fn fill_boundary_slab(
    tree: &Tree,
    geom: &UnkGeom,
    id: BlockId,
    d: [i32; 3],
    slab: &mut [f64],
) {
    let cfg = tree.config();
    let ng = cfg.nguard as i64;
    let nxb = cfg.nxb as i64;
    let key = tree.block(id).key;
    let ri = guard_range(cfg.nguard, cfg.nxb, d[0], false);
    let rj = guard_range(cfg.nguard, cfg.nxb, d[1], false);
    let rk = guard_range(cfg.nguard, cfg.nxb, d[2], cfg.ndim == 2);

    // Is the block face in direction d[axis] on the physical boundary?
    let on_boundary = |axis: usize| -> bool {
        if axis >= cfg.ndim || d[axis] == 0 {
            return false;
        }
        let coord = [key.ix, key.iy, key.iz][axis] as i64;
        let extent = ((cfg.nroot[axis] as u64) << key.level) as i64;
        (d[axis] < 0 && coord == 0) || (d[axis] > 0 && coord == extent - 1)
    };

    // Per-axis source index + velocity sign for the BC.
    let map = |axis: usize, idx: usize| -> (usize, f64) {
        if axis >= cfg.ndim {
            return (idx, 1.0);
        }
        if !on_boundary(axis) {
            // Real data exists in this direction (already filled): read it.
            return (idx, 1.0);
        }
        let i = idx as i64;
        let side = if d[axis] < 0 { 0 } else { 1 };
        match cfg.bc_at(axis, side) {
            BoundaryCondition::Outflow => {
                let clamped = i.clamp(ng, ng + nxb - 1);
                (clamped as usize, 1.0)
            }
            BoundaryCondition::Reflecting => {
                // Mirror across the face: guard t maps to interior t-mirrored.
                let m = if d[axis] < 0 {
                    2 * ng - 1 - i
                } else {
                    2 * (ng + nxb) - 1 - i
                };
                (m as usize, -1.0)
            }
            BoundaryCondition::Periodic => {
                // A purely periodic face never reaches here — `neighbor`
                // wraps it. Only mixed corners do (periodic along this
                // axis, a wall along another): the wrapped neighbor's copy
                // already filled this guard column in the earlier staging
                // pass, so read it in place and let the wall axis mirror it.
                (idx, 1.0)
            }
        }
    };

    let vel_var = [VELX, VELY, VELZ];
    for var in 0..cfg.nvar {
        for k in rk.clone() {
            let (sk, fk) = if cfg.ndim == 3 { map(2, k) } else { (0, 1.0) };
            for j in rj.clone() {
                let (sj, fj) = map(1, j);
                for i in ri.clone() {
                    let (si, fi) = map(0, i);
                    let mut v = slab[geom.slab_idx(var, si, sj, sk)];
                    // Flip the normal velocity component on reflection.
                    for axis in 0..cfg.ndim {
                        if var == vel_var[axis] {
                            let f = [fi, fj, fk][axis];
                            v *= f;
                        }
                    }
                    slab[geom.slab_idx(var, i, j, k)] = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Mark, MeshConfig};
    use crate::vars::{DENS, VELX};
    use rflash_hugepages::Policy;
    use std::collections::HashMap;

    fn linear_fill(tree: &Tree, unk: &mut UnkStorage, f: impl Fn([f64; 3]) -> f64) {
        for id in tree.leaves() {
            for k in unk.interior_k() {
                for j in unk.interior() {
                    for i in unk.interior() {
                        let x = tree.cell_center(id, i, j, k);
                        unk.set(DENS, i, j, k, id.idx(), f(x));
                    }
                }
            }
        }
    }

    /// Check DENS guard cells of every leaf against the analytic field
    /// (interior-covered guards only — physical boundaries use outflow and
    /// won't match a linear function).
    fn check_guards(tree: &Tree, unk: &UnkStorage, f: impl Fn([f64; 3]) -> f64, tol: f64) {
        let cfg = tree.config();
        for id in tree.leaves() {
            let (ni, nj, nk) = unk.padded();
            for k in 0..nk {
                for j in 0..nj {
                    for i in 0..ni {
                        let interior = unk.interior().contains(&i)
                            && unk.interior().contains(&j)
                            && (cfg.ndim == 2 || unk.interior().contains(&k));
                        if interior {
                            continue;
                        }
                        let x = tree.cell_center(id, i, j, k);
                        // Skip guards outside the physical domain, and
                        // guards near it: a coarse prolongation source whose
                        // limiter stencil touches an outflow-clamped guard
                        // correctly flattens to first order there.
                        let inside = (0..cfg.ndim).all(|a| {
                            let coarse_dx = (cfg.domain_hi[a] - cfg.domain_lo[a])
                                / (cfg.nroot[a] * cfg.nxb) as f64;
                            let margin = 3.0 * coarse_dx;
                            x[a] > cfg.domain_lo[a] + margin
                                && x[a] < cfg.domain_hi[a] - margin
                        });
                        if !inside {
                            continue;
                        }
                        let got = unk.get(DENS, i, j, k, id.idx());
                        let want = f(x);
                        assert!(
                            (got - want).abs() <= tol * want.abs().max(1.0),
                            "leaf {id:?} guard ({i},{j},{k}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_same_level_copy_is_exact() {
        let mut cfg = MeshConfig::test_2d();
        cfg.nroot = [2, 2, 1];
        let tree = Tree::new(cfg);
        let mut unk = tree.make_unk(Policy::None);
        let f = |x: [f64; 3]| 1.0 + 2.0 * x[0] + 3.0 * x[1];
        linear_fill(&tree, &mut unk, f);
        fill_guardcells(&tree, &mut unk);
        check_guards(&tree, &unk, f, 1e-12);
    }

    #[test]
    fn fine_coarse_guards_reproduce_linear_fields() {
        // Refine one quadrant: the fine/coarse interfaces must still
        // reproduce a linear field exactly (linear prolongation + averaging
        // restriction are exact on linear data away from limiter kicks).
        let mut cfg = MeshConfig::test_2d();
        cfg.nroot = [2, 2, 1];
        let mut tree = Tree::new(cfg);
        let mut unk = tree.make_unk(Policy::None);
        let first = tree.leaves()[0];
        let mut marks = HashMap::new();
        marks.insert(first, Mark::Refine);
        tree.adapt(&mut unk, &marks);
        assert!(tree.leaves().len() > 4);

        let f = |x: [f64; 3]| 1.0 + 2.0 * x[0] + 3.0 * x[1];
        linear_fill(&tree, &mut unk, f);
        fill_guardcells(&tree, &mut unk);
        check_guards(&tree, &unk, f, 1e-10);
    }

    #[test]
    fn three_d_guard_fill_linear() {
        let mut cfg = MeshConfig::test_2d();
        cfg.ndim = 3;
        cfg.nroot = [2, 2, 2];
        cfg.max_blocks = 128;
        let tree = Tree::new(cfg);
        let mut unk = tree.make_unk(Policy::None);
        let f = |x: [f64; 3]| 0.5 + x[0] + 2.0 * x[1] - x[2];
        linear_fill(&tree, &mut unk, f);
        fill_guardcells(&tree, &mut unk);
        check_guards(&tree, &unk, f, 1e-12);
    }

    #[test]
    fn outflow_boundary_copies_edge_values() {
        let tree = Tree::new(MeshConfig::test_2d());
        let mut unk = tree.make_unk(Policy::None);
        let id = tree.leaves()[0];
        linear_fill(&tree, &mut unk, |x| 1.0 + x[0]);
        fill_guardcells(&tree, &mut unk);
        let ng = tree.config().nguard;
        // -x guards equal the first interior column's value.
        let edge = unk.get(DENS, ng, ng + 2, 0, id.idx());
        for i in 0..ng {
            assert_eq!(unk.get(DENS, i, ng + 2, 0, id.idx()), edge);
        }
    }

    #[test]
    fn reflecting_boundary_flips_normal_velocity() {
        let mut cfg = MeshConfig::test_2d();
        cfg.bc = BoundaryCondition::Reflecting;
        let tree = Tree::new(cfg);
        let mut unk = tree.make_unk(Policy::None);
        let id = tree.leaves()[0];
        let ng = tree.config().nguard;
        for j in unk.interior() {
            for i in unk.interior() {
                unk.set(VELX, i, j, 0, id.idx(), 3.0);
                unk.set(DENS, i, j, 0, id.idx(), 2.0);
            }
        }
        fill_guardcells(&tree, &mut unk);
        // VELX mirrors with a sign flip in the x guards…
        assert_eq!(unk.get(VELX, ng - 1, ng, 0, id.idx()), -3.0);
        // …but not in the y guards (tangential there).
        assert_eq!(unk.get(VELX, ng, ng - 1, 0, id.idx()), 3.0);
        // Scalars mirror unchanged.
        assert_eq!(unk.get(DENS, ng - 1, ng, 0, id.idx()), 2.0);
    }

    #[test]
    fn periodic_guards_wrap_values() {
        let mut cfg = MeshConfig::test_2d();
        cfg.bc = BoundaryCondition::Periodic;
        cfg.nroot = [2, 1, 1];
        let tree = Tree::new(cfg);
        let mut unk = tree.make_unk(Policy::None);
        let left = tree.leaves()[0];
        let right = tree.leaves()[1];
        let ng = tree.config().nguard;
        for j in unk.interior() {
            for i in unk.interior() {
                unk.set(DENS, i, j, 0, left.idx(), 1.0);
                unk.set(DENS, i, j, 0, right.idx(), 2.0);
            }
        }
        fill_guardcells(&tree, &mut unk);
        // Left block's -x guards wrap to the right block.
        assert_eq!(unk.get(DENS, ng - 1, ng, 0, left.idx()), 2.0);
        assert_eq!(unk.get(DENS, ng + tree.config().nxb, ng, 0, right.idx()), 1.0);
    }

    /// Mixed corners — periodic along x, walls along y — must compose: the
    /// corner guard is the y-mirror of the x-wrapped neighbor's column
    /// (regression for the Rayleigh–Taylor channel topology).
    #[test]
    fn periodic_x_reflecting_y_corners_compose() {
        let mut cfg = MeshConfig::test_2d();
        cfg.bc = BoundaryCondition::Periodic;
        cfg.bc_faces[1] = [
            Some(BoundaryCondition::Reflecting),
            Some(BoundaryCondition::Reflecting),
        ];
        cfg.nroot = [2, 1, 1];
        let tree = Tree::new(cfg);
        let mut unk = tree.make_unk(Policy::None);
        let left = tree.leaves()[0];
        let right = tree.leaves()[1];
        let ng = tree.config().nguard;
        for j in unk.interior() {
            for i in unk.interior() {
                unk.set(DENS, i, j, 0, left.idx(), 1.0);
                unk.set(VELY, i, j, 0, left.idx(), 5.0);
                unk.set(DENS, i, j, 0, right.idx(), 2.0);
                unk.set(VELY, i, j, 0, right.idx(), 7.0);
            }
        }
        fill_guardcells(&tree, &mut unk);
        // Left block's lower-left corner guard: x wraps to the right block,
        // y mirrors off the wall. Scalars copy, normal velocity flips.
        assert_eq!(unk.get(DENS, ng - 1, ng - 1, 0, left.idx()), 2.0);
        assert_eq!(unk.get(VELY, ng - 1, ng - 1, 0, left.idx()), -7.0);
        // Face guards stay pure: x face wraps, y face mirrors in place.
        assert_eq!(unk.get(DENS, ng - 1, ng, 0, left.idx()), 2.0);
        assert_eq!(unk.get(VELY, ng, ng - 1, 0, left.idx()), -5.0);
    }

    #[test]
    fn restriction_is_conservative_sum() {
        let mut cfg = MeshConfig::test_2d();
        let mut tree = Tree::new(cfg);
        let mut unk = tree.make_unk(Policy::None);
        let root = tree.leaves()[0];
        let children = tree.refine_block(root, &mut unk);
        // Random-ish child data.
        for (n, id) in children[..4].iter().enumerate() {
            for j in unk.interior() {
                for i in unk.interior() {
                    unk.set(DENS, i, j, 0, id.idx(), (n + 1) as f64 + (i * j) as f64 * 0.01);
                }
            }
        }
        let fine_mean: f64 = {
            let mut sum = 0.0;
            let mut count = 0;
            for id in &children[..4] {
                for j in unk.interior() {
                    for i in unk.interior() {
                        sum += unk.get(DENS, i, j, 0, id.idx());
                        count += 1;
                    }
                }
            }
            sum / count as f64
        };
        fill_guardcells(&tree, &mut unk);
        let coarse_mean: f64 = {
            let mut sum = 0.0;
            let mut count = 0;
            for j in unk.interior() {
                for i in unk.interior() {
                    sum += unk.get(DENS, i, j, 0, root.idx());
                    count += 1;
                }
            }
            sum / count as f64
        };
        assert!((fine_mean - coarse_mean).abs() < 1e-12);
        cfg.ndim = 2; // silence unused-mut lint path
        let _ = cfg;
    }

    #[test]
    fn prolongation_is_monotone_at_jumps() {
        // A step function must not overshoot under limited prolongation.
        let mut tree = Tree::new(MeshConfig::test_2d());
        let mut unk = tree.make_unk(Policy::None);
        let root = tree.leaves()[0];
        for j in unk.interior() {
            for i in unk.interior() {
                let v = if i < unk.interior().start + 4 { 1.0 } else { 10.0 };
                unk.set(DENS, i, j, 0, root.idx(), v);
            }
        }
        tree.refine_block(root, &mut unk);
        for id in tree.leaves() {
            for j in unk.interior() {
                for i in unk.interior() {
                    let v = unk.get(DENS, i, j, 0, id.idx());
                    assert!(
                        (0.999..=10.001).contains(&v),
                        "overshoot {v} at ({i},{j}) of {id:?}"
                    );
                }
            }
        }
    }
}
