//! Flux registers: conservation at fine–coarse boundaries.
//!
//! PARAMESH's `amr_flux_conserve`: when a coarse block face abuts finer
//! blocks, the coarse update must use the (area-weighted) sum of the fine
//! interface fluxes, or mass/momentum/energy leak at every jump in
//! refinement. Kernels record their per-area boundary-face fluxes here
//! during a sweep; [`FluxRegister::corrections`] then yields, per coarse
//! face cell, the difference `⟨F_fine⟩ − F_coarse` the solver applies to
//! the face-adjacent coarse zones.

use crate::block::{BlockId, BlockState};
use crate::tree::{Neighbor, Tree};

/// One block face: axis 0..ndim, side 0 = low, 1 = high.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Face {
    pub axis: usize,
    pub side: usize,
}

impl Face {
    fn index(self) -> usize {
        self.axis * 2 + self.side
    }

    /// The direction vector pointing out of the block through this face.
    pub fn outward(self) -> [i32; 3] {
        let mut d = [0i32; 3];
        d[self.axis] = if self.side == 0 { -1 } else { 1 };
        d
    }
}

/// A flux mismatch at one coarse face cell.
#[derive(Clone, Copy, Debug)]
pub struct Correction {
    /// The coarse block to correct.
    pub block: BlockId,
    pub face: Face,
    /// Face-plane cell coordinates (interior-relative, 0-based; the second
    /// entry is 0 in 2-d).
    pub cell: [usize; 2],
    pub channel: usize,
    /// ⟨F_fine⟩ − F_coarse (per-area flux difference).
    pub delta: f64,
}

/// Boundary-face flux storage for every block slot.
pub struct FluxRegister {
    nxb: usize,
    ndim: usize,
    nflux: usize,
    face_cells: usize,
    /// `[blk][face][cell][channel]`, flattened.
    data: Vec<f64>,
    /// Whether a face was written this sweep (skip stale data).
    written: Vec<bool>,
}

impl FluxRegister {
    /// Allocate storage for every block slot's boundary faces.
    pub fn new(ndim: usize, nxb: usize, nflux: usize, max_blocks: usize) -> FluxRegister {
        assert!(ndim == 2 || ndim == 3);
        let face_cells = if ndim == 3 { nxb * nxb } else { nxb };
        FluxRegister {
            nxb,
            ndim,
            nflux,
            face_cells,
            data: vec![0.0; max_blocks * 2 * ndim * face_cells * nflux],
            written: vec![false; max_blocks * 2 * ndim],
        }
    }

    /// Number of flux channels per face cell.
    pub fn nflux(&self) -> usize {
        self.nflux
    }

    /// Forget all recorded fluxes (start of a sweep).
    pub fn clear(&mut self) {
        self.written.fill(false);
    }

    #[inline]
    fn slot(&self, blk: usize, face: Face, cell: [usize; 2], channel: usize) -> usize {
        debug_assert!(face.axis < self.ndim);
        debug_assert!(cell[0] < self.nxb);
        debug_assert!(channel < self.nflux);
        let cell_idx = cell[0] + self.nxb * cell[1];
        ((blk * 2 * self.ndim + face.index()) * self.face_cells + cell_idx) * self.nflux + channel
    }

    /// Record the per-area flux of `channel` through `face` of block `blk`
    /// at face cell `cell`.
    #[inline]
    pub fn save(&mut self, blk: usize, face: Face, cell: [usize; 2], channel: usize, flux: f64) {
        let s = self.slot(blk, face, cell, channel);
        self.data[s] = flux;
        self.written[blk * 2 * self.ndim + face.index()] = true;
    }

    #[inline]
    /// Read a stored per-area flux.
    pub fn get(&self, blk: usize, face: Face, cell: [usize; 2], channel: usize) -> f64 {
        self.data[self.slot(blk, face, cell, channel)]
    }

    fn face_written(&self, blk: usize, face: Face) -> bool {
        self.written[blk * 2 * self.ndim + face.index()]
    }

    /// Compute the corrections for every coarse leaf face that abuts finer
    /// blocks. The finer side is found through the same-level parent node;
    /// fine fluxes come from its children's opposing faces.
    pub fn corrections(&self, tree: &Tree) -> Vec<Correction> {
        let mut out = Vec::new();
        for id in tree.leaves() {
            corrections_for_leaf(
                tree,
                id,
                self.ndim,
                self.nxb,
                self.nflux,
                None,
                &mut |b, f, c, ch| self.get(b, f, c, ch),
                &mut |b, f| self.face_written(b, f),
                &mut out,
            );
        }
        out
    }

    /// Raw view for task-graph sweeps: every (block, face) flux row is
    /// touched by exactly one sweep task, and the graph's flux-row resource
    /// edges order each row's writer before its correction readers.
    pub fn cells(&mut self) -> FluxCells {
        FluxCells {
            data: self.data.as_mut_ptr(),
            written: self.written.as_mut_ptr(),
            nxb: self.nxb,
            ndim: self.ndim,
            nflux: self.nflux,
            face_cells: self.face_cells,
            max_blocks: self.written.len() / (2 * self.ndim),
        }
    }
}

/// One leaf's share of [`FluxRegister::corrections`], with the identical
/// loop structure — the serial output restricted to `id` (and optionally to
/// one `axis`) is exactly what this emits, in the same order, which is what
/// makes per-block graph corrections bit-identical to the barrier path.
#[allow(clippy::too_many_arguments)]
fn corrections_for_leaf(
    tree: &Tree,
    id: BlockId,
    ndim: usize,
    nxb: usize,
    nflux: usize,
    axis_filter: Option<usize>,
    get: &mut dyn FnMut(usize, Face, [usize; 2], usize) -> f64,
    written: &mut dyn FnMut(usize, Face) -> bool,
    out: &mut Vec<Correction>,
) {
    for axis in 0..ndim {
        if axis_filter.is_some_and(|a| a != axis) {
            continue;
        }
        for side in 0..2 {
            let face = Face { axis, side };
            let Neighbor::Same(nid) = tree.neighbor(id, face.outward()) else {
                continue;
            };
            if tree.block(nid).state != BlockState::Parent {
                continue; // same-level leaf: fluxes already agree
            }
            if !written(id.idx(), face) {
                continue;
            }
            // The children of `nid` that touch the shared face have
            // child offset (1 − side) along `axis`, and their
            // opposing face faces us.
            let opp = Face {
                axis,
                side: 1 - side,
            };
            let children = tree.block(nid).children.expect("parent");
            let nchild = tree.block(nid).n_children as usize;
            // Transverse axes (face-plane coordinates).
            let t_axes: Vec<usize> = (0..ndim).filter(|&a| a != axis).collect();
            let cells2 = if ndim == 3 { nxb } else { 1 };
            for c1 in 0..nxb {
                for c2 in 0..cells2 {
                    // Exactly one child covers coarse face cell
                    // (c1, c2); find it by its transverse halves.
                    for (ci, &cid) in children.iter().enumerate().take(nchild) {
                        let off = [(ci & 1), ((ci >> 1) & 1), ((ci >> 2) & 1)];
                        if off[axis] != 1 - side {
                            continue;
                        }
                        if c1 / (nxb / 2) != off[t_axes[0]] {
                            continue;
                        }
                        if let Some(&a2) = t_axes.get(1) {
                            if c2 / (nxb / 2) != off[a2] {
                                continue;
                            }
                        }
                        if !written(cid.idx(), opp) {
                            continue;
                        }
                        // Fine face cells covering coarse cell (c1, c2).
                        let f1 = (c1 % (nxb / 2)) * 2;
                        let f2 = if ndim == 3 { (c2 % (nxb / 2)) * 2 } else { 0 };
                        let fr2 = if ndim == 3 { 2 } else { 1 };
                        let n_faces = (2 * fr2) as f64;
                        for ch in 0..nflux {
                            let mut s = 0.0;
                            for d1 in 0..2 {
                                for d2 in 0..fr2 {
                                    s += get(cid.idx(), opp, [f1 + d1, f2 + d2], ch);
                                }
                            }
                            let coarse = get(id.idx(), face, [c1, c2], ch);
                            out.push(Correction {
                                block: id,
                                face,
                                cell: [c1, c2],
                                channel: ch,
                                delta: s / n_faces - coarse,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Raw, copyable view of a [`FluxRegister`] for task-graph execution. Each
/// (block, face) row is one graph resource: its sweep task is the only
/// writer, correction tasks are the readers, and the builder's edges
/// serialize them — the same discipline [`crate::unk::UnkCells`] relies on.
#[derive(Clone, Copy)]
pub struct FluxCells {
    data: *mut f64,
    written: *mut bool,
    nxb: usize,
    ndim: usize,
    nflux: usize,
    face_cells: usize,
    max_blocks: usize,
}

// SAFETY: the pointers span plain POD regions owned by the register this
// view was taken from; cross-thread discipline is the graph's edges.
unsafe impl Send for FluxCells {}
// SAFETY: as above.
unsafe impl Sync for FluxCells {}

impl FluxCells {
    #[inline]
    fn slot(&self, blk: usize, face: Face, cell: [usize; 2], channel: usize) -> usize {
        debug_assert!(face.axis < self.ndim);
        debug_assert!(cell[0] < self.nxb);
        debug_assert!(channel < self.nflux);
        debug_assert!(blk < self.max_blocks);
        let cell_idx = cell[0] + self.nxb * cell[1];
        ((blk * 2 * self.ndim + face.index()) * self.face_cells + cell_idx) * self.nflux + channel
    }

    #[inline]
    fn rmap(&self) -> crate::audit::ResourceMap {
        crate::audit::ResourceMap {
            max_blocks: self.max_blocks,
        }
    }

    /// Record a per-area flux, like [`FluxRegister::save`]. The write is
    /// recorded against the block's flux-row resource in the race-audit
    /// ledger.
    ///
    /// # Safety
    /// The calling task must be the only task touching block `blk`'s flux
    /// rows (graph edges make the sweep task each row's sole writer).
    #[inline]
    pub unsafe fn save(&self, blk: usize, face: Face, cell: [usize; 2], channel: usize, flux: f64) {
        crate::audit::rec_write(self.rmap().fluxrow(blk));
        let s = self.slot(blk, face, cell, channel);
        *self.data.add(s) = flux;
        *self.written.add(blk * 2 * self.ndim + face.index()) = true;
    }

    /// Corrections for one leaf along one axis, in the exact order the
    /// serial [`FluxRegister::corrections`] emits them for that leaf/axis.
    /// Every flux row probed is recorded as a read in the race-audit
    /// ledger.
    ///
    /// # Safety
    /// Graph edges must order the calling task after the sweep tasks of
    /// `id` and of every finer neighbor's child along `axis` (their rows
    /// are read here), with no concurrent writer of those rows.
    pub unsafe fn corrections_for(
        &self,
        tree: &Tree,
        id: BlockId,
        axis: usize,
        out: &mut Vec<Correction>,
    ) {
        let rm = self.rmap();
        corrections_for_leaf(
            tree,
            id,
            self.ndim,
            self.nxb,
            self.nflux,
            Some(axis),
            // SAFETY: row-shared read access is the caller's contract.
            &mut |b, f, c, ch| unsafe {
                crate::audit::rec_read(rm.fluxrow(b));
                *self.data.add(self.slot(b, f, c, ch))
            },
            // SAFETY: as above.
            &mut |b, f| unsafe {
                crate::audit::rec_read(rm.fluxrow(b));
                *self.written.add(b * 2 * self.ndim + f.index())
            },
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MeshConfig;
    use rflash_hugepages::Policy;

    #[test]
    fn save_get_round_trip() {
        let mut reg = FluxRegister::new(2, 8, 3, 16);
        let face = Face { axis: 0, side: 1 };
        reg.save(5, face, [3, 0], 2, 1.5);
        assert_eq!(reg.get(5, face, [3, 0], 2), 1.5);
        assert_eq!(reg.get(5, face, [3, 0], 0), 0.0);
        assert!(reg.face_written(5, face));
        reg.clear();
        assert!(!reg.face_written(5, face));
    }

    #[test]
    fn outward_directions() {
        assert_eq!(Face { axis: 0, side: 0 }.outward(), [-1, 0, 0]);
        assert_eq!(Face { axis: 1, side: 1 }.outward(), [0, 1, 0]);
    }

    #[test]
    fn matching_fluxes_produce_zero_corrections() {
        let mut tree = Tree::new(MeshConfig::test_2d());
        let mut unk = tree.make_unk(Policy::None);
        let root = tree.leaves()[0];
        let children = tree.refine_block(root, &mut unk);
        // Refine lower-left again so children[1] (lower-right, coarse) has a
        // finer -x neighbor.
        tree.refine_block(children[0], &mut unk);

        let nxb = tree.config().nxb;
        let mut reg = FluxRegister::new(2, nxb, 1, tree.config().max_blocks);
        // Uniform flux 2.0 on every face of every leaf.
        for id in tree.leaves() {
            for axis in 0..2 {
                for side in 0..2 {
                    for c in 0..nxb {
                        reg.save(id.idx(), Face { axis, side }, [c, 0], 0, 2.0);
                    }
                }
            }
        }
        let corr = reg.corrections(&tree);
        assert!(
            corr.iter().all(|c| c.delta.abs() < 1e-14),
            "uniform fluxes must not produce corrections"
        );
        // But corrections are generated for the coarse faces that touch
        // finer blocks.
        assert!(!corr.is_empty());
        assert!(corr.iter().all(|c| c.block == children[1] || c.block == children[2] || c.block == children[3]));
    }

    #[test]
    fn mismatched_fluxes_yield_mean_difference() {
        let mut tree = Tree::new(MeshConfig::test_2d());
        let mut unk = tree.make_unk(Policy::None);
        let root = tree.leaves()[0];
        let children = tree.refine_block(root, &mut unk);
        let grand = tree.refine_block(children[0], &mut unk);

        let nxb = tree.config().nxb;
        let mut reg = FluxRegister::new(2, nxb, 1, tree.config().max_blocks);
        // Coarse block children[1] reports 1.0 on its -x face.
        for c in 0..nxb {
            reg.save(children[1].idx(), Face { axis: 0, side: 0 }, [c, 0], 0, 1.0);
        }
        // The fine blocks on the other side (grand[1], grand[3], i.e. the
        // +x half of children[0]) report 3.0 on their +x faces.
        for g in [grand[1], grand[3]] {
            for c in 0..nxb {
                reg.save(g.idx(), Face { axis: 0, side: 1 }, [c, 0], 0, 3.0);
            }
        }
        let corr = reg.corrections(&tree);
        let ours: Vec<&Correction> = corr
            .iter()
            .filter(|c| c.block == children[1] && c.face.axis == 0 && c.face.side == 0)
            .collect();
        assert_eq!(ours.len(), nxb);
        for c in ours {
            assert!((c.delta - 2.0).abs() < 1e-14, "mean(3) − 1 = 2, got {}", c.delta);
        }
    }
}
