//! Refinement criterion: the Löhner second-derivative error estimator,
//! PARAMESH/FLASH's default (`RuntimeParameters`: `refine_var_*`,
//! `refine_cutoff`, `derefine_cutoff`).

use std::collections::HashMap;

use crate::block::BlockId;
use crate::tree::{Mark, Tree};
use crate::unk::UnkStorage;

/// Estimator configuration.
#[derive(Clone, Copy, Debug)]
pub struct LohnerConfig {
    /// Refine when the max error in a block exceeds this (FLASH: 0.8).
    pub refine_cutoff: f64,
    /// Derefine when the max error falls below this (FLASH: 0.2).
    pub derefine_cutoff: f64,
    /// Noise filter ε in the denominator (FLASH: 0.01).
    pub filter: f64,
}

impl Default for LohnerConfig {
    fn default() -> Self {
        LohnerConfig {
            refine_cutoff: 0.8,
            derefine_cutoff: 0.2,
            filter: 0.01,
        }
    }
}

/// Normalized second-derivative error of `var` at interior cell (i, j, k):
/// the 1-d Löhner ratio per axis, combined as the max over axes.
#[allow(clippy::too_many_arguments)]
fn cell_error(
    unk: &UnkStorage,
    var: usize,
    i: usize,
    j: usize,
    k: usize,
    blk: usize,
    filter: f64,
    ndim: usize,
) -> f64 {
    let mut worst: f64 = 0.0;
    for axis in 0..ndim {
        let at = |o: i32| -> f64 {
            let (mut ii, mut jj, mut kk) = (i as i32, j as i32, k as i32);
            match axis {
                0 => ii += o,
                1 => jj += o,
                _ => kk += o,
            }
            unk.get(var, ii as usize, jj as usize, kk as usize, blk)
        };
        let num = (at(1) - 2.0 * at(0) + at(-1)).abs();
        let den = (at(1) - at(0)).abs()
            + (at(0) - at(-1)).abs()
            + filter * (at(1).abs() + 2.0 * at(0).abs() + at(-1).abs());
        if den > 0.0 {
            worst = worst.max(num / den);
        }
    }
    worst
}

/// Evaluate the estimator on every leaf for each variable in `vars`
/// (guard cells must be filled) and produce adaptation marks.
pub fn lohner_marks(
    tree: &Tree,
    unk: &UnkStorage,
    vars: &[usize],
    config: &LohnerConfig,
) -> HashMap<BlockId, Mark> {
    let mut marks = HashMap::new();
    let ndim = tree.config().ndim;
    for id in tree.leaves() {
        let mut err: f64 = 0.0;
        for &var in vars {
            for k in unk.interior_k() {
                for j in unk.interior() {
                    for i in unk.interior() {
                        err = err.max(cell_error(unk, var, i, j, k, id.idx(), config.filter, ndim));
                    }
                }
            }
        }
        let mark = if err > config.refine_cutoff {
            Mark::Refine
        } else if err < config.derefine_cutoff {
            Mark::Derefine
        } else {
            Mark::Keep
        };
        marks.insert(id, mark);
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MeshConfig;
    use crate::vars::DENS;
    use rflash_hugepages::Policy;

    #[test]
    fn smooth_field_derefines_sharp_feature_refines() {
        let tree = Tree::new(MeshConfig::test_2d());
        let mut unk = tree.make_unk(Policy::None);
        let id = tree.leaves()[0];
        // Constant: zero error everywhere.
        for j in 0..unk.padded().1 {
            for i in 0..unk.padded().0 {
                unk.set(DENS, i, j, 0, id.idx(), 5.0);
            }
        }
        let marks = lohner_marks(&tree, &unk, &[DENS], &LohnerConfig::default());
        assert_eq!(marks[&id], Mark::Derefine);

        // A sharp step through the middle: must refine.
        for j in 0..unk.padded().1 {
            for i in 0..unk.padded().0 {
                let v = if i < unk.padded().0 / 2 { 1.0 } else { 100.0 };
                unk.set(DENS, i, j, 0, id.idx(), v);
            }
        }
        let marks = lohner_marks(&tree, &unk, &[DENS], &LohnerConfig::default());
        assert_eq!(marks[&id], Mark::Refine);
    }

    #[test]
    fn linear_gradient_is_not_refined() {
        // First derivatives alone must not trigger (that's the point of the
        // second-derivative estimator).
        let tree = Tree::new(MeshConfig::test_2d());
        let mut unk = tree.make_unk(Policy::None);
        let id = tree.leaves()[0];
        for j in 0..unk.padded().1 {
            for i in 0..unk.padded().0 {
                unk.set(DENS, i, j, 0, id.idx(), 1.0 + 10.0 * i as f64);
            }
        }
        let marks = lohner_marks(&tree, &unk, &[DENS], &LohnerConfig::default());
        assert_eq!(marks[&id], Mark::Derefine);
    }

    #[test]
    fn filter_suppresses_tiny_ripples() {
        let tree = Tree::new(MeshConfig::test_2d());
        let mut unk = tree.make_unk(Policy::None);
        let id = tree.leaves()[0];
        // 1e-10 ripples on a large background.
        for j in 0..unk.padded().1 {
            for i in 0..unk.padded().0 {
                let ripple = if i % 2 == 0 { 1e-10 } else { -1e-10 };
                unk.set(DENS, i, j, 0, id.idx(), 1.0e6 + ripple);
            }
        }
        let marks = lohner_marks(&tree, &unk, &[DENS], &LohnerConfig::default());
        assert_eq!(marks[&id], Mark::Derefine, "noise must not refine");
    }
}
