//! In-memory shadow snapshot of the leaf-block *interior* state for step
//! rollback.
//!
//! The step guardian (rflash-core) captures every leaf's interior zones
//! before a step is committed; if the evolved state fails physicality
//! validation the snapshot is copied back and the step retried. Guard
//! cells are deliberately **not** captured: every consumer refills them
//! deterministically from interiors before reading (each sweep, the flame
//! advance, and the regrid marker all start with a guard-cell fill, and
//! the dt/EOS/validation scans read interiors only), so restoring
//! interiors reproduces the forward evolution bit-exactly at 1/8th the
//! copy traffic of full padded slabs (16³ padded vs 8³ interior) — the
//! difference between a guardian that costs a few percent and one that
//! doesn't.
//!
//! The backing is a single [`PageBuffer`] riding the same huge-page
//! [`Policy`] — and therefore the same explicit degradation chain and
//! `AllocStats` accounting — as `unk` itself: a shadow of a
//! huge-page-backed container should not silently be a base-page
//! allocation, or the rollback path would have different TLB behavior
//! than the forward path it protects.
//!
//! The snapshot is keyed on [`Tree::epoch`]: a regrid between capture and
//! restore changes the block population, so the restore refuses (returns
//! `false`) rather than scattering stale zones onto the wrong blocks. The
//! guardian orders its work so that never happens (regrid runs only after
//! a committed step), but the invariant is enforced here, not assumed.
//!
//! [`Tree::epoch`]: crate::Tree::epoch

use crate::unk::{Layout, UnkGeom};
use crate::{BlockId, Domain};
use rflash_hugepages::{PageBuffer, Policy};

/// Walk the contiguous interior runs of one block slab in a fixed order,
/// yielding `(slab_offset, len)`. Both layouts keep an interior i-row
/// contiguous: `VarFirst` interleaves all variables within the row (runs
/// of `nvar · nxb`), `VarLast` keeps one variable per run (`nxb`).
fn for_each_interior_run(geom: &UnkGeom, mut f: impl FnMut(usize, usize)) {
    let ng = geom.nguard;
    let nxb = geom.nxb;
    let kr = if geom.ndim == 3 { ng..ng + nxb } else { 0..1 };
    match geom.layout {
        Layout::VarFirst => {
            for k in kr {
                for j in ng..ng + nxb {
                    f(geom.slab_idx(0, ng, j, k), geom.nvar * nxb);
                }
            }
        }
        Layout::VarLast => {
            for v in 0..geom.nvar {
                for k in kr.clone() {
                    for j in ng..ng + nxb {
                        f(geom.slab_idx(v, ng, j, k), nxb);
                    }
                }
            }
        }
    }
}

/// A reusable copy of all leaf interiors plus the bookkeeping to put them
/// back.
pub struct ShadowSnapshot {
    /// Backing store; grown (never shrunk) as the leaf population grows.
    buf: Option<PageBuffer<f64>>,
    policy: Policy,
    /// Leaves at capture time, in `Tree::leaves()` (Morton) order; packed
    /// segment `n` of `buf` belongs to `leaves[n]`.
    leaves: Vec<BlockId>,
    /// Interior doubles per block (`nvar · nxb² · nxb` in 3-d).
    per_block: usize,
    epoch: u64,
    valid: bool,
}

impl ShadowSnapshot {
    /// An empty snapshot that will allocate under `policy` on first capture.
    pub fn new(policy: Policy) -> ShadowSnapshot {
        ShadowSnapshot {
            buf: None,
            policy,
            leaves: Vec::new(),
            per_block: 0,
            epoch: 0,
            valid: false,
        }
    }

    /// Copy every leaf's interior zones out of `domain.unk`. Returns
    /// `false` (and marks the snapshot invalid) only if growing the
    /// backing store fails under every rung of the degradation chain —
    /// the guardian then runs that step unprotected rather than aborting
    /// a healthy simulation.
    pub fn capture(&mut self, domain: &Domain) -> bool {
        let geom = domain.unk.geom();
        let leaves = domain.tree.leaves();
        let nk = if geom.ndim == 3 { geom.nxb } else { 1 };
        let per_block = geom.nvar * geom.nxb * geom.nxb * nk;
        let need = (leaves.len() * per_block).max(1);
        if self.buf.as_ref().is_none_or(|b| b.len() < need) {
            match PageBuffer::<f64>::zeroed(need, self.policy) {
                Ok(b) => self.buf = Some(b),
                Err(_) => {
                    self.valid = false;
                    return false;
                }
            }
        }
        let Some(buf) = self.buf.as_mut() else {
            self.valid = false;
            return false;
        };
        let packed = buf.as_mut_slice();
        for (n, id) in leaves.iter().enumerate() {
            let slab = domain.unk.block_slab(id.idx());
            let mut pos = n * per_block;
            for_each_interior_run(&geom, |off, len| {
                packed[pos..pos + len].copy_from_slice(&slab[off..off + len]);
                pos += len;
            });
            debug_assert_eq!(pos, (n + 1) * per_block);
        }
        self.leaves = leaves;
        self.per_block = per_block;
        self.epoch = domain.tree.epoch();
        self.valid = true;
        true
    }

    /// Copy the captured interiors back onto their blocks. Guard cells are
    /// left as-is — consumers refill them from interiors before reading.
    /// Returns `false` without touching `unk` when there is nothing valid
    /// to restore or the tree topology changed since capture (epoch
    /// mismatch).
    pub fn restore(&self, domain: &mut Domain) -> bool {
        if !self.valid || domain.tree.epoch() != self.epoch {
            return false;
        }
        let Some(buf) = self.buf.as_ref() else {
            return false;
        };
        let geom = domain.unk.geom();
        let packed = buf.as_slice();
        for (n, id) in self.leaves.iter().enumerate() {
            let slab = domain.unk.block_slab_mut(id.idx());
            let mut pos = n * self.per_block;
            for_each_interior_run(&geom, |off, len| {
                slab[off..off + len].copy_from_slice(&packed[pos..pos + len]);
                pos += len;
            });
        }
        true
    }

    /// Whether a capture is held and restorable (modulo epoch drift).
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Number of leaf blocks in the held capture.
    pub fn captured_blocks(&self) -> usize {
        if self.valid {
            self.leaves.len()
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MeshConfig;

    fn domain() -> Domain {
        Domain::new(MeshConfig::test_2d(), Policy::None)
    }

    fn fill(d: &mut Domain, base: f64) {
        for id in d.tree.leaves() {
            for v in 0..d.unk.nvar() {
                for j in 0..d.unk.padded().1 {
                    for i in 0..d.unk.padded().0 {
                        let x = base + (v * 1000 + j * 10 + i) as f64;
                        d.unk.set(v, i, j, 0, id.idx(), x);
                    }
                }
            }
        }
    }

    /// Interior bits only — the contract covers interiors, not guards.
    fn interior_bits(d: &Domain) -> Vec<u64> {
        let mut bits = Vec::new();
        for id in d.tree.leaves() {
            for v in 0..d.unk.nvar() {
                for k in d.unk.interior_k() {
                    for j in d.unk.interior() {
                        for i in d.unk.interior() {
                            bits.push(d.unk.get(v, i, j, k, id.idx()).to_bits());
                        }
                    }
                }
            }
        }
        bits
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let mut d = domain();
        fill(&mut d, 3.5);
        let before = interior_bits(&d);
        let mut shadow = ShadowSnapshot::new(Policy::None);
        assert!(shadow.capture(&d));
        assert_eq!(shadow.captured_blocks(), d.tree.leaves().len());
        fill(&mut d, -7.25); // trash the state, guards included
        assert_ne!(interior_bits(&d), before);
        assert!(shadow.restore(&mut d));
        assert_eq!(interior_bits(&d), before);
    }

    #[test]
    fn guard_cells_are_not_touched_by_restore() {
        let mut d = domain();
        fill(&mut d, 1.0);
        let mut shadow = ShadowSnapshot::new(Policy::None);
        assert!(shadow.capture(&d));
        let id = d.tree.leaves()[0];
        d.unk.set(0, 0, 0, 0, id.idx(), 42.0); // corner guard cell
        assert!(shadow.restore(&mut d));
        assert_eq!(d.unk.get(0, 0, 0, 0, id.idx()), 42.0);
    }

    #[test]
    fn restore_refuses_after_regrid() {
        let mut d = domain();
        fill(&mut d, 1.0);
        let mut shadow = ShadowSnapshot::new(Policy::None);
        assert!(shadow.capture(&d));
        let root = d.tree.leaves()[0];
        d.tree.refine_block(root, &mut d.unk);
        assert!(!shadow.restore(&mut d), "epoch changed, must refuse");
        // Re-capture on the new topology works and restores.
        assert!(shadow.capture(&d));
        assert!(shadow.restore(&mut d));
    }

    #[test]
    fn backing_grows_with_leaf_population() {
        let mut d = domain();
        fill(&mut d, 2.0);
        let mut shadow = ShadowSnapshot::new(Policy::None);
        assert!(shadow.capture(&d));
        let small = shadow.captured_blocks();
        let root = d.tree.leaves()[0];
        d.tree.refine_block(root, &mut d.unk);
        assert!(shadow.capture(&d));
        assert!(shadow.captured_blocks() > small);
        let before = interior_bits(&d);
        fill(&mut d, 9.0);
        assert!(shadow.restore(&mut d));
        assert_eq!(interior_bits(&d), before);
    }

    #[test]
    fn soa_layout_round_trips_too() {
        use crate::unk::{Layout, UnkStorage};
        let cfg = MeshConfig::test_2d();
        let mut d = domain();
        // Swap in a VarLast container with the same geometry.
        d.unk = UnkStorage::new(
            2,
            cfg.nxb,
            cfg.nguard,
            crate::vars::NVAR,
            cfg.max_blocks,
            Layout::VarLast,
            Policy::None,
        );
        fill(&mut d, 0.5);
        let before = interior_bits(&d);
        let mut shadow = ShadowSnapshot::new(Policy::None);
        assert!(shadow.capture(&d));
        fill(&mut d, -3.0);
        assert!(shadow.restore(&mut d));
        assert_eq!(interior_bits(&d), before);
    }

    #[test]
    fn empty_snapshot_refuses_restore() {
        let mut d = domain();
        let shadow = ShadowSnapshot::new(Policy::None);
        assert!(!shadow.is_valid());
        assert!(!shadow.restore(&mut d));
    }
}
